"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` uses the PEP 660 path when available; fully offline
environments can fall back to ``python setup.py develop``.
"""

from setuptools import setup

setup()
