"""Voltage and thermal sensors gating TEP predictions (Section 2.1.1).

The TEP "considers favorable conditions for timing errors through the use
of thermal and voltage sensors": at the nominal supply there is no point
predicting violations, while at lowered supplies (or elevated temperature)
predictions are armed. The thermal model is a slow bounded random walk —
enough to exercise the gating logic without a full RC thermal network.
"""

from repro.faults.timing import VDD_NOMINAL


class ThermalModel:
    """A bounded-random-walk die temperature in degrees Celsius."""

    def __init__(self, t_ambient=45.0, t_max=95.0, step=0.02, seed=0):
        import random

        self.t_ambient = t_ambient
        self.t_max = t_max
        self.step = step
        self.temperature = (t_ambient + t_max) / 2.0
        self._rng = random.Random(seed)

    def advance(self, cycles=1):
        """Advance the walk by ``cycles`` cycles and return the temperature."""
        drift = self.step * cycles ** 0.5
        self.temperature += self._rng.uniform(-drift, drift)
        self.temperature = min(self.t_max, max(self.t_ambient, self.temperature))
        return self.temperature


class VoltageSensor:
    """Reports whether conditions favour timing violations.

    Parameters
    ----------
    vdd:
        The operating supply voltage of the run.
    thermal:
        Optional :class:`ThermalModel`; high temperature also arms the
        sensor (delay rises with temperature).
    v_threshold:
        Supplies at or below this arm the sensor.
    t_threshold:
        Temperatures at or above this arm the sensor.
    """

    def __init__(self, vdd, thermal=None, v_threshold=None, t_threshold=90.0,
                 overclocked=False):
        self.vdd = vdd
        self.thermal = thermal
        self.v_threshold = (
            v_threshold if v_threshold is not None else VDD_NOMINAL - 1e-9
        )
        self.t_threshold = t_threshold
        #: running above nominal frequency also consumes the guardband
        self.overclocked = overclocked

    def favorable(self):
        """True when timing violations are plausible under current conditions."""
        if self.overclocked:
            return True
        if self.vdd <= self.v_threshold:
            return True
        if self.thermal is not None:
            return self.thermal.temperature >= self.t_threshold
        return False
