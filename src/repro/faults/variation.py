"""Process-variation model for gate delays.

Following the paper (Section 4.3) and VARIUS-style models [Sarangi et al.],
transistor length L, width W and oxide thickness t_ox are Gaussian with a
+-20% band (interpreted as 3-sigma) around nominal. A gate's drive current
in the alpha-power law is I ~ (W / L) * C_ox * (V - Vth)^alpha with
C_ox ~ 1/t_ox, so the per-gate delay factor relative to nominal is

    d / d_nom = (L / L_nom) * (t_ox / t_ox_nom) / (W / W_nom)

to first order. The model produces per-gate multiplicative delay factors
and the implied sigma/mu of a logic path as the root-sum-square over its
(assumed independent) gate contributions.

numpy is an optional extra (``repro[numpy]``): with it installed the
model draws from ``numpy.random.default_rng`` (the reference streams
every pinned result was produced with); without it a pure-python
fallback draws from :class:`random.Random` — same distributions, same
determinism per seed, but a different (non-numpy) stream, so exact
numbers differ between the two installs.
"""

import math
import statistics

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on bare installs
    np = None


class VariationSample:
    """Per-gate delay factors sampled for one die."""

    __slots__ = ("factors",)

    def __init__(self, factors):
        if np is not None:
            self.factors = np.asarray(factors, dtype=float)
        else:
            self.factors = [float(f) for f in factors]

    def __len__(self):
        return len(self.factors)

    @property
    def mean(self):
        """Mean delay factor over the sampled gates."""
        if np is not None:
            return float(self.factors.mean())
        return statistics.fmean(self.factors)

    @property
    def std(self):
        """Standard deviation of the delay factors."""
        if np is not None:
            return float(self.factors.std())
        return statistics.pstdev(self.factors)


class ProcessVariationModel:
    """Gaussian L/W/t_ox variation mapped to gate delay factors.

    Parameters
    ----------
    deviation:
        The +-band of parameter variation (paper: 0.20), interpreted as the
        3-sigma point of the Gaussian, i.e. ``sigma = deviation / 3``.
    seed:
        Seed for the internal random generator.
    """

    def __init__(self, deviation=0.20, seed=0):
        if not 0.0 <= deviation < 1.0:
            raise ValueError("deviation must be in [0, 1)")
        self.deviation = deviation
        self.sigma_param = deviation / 3.0
        if np is not None:
            self._rng = np.random.default_rng(seed)
        else:
            import random

            self._rng = random.Random(seed)

    def sample_gate_factors(self, n_gates):
        """Sample per-gate delay factors for ``n_gates`` gates.

        Each gate draws independent L, W and t_ox deviations; the delay
        factor is ``(1+dL) * (1+dtox) / (1+dW)``, clipped to stay positive.
        """
        s = self.sigma_param
        if np is not None:
            d_l = self._rng.normal(0.0, s, n_gates)
            d_w = self._rng.normal(0.0, s, n_gates)
            d_tox = self._rng.normal(0.0, s, n_gates)
            factors = (
                (1.0 + d_l) * (1.0 + d_tox) / np.clip(1.0 + d_w, 0.1, None)
            )
            return VariationSample(np.clip(factors, 0.1, None))
        gauss = self._rng.gauss
        d_l = [gauss(0.0, s) for _ in range(n_gates)]
        d_w = [gauss(0.0, s) for _ in range(n_gates)]
        d_tox = [gauss(0.0, s) for _ in range(n_gates)]
        factors = [
            max(0.1, (1.0 + l) * (1.0 + t) / max(0.1, 1.0 + w))
            for l, w, t in zip(d_l, d_w, d_tox)
        ]
        return VariationSample(factors)

    def path_sigma_over_mu(self, logic_depth):
        """Relative sigma of a path of ``logic_depth`` equal-delay gates.

        With independent per-gate factors of relative sigma ``s_g``, a path
        of n gates has sigma/mu = s_g / sqrt(n): deep paths average out the
        random component. ``s_g`` combines the three parameter Gaussians
        (approximately sqrt(3) * sigma_param for small deviations).
        """
        if logic_depth <= 0:
            raise ValueError("logic depth must be positive")
        per_gate_sigma = math.sqrt(3.0) * self.sigma_param
        return per_gate_sigma / math.sqrt(logic_depth)
