"""Fault-storm stress mode: the adversarial fault environment.

The base :class:`~repro.faults.injector.FaultInjector` models the paper's
*measured* fault behaviour — violations cluster on recurring critical
paths, sensors report honestly, the TEP sees the same distribution it
trains on. Storm mode deliberately breaks each of those assumptions to
stress the robustness machinery rather than the schemes' efficiency:

* :class:`StormInjector` adds **bursts** of extra violations in
  deterministic windows of the dynamic instruction stream, a fraction of
  them **wild**: placed in a uniformly random OoO stage with no regard
  for the datapath (including the MEM stage of non-memory instructions —
  faults the TEP can never predict and the base model never produces,
  exercising the pipeline's detect-and-replay safety net).
* :class:`FlakySensor` wraps the voltage sensor with **dropouts**:
  sustained windows where it reports unfavorable conditions regardless
  of the real supply, so predictions disarm and re-arm mid-run
  (flapping).
* :class:`ChaoticTEP` wraps the predictor with forced **mispredictions**:
  real predictions are randomly suppressed and phantom ones fabricated,
  including nonsensical stage choices.

All three draw from private seeded generators, so a storm run is exactly
as reproducible as a clean one — :class:`StormConfig` is part of
``RunSpec.canonical()`` and of every repro bundle.
"""

import random

from repro.core.tep import TEPPrediction
from repro.faults.injector import DEFAULT_STAGE_WEIGHTS, MEM_STAGE_WEIGHTS
from repro.isa.opcodes import OOO_STAGES


class StormConfig:
    """Knobs of the fault storm; all-zero knobs mean "no storm effect".

    Parameters
    ----------
    burst_rate:
        Per-instruction probability of an extra violation inside a burst
        window.
    burst_len / burst_gap:
        The dynamic stream alternates ``burst_len`` stormy instructions
        with ``burst_gap`` calm ones (deterministic windows, so a
        minimized repro keeps the same weather).
    wild_frac:
        Fraction of storm violations placed in a uniformly random OoO
        stage instead of a datapath-plausible one.
    sensor_flap:
        Approximate duty cycle of sensor dropouts (0 disables the
        :class:`FlakySensor` wrap).
    tep_drop:
        Probability a real TEP prediction is suppressed.
    tep_fabricate:
        Probability a phantom prediction is fabricated on a miss.
    """

    FIELDS = ("burst_rate", "burst_len", "burst_gap", "wild_frac",
              "sensor_flap", "tep_drop", "tep_fabricate")

    def __init__(self, burst_rate=0.05, burst_len=300, burst_gap=1200,
                 wild_frac=0.15, sensor_flap=0.0, tep_drop=0.0,
                 tep_fabricate=0.0):
        self.burst_rate = float(burst_rate)
        self.burst_len = int(burst_len)
        self.burst_gap = int(burst_gap)
        self.wild_frac = float(wild_frac)
        self.sensor_flap = float(sensor_flap)
        self.tep_drop = float(tep_drop)
        self.tep_fabricate = float(tep_fabricate)
        if self.burst_len <= 0:
            raise ValueError("burst_len must be positive")
        if self.burst_gap < 0:
            raise ValueError("burst_gap must be >= 0")

    def canonical(self):
        """Primitive form feeding ``RunSpec.canonical()`` (floats as repr)."""
        return tuple(
            (name, repr(getattr(self, name))) for name in self.FIELDS
        )

    def to_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: data[k] for k in cls.FIELDS if k in data})

    def __repr__(self):
        knobs = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.FIELDS
        )
        return f"StormConfig({knobs})"


def default_storm():
    """The full-strength preset used by ``verify storm`` and CI fuzzing."""
    return StormConfig(
        burst_rate=0.05, burst_len=300, burst_gap=1200, wild_frac=0.15,
        sensor_flap=0.25, tep_drop=0.25, tep_fabricate=0.02,
    )


def _weighted_stage(static_inst, rng):
    """Datapath-plausible faulty stage, same tables as the base injector."""
    weights = MEM_STAGE_WEIGHTS if static_inst.is_mem else DEFAULT_STAGE_WEIGHTS
    r = rng.random()
    acc = 0.0
    for stage, w in weights:
        acc += w
        if r < acc:
            return stage
    return weights[-1][0]


class StormInjector:
    """Wraps a base injector (or nothing) with burst-windowed extra faults.

    Exposes the same ``resolve``/``enabled`` surface the pipeline expects;
    anything else (``assignment_for``, ``critical_pcs``...) is delegated
    to the wrapped injector.
    """

    def __init__(self, inner, config, seed=0):
        self.inner = inner
        self.config = config
        self.enabled = True
        self.storm_faults = 0
        self.wild_faults = 0
        self._rng = random.Random(seed)
        self._pos = 0
        self._period = config.burst_len + config.burst_gap

    def resolve(self, inst, vdd):
        """Annotate ``inst`` with base faults plus any storm violation."""
        if self.inner is not None:
            self.inner.resolve(inst, vdd)
        if not self.enabled or inst.replayed:
            return inst
        pos = self._pos
        self._pos = pos + 1
        if pos % self._period >= self.config.burst_len:
            return inst  # calm window
        rng = self._rng
        if rng.random() >= self.config.burst_rate:
            return inst
        if rng.random() < self.config.wild_frac:
            stage = OOO_STAGES[rng.randrange(len(OOO_STAGES))]
            self.wild_faults += 1
        else:
            stage = _weighted_stage(inst.static, rng)
        inst.add_fault(stage)
        self.storm_faults += 1
        return inst

    def __getattr__(self, name):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


class FlakySensor:
    """A voltage sensor with sustained dropout windows (flapping).

    During a dropout the sensor reports unfavorable conditions no matter
    the real supply, so the TEP disarms and violations arrive unpredicted.
    ``dynamic = True`` tells the pipeline it must re-query the sensor per
    fetch group instead of latching a verdict at construction.
    """

    #: forces the per-fetch sensor gate in OoOCore.__init__
    dynamic = True

    def __init__(self, inner, flap=0.25, seed=0, dropout_len=64):
        self.inner = inner
        self.flap = float(flap)
        self.dropout_len = int(dropout_len)
        self._rng = random.Random(seed)
        self._queries = 0
        self._dropped_until = 0
        self.dropouts = 0

    def favorable(self):
        self._queries += 1
        if self._queries <= self._dropped_until:
            return False
        # expected duty cycle ~= flap: start a dropout_len-query dropout
        # with probability flap/dropout_len per healthy query
        if self.flap and self._rng.random() < self.flap / self.dropout_len:
            self.dropouts += 1
            self._dropped_until = self._queries + self.dropout_len
            return False
        return self.inner.favorable()

    def __getattr__(self, name):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


class ChaoticTEP:
    """A predictor wrapper that forces mispredictions both ways.

    Real predictions are suppressed with probability ``drop`` (the
    violation then arrives unpredicted and must be caught by replay);
    misses fabricate a phantom prediction with probability ``fabricate``,
    with a uniformly random OoO stage — including stages the instruction
    never occupies, which the VTE must pad as no-ops or the safety net
    must absorb. Training and criticality marking pass through unchanged,
    so the underlying predictor keeps learning honestly.
    """

    def __init__(self, inner, drop=0.25, fabricate=0.02, seed=0):
        self.inner = inner
        self.drop = float(drop)
        self.fabricate = float(fabricate)
        self._rng = random.Random(seed)
        self.dropped = 0
        self.fabricated = 0

    def predict_or_key(self, pc, ghr):
        inner = self.inner
        lookup = getattr(inner, "predict_or_key", None)
        if lookup is not None:
            prediction, key = lookup(pc, ghr)
        else:
            prediction = inner.predict(pc, ghr)
            key = (
                prediction.key if prediction is not None
                else inner.key_for(pc, ghr)
            )
        rng = self._rng
        if prediction is not None:
            if self.drop and rng.random() < self.drop:
                self.dropped += 1
                prediction = None
        elif self.fabricate and rng.random() < self.fabricate:
            stage = OOO_STAGES[rng.randrange(len(OOO_STAGES))]
            self.fabricated += 1
            prediction = TEPPrediction(stage, rng.random() < 0.5, key)
        return prediction, key

    def predict(self, pc, ghr):
        prediction, _key = self.predict_or_key(pc, ghr)
        return prediction

    def __getattr__(self, name):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)
