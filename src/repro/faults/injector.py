"""Fault injection: per-PC path assignment and per-instance resolution.

The injector bridges the statistical timing model and the architectural
simulation. It has two phases:

1. :meth:`FaultInjector.assign` — before simulation, partition the static
   PCs of a program into timing classes (SAFE/WARM/HOT) so that the
   *dynamic* fault rates at the two faulty supply voltages approximate the
   per-benchmark targets (Table 1 of the paper), and give every critical
   (PC, stage) pair a sensitized-path delay sampled inside its class band.

2. :meth:`FaultInjector.resolve` — as each dynamic instance is created,
   evaluate the mu+2sigma criterion for the paths that instance sensitizes.
   With probability ``repeatability`` the instance sensitizes its PC's
   recurring critical path (this is the S1 commonality result: ~87-92% of
   sensitized gates recur across dynamic instances); otherwise it exercises
   a shorter path and escapes the violation. A small voltage-dependent
   background rate injects violations on arbitrary instructions — these are
   the unpredictable faults that force Razor-style replays.
"""

import random

from repro.isa.opcodes import OpClass, PipeStage
from repro.faults.timing import TimingClass, VDD_NOMINAL


#: Default distribution of faulty stages for non-memory instructions.
#: Wakeup/select CAM logic dominates (Section 3.3.1, corroborated by [16]).
DEFAULT_STAGE_WEIGHTS = (
    (PipeStage.ISSUE, 0.62),
    (PipeStage.EXECUTE, 0.18),
    (PipeStage.REGREAD, 0.12),
    (PipeStage.WRITEBACK, 0.08),
)

#: Faulty-stage distribution for loads/stores: the LSQ CAM search makes the
#: memory stage the dominant site (Section 3.3.4).
MEM_STAGE_WEIGHTS = (
    (PipeStage.MEM, 0.60),
    (PipeStage.ISSUE, 0.25),
    (PipeStage.REGREAD, 0.10),
    (PipeStage.WRITEBACK, 0.05),
)


class _PcTiming:
    """Timing assignment of one static PC."""

    __slots__ = ("timing_class", "stage", "path_fraction")

    def __init__(self, timing_class, stage, path_fraction):
        self.timing_class = timing_class
        self.stage = stage
        self.path_fraction = path_fraction


class FaultInjector:
    """Decides, per dynamic instruction instance, which stages violate timing.

    Parameters
    ----------
    timing_model:
        A :class:`~repro.faults.timing.StageTimingModel`.
    seed:
        Seed for the injector's private generator.
    repeatability:
        Probability that a dynamic instance of a critical PC sensitizes the
        recurring critical path (the S1 commonality; default 0.97).
    background_rate:
        Background (unpredictable) violation probability per instruction at
        the high-fault voltage; scaled linearly with the voltage deficit.
    dynamic_sigma:
        Relative sigma of temporal (droop/thermal) delay noise applied per
        instance.
    """

    def __init__(
        self,
        timing_model,
        seed=0,
        repeatability=0.97,
        background_rate=1e-4,
        dynamic_sigma=0.004,
        thermal=None,
        thermal_coefficient=5e-4,
    ):
        self.timing_model = timing_model
        self.repeatability = repeatability
        self.background_rate = background_rate
        self.dynamic_sigma = dynamic_sigma
        #: optional :class:`~repro.faults.sensors.ThermalModel`; when set,
        #: per-instance delay noise gains a temperature-dependent bias
        #: (delay rises ~0.05%/K above the midpoint), so hot phases fault
        #: more — the temporal-variation component of Section 1.
        self.thermal = thermal
        self.thermal_coefficient = thermal_coefficient
        #: cycle-time shrink factor (>1 = overclocked, Section 1's
        #: "tighter frequency" operating mode)
        self.frequency_factor = 1.0
        self._rng = random.Random(seed)
        self._pc_timing = {}
        self.enabled = True
        self._bg_cache = (None, None, 0.0)  # (vdd, rate, probability)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def _pick_stage(self, static_inst):
        weights = MEM_STAGE_WEIGHTS if static_inst.is_mem else DEFAULT_STAGE_WEIGHTS
        r = self._rng.random()
        acc = 0.0
        for stage, w in weights:
            acc += w
            if r < acc:
                return stage
        return weights[-1][0]

    def assign(self, static_insts, pc_freq, fr_low, fr_high, stage_weights=None):
        """Assign timing classes so dynamic fault rates hit the targets.

        Parameters
        ----------
        static_insts:
            The program's static instructions.
        pc_freq:
            Mapping PC -> estimated dynamic execution frequency (fractions
            summing to ~1 over the program's PCs).
        fr_low, fr_high:
            Target dynamic fault rates (fractions of instructions violating
            timing) at 1.04V and 0.97V respectively. ``fr_high`` must be
            >= ``fr_low``.
        """
        if fr_high < fr_low:
            raise ValueError("fr_high must be >= fr_low")
        del stage_weights  # reserved for future per-profile overrides
        self._pc_timing = {}
        # Inflate targets: only `repeatability` of instances actually fault.
        want_hot = fr_low / max(self.repeatability, 1e-9)
        want_warm = (fr_high - fr_low) / max(self.repeatability, 1e-9)

        candidates = [si for si in static_insts if si.op is not OpClass.NOP]
        self._rng.shuffle(candidates)
        acc_hot = 0.0
        acc_warm = 0.0
        # cap any single PC's share of a class budget: spreading the budget
        # over several static instructions keeps the *measured* fault rate
        # of a finite simulation window close to the long-run target
        # first pass enforces the cap; if the program is too small/hot to
        # fill a class budget from cold PCs alone (libquantum-like kernels),
        # a second pass relaxes the cap to the remaining budget
        for cap_divisor in (4.0, 1.0):
            hot_cap = want_hot / cap_divisor
            warm_cap = want_warm / cap_divisor
            for si in candidates:
                if si.pc in self._pc_timing:
                    continue
                freq = pc_freq.get(si.pc, 0.0)
                if freq <= 0.0:
                    continue
                if acc_hot < want_hot and freq <= min(
                    want_hot - acc_hot, hot_cap
                ):
                    cls = TimingClass.HOT
                    acc_hot += freq
                elif acc_warm < want_warm and freq <= min(
                    want_warm - acc_warm, warm_cap
                ):
                    cls = TimingClass.WARM
                    acc_warm += freq
                else:
                    continue
                stage = self._pick_stage(si)
                frac = self.timing_model.sample_path_fraction(cls, self._rng)
                self._pc_timing[si.pc] = _PcTiming(cls, stage, frac)
            if acc_hot >= 0.8 * want_hot and acc_warm >= 0.8 * want_warm:
                break
        # tiny hot kernels: every PC may exceed the remaining budget; then
        # the closest-fitting single PC is better than missing the target
        if acc_hot < 0.5 * want_hot:
            spare = [
                si for si in candidates
                if si.pc not in self._pc_timing and pc_freq.get(si.pc, 0) > 0
            ]
            if spare:
                si = min(spare, key=lambda s: pc_freq[s.pc])
                frac = self.timing_model.sample_path_fraction(
                    TimingClass.HOT, self._rng
                )
                self._pc_timing[si.pc] = _PcTiming(
                    TimingClass.HOT, self._pick_stage(si), frac
                )
        return self._pc_timing

    def reseed(self, seed):
        """Restart the per-instance stream (measurement-boundary reseed).

        The PC timing assignment (:meth:`assign`) is untouched — it is
        warmup state shared by every measurement draw; only the stream
        deciding which dynamic instances fault is redrawn, so campaign
        draws differing in ``measurement_seed`` sample independent fault
        realizations over one warmed machine.
        """
        self._rng = random.Random(seed)

    def assignment_for(self, pc):
        """Return the :class:`_PcTiming` of ``pc`` or ``None`` if SAFE."""
        return self._pc_timing.get(pc)

    @property
    def critical_pcs(self):
        """PCs with a non-SAFE timing assignment."""
        return set(self._pc_timing)

    # ------------------------------------------------------------------
    # per-instance resolution
    # ------------------------------------------------------------------
    def _background_prob(self, vdd):
        if vdd >= VDD_NOMINAL:
            return 0.0
        span = VDD_NOMINAL - 0.97
        return self.background_rate * (VDD_NOMINAL - vdd) / span

    def resolve(self, inst, vdd):
        """Annotate ``inst`` with the stages in which it violates timing.

        Replayed instances never re-fault: the Razor-style recovery re-runs
        them with guaranteed timing (Section 2.1.2).
        """
        if not self.enabled or inst.replayed:
            return inst
        rng = self._rng
        timing = self._pc_timing.get(inst.pc)
        if timing is not None and rng.random() < self.repeatability:
            noise = rng.gauss(0.0, self.dynamic_sigma)
            thermal = self.thermal
            if thermal is not None:
                midpoint = (thermal.t_ambient + thermal.t_max) / 2
                noise += self.thermal_coefficient * (
                    thermal.temperature - midpoint
                )
            if self.timing_model.violates(
                timing.path_fraction, vdd, noise, self.frequency_factor
            ):
                inst.add_fault(timing.stage)
        # background probability depends only on vdd and the configured
        # rate, both constant within a run: cache it (resolve runs once
        # per fetched instance)
        cached_vdd, cached_rate, bg = self._bg_cache
        if cached_vdd != vdd or cached_rate != self.background_rate:
            bg = self._background_prob(vdd)
            self._bg_cache = (vdd, self.background_rate, bg)
        if rng.random() < bg:
            # an unusual input sensitizes an untracked long path somewhere
            stage = self._pick_stage(inst.static)
            inst.add_fault(stage)
        return inst
