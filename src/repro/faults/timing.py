"""Voltage-dependent statistical timing of sensitized paths.

Two pieces live here:

* :class:`VoltageScaling` — the alpha-power-law delay model that converts a
  supply voltage into a multiplicative slowdown of every logic path, with
  the clock period fixed at the paper's nominal point (1.1V, zero faults).
* :class:`StageTimingModel` — assigns each (static PC, pipe stage) pair a
  sensitized-path delay, expressed as a fraction of the cycle time at
  nominal voltage, and evaluates the paper's fault criterion: a violation
  occurs when mu + 2*sigma of the instance's path delay exceeds the cycle
  time (Section 4.3).

The per-PC delay assignment uses the *timing class* construction documented
in DESIGN.md: static PCs are partitioned so that the *dynamic* fault rates
at the paper's two faulty voltages (1.04V, 0.97V) approximate the
per-benchmark rates in Table 1. Within each class the actual path fraction
is sampled from the corresponding feasible band, so the runtime criterion
is still evaluated numerically rather than being a hard-coded boolean.
"""

import enum
import math


#: The paper's three operating points.
VDD_NOMINAL = 1.10
VDD_LOW_FAULT = 1.04
VDD_HIGH_FAULT = 0.97


class VoltageScaling:
    """Alpha-power-law voltage-to-delay scaling.

    delay(V) proportional to V / (V - Vth)^alpha. The slowdown factor
    relative to the nominal voltage is ``delay(V) / delay(VDD_NOMINAL)``.
    """

    def __init__(self, vth=0.35, alpha=1.3, v_nominal=VDD_NOMINAL):
        if vth <= 0 or alpha <= 0:
            raise ValueError("vth and alpha must be positive")
        self.vth = vth
        self.alpha = alpha
        self.v_nominal = v_nominal
        self._d_nom = self._delay(v_nominal)
        self._memo = {}

    def _delay(self, vdd):
        if vdd <= self.vth:
            raise ValueError(f"vdd={vdd} must exceed vth={self.vth}")
        return vdd / (vdd - self.vth) ** self.alpha

    def slowdown(self, vdd):
        """Multiplicative path slowdown at ``vdd`` relative to nominal.

        Memoized: a run evaluates this at one or two fixed voltages but
        once per injected dynamic instruction.
        """
        cached = self._memo.get(vdd)
        if cached is None:
            cached = self._delay(vdd) / self._d_nom
            self._memo[vdd] = cached
        return cached


class TimingClass(enum.IntEnum):
    """Fault-rate class of a static (PC, stage) pair (see DESIGN.md §2)."""

    SAFE = 0        #: never violates timing at any studied voltage
    WARM = 1        #: violates at the high-fault voltage (0.97V) only
    HOT = 2         #: violates at both faulty voltages (1.04V and 0.97V)


class StageTimingModel:
    """Per-(PC, stage) sensitized-path delays and the mu+2sigma criterion.

    Parameters
    ----------
    scaling:
        A :class:`VoltageScaling` instance.
    variation:
        A :class:`~repro.faults.variation.ProcessVariationModel`; its
        path-level sigma/mu feeds the fault criterion.
    logic_depth:
        Representative logic depth of the timing-critical stages (the
        paper's synthesized components run 15-46 gates deep; wakeup/select
        dominates, so the default follows its depth).
    guardband:
        Slack of the slowest SAFE path below the mu+2sigma limit at
        nominal voltage.
    """

    def __init__(self, scaling, variation, logic_depth=33, guardband=0.04):
        self.scaling = scaling
        self.variation = variation
        self.logic_depth = logic_depth
        self.guardband = guardband
        # Relative sigma of a critical path from process variation.
        self.rel_sigma = variation.path_sigma_over_mu(logic_depth)
        # A path with nominal fraction f has mu+2sigma = f*(1+2*rel_sigma);
        # the criterion "mu+2sigma > Tclk" becomes f*slowdown > limit.
        self._limit = 1.0 / (1.0 + 2.0 * self.rel_sigma)
        self._sigma2 = 1.0 + 2.0 * self.rel_sigma

    # -- class band construction -----------------------------------------
    def class_band(self, timing_class):
        """Return the (lo, hi) band of nominal path fractions for a class.

        The band is expressed as a fraction of the nominal-voltage cycle
        time such that the mu+2sigma criterion puts the class's faults
        exactly at the intended voltages.
        """
        s_low = self.scaling.slowdown(VDD_LOW_FAULT)
        s_high = self.scaling.slowdown(VDD_HIGH_FAULT)
        hot_lo = self._limit / s_low
        warm_lo = self._limit / s_high
        safe_hi = min(warm_lo, self._limit * (1.0 - self.guardband))
        if timing_class is TimingClass.HOT:
            # faults at 1.04V (and a fortiori at 0.97V), safe at 1.1V
            return (hot_lo, self._limit * (1.0 - 1e-6))
        if timing_class is TimingClass.WARM:
            # faults at 0.97V only
            return (warm_lo, hot_lo * (1.0 - 1e-9))
        return (0.3, safe_hi)

    def sample_path_fraction(self, timing_class, rng):
        """Sample a nominal path-delay fraction inside the class band."""
        lo, hi = self.class_band(timing_class)
        return lo + (hi - lo) * rng.random()

    # -- runtime criterion -------------------------------------------------
    def violates(self, path_fraction, vdd, dynamic_noise=0.0,
                 frequency_factor=1.0):
        """Evaluate the paper's fault criterion for one dynamic instance.

        ``path_fraction`` is the nominal-voltage sensitized-path delay as a
        fraction of the cycle time; ``dynamic_noise`` is a small signed
        perturbation from temporal variation (droop/thermal) applied to the
        instance; ``frequency_factor`` > 1 shrinks the cycle time
        (overclocking — the paper's "tighter frequency" operating mode).
        Returns True when mu + 2*sigma exceeds the cycle time.
        """
        mu = (
            path_fraction * self.scaling.slowdown(vdd)
            * frequency_factor * (1.0 + dynamic_noise)
        )
        return mu * self._sigma2 > 1.0

    def fault_margin(self, path_fraction, vdd, frequency_factor=1.0):
        """Signed margin of mu+2sigma over the cycle time (>0 = violation)."""
        mu = path_fraction * self.scaling.slowdown(vdd) * frequency_factor
        return mu * (1.0 + 2.0 * self.rel_sigma) - 1.0


def expected_class(path_fraction, model):
    """Classify a nominal path fraction into its :class:`TimingClass`.

    Utility used by tests and by the injector's self-checks: evaluates the
    criterion at the two faulty voltages with zero dynamic noise.
    """
    if model.violates(path_fraction, VDD_LOW_FAULT):
        return TimingClass.HOT
    if model.violates(path_fraction, VDD_HIGH_FAULT):
        return TimingClass.WARM
    return TimingClass.SAFE
