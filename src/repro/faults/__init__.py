"""Timing-fault substrate: variation, voltage scaling, sensors, injection.

This package implements the paper's fault methodology (Section 4.3):
process variation is modelled as Gaussian deviations of transistor length,
width and oxide thickness (±20% of nominal); supply voltage scales path
delays through an alpha-power law; and a dynamic instruction incurs a timing
violation when the 95% confidence interval (mu + 2*sigma) of its sensitized
path delay exceeds the cycle time.
"""

from repro.faults.variation import ProcessVariationModel, VariationSample
from repro.faults.timing import VoltageScaling, StageTimingModel, TimingClass
from repro.faults.sensors import VoltageSensor, ThermalModel
from repro.faults.injector import FaultInjector

__all__ = [
    "ProcessVariationModel",
    "VariationSample",
    "VoltageScaling",
    "StageTimingModel",
    "TimingClass",
    "VoltageSensor",
    "ThermalModel",
    "FaultInjector",
]
