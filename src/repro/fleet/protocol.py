"""Length-prefixed JSON wire protocol of the campaign fleet.

Every message is one JSON object framed as a 4-byte big-endian payload
length followed by the UTF-8 payload. Framing (not newline-delimiting)
keeps the stream robust to payloads containing anything JSON can carry —
telemetry summaries, repro-bundle paths, full campaign specs — and
makes partial reads detectable: a connection that dies mid-frame raises
instead of yielding a torn message.

Message shapes (``"type"`` discriminates):

worker -> coordinator
    ``hello``       {worker, model_version}
    ``request``     ask for a lease (the reply is ``lease``, ``wait``,
                    or ``shutdown``)
    ``entry``       {lease, entry} — one journal ``run`` event, verbatim
    ``failure``     {lease, point, index, failure} — a RunFailure draw
    ``lease_done``  {lease}
    ``heartbeat``   {} — liveness (any message also refreshes the clock)
    ``status``      ask for the coordinator's live status dict

coordinator -> worker
    ``config``      {spec, directory, repro_dir, snapshot_dir, ...}
    ``lease``       {lease, point: {benchmark, scheme, vdd}, indices}
    ``wait``        {delay} — no work right now, retry after ``delay``
    ``shutdown``    campaign complete, disconnect
    ``status``      {status} — reply to a ``status`` ask
    ``error``       {reason} — protocol/compatibility rejection
"""

import asyncio
import json

#: frame-size ceiling; a campaign message is a few KB, so anything near
#: this is a corrupted or hostile stream, not a big telemetry summary
MAX_FRAME = 8 * 1024 * 1024

_HEADER = 4


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid protocol frame."""


def encode(message):
    """One wire frame (bytes) for ``message`` (a JSON-safe dict)."""
    payload = json.dumps(message, sort_keys=True).encode()
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte frame ceiling"
        )
    return len(payload).to_bytes(_HEADER, "big") + payload


def decode_frames(buffer):
    """Split ``buffer`` (bytes) into (messages, remainder) — test helper."""
    messages = []
    offset = 0
    while len(buffer) - offset >= _HEADER:
        length = int.from_bytes(buffer[offset:offset + _HEADER], "big")
        if length > MAX_FRAME:
            raise ProtocolError(f"frame of {length} bytes exceeds ceiling")
        if len(buffer) - offset - _HEADER < length:
            break
        start = offset + _HEADER
        messages.append(json.loads(buffer[start:start + length]))
        offset = start + length
    return messages, buffer[offset:]


async def send_message(writer, message, lock=None):
    """Frame and send ``message`` on an asyncio stream writer.

    ``lock`` (an :class:`asyncio.Lock`) serializes senders when several
    tasks share one connection (a worker's heartbeat task vs its draw
    streamer); each frame is a single ``write`` call either way, so
    frames can never interleave mid-message.
    """
    frame = encode(message)
    if lock is None:
        writer.write(frame)
        await writer.drain()
        return
    async with lock:
        writer.write(frame)
        await writer.drain()


async def read_message(reader):
    """Read one framed message; raises on EOF mid-frame or bad frames."""
    try:
        header = await reader.readexactly(_HEADER)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("connection closed") from None
        raise ProtocolError("connection died mid-frame header") from None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds ceiling")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            f"connection died mid-frame ({length}-byte payload)"
        ) from None
    try:
        return json.loads(payload)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
