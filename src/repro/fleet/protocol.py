"""Length-prefixed JSON wire protocol of the campaign fleet.

Every message is one JSON object framed as a 4-byte big-endian payload
length followed by the UTF-8 payload. Framing (not newline-delimiting)
keeps the stream robust to payloads containing anything JSON can carry —
telemetry summaries, repro-bundle paths, full campaign specs — and
makes partial reads detectable: a connection that dies mid-frame raises
instead of yielding a torn message.

Message shapes (``"type"`` discriminates):

worker -> coordinator
    ``hello``       {worker, model_version, nonce}
    ``auth``        {mac} — HMAC reply to a ``challenge``
                    (:mod:`repro.fleet.security`)
    ``request``     ask for a lease (the reply is ``lease``, ``wait``,
                    or ``shutdown``)
    ``entry``       {lease, entry} — one journal ``run`` event, verbatim
    ``failure``     {lease, point, index, failure} — a RunFailure draw
    ``lease_done``  {lease}
    ``heartbeat``   {} — liveness (any message also refreshes the clock)
    ``status``      ask for the coordinator's live status dict

coordinator -> worker
    ``challenge``   {nonce, proof} — shared-secret handshake; ``proof``
                    authenticates the coordinator to the worker
    ``config``      {spec, directory, repro_dir, snapshot_dir, ...}
    ``lease``       {lease, point: {benchmark, scheme, vdd}, indices}
    ``wait``        {delay} — no work right now, retry after ``delay``
    ``shutdown``    campaign complete (or this worker is drained),
                    disconnect
    ``status``      {status} — reply to a ``status`` ask
    ``error``       {code, reason} — structured rejection; ``code`` is a
                    stable machine-readable tag (``bad-name``,
                    ``auth-required``, ``auth-failed``,
                    ``version-skew``, ``protocol``, ``not-ready``)
"""

import asyncio
import json

#: frame-size ceiling; a campaign message is a few KB, so anything near
#: this is a corrupted or hostile stream, not a big telemetry summary
MAX_FRAME = 8 * 1024 * 1024

_HEADER = 4


class ProtocolError(RuntimeError):
    """The peer sent bytes that are not a valid protocol frame.

    Structured: ``reason`` is the bare diagnosis, ``peer`` names the
    remote endpoint when known (so a coordinator log line identifies
    *which* connection was hostile or broken), and ``frame_size`` is the
    advertised/attempted frame length when the failure is size-related.
    The coordinator treats these as per-connection events: the offending
    connection is dropped and audited, the serve loop keeps running.
    """

    def __init__(self, reason, peer=None, frame_size=None):
        self.reason = reason
        self.peer = peer
        self.frame_size = frame_size
        detail = reason
        if peer is not None:
            detail += f" [peer {peer}]"
        if frame_size is not None:
            detail += f" [frame {frame_size} bytes]"
        super().__init__(detail)


def encode(message):
    """One wire frame (bytes) for ``message`` (a JSON-safe dict)."""
    payload = json.dumps(message, sort_keys=True).encode()
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte frame ceiling",
            frame_size=len(payload),
        )
    return len(payload).to_bytes(_HEADER, "big") + payload


def decode_frames(buffer):
    """Split ``buffer`` (bytes) into (messages, remainder) — test helper."""
    messages = []
    offset = 0
    while len(buffer) - offset >= _HEADER:
        length = int.from_bytes(buffer[offset:offset + _HEADER], "big")
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame of {length} bytes exceeds ceiling",
                frame_size=length,
            )
        if len(buffer) - offset - _HEADER < length:
            break
        start = offset + _HEADER
        messages.append(json.loads(buffer[start:start + length]))
        offset = start + length
    return messages, buffer[offset:]


async def send_message(writer, message, lock=None):
    """Frame and send ``message`` on an asyncio stream writer.

    ``lock`` (an :class:`asyncio.Lock`) serializes senders when several
    tasks share one connection (a worker's heartbeat task vs its draw
    streamer); each frame is a single ``write`` call either way, so
    frames can never interleave mid-message.
    """
    frame = encode(message)
    if lock is None:
        writer.write(frame)
        await writer.drain()
        return
    async with lock:
        writer.write(frame)
        await writer.drain()


async def read_message(reader, peer=None):
    """Read one framed message; raises on EOF mid-frame or bad frames.

    ``peer`` (any printable endpoint label) is threaded into the raised
    :class:`ProtocolError` so the server side can log *who* sent the
    bad bytes without wrapping every call site.
    """
    try:
        header = await reader.readexactly(_HEADER)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionResetError("connection closed") from None
        raise ProtocolError(
            "connection died mid-frame header", peer=peer
        ) from None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame of {length} bytes exceeds ceiling",
            peer=peer, frame_size=length,
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            f"connection died mid-frame ({length}-byte payload)",
            peer=peer, frame_size=length,
        ) from None
    try:
        return json.loads(payload)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            f"undecodable frame payload: {exc}",
            peer=peer, frame_size=length,
        ) from None
