"""Distributed campaign fleet: coordinator/worker service.

Scales the statistical campaign engine (:mod:`repro.campaign`) from one
process pool to a fleet of workers while keeping its two load-bearing
guarantees intact:

* **Determinism** — the coordinator owns every statistical decision
  (batching, stopping) through the same
  :class:`~repro.campaign.scheduler.PointScheduler` the single-pool
  executor drives, and draws are keyed by the hash-derived seed stream,
  so a fleet campaign journals exactly the draws — and writes exactly
  the report bytes — a single-pool ``campaign run`` would.
* **Crash-safety** — every accepted draw is fsynced to a per-worker
  shard journal before it counts; worker death revokes and re-leases,
  coordinator death resumes from the shards + lease ledger.

Layers
------
:mod:`repro.fleet.protocol`
    Length-prefixed JSON framing and the message vocabulary.
:mod:`repro.fleet.ledger`
    Append-only lease ledger (dispatch audit + lease numbering).
:mod:`repro.fleet.merge`
    Shard replay, exactly-once dedup, canonical byte-identical merge.
:mod:`repro.fleet.coordinator`
    The asyncio TCP coordinator: leases, heartbeats, stopping, status.
:mod:`repro.fleet.worker`
    The execution loop a worker process runs.
:mod:`repro.fleet.service`
    ``fleet run``: local coordinator + N worker subprocesses, with an
    optional :class:`~repro.fleet.service.ElasticPool` autoscaler.
:mod:`repro.fleet.security`
    Shared-secret HMAC handshake and optional TLS wrapping.
:mod:`repro.fleet.chaosproxy`
    Deterministic fault-injecting relay for end-to-end chaos tests.

See ``docs/campaigns.md`` ("Running on a fleet" and "Securing and
scaling a fleet") for the wire protocol sketch, the lease lifecycle,
and failure semantics.
"""

from repro.fleet.chaosproxy import ChaosConfig, ChaosProxy
from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetError,
    read_endpoint,
    serve_fleet,
)
from repro.fleet.merge import merge_journals, replay_shards
from repro.fleet.protocol import ProtocolError
from repro.fleet.security import SecurityError, resolve_secret
from repro.fleet.service import ElasticPool, fleet_run
from repro.fleet.worker import FleetWorker, run_worker

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "ElasticPool",
    "FleetCoordinator",
    "FleetError",
    "FleetWorker",
    "ProtocolError",
    "SecurityError",
    "fleet_run",
    "merge_journals",
    "read_endpoint",
    "replay_shards",
    "resolve_secret",
    "run_worker",
    "serve_fleet",
]
