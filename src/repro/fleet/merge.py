"""Shard journals: replay and byte-identical canonical merge.

A fleet directory keeps one JSONL journal per worker under ``shards/``
(entries appended by the coordinator as they stream in, in arrival
order) plus ``shards/_coordinator.jsonl`` for point-completion and
``done`` events. :func:`merge_journals` folds them into the canonical
``journal.jsonl`` — every point's ``run`` events in index order followed
by its ``point`` event, points in grid order, ``done`` last — which is
byte-identical to the journal a single-pool ``campaign run`` of the
same spec writes. From there the stock campaign report/status/resume
machinery applies unchanged.

Deduplication is deterministic: draws are keyed by ``(point, index)``
and every execution of a draw is bit-identical (the seed stream is
hash-derived from the campaign's master seed), so when lease
reassignment makes two workers run the same draw, dropping either copy
is safe.
"""

import json
import os

from repro.campaign.journal import JOURNAL_NAME, JournalState, read_manifest
from repro.campaign.plan import CampaignSpec

SHARD_DIR = "shards"
COORDINATOR_SHARD = "_coordinator"


def shard_dir(directory):
    return os.path.join(str(directory), SHARD_DIR)


def shard_path(directory, name):
    return os.path.join(shard_dir(directory), f"{name}.jsonl")


def list_shards(directory):
    """Paths of every shard journal, coordinator shard first."""
    root = shard_dir(directory)
    try:
        names = sorted(os.listdir(root))
    except FileNotFoundError:
        return []
    paths = [
        os.path.join(root, name) for name in names
        if name.endswith(".jsonl")
    ]
    first = shard_path(directory, COORDINATOR_SHARD)
    return [p for p in paths if p == first] + [
        p for p in paths if p != first
    ]


def replay_shards(directory, base=None):
    """Fold every shard journal into one deduplicated JournalState.

    ``state.runs[point]`` is sorted by draw index with ``(point, index)``
    duplicates dropped (first occurrence wins — re-executed draws are
    byte-identical, so the choice is cosmetic). Torn trailing lines are
    tolerated exactly as in single-journal replay.

    ``base`` seeds the fold with an already-replayed
    :class:`JournalState` — the merged ``journal.jsonl`` of a previous
    merge or of a single-pool run being adopted by a fleet resume. Base
    events win the dedup.
    """
    state = JournalState()
    seen = set()  # (point, index) exactly-once accounting
    if base is not None:
        state.done = base.done
        state.n_events = base.n_events
        state.n_torn = base.n_torn
        for point_id, records in base.runs.items():
            state.runs[point_id] = list(records)
            for record in records:
                seen.add((point_id, record["index"]))
        state.completed.update(base.completed)
    for path in list_shards(directory):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    state.n_torn += 1
                    continue
                kind = event.get("event")
                if kind == "run":
                    key = (event["point"], event["index"])
                    if key in seen:
                        continue
                    seen.add(key)
                    state.n_events += 1
                    state.runs.setdefault(event["point"], []).append(event)
                elif kind == "point":
                    state.n_events += 1
                    state.completed.setdefault(event["point"], event)
                elif kind == "done":
                    state.n_events += 1
                    state.done = True
    for records in state.runs.values():
        records.sort(key=lambda r: r["index"])
    return state


def merge_journals(directory, state=None):
    """Write the canonical ``journal.jsonl`` from the shard journals.

    Returns the merged :class:`JournalState`. The write is atomic
    (temp + rename), so a crash mid-merge never corrupts an existing
    merged journal; re-merging is idempotent.
    """
    directory = str(directory)
    manifest = read_manifest(directory)
    spec = CampaignSpec.from_dict(manifest["spec"])
    if state is None:
        state = replay_shards(directory)
    path = os.path.join(directory, JOURNAL_NAME)
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        for point in spec.points():
            for record in state.runs.get(point.id, []):
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            completion = state.completed.get(point.id)
            if completion is not None:
                fh.write(json.dumps(completion, sort_keys=True) + "\n")
        if state.done:
            fh.write(json.dumps({"event": "done"}, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return state
