"""Lease ledger: append-only record of the coordinator's dispatch state.

The shard journals are the source of truth for *completed* draws; the
ledger records what was *in flight* — which draw indices were leased to
which worker, and how each lease ended (completed, revoked on heartbeat
expiry, or orphaned by a coordinator crash). A restarted coordinator
replays it to continue lease numbering and to log the leases that died
with it; ``fleet status`` and the fault-path tests read it to audit the
reassignment story (every revoked lease's indices must reappear under a
later lease or in the journal).
"""

import json
import os

LEDGER_NAME = "leases.jsonl"


class LeaseLedger:
    """Append-only JSONL ledger under a fleet campaign directory."""

    def __init__(self, directory):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, LEDGER_NAME)
        self._fh = None

    def append(self, record):
        if self._fh is None:
            os.makedirs(self.directory, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    def granted(self, lease_id, point_id, indices, worker):
        self.append({
            "event": "lease", "lease": lease_id, "point": point_id,
            "indices": list(indices), "worker": worker,
        })

    def completed(self, lease_id):
        self.append({"event": "complete", "lease": lease_id})

    def revoked(self, lease_id, reason):
        self.append({"event": "revoke", "lease": lease_id, "reason": reason})

    def stolen(self, thief_lease, victim_lease, point_id, indices,
               thief, victim):
        """Audit a work-steal: ``indices`` moved between two live leases.

        The thief's lease was just :meth:`granted`; this marker ties it
        to the victim so the reassignment story stays auditable. Keyed
        ``thief_lease``/``victim_lease`` (not ``lease``) so
        :meth:`replay` treats it as pure annotation — both leases'
        open/closed state is tracked by their own grant/complete/revoke
        records.
        """
        self.append({
            "event": "steal", "thief_lease": thief_lease,
            "victim_lease": victim_lease, "point": point_id,
            "indices": list(indices), "worker": thief, "victim": victim,
        })

    def scaled(self, action, worker, reason):
        """Audit an autoscaler decision (``spawn`` or ``retire``)."""
        self.append({
            "event": "scale", "action": action, "worker": worker,
            "reason": reason,
        })

    def audited(self, counters):
        """Persist a snapshot of the coordinator's security audit counters.

        Appended on every counter bump (they are rare — hostile peers,
        version skew, steals), so the *last* ``audit`` record always
        holds the final tallies and survives the coordinator:
        ``fleet status`` on a dead fleet can still report how many
        peers were rejected and why.
        """
        self.append({"event": "audit", "counters": dict(counters)})

    # ------------------------------------------------------------------
    def replay(self):
        """{"max_lease": int, "open": {lease_id: grant-record},
        "audit": last-counters-or-None}.

        ``open`` holds leases with neither a ``complete`` nor a
        ``revoke`` record — in flight at the last coordinator death.
        Torn trailing lines are ignored (the ledger is advisory; the
        shard journals carry the ground truth).
        """
        max_lease = 0
        open_leases = {}
        audit = None
        try:
            fh = open(self.path)
        except FileNotFoundError:
            return {"max_lease": 0, "open": {}, "audit": None}
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if record.get("event") == "audit":
                    counters = record.get("counters")
                    if isinstance(counters, dict):
                        audit = counters
                    continue
                lease_id = record.get("lease")
                if not isinstance(lease_id, int):
                    continue
                max_lease = max(max_lease, lease_id)
                if record.get("event") == "lease":
                    open_leases[lease_id] = record
                else:
                    open_leases.pop(lease_id, None)
        return {"max_lease": max_lease, "open": open_leases,
                "audit": audit}
