"""Fleet transport security: shared-secret handshake and optional TLS.

Two independent, composable layers harden the fleet protocol for
untrusted networks:

**Shared-secret handshake (HMAC-SHA256 challenge/response).** Both
sides hold one symmetric secret (``--secret``, ``--secret-file``, or
``$REPRO_FLEET_SECRET``). The worker's ``hello`` carries a client
nonce; the coordinator answers with its own nonce plus a proof —
``HMAC(secret, "coordinator" | client_nonce | server_nonce)`` — so the
worker authenticates the coordinator *before* revealing anything else;
the worker then returns ``HMAC(secret, "worker" | client_nonce |
server_nonce | name | model_version)``, binding its identity and
model version to the exchange so neither can be swapped in transit.
All comparisons are constant-time (:func:`hmac.compare_digest`).
Nonces make every exchange unique: a recorded handshake cannot be
replayed. The handshake authenticates the *endpoints*; it does not
encrypt the stream or protect it from hijack after the handshake —
that is what the TLS layer adds.

**TLS (stdlib ``ssl.SSLContext``).** The coordinator serves with
``--tls-cert``/``--tls-key``; workers enable TLS by trusting that
certificate (or its CA) via ``--tls-ca``. Giving the *coordinator* a
``--tls-ca`` additionally demands client certificates (mutual TLS).
Hostname checking is off by default — fleet deployments address
coordinators by bare IPs and short-lived self-signed certificates, and
endpoint authentication is already provided by the HMAC layer — so
``--tls-ca`` acts as certificate pinning plus channel encryption.

Neither layer depends on anything outside the standard library.
"""

import hashlib
import hmac
import os
import secrets

SECRET_ENV = "REPRO_FLEET_SECRET"

#: domain-separation labels so a coordinator proof can never be replayed
#: as a worker proof (and vice versa)
_COORDINATOR_LABEL = b"repro-fleet-coordinator-v1"
_WORKER_LABEL = b"repro-fleet-worker-v1"


class SecurityError(ValueError):
    """A security knob is unusable (unreadable file, cert without key...)."""


def resolve_secret(secret=None, secret_file=None, env=SECRET_ENV):
    """The shared secret as bytes, or None when no source provides one.

    Precedence: explicit ``secret`` > ``secret_file`` > the ``env``
    environment variable. Passing both ``secret`` and ``secret_file``
    is rejected — a silent precedence between two explicit sources is
    how operators end up fielding the wrong key.
    """
    if secret is not None and secret_file is not None:
        raise SecurityError(
            "pass --secret or --secret-file, not both"
        )
    if secret is not None:
        data = secret.encode() if isinstance(secret, str) else bytes(secret)
    elif secret_file is not None:
        try:
            with open(secret_file, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise SecurityError(
                f"cannot read --secret-file {secret_file}: {exc.strerror}"
            ) from None
        data = data.strip()  # editors love trailing newlines
    else:
        value = os.environ.get(env)
        if not value:
            return None
        data = value.encode()
    if not data:
        raise SecurityError("the fleet secret must be non-empty")
    return data


def new_nonce():
    """A fresh 128-bit hex nonce for one handshake exchange."""
    return secrets.token_hex(16)


def _mac(secret, label, *parts):
    """Hex HMAC-SHA256 over length-prefixed parts (no concat ambiguity)."""
    mac = hmac.new(secret, label, hashlib.sha256)
    for part in parts:
        data = part.encode() if isinstance(part, str) else bytes(part)
        mac.update(len(data).to_bytes(4, "big"))
        mac.update(data)
    return mac.hexdigest()


def coordinator_proof(secret, client_nonce, server_nonce):
    """The coordinator's challenge proof (authenticates it to workers)."""
    return _mac(secret, _COORDINATOR_LABEL, client_nonce, server_nonce)


def worker_proof(secret, client_nonce, server_nonce, worker, model_version):
    """The worker's auth response, bound to its name and model version."""
    return _mac(
        secret, _WORKER_LABEL, client_nonce, server_nonce,
        worker, model_version,
    )


def macs_equal(expected, received):
    """Constant-time comparison tolerant of non-string garbage."""
    if not isinstance(received, str):
        return False
    return hmac.compare_digest(expected, received)


# ----------------------------------------------------------------------
# TLS
# ----------------------------------------------------------------------
def _check_readable(path, flag):
    if path is None:
        return
    try:
        with open(path, "rb"):
            pass
    except OSError as exc:
        raise SecurityError(
            f"cannot read {flag} {path}: {exc.strerror}"
        ) from None


def validate_tls_args(tls_cert=None, tls_key=None, tls_ca=None):
    """Raise :class:`SecurityError` on inconsistent/unreadable TLS knobs."""
    if (tls_cert is None) != (tls_key is None):
        missing = "--tls-key" if tls_key is None else "--tls-cert"
        given = "--tls-cert" if tls_key is None else "--tls-key"
        raise SecurityError(
            f"{given} requires {missing}: a TLS identity is a "
            "certificate *and* its private key"
        )
    _check_readable(tls_cert, "--tls-cert")
    _check_readable(tls_key, "--tls-key")
    _check_readable(tls_ca, "--tls-ca")


def server_ssl_context(tls_cert=None, tls_key=None, tls_ca=None):
    """An ``SSLContext`` for the coordinator, or None when TLS is off.

    ``tls_cert``/``tls_key`` switch TLS on; ``tls_ca`` additionally
    requires (and verifies) client certificates — mutual TLS.
    """
    validate_tls_args(tls_cert, tls_key, tls_ca)
    if tls_cert is None:
        if tls_ca is not None:
            raise SecurityError(
                "a coordinator --tls-ca without --tls-cert/--tls-key "
                "cannot serve TLS; give it a certificate too"
            )
        return None
    import ssl

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    try:
        context.load_cert_chain(tls_cert, tls_key)
    except (ssl.SSLError, OSError) as exc:
        raise SecurityError(
            f"cannot load TLS identity {tls_cert}/{tls_key}: {exc}"
        ) from None
    if tls_ca is not None:
        context.load_verify_locations(tls_ca)
        context.verify_mode = ssl.CERT_REQUIRED
    return context


def client_ssl_context(tls_ca=None, tls_cert=None, tls_key=None):
    """An ``SSLContext`` for a worker, or None when TLS is off.

    Any knob switches TLS on. ``tls_ca`` pins the coordinator's
    certificate (chain); ``tls_cert``/``tls_key`` present a client
    certificate for mutual TLS.
    """
    validate_tls_args(tls_cert, tls_key, tls_ca)
    if tls_ca is None and tls_cert is None:
        return None
    import ssl

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    # endpoint auth comes from --tls-ca pinning + the HMAC handshake;
    # fleet coordinators are addressed by bare IPs, not DNS identities
    context.check_hostname = False
    if tls_ca is not None:
        context.load_verify_locations(tls_ca)
        context.verify_mode = ssl.CERT_REQUIRED
    else:
        context.verify_mode = ssl.CERT_NONE
    if tls_cert is not None:
        try:
            context.load_cert_chain(tls_cert, tls_key)
        except (ssl.SSLError, OSError) as exc:
            raise SecurityError(
                f"cannot load TLS identity {tls_cert}/{tls_key}: {exc}"
            ) from None
    return context
