"""Fleet worker: execute leased draws, stream journal entries back.

A worker is deliberately stateless about the campaign: it connects,
identifies itself (name + model version — the coordinator rejects a
version skew that would silently mix incompatible simulations), receives
the full :class:`~repro.campaign.plan.CampaignSpec` in the ``config``
reply, and then loops *request → lease → execute → stream*. Each leased
draw runs through the stock batch engine (:func:`repro.harness.parallel.
run_many`): the first draw of a leased point warms its pipeline snapshot
once, every later draw forks from it. Completed draws are streamed back
as verbatim journal ``run`` events — the coordinator appends them to
this worker's shard journal — and a :class:`~repro.verify.bundle.
RunFailure` draw turns into a ``failure`` message carrying the failure
record (its repro bundle stays on the worker's filesystem at the path
the record names).

A heartbeat task keeps the lease alive during long draws; if the worker
dies instead, the coordinator re-leases its unfinished indices and the
deterministic seed stream makes any overlap a harmless bit-identical
duplicate.
"""

import asyncio
import os
import socket

from repro.campaign.executor import draw_metadata
from repro.campaign.journal import run_event
from repro.campaign.plan import CampaignSpec, GridPoint, extract_metrics
from repro.campaign.scheduler import failure_record
from repro.fleet.protocol import ProtocolError, read_message, send_message

DEFAULT_RECONNECT_ATTEMPTS = 5
DEFAULT_RECONNECT_DELAY = 0.5


class WorkerError(RuntimeError):
    """The coordinator rejected this worker (bad name, version skew...)."""


def default_worker_name():
    host = "".join(
        c if c.isalnum() or c in "._-" else "-" for c in socket.gethostname()
    ) or "worker"
    return f"{host}-{os.getpid()}"


class FleetWorker:
    """One worker process's connection/execution loop."""

    def __init__(self, host, port, name=None, cache=True, cache_dir=None,
                 snapshots=True, snapshot_dir=None,
                 reconnect_attempts=DEFAULT_RECONNECT_ATTEMPTS,
                 reconnect_delay=DEFAULT_RECONNECT_DELAY):
        self.host = host
        self.port = int(port)
        self.name = name or default_worker_name()
        self.cache = bool(cache)
        self.cache_dir = cache_dir
        self.snapshots = bool(snapshots)
        self.snapshot_dir = snapshot_dir
        self.reconnect_attempts = int(reconnect_attempts)
        self.reconnect_delay = float(reconnect_delay)
        self.spec = None
        self._store = None
        self._baseline_memo = (None, None)  # (spec key, result) w/o cache
        self.draws_done = 0

    # ------------------------------------------------------------------
    async def run(self):
        """Serve until the coordinator says shutdown. Returns exit code.

        Connection errors reconnect with a bounded retry budget; the
        budget resets whenever a session makes progress (a lease
        executed), so a long campaign survives any number of transient
        drops but a dead coordinator is given up on promptly.
        """
        attempts = 0
        while True:
            draws_before = self.draws_done
            try:
                await self._session()
                return 0
            except WorkerError as exc:
                print(f"[fleet-worker {self.name}] rejected: {exc}",
                      flush=True)
                return 2
            except (ConnectionError, ProtocolError, OSError) as exc:
                if self.draws_done > draws_before:
                    attempts = 0
                attempts += 1
                if attempts > self.reconnect_attempts:
                    print(
                        f"[fleet-worker {self.name}] giving up after "
                        f"{attempts} failed connections: {exc}",
                        flush=True,
                    )
                    return 1
                await asyncio.sleep(self.reconnect_delay)

    async def _session(self):
        from repro.harness.parallel import model_version

        reader, writer = await asyncio.open_connection(self.host, self.port)
        lock = asyncio.Lock()
        heartbeat_task = None
        try:
            await send_message(writer, {
                "type": "hello",
                "worker": self.name,
                "model_version": model_version(),
            }, lock)
            config = await read_message(reader)
            if config.get("type") == "error":
                raise WorkerError(config.get("reason", "rejected"))
            if config.get("type") != "config":
                raise ProtocolError(
                    f"expected config, got {config.get('type')!r}"
                )
            self._configure(config)
            heartbeat_task = asyncio.create_task(
                self._heartbeat(writer, lock, config.get("heartbeat", 2.0))
            )
            while True:
                await send_message(writer, {"type": "request"}, lock)
                reply = await read_message(reader)
                kind = reply.get("type")
                if kind == "lease":
                    await self._execute_lease(reply, writer, lock)
                elif kind == "wait":
                    await asyncio.sleep(float(reply.get("delay", 0.5)))
                elif kind == "shutdown":
                    return
                elif kind == "error":
                    raise WorkerError(reply.get("reason", "rejected"))
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _heartbeat(self, writer, lock, interval):
        interval = max(0.1, float(interval))
        while True:
            await asyncio.sleep(interval)
            await send_message(writer, {"type": "heartbeat"}, lock)

    # ------------------------------------------------------------------
    def _configure(self, config):
        from repro.harness.parallel import ResultCache

        self.spec = CampaignSpec.from_dict(config["spec"])
        self.spec.repro_dir = config.get("repro_dir")
        if self.snapshots:
            snapshot_dir = self.snapshot_dir or config.get("snapshot_dir")
            if snapshot_dir:
                self.spec.snapshot_dir = str(snapshot_dir)
        if self.cache and config.get("cache", True):
            self._store = ResultCache(
                self.cache_dir or config.get("cache_dir")
            )
        else:
            self._store = None

    async def _execute_lease(self, lease, writer, lock):
        point = GridPoint(
            lease["point"]["benchmark"],
            lease["point"]["scheme"],
            lease["point"]["vdd"],
        )
        lease_id = lease["lease"]
        for index in lease["indices"]:
            kind, payload = await asyncio.to_thread(
                self._run_draw, point, index
            )
            if kind == "entry":
                self.draws_done += 1
                await send_message(writer, {
                    "type": "entry", "lease": lease_id, "entry": payload,
                }, lock)
            else:
                await send_message(writer, {
                    "type": "failure", "lease": lease_id,
                    "point": point.id, "index": index, "failure": payload,
                }, lock)
                return
        await send_message(
            writer, {"type": "lease_done", "lease": lease_id}, lock
        )

    def _run_draw(self, point, index):
        """Execute one paired draw synchronously (worker thread).

        Returns ``("entry", run-event-dict)`` or ``("failure",
        failure-record-dict)``. The run event is constructed with the
        exact helper the single-pool journal hook uses, so the bytes the
        coordinator appends are the bytes ``campaign run`` would have
        written.
        """
        from repro.harness.parallel import run_many

        run_spec, base_spec = self.spec.pair_specs(point, index)
        store = self._store if self._store is not None else False
        result = run_many([run_spec], jobs=1, cache=store)[0]
        baseline = self._run_baseline(base_spec, store)
        failed = next(
            (c for c in (result, baseline)
             if getattr(c, "is_failure", False)),
            None,
        )
        if failed is not None:
            return "failure", failure_record(failed)
        values, counts = extract_metrics(result, baseline)
        telemetry, snapshot_key = draw_metadata(run_spec, result)
        return "entry", run_event(
            point.id, index, self.spec.seed_for(point, index),
            values, counts, telemetry, snapshot_key,
        )

    def _run_baseline(self, base_spec, store):
        """The paired fault-free run, memoized per point without a cache.

        In fault draw mode every draw of a point shares one baseline
        spec; with the result cache on, :func:`run_many` already makes
        repeats free, and without it a one-slot memo avoids re-running a
        deterministic simulation once per draw.
        """
        from repro.harness.parallel import run_many

        key = base_spec.key()
        if self._store is None and self._baseline_memo[0] == key:
            return self._baseline_memo[1]
        baseline = run_many([base_spec], jobs=1, cache=store)[0]
        if self._store is None and not getattr(baseline, "is_failure", False):
            self._baseline_memo = (key, baseline)
        return baseline


def run_worker(host, port, **kwargs):
    """Blocking entry point: run one worker until shutdown or error."""
    worker = FleetWorker(host, port, **kwargs)
    return asyncio.run(worker.run())
