"""Fleet worker: execute leased draws, stream journal entries back.

A worker is deliberately stateless about the campaign: it connects,
identifies itself (name + model version — the coordinator rejects a
version skew that would silently mix incompatible simulations), receives
the full :class:`~repro.campaign.plan.CampaignSpec` in the ``config``
reply, and then loops *request → lease → execute → stream*. Each leased
draw runs through the stock batch engine (:func:`repro.harness.parallel.
run_many`): the first draw of a leased point warms its pipeline snapshot
once, every later draw forks from it. Completed draws are streamed back
as verbatim journal ``run`` events — the coordinator appends them to
this worker's shard journal — and a :class:`~repro.verify.bundle.
RunFailure` draw turns into a ``failure`` message carrying the failure
record (its repro bundle stays on the worker's filesystem at the path
the record names).

A heartbeat task keeps the lease alive during long draws; if the worker
dies instead, the coordinator re-leases its unfinished indices and the
deterministic seed stream makes any overlap a harmless bit-identical
duplicate.

Transport hardening (:mod:`repro.fleet.security`): when a shared
secret is configured the worker answers the coordinator's HMAC
challenge — and *requires* one, so a worker holding a secret refuses to
take work from an unauthenticated (impostor) coordinator. TLS wraps
the connection when ``tls_ca``/``tls_cert`` are given. Transient
connection failures reconnect under exponential backoff with
deterministic jitter; the retry budget refills whenever a session makes
progress, so long campaigns survive arbitrarily many transient drops
while a permanently dead coordinator is given up on promptly.
"""

import asyncio
import hashlib
import os
import socket

from repro.campaign.executor import draw_metadata
from repro.campaign.journal import run_event
from repro.campaign.plan import CampaignSpec, GridPoint, extract_metrics
from repro.campaign.scheduler import failure_record
from repro.fleet.protocol import ProtocolError, read_message, send_message
from repro.fleet.security import (
    client_ssl_context,
    coordinator_proof,
    macs_equal,
    new_nonce,
    worker_proof,
)

DEFAULT_RECONNECT_ATTEMPTS = 5
DEFAULT_RECONNECT_DELAY = 0.5
DEFAULT_RECONNECT_MAX_DELAY = 8.0


class WorkerError(RuntimeError):
    """The coordinator rejected this worker (bad name, version skew...)."""


def default_worker_name():
    host = "".join(
        c if c.isalnum() or c in "._-" else "-" for c in socket.gethostname()
    ) or "worker"
    return f"{host}-{os.getpid()}"


class FleetWorker:
    """One worker process's connection/execution loop."""

    def __init__(self, host, port, name=None, cache=True, cache_dir=None,
                 snapshots=True, snapshot_dir=None,
                 reconnect_attempts=DEFAULT_RECONNECT_ATTEMPTS,
                 reconnect_delay=DEFAULT_RECONNECT_DELAY,
                 reconnect_max_delay=DEFAULT_RECONNECT_MAX_DELAY,
                 secret=None, tls_ca=None, tls_cert=None, tls_key=None,
                 throttle=0.0, batch_lanes=None):
        self.host = host
        self.port = int(port)
        self.name = name or default_worker_name()
        self.cache = bool(cache)
        self.cache_dir = cache_dir
        self.snapshots = bool(snapshots)
        self.snapshot_dir = snapshot_dir
        self.reconnect_attempts = int(reconnect_attempts)
        self.reconnect_delay = float(reconnect_delay)
        self.reconnect_max_delay = float(reconnect_max_delay)
        self.secret = (
            secret.encode() if isinstance(secret, str) else secret
        )
        self._ssl = client_ssl_context(tls_ca, tls_cert, tls_key)
        #: artificial per-draw delay in seconds — a straggler dial for
        #: work-stealing tests and load experiments, not production use
        self.throttle = float(throttle)
        from repro.snapshot.batch import resolve_batch_lanes

        #: ≥ 2 vectorizes a lease's draws through the lockstep batch
        #: engine, that many lanes per engine call (default:
        #: $REPRO_BATCH_LANES, else per-draw scalar execution)
        self.batch_lanes = resolve_batch_lanes(batch_lanes)
        self.spec = None
        self._store = None
        self._baseline_memo = (None, None)  # (spec key, result) w/o cache
        self.draws_done = 0

    # ------------------------------------------------------------------
    async def run(self):
        """Serve until the coordinator says shutdown. Returns exit code.

        Connection errors reconnect under exponential backoff with a
        bounded retry budget; the budget resets whenever a session makes
        progress (a lease executed), so a long campaign survives any
        number of transient drops but a dead coordinator is given up on
        promptly.
        """
        attempts = 0
        while True:
            draws_before = self.draws_done
            try:
                await self._session()
                return 0
            except WorkerError as exc:
                print(f"[fleet-worker {self.name}] rejected: {exc}",
                      flush=True)
                return 2
            except (ConnectionError, ProtocolError, OSError) as exc:
                if self.draws_done > draws_before:
                    attempts = 0
                attempts += 1
                if attempts > self.reconnect_attempts:
                    print(
                        f"[fleet-worker {self.name}] giving up after "
                        f"{attempts} failed connections: {exc}",
                        flush=True,
                    )
                    return 1
                await asyncio.sleep(self.backoff_delay(attempts))

    def backoff_delay(self, attempt):
        """Reconnect delay before retry ``attempt`` (1-based).

        Exponential from :attr:`reconnect_delay`, capped at
        :attr:`reconnect_max_delay`, scaled by a *deterministic* jitter
        in [0.5, 1.0) derived from the worker name and attempt number —
        a fleet of workers losing one coordinator desynchronizes its
        reconnect stampede without introducing nondeterminism a test
        (or a debugging session) cannot reproduce.
        """
        attempt = max(1, int(attempt))
        delay = min(
            self.reconnect_max_delay,
            self.reconnect_delay * (2 ** (attempt - 1)),
        )
        digest = hashlib.sha256(
            f"{self.name}:{attempt}".encode()
        ).digest()
        jitter = 0.5 + (int.from_bytes(digest[:8], "big") / 2 ** 64) * 0.5
        return delay * jitter

    async def _session(self):
        from repro.harness.parallel import model_version

        reader, writer = await asyncio.open_connection(
            self.host, self.port, ssl=self._ssl
        )
        lock = asyncio.Lock()
        heartbeat_task = None
        try:
            version = model_version()
            client_nonce = new_nonce()
            await send_message(writer, {
                "type": "hello",
                "worker": self.name,
                "model_version": version,
                "nonce": client_nonce,
            }, lock)
            config = await read_message(reader)
            if config.get("type") == "challenge":
                config = await self._answer_challenge(
                    config, client_nonce, version, reader, writer, lock
                )
            elif self.secret is not None:
                # a worker holding a secret refuses an unauthenticated
                # coordinator: it could be an impostor stealing work
                raise WorkerError(
                    "coordinator did not authenticate: it sent no "
                    "challenge, but this worker has a shared secret "
                    "configured"
                )
            if config.get("type") == "error":
                raise self._error_reply(config)
            if config.get("type") != "config":
                raise ProtocolError(
                    f"expected config, got {config.get('type')!r}"
                )
            self._configure(config)
            heartbeat_task = asyncio.create_task(
                self._heartbeat(writer, lock, config.get("heartbeat", 2.0))
            )
            while True:
                await send_message(writer, {"type": "request"}, lock)
                reply = await read_message(reader)
                kind = reply.get("type")
                if kind == "lease":
                    await self._execute_lease(reply, writer, lock)
                elif kind == "wait":
                    await asyncio.sleep(float(reply.get("delay", 0.5)))
                elif kind == "shutdown":
                    return
                elif kind == "error":
                    raise self._error_reply(reply)
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _error_reply(reply):
        """The exception an ``error`` frame deserves.

        A ``protocol`` error means the stream between us got corrupted
        in transit and the coordinator dropped *this connection* — that
        is a transient transport fault worth a reconnect, not a verdict
        on this worker's credentials. Every other code (``auth-failed``,
        ``version-skew``, ``bad-name``...) is a real rejection:
        reconnecting would only be rejected again.
        """
        reason = reply.get("reason", "rejected")
        if reply.get("code") == "protocol":
            return ProtocolError(reason)
        return WorkerError(reason)

    async def _answer_challenge(self, challenge, client_nonce, version,
                                reader, writer, lock):
        """Verify the coordinator's proof, answer with ours; the reply.

        Mutual authentication: the challenge's ``proof`` must be the
        HMAC of both nonces under the shared secret, or this is not the
        coordinator the secret was provisioned for — refuse before
        revealing anything further.
        """
        if self.secret is None:
            raise WorkerError(
                "coordinator requires a shared secret; pass --secret, "
                "--secret-file, or set $REPRO_FLEET_SECRET"
            )
        server_nonce = str(challenge.get("nonce") or "")
        expected = coordinator_proof(
            self.secret, client_nonce, server_nonce
        )
        if not macs_equal(expected, challenge.get("proof")):
            raise WorkerError(
                "coordinator failed authentication: its challenge proof "
                "does not match the shared secret (impostor, or "
                "mismatched secrets)"
            )
        await send_message(writer, {
            "type": "auth",
            "mac": worker_proof(
                self.secret, client_nonce, server_nonce,
                self.name, version,
            ),
        }, lock)
        return await read_message(reader)

    async def _heartbeat(self, writer, lock, interval):
        interval = max(0.1, float(interval))
        while True:
            await asyncio.sleep(interval)
            await send_message(writer, {"type": "heartbeat"}, lock)

    # ------------------------------------------------------------------
    def _configure(self, config):
        from repro.harness.parallel import ResultCache

        self.spec = CampaignSpec.from_dict(config["spec"])
        self.spec.repro_dir = config.get("repro_dir")
        if self.snapshots:
            snapshot_dir = self.snapshot_dir or config.get("snapshot_dir")
            if snapshot_dir:
                self.spec.snapshot_dir = str(snapshot_dir)
        if self.cache and config.get("cache", True):
            self._store = ResultCache(
                self.cache_dir or config.get("cache_dir")
            )
        else:
            self._store = None

    async def _execute_lease(self, lease, writer, lock):
        point = GridPoint(
            lease["point"]["benchmark"],
            lease["point"]["scheme"],
            lease["point"]["vdd"],
        )
        lease_id = lease["lease"]
        indices = list(lease["indices"])
        # lease batching: chunk the leased indices so draws sharing this
        # point's warmup snapshot advance together through the lockstep
        # engine; throttled workers stay per-draw (the dial is a
        # straggler simulation, coarser chunks would distort it)
        lanes = self.batch_lanes if self.throttle <= 0 else 1
        step = max(1, lanes)
        for at in range(0, len(indices), step):
            chunk = indices[at:at + step]
            if self.throttle > 0:
                await asyncio.sleep(self.throttle)
            outcomes = await asyncio.to_thread(
                self._run_draws, point, chunk
            )
            for index, (kind, payload) in zip(chunk, outcomes):
                if kind == "entry":
                    self.draws_done += 1
                    await send_message(writer, {
                        "type": "entry", "lease": lease_id, "entry": payload,
                    }, lock)
                else:
                    await send_message(writer, {
                        "type": "failure", "lease": lease_id,
                        "point": point.id, "index": index,
                        "failure": payload,
                    }, lock)
                    return
        await send_message(
            writer, {"type": "lease_done", "lease": lease_id}, lock
        )

    def _run_draws(self, point, indices):
        """Execute paired draws synchronously (worker thread).

        Returns one ``("entry", run-event-dict)`` or ``("failure",
        failure-record-dict)`` per index, in order; processing past a
        failure is the caller's concern (it abandons the lease). The run
        events are constructed with the exact helper the single-pool
        journal hook uses, so the bytes the coordinator appends are the
        bytes ``campaign run`` would have written — with ``batch_lanes``
        the scheme runs advance in engine lockstep, bit-identically.
        """
        from repro.harness.parallel import run_many

        pairs = [self.spec.pair_specs(point, i) for i in indices]
        store = self._store if self._store is not None else False
        results = run_many(
            [run_spec for run_spec, _base in pairs], jobs=1, cache=store,
            batch_lanes=self.batch_lanes if len(indices) > 1 else 0,
        )
        outcomes = []
        for index, (run_spec, base_spec), result in zip(
            indices, pairs, results
        ):
            baseline = self._run_baseline(base_spec, store)
            failed = next(
                (c for c in (result, baseline)
                 if getattr(c, "is_failure", False)),
                None,
            )
            if failed is not None:
                outcomes.append(("failure", failure_record(failed)))
                continue
            values, counts = extract_metrics(result, baseline)
            telemetry, snapshot_key = draw_metadata(run_spec, result)
            outcomes.append(("entry", run_event(
                point.id, index, self.spec.seed_for(point, index),
                values, counts, telemetry, snapshot_key,
            )))
        return outcomes

    def _run_baseline(self, base_spec, store):
        """The paired fault-free run, memoized per point without a cache.

        In fault draw mode every draw of a point shares one baseline
        spec; with the result cache on, :func:`run_many` already makes
        repeats free, and without it a one-slot memo avoids re-running a
        deterministic simulation once per draw.
        """
        from repro.harness.parallel import run_many

        key = base_spec.key()
        if self._store is None and self._baseline_memo[0] == key:
            return self._baseline_memo[1]
        baseline = run_many([base_spec], jobs=1, cache=store)[0]
        if self._store is None and not getattr(baseline, "is_failure", False):
            self._baseline_memo = (key, baseline)
        return baseline


def run_worker(host, port, **kwargs):
    """Blocking entry point: run one worker until shutdown or error."""
    worker = FleetWorker(host, port, **kwargs)
    return asyncio.run(worker.run())
