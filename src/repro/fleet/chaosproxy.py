"""Chaos proxy: a deterministic fault-injecting TCP relay for the fleet.

Sits between workers and a coordinator and injects the failures a real
network delivers eventually — added latency, duplicated and reordered
deliveries, corrupted payloads, connections cut mid-frame, short
partitions refusing new connections — so tests (and the CI chaos smoke
job) can prove the fleet's exactly-once accounting end to end: a
campaign run through the proxy must produce a journal and report
**byte-identical** to an undisturbed single-pool run.

Design points:

* **Frame-aware.** The relay parses the protocol's 4-byte length
  prefix and forwards whole frames. Duplicating or reordering raw byte
  chunks would corrupt the framing itself and only ever test the
  "undecodable stream" path; operating on frames lets a duplicated
  ``entry`` or a reordered ``request`` actually reach the protocol
  layer, where the exactly-once gate has to do real work.
* **Deterministic.** Every decision comes from a
  :class:`random.Random` seeded ``"{seed}:{connection}:{direction}"``
  and a per-frame roll, so a failing chaos test replays exactly from
  its seed. (Wall-clock interleaving still varies; the *invariant* —
  byte-identical output — must hold for every interleaving.)
* **Bounded.** Destructive events (cuts, corruption, partitions) stop
  after :attr:`ChaosConfig.max_events`, after which the proxy turns
  transparent — a chaos campaign always terminates, provided worker
  reconnect budgets exceed the budgeted cuts.
* **Safe corruption.** A corrupted frame gets its first payload byte
  forced to ``0xFF`` — invalid UTF-8, guaranteed to die in the peer's
  JSON decode as a :class:`~repro.fleet.protocol.ProtocolError`. A
  random bit flip could instead yield *valid* JSON with a perturbed
  metric value and silently corrupt the science; the proxy must only
  ever inject faults the protocol is allowed to survive.
* **Plain TCP only.** The proxy relays the unencrypted protocol; under
  TLS a relay only sees ciphertext (any tampering is a handshake/MAC
  failure — that path is covered by the TLS tests instead).

The first :attr:`ChaosConfig.handshake_grace` frames of each direction
pass untouched so every connection can complete hello/config before
the weather starts; cuts and partitions still exercise reconnect
handshakes end to end.
"""

import asyncio
import random
import time
from collections import Counter
from dataclasses import dataclass

_HEADER = 4


@dataclass
class ChaosConfig:
    """Fault mix for a :class:`ChaosProxy` (probabilities per frame)."""

    seed: int = 0
    #: max injected per-frame delay in seconds (rolled per frame)
    latency: float = 0.0
    latency_p: float = 0.0
    #: forward a frame twice (exactly-once gate must drop the copy)
    dup_p: float = 0.0
    #: deliver a frame after its successor (bounded hold, see below)
    reorder_p: float = 0.0
    #: how long a reordered frame may wait for a successor to overtake
    reorder_hold: float = 0.05
    #: force the first payload byte to 0xFF (peer must drop connection)
    corrupt_p: float = 0.0
    #: abort the connection mid-frame (header + half the payload)
    cut_p: float = 0.0
    #: abort the connection and refuse new ones for ``partition_s``
    partition_p: float = 0.0
    partition_s: float = 0.3
    #: destructive-event budget (cut + corrupt + partition); the proxy
    #: is transparent once spent, so chaos campaigns always finish
    max_events: int = 6
    #: per-direction frames forwarded untouched at connection start
    handshake_grace: int = 3


class ChaosProxy:
    """Deterministic fault-injecting relay in front of a coordinator."""

    def __init__(self, target_host, target_port, config=None,
                 host="127.0.0.1", port=0):
        self.target_host = target_host
        self.target_port = int(target_port)
        self.config = config or ChaosConfig()
        self.host = host
        self.port = int(port)
        #: injection counts by kind — tests assert the weather actually
        #: happened (a chaos run that injected nothing proves nothing)
        self.injected = Counter()
        self._destructive = 0
        self._partition_until = 0.0
        self._conn_seq = 0
        self._server = None

    async def start(self):
        """Bind and serve; resolves :attr:`port` when it was ephemeral."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _charge(self, kind):
        """Spend destructive budget on ``kind``; False once exhausted."""
        if self._destructive >= self.config.max_events:
            return False
        self._destructive += 1
        self.injected[kind] += 1
        return True

    @staticmethod
    def _abort(writers):
        for writer in writers:
            try:
                writer.transport.abort()
            except (AttributeError, ConnectionError, OSError):
                try:
                    writer.close()
                except (ConnectionError, OSError):
                    pass

    async def _handle(self, client_reader, client_writer):
        if time.monotonic() < self._partition_until:
            # partitioned: refuse service (refusals are free — the
            # budget was spent when the partition was declared)
            self.injected["partition_refused"] += 1
            self._abort([client_writer])
            return
        self._conn_seq += 1
        conn = self._conn_seq
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            self._abort([client_writer])
            return
        writers = [client_writer, upstream_writer]
        await asyncio.gather(
            self._relay(client_reader, upstream_writer, conn, "up",
                        writers),
            self._relay(upstream_reader, client_writer, conn, "down",
                        writers),
        )

    async def _read_frame(self, reader):
        header = await reader.readexactly(_HEADER)
        length = int.from_bytes(header, "big")
        payload = await reader.readexactly(length)
        return header, payload

    async def _relay(self, reader, writer, conn, direction, writers):
        """Relay one direction frame-by-frame, rolling the fault dice."""
        config = self.config
        rng = random.Random(f"{config.seed}:{conn}:{direction}")
        frames = 0
        try:
            while True:
                header, payload = await self._read_frame(reader)
                frames += 1
                if frames <= config.handshake_grace:
                    writer.write(header + payload)
                    await writer.drain()
                    continue
                if config.latency_p and rng.random() < config.latency_p:
                    self.injected["latency"] += 1
                    await asyncio.sleep(rng.uniform(0.0, config.latency))
                # at most one structural event per frame, rolled off a
                # single uniform draw so the mix is exactly the config;
                # a destructive roll after the budget is spent (or any
                # miss) falls through to a transparent forward
                roll = rng.random()
                if roll < config.partition_p and self._charge("partition"):
                    self._partition_until = (
                        time.monotonic() + config.partition_s
                    )
                    self._abort(writers)
                    return
                roll -= config.partition_p
                if 0 <= roll < config.cut_p and self._charge("cut"):
                    writer.write(header + payload[:len(payload) // 2])
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    self._abort(writers)
                    return
                roll -= config.cut_p
                if 0 <= roll < config.corrupt_p and self._charge("corrupt"):
                    payload = b"\xff" + payload[1:]
                    writer.write(header + payload)
                    await writer.drain()
                    continue
                roll -= config.corrupt_p
                if 0 <= roll < config.dup_p:
                    self.injected["dup"] += 1
                    writer.write(header + payload)
                    writer.write(header + payload)
                    await writer.drain()
                    continue
                roll -= config.dup_p
                if 0 <= roll < config.reorder_p:
                    # hold this frame until a successor overtakes it —
                    # but only briefly: an indefinitely held frame could
                    # stall a strict request/reply exchange forever
                    try:
                        successor = await asyncio.wait_for(
                            self._read_frame(reader),
                            timeout=config.reorder_hold,
                        )
                        self.injected["reorder"] += 1
                        writer.write(successor[0] + successor[1])
                        frames += 1
                    except asyncio.TimeoutError:
                        self.injected["reorder_lone"] += 1
                    writer.write(header + payload)
                    await writer.drain()
                    continue
                writer.write(header + payload)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass


async def run_proxy(target_host, target_port, config=None,
                    host="127.0.0.1", port=0, ready=None):
    """Serve a chaos proxy forever (until cancelled) — test scaffolding."""
    proxy = ChaosProxy(target_host, target_port, config=config,
                       host=host, port=port)
    await proxy.start()
    if ready is not None:
        ready.set_result(proxy)
    try:
        await asyncio.Event().wait()
    finally:
        await proxy.stop()
