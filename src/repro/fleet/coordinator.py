"""Fleet coordinator: lease campaign draws to workers, own the stopping.

The coordinator is the only process that decides anything statistical.
It expands the :class:`~repro.campaign.plan.CampaignSpec` grid into
:class:`~repro.campaign.scheduler.PointScheduler` objects — the same
batch iterator the single-pool executor drives — and leases each
scheduler's pending draw indices to whichever worker asks. Workers only
execute: they stream back one journal ``run`` event per completed draw,
and the coordinator appends it to that worker's shard journal, feeds the
scheduler, and fires the stopping rule at exactly the batch boundaries a
single-pool run would. A completed fleet campaign therefore merges
(:mod:`repro.fleet.merge`) into a journal — and report — byte-identical
to ``campaign run`` of the same spec.

Robustness invariants:

* **Exactly-once accounting** — a draw index enters a point's
  accumulator at most once (scheduler gate); re-executed draws after a
  lease reassignment are deterministic duplicates and are dropped.
* **Worker death** — a closed connection or an expired heartbeat
  revokes the worker's leases; the unrecorded indices are re-leased.
  Entries already journaled from the dead worker are kept.
* **Coordinator death** — every accepted entry was already fsynced to a
  shard journal; a restarted coordinator replays shards (+ the lease
  ledger for lease numbering) and continues, identical to single-pool
  ``campaign resume``.
"""

import asyncio
import json
import os
import time

from repro.campaign.journal import (
    Journal,
    read_manifest,
    write_manifest,
)
from repro.campaign.plan import CampaignSpec
from repro.campaign.scheduler import PointScheduler
from repro.campaign.status import status_from_state
from repro.fleet.ledger import LeaseLedger
from repro.fleet.merge import (
    COORDINATOR_SHARD,
    merge_journals,
    replay_shards,
    shard_dir,
    shard_path,
)
from repro.fleet.protocol import ProtocolError, read_message, send_message

ENDPOINT_NAME = "coordinator.json"

#: shard names come off the wire; anything fancier than this is either a
#: bug or an attempted path escape, and is rejected at hello time
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_worker_name(name):
    return (
        isinstance(name, str)
        and 0 < len(name) <= 64
        and not name.startswith(".")
        and not name.startswith("_")
        and set(name) <= _NAME_OK
    )


def read_endpoint(directory):
    """The ``{host, port, pid}`` a serving coordinator advertised."""
    with open(os.path.join(str(directory), ENDPOINT_NAME)) as fh:
        return json.load(fh)


class FleetError(RuntimeError):
    """The fleet service could not start or proceed."""


class FleetCoordinator:
    """One campaign's coordinator service (asyncio TCP)."""

    def __init__(self, directory, spec=None, host="127.0.0.1", port=0,
                 heartbeat_timeout=15.0, wait_delay=0.5, linger=1.0,
                 resume=False, cache=True, cache_dir=None, snapshots=True,
                 snapshot_dir=None):
        self.directory = str(directory)
        self.host = host
        self.port = port  # 0 = ephemeral; rebound to the real port on serve
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wait_delay = float(wait_delay)
        self.linger = float(linger)
        self.resume = resume
        self.cache = bool(cache)
        self.cache_dir = cache_dir
        self.snapshots = bool(snapshots)
        self.snapshot_dir = snapshot_dir
        self._given_spec = spec
        #: set once the server socket is bound and the endpoint file is
        #: written — `fleet run` awaits it before spawning workers
        self.ready = asyncio.Event()
        self._done = asyncio.Event()
        self._finished = False
        self._report = None
        self._schedulers = {}  # point id -> PointScheduler (open points)
        self._points = {}  # point id -> GridPoint
        self._completed = {}  # point id -> replayed/created point event
        self._order = []  # point ids in grid order
        self._leases = {}  # lease id -> {point, indices(set), worker}
        self._point_lease = {}  # point id -> active lease id
        self._next_lease = 1
        self._worker_last = {}  # worker -> monotonic last-seen
        self._worker_conn = {}  # worker -> owning connection id
        self._worker_point = {}  # worker -> last leased point (locality)
        self._writers = {}  # worker -> writer (proactive shutdown)
        self._shards = {}  # worker -> shard Journal
        self._conn_seq = 0

    # ------------------------------------------------------------------
    # state (re)construction
    # ------------------------------------------------------------------
    def _prepare(self):
        spec = self._given_spec
        if spec is not None:
            spec.validate()
            write_manifest(self.directory, spec)
        manifest = read_manifest(self.directory)
        self.spec = CampaignSpec.from_dict(manifest["spec"])
        self.model_version = manifest["model_version"]
        self.repro_dir = os.path.join(self.directory, "bundles")
        if self.snapshots:
            from repro.harness.parallel import default_cache_root

            default_root = (
                (self.cache_dir or default_cache_root()) if self.cache
                else os.path.join(self.directory, "snapshots")
            )
            self.worker_snapshot_dir = str(
                self.snapshot_dir or os.environ.get("REPRO_SNAPSHOT_DIR")
                or default_root
            )
        else:
            self.worker_snapshot_dir = None

        base_journal = Journal(self.directory)
        if self.resume:
            base_journal.repair()
            for path in self._existing_shards():
                Journal(os.path.dirname(path),
                        os.path.basename(path)).repair()
        base = base_journal.replay()
        state = replay_shards(self.directory, base=base)
        if state.n_events and not self.resume:
            raise FleetError(
                f"{self.directory} already has journaled progress; "
                "pass resume (CLI: --resume) to continue it"
            )
        self._ledger = LeaseLedger(self.directory)
        self._next_lease = self._ledger.replay()["max_lease"] + 1

        self._completed = dict(state.completed)
        for point in self.spec.points():
            self._order.append(point.id)
            self._points[point.id] = point
            if point.id in self._completed:
                continue
            scheduler = PointScheduler(self.spec, point)
            self._replay_point(scheduler, state.runs.get(point.id, []))
            self._schedulers[point.id] = scheduler
        self._coord_journal = self._shard_journal(COORDINATOR_SHARD)
        if state.done:
            self._finished = True
        return state

    def _existing_shards(self):
        from repro.fleet.merge import list_shards

        return list_shards(self.directory)

    @staticmethod
    def _replay_point(scheduler, records):
        """Feed journaled draws back into a fresh scheduler.

        Full batches replay and close; a partially-journaled batch stays
        in flight with its missing indices pending (they re-lease).
        """
        by_index = {r["index"]: r for r in records}
        while not scheduler.done:
            if scheduler.next_batch() is None:
                break
            missing = [i for i in scheduler.pending() if i not in by_index]
            for i in list(scheduler.pending()):
                record = by_index.get(i)
                if record is not None:
                    scheduler.record(i, record["metrics"], record["counts"])
            if missing:
                break

    def _shard_journal(self, name):
        journal = self._shards.get(name)
        if journal is None:
            journal = Journal(shard_dir(self.directory), f"{name}.jsonl")
            self._shards[name] = journal
        return journal

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def serve(self):
        """Run the campaign to completion; returns the report dict.

        Binds, writes ``coordinator.json`` (host/port/pid — how workers
        started with ``--dir`` find the socket), serves until every grid
        point's stopping rule fired, then merges the shard journals and
        writes the canonical report. Lingers briefly so connected
        workers hear ``shutdown`` instead of a reset connection.
        """
        try:
            self._prepare()
        except BaseException:
            # a startup failure must still release fleet_run's barrier —
            # it awaits `ready` before checking whether serve() died
            self.ready.set()
            raise
        if self._finished:
            # resuming an already-complete campaign: just (re)merge
            self._finalize_outputs()
            self.ready.set()
            return self._report
        server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._write_endpoint()
        reaper = asyncio.create_task(self._reap_expired())
        self.ready.set()
        try:
            # every point may already be journaled complete (resume of a
            # campaign killed between last entry and its point event)
            self._sweep_finished()
            await self._done.wait()
            self._finalize_outputs()
            await asyncio.sleep(self.linger)
        finally:
            reaper.cancel()
            server.close()
            await server.wait_closed()
            for journal in self._shards.values():
                journal.close()
            self._ledger.close()
        return self._report

    def _write_endpoint(self):
        path = os.path.join(self.directory, ENDPOINT_NAME)
        os.makedirs(self.directory, exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as fh:
            json.dump(
                {"host": self.host, "port": self.port, "pid": os.getpid()},
                fh, sort_keys=True,
            )
            fh.write("\n")
        os.replace(tmp, path)

    def _finalize_outputs(self):
        from repro.campaign.report import write_reports

        merge_journals(self.directory)
        self._report = write_reports(self.directory)

    async def _reap_expired(self):
        interval = max(0.05, self.heartbeat_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for name, last in list(self._worker_last.items()):
                if now - last > self.heartbeat_timeout:
                    self._drop_worker(name, "heartbeat timeout")

    def _drop_worker(self, name, reason):
        self._revoke_leases(name, reason)
        self._worker_last.pop(name, None)
        self._worker_conn.pop(name, None)
        self._writers.pop(name, None)

    def _revoke_leases(self, name, reason):
        """Return ``name``'s leased indices to their schedulers' pools."""
        for lease_id, lease in list(self._leases.items()):
            if lease["worker"] == name:
                self._ledger.revoked(lease_id, reason)
                del self._leases[lease_id]
                self._point_lease.pop(lease["point"], None)

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        self._conn_seq += 1
        conn_id = self._conn_seq
        name = None
        try:
            while True:
                message = await read_message(reader)
                kind = message.get("type")
                if name is not None:
                    self._worker_last[name] = time.monotonic()
                if kind == "hello":
                    name = await self._handle_hello(message, writer, conn_id)
                    if name is None:
                        return
                elif kind == "status":
                    await send_message(
                        writer, {"type": "status", "status": self.status()}
                    )
                elif kind == "heartbeat":
                    pass
                elif name is None:
                    await send_message(writer, {
                        "type": "error",
                        "reason": f"{kind!r} before hello",
                    })
                    return
                elif kind == "request":
                    await send_message(writer, self._grant(name))
                elif kind == "entry":
                    self._handle_entry(name, message)
                elif kind == "failure":
                    self._handle_failure(message)
                elif kind == "lease_done":
                    self._release_lease(message.get("lease"), completed=True)
        except (ConnectionResetError, ProtocolError, OSError):
            pass
        finally:
            if name is not None and self._worker_conn.get(name) == conn_id:
                self._drop_worker(name, "disconnected")
            writer.close()

    async def _handle_hello(self, message, writer, conn_id):
        name = message.get("worker")
        if not valid_worker_name(name):
            await send_message(writer, {
                "type": "error",
                "reason": f"invalid worker name {name!r}",
            })
            return None
        version = message.get("model_version")
        if version != self.model_version:
            await send_message(writer, {
                "type": "error",
                "reason": (
                    f"model version mismatch: campaign is "
                    f"{self.model_version}, worker runs {version} — "
                    "deploy matching sources before joining the fleet"
                ),
            })
            return None
        # a worker that reconnects holds no lease state any more; return
        # leases from its previous connection to the pool right away
        self._revoke_leases(name, "reconnected")
        self._worker_last[name] = time.monotonic()
        self._worker_conn[name] = conn_id
        self._writers[name] = writer
        await send_message(writer, {
            "type": "config",
            "spec": self.spec.to_dict(),
            "directory": self.directory,
            "repro_dir": self.repro_dir,
            "snapshot_dir": self.worker_snapshot_dir,
            "cache": self.cache,
            "cache_dir": self.cache_dir,
            "heartbeat": max(0.1, self.heartbeat_timeout / 3.0),
        })
        return name

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def _grant(self, worker):
        """A lease / wait / shutdown reply for a work request."""
        if self._finished:
            return {"type": "shutdown"}
        preferred = self._worker_point.get(worker)
        order = self._order
        if preferred in self._schedulers:
            order = [preferred] + [p for p in order if p != preferred]
        for point_id in order:
            scheduler = self._schedulers.get(point_id)
            if (
                scheduler is None
                or scheduler.done
                or point_id in self._point_lease
            ):
                continue
            if scheduler.next_batch() is None:
                self._finalize_point(point_id)
                if self._finished:
                    return {"type": "shutdown"}
                continue
            indices = scheduler.pending()
            lease_id = self._next_lease
            self._next_lease += 1
            self._leases[lease_id] = {
                "point": point_id, "indices": set(indices), "worker": worker,
            }
            self._point_lease[point_id] = lease_id
            self._worker_point[worker] = point_id
            self._ledger.granted(lease_id, point_id, indices, worker)
            point = self._points[point_id]
            return {
                "type": "lease",
                "lease": lease_id,
                "point": {
                    "benchmark": point.benchmark,
                    "scheme": point.scheme.name,
                    "vdd": point.vdd,
                },
                "indices": indices,
            }
        return {"type": "wait", "delay": self.wait_delay}

    def _release_lease(self, lease_id, completed, reason="released"):
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return
        self._point_lease.pop(lease["point"], None)
        if completed:
            self._ledger.completed(lease_id)
        else:
            self._ledger.revoked(lease_id, reason)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _handle_entry(self, worker, message):
        entry = message.get("entry") or {}
        point_id = entry.get("point")
        scheduler = self._schedulers.get(point_id)
        if scheduler is None:
            return  # stale entry for an already-finalized point
        accepted = scheduler.record(
            entry["index"], entry["metrics"], entry["counts"]
        )
        if not accepted:
            return  # duplicate from a revoked lease: exactly-once gate
        self._shard_journal(worker).append(entry)
        lease_id = self._point_lease.get(point_id)
        if lease_id is not None:
            lease = self._leases[lease_id]
            lease["indices"].discard(entry["index"])
            if not lease["indices"]:
                self._release_lease(lease_id, completed=True)
        if scheduler.next_batch() is None and scheduler.done:
            self._finalize_point(point_id)

    def _handle_failure(self, message):
        point_id = message.get("point")
        scheduler = self._schedulers.get(point_id)
        if scheduler is None or scheduler.done:
            return
        scheduler.fail(message.get("failure") or {})
        lease_id = self._point_lease.get(point_id)
        if lease_id is not None:
            self._release_lease(lease_id, completed=False,
                                reason="point failed")
        self._finalize_point(point_id)

    def _finalize_point(self, point_id):
        scheduler = self._schedulers.get(point_id)
        if scheduler is None or point_id in self._completed:
            return
        event = scheduler.completion_event()
        self._coord_journal.append(event)
        self._completed[point_id] = event
        del self._schedulers[point_id]
        lease_id = self._point_lease.get(point_id)
        if lease_id is not None:
            self._release_lease(lease_id, completed=False,
                                reason="point finalized")
        if not self._schedulers:
            self._finish()

    def _sweep_finished(self):
        """Finalize points whose stopping rule already fired on replay."""
        for point_id in list(self._schedulers):
            scheduler = self._schedulers[point_id]
            if scheduler.next_batch() is None and scheduler.done:
                self._finalize_point(point_id)
        if not self._schedulers and not self._finished:
            self._finish()

    def _finish(self):
        if self._finished:
            return
        self._finished = True
        self._coord_journal.append({"event": "done"})
        self._done.set()
        # proactively shut connected workers down; they may be deep in a
        # wait backoff and would otherwise find a closed socket
        for name, writer in list(self._writers.items()):
            try:
                from repro.fleet.protocol import encode

                writer.write(encode({"type": "shutdown"}))
            except (ConnectionResetError, OSError):
                pass

    # ------------------------------------------------------------------
    def status(self):
        """Live status dict (same shape as ``campaign status`` + fleet)."""
        state = replay_shards(
            self.directory, base=Journal(self.directory).replay()
        )
        status = status_from_state(self.spec, state)
        status["complete"] = self._finished
        now = time.monotonic()
        status["workers"] = {
            name: {"last_seen_s": round(now - last, 3)}
            for name, last in sorted(self._worker_last.items())
        }
        status["leases"] = [
            {
                "lease": lease_id,
                "point": lease["point"],
                "worker": lease["worker"],
                "pending": sorted(lease["indices"]),
            }
            for lease_id, lease in sorted(self._leases.items())
        ]
        return status


def serve_fleet(directory, spec=None, **kwargs):
    """Run a coordinator to campaign completion (blocking wrapper)."""
    coordinator = FleetCoordinator(directory, spec=spec, **kwargs)
    return asyncio.run(coordinator.serve())
