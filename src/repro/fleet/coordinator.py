"""Fleet coordinator: lease campaign draws to workers, own the stopping.

The coordinator is the only process that decides anything statistical.
It expands the :class:`~repro.campaign.plan.CampaignSpec` grid into
:class:`~repro.campaign.scheduler.PointScheduler` objects — the same
batch iterator the single-pool executor drives — and leases each
scheduler's pending draw indices to whichever worker asks. Workers only
execute: they stream back one journal ``run`` event per completed draw,
and the coordinator appends it to that worker's shard journal, feeds the
scheduler, and fires the stopping rule at exactly the batch boundaries a
single-pool run would. A completed fleet campaign therefore merges
(:mod:`repro.fleet.merge`) into a journal — and report — byte-identical
to ``campaign run`` of the same spec.

Robustness invariants:

* **Exactly-once accounting** — a draw index enters a point's
  accumulator at most once (scheduler gate); re-executed draws after a
  lease reassignment are deterministic duplicates and are dropped.
* **Worker death** — a closed connection or an expired heartbeat
  revokes the worker's leases; the unrecorded indices are re-leased.
  Entries already journaled from the dead worker are kept.
* **Coordinator death** — every accepted entry was already fsynced to a
  shard journal; a restarted coordinator replays shards (+ the lease
  ledger for lease numbering) and continues, identical to single-pool
  ``campaign resume``.
* **Work-stealing** — when no unleased work remains, an idle worker is
  granted the unfinished tail of the largest outstanding lease (the
  straggler's). The victim keeps executing its shortened lease; any
  overlap is a bit-identical duplicate dropped by the exactly-once
  gate, so a slow worker can delay at most the draw it is currently
  running, never the campaign.
* **Untrusted networks** — with a shared secret configured, every
  connection must pass an HMAC-SHA256 challenge/response before it
  sees the spec or a lease (:mod:`repro.fleet.security`); TLS wraps
  the stream when a certificate is configured. Rejected peers get a
  structured ``error`` frame and bump an audit counter; a hostile or
  corrupt frame drops only its own connection, never the serve loop.
"""

import asyncio
import json
import os
import sys
import time

from repro.campaign.journal import (
    Journal,
    read_manifest,
    write_manifest,
)
from repro.campaign.plan import CampaignSpec
from repro.campaign.scheduler import PointScheduler
from repro.campaign.status import status_from_state
from repro.fleet.ledger import LeaseLedger
from repro.fleet.merge import (
    COORDINATOR_SHARD,
    merge_journals,
    replay_shards,
    shard_dir,
    shard_path,
)
from repro.fleet.protocol import ProtocolError, read_message, send_message
from repro.fleet.security import (
    coordinator_proof,
    macs_equal,
    new_nonce,
    server_ssl_context,
    worker_proof,
)

ENDPOINT_NAME = "coordinator.json"

#: shard names come off the wire; anything fancier than this is either a
#: bug or an attempted path escape, and is rejected at hello time
_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_worker_name(name):
    return (
        isinstance(name, str)
        and 0 < len(name) <= 64
        and not name.startswith(".")
        and not name.startswith("_")
        and set(name) <= _NAME_OK
    )


def read_endpoint(directory):
    """The ``{host, port, pid}`` a serving coordinator advertised."""
    with open(os.path.join(str(directory), ENDPOINT_NAME)) as fh:
        return json.load(fh)


class FleetError(RuntimeError):
    """The fleet service could not start or proceed."""


class FleetCoordinator:
    """One campaign's coordinator service (asyncio TCP)."""

    def __init__(self, directory, spec=None, host="127.0.0.1", port=0,
                 heartbeat_timeout=15.0, wait_delay=0.5, linger=1.0,
                 resume=False, cache=True, cache_dir=None, snapshots=True,
                 snapshot_dir=None, secret=None, tls_cert=None,
                 tls_key=None, tls_ca=None, steal=True, min_steal=2):
        self.directory = str(directory)
        self.host = host
        self.port = port  # 0 = ephemeral; rebound to the real port on serve
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.wait_delay = float(wait_delay)
        self.linger = float(linger)
        self.resume = resume
        self.cache = bool(cache)
        self.cache_dir = cache_dir
        self.snapshots = bool(snapshots)
        self.snapshot_dir = snapshot_dir
        self.secret = (
            secret.encode() if isinstance(secret, str) else secret
        )
        self.tls_cert = tls_cert
        self.tls_key = tls_key
        self.tls_ca = tls_ca
        self.steal = bool(steal)
        #: a lease tail must have at least this many unfinished indices
        #: before it can be split — 1-index tails are not worth moving
        self.min_steal = max(2, int(min_steal))
        #: rejection/fault counters, surfaced by :meth:`status` and
        #: persisted to the lease ledger on every bump (so ``fleet
        #: status`` on a dead fleet still reports them) — the audit
        #: trail of hostile or broken peers
        self.audit = {
            "auth_failures": 0,
            "rejected_hellos": 0,
            "rejected_versions": 0,
            "protocol_errors": 0,
            "steals": 0,
        }
        self._given_spec = spec
        #: set once the server socket is bound and the endpoint file is
        #: written — `fleet run` awaits it before spawning workers
        self.ready = asyncio.Event()
        self._done = asyncio.Event()
        self._finished = False
        self._report = None
        self._schedulers = {}  # point id -> PointScheduler (open points)
        self._points = {}  # point id -> GridPoint
        self._completed = {}  # point id -> replayed/created point event
        self._order = []  # point ids in grid order
        self._leases = {}  # lease id -> {point, indices(set), worker}
        self._point_leases = {}  # point id -> set of active lease ids
        self._next_lease = 1
        self._worker_last = {}  # worker -> monotonic last-seen
        self._worker_conn = {}  # worker -> owning connection id
        self._worker_point = {}  # worker -> last leased point (locality)
        self._writers = {}  # worker -> writer (proactive shutdown)
        self._shards = {}  # worker -> shard Journal
        self._conn_seq = 0
        self._draining = set()  # workers told to finish up and exit
        self._waiting = {}  # worker -> monotonic since last wait reply

    # ------------------------------------------------------------------
    # state (re)construction
    # ------------------------------------------------------------------
    def _prepare(self):
        spec = self._given_spec
        if spec is not None:
            spec.validate()
            write_manifest(self.directory, spec)
        manifest = read_manifest(self.directory)
        self.spec = CampaignSpec.from_dict(manifest["spec"])
        self.model_version = manifest["model_version"]
        self.repro_dir = os.path.join(self.directory, "bundles")
        if self.snapshots:
            from repro.harness.parallel import default_cache_root

            default_root = (
                (self.cache_dir or default_cache_root()) if self.cache
                else os.path.join(self.directory, "snapshots")
            )
            self.worker_snapshot_dir = str(
                self.snapshot_dir or os.environ.get("REPRO_SNAPSHOT_DIR")
                or default_root
            )
        else:
            self.worker_snapshot_dir = None

        base_journal = Journal(self.directory)
        if self.resume:
            base_journal.repair()
            for path in self._existing_shards():
                Journal(os.path.dirname(path),
                        os.path.basename(path)).repair()
        base = base_journal.replay()
        state = replay_shards(self.directory, base=base)
        if state.n_events and not self.resume:
            raise FleetError(
                f"{self.directory} already has journaled progress; "
                "pass resume (CLI: --resume) to continue it"
            )
        self._ledger = LeaseLedger(self.directory)
        self._next_lease = self._ledger.replay()["max_lease"] + 1

        self._completed = dict(state.completed)
        for point in self.spec.points():
            self._order.append(point.id)
            self._points[point.id] = point
            if point.id in self._completed:
                continue
            scheduler = PointScheduler(self.spec, point)
            self._replay_point(scheduler, state.runs.get(point.id, []))
            self._schedulers[point.id] = scheduler
        self._coord_journal = self._shard_journal(COORDINATOR_SHARD)
        if state.done:
            self._finished = True
        return state

    def _existing_shards(self):
        from repro.fleet.merge import list_shards

        return list_shards(self.directory)

    @staticmethod
    def _replay_point(scheduler, records):
        """Feed journaled draws back into a fresh scheduler.

        Full batches replay and close; a partially-journaled batch stays
        in flight with its missing indices pending (they re-lease).
        """
        by_index = {r["index"]: r for r in records}
        while not scheduler.done:
            if scheduler.next_batch() is None:
                break
            missing = [i for i in scheduler.pending() if i not in by_index]
            for i in list(scheduler.pending()):
                record = by_index.get(i)
                if record is not None:
                    scheduler.record(i, record["metrics"], record["counts"])
            if missing:
                break

    def _shard_journal(self, name):
        journal = self._shards.get(name)
        if journal is None:
            journal = Journal(shard_dir(self.directory), f"{name}.jsonl")
            self._shards[name] = journal
        return journal

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def serve(self):
        """Run the campaign to completion; returns the report dict.

        Binds, writes ``coordinator.json`` (host/port/pid — how workers
        started with ``--dir`` find the socket), serves until every grid
        point's stopping rule fired, then merges the shard journals and
        writes the canonical report. Lingers briefly so connected
        workers hear ``shutdown`` instead of a reset connection.
        """
        try:
            self._prepare()
        except BaseException:
            # a startup failure must still release fleet_run's barrier —
            # it awaits `ready` before checking whether serve() died
            self.ready.set()
            raise
        if self._finished:
            # resuming an already-complete campaign: just (re)merge
            self._finalize_outputs()
            self.ready.set()
            return self._report
        try:
            ssl_context = server_ssl_context(
                self.tls_cert, self.tls_key, self.tls_ca
            )
        except ValueError as exc:
            self.ready.set()
            raise FleetError(str(exc)) from None
        server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port, ssl=ssl_context
        )
        self.port = server.sockets[0].getsockname()[1]
        self._write_endpoint()
        reaper = asyncio.create_task(self._reap_expired())
        self.ready.set()
        try:
            # every point may already be journaled complete (resume of a
            # campaign killed between last entry and its point event)
            self._sweep_finished()
            await self._done.wait()
            self._finalize_outputs()
            await asyncio.sleep(self.linger)
        finally:
            reaper.cancel()
            server.close()
            await server.wait_closed()
            for journal in self._shards.values():
                journal.close()
            self._ledger.close()
        return self._report

    def _write_endpoint(self):
        path = os.path.join(self.directory, ENDPOINT_NAME)
        os.makedirs(self.directory, exist_ok=True)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as fh:
            json.dump(
                {"host": self.host, "port": self.port, "pid": os.getpid()},
                fh, sort_keys=True,
            )
            fh.write("\n")
        os.replace(tmp, path)

    def _finalize_outputs(self):
        from repro.campaign.report import write_reports

        merge_journals(self.directory)
        self._report = write_reports(self.directory)

    async def _reap_expired(self):
        interval = max(0.05, self.heartbeat_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for name, last in list(self._worker_last.items()):
                if now - last > self.heartbeat_timeout:
                    self._drop_worker(name, "heartbeat timeout")

    def _drop_worker(self, name, reason):
        self._revoke_leases(name, reason)
        self._worker_last.pop(name, None)
        self._worker_conn.pop(name, None)
        self._writers.pop(name, None)
        self._waiting.pop(name, None)

    def _revoke_leases(self, name, reason):
        """Return ``name``'s leased indices to their schedulers' pools."""
        for lease_id, lease in list(self._leases.items()):
            if lease["worker"] == name:
                self._ledger.revoked(lease_id, reason)
                del self._leases[lease_id]
                self._unlink_point_lease(lease["point"], lease_id)

    def _unlink_point_lease(self, point_id, lease_id):
        leases = self._point_leases.get(point_id)
        if leases is not None:
            leases.discard(lease_id)
            if not leases:
                del self._point_leases[point_id]

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    @staticmethod
    def _peer_label(writer):
        peername = writer.get_extra_info("peername")
        if isinstance(peername, (tuple, list)) and len(peername) >= 2:
            return f"{peername[0]}:{peername[1]}"
        return str(peername) if peername else "unknown"

    def _bump_audit(self, key):
        """Count one audit event and persist the tallies to the ledger.

        Best-effort persistence: audit must never take the serve loop
        down, and the in-memory counters (served by :meth:`status`)
        stay correct even if the append fails.
        """
        self.audit[key] += 1
        ledger = getattr(self, "_ledger", None)
        if ledger is not None:
            try:
                ledger.audited(self.audit)
            except OSError:
                pass

    async def _reject(self, writer, code, reason):
        """Send a structured rejection (best effort) and audit it."""
        self._bump_audit("rejected_hellos")
        try:
            await send_message(writer, {
                "type": "error", "code": code, "reason": reason,
            })
        except (ConnectionResetError, OSError):
            pass

    async def _handle(self, reader, writer):
        self._conn_seq += 1
        conn_id = self._conn_seq
        peer = self._peer_label(writer)
        name = None
        try:
            while True:
                message = await read_message(reader, peer=peer)
                kind = message.get("type")
                if name is not None:
                    self._worker_last[name] = time.monotonic()
                if kind == "hello":
                    name = await self._handle_hello(
                        message, reader, writer, conn_id, peer
                    )
                    if name is None:
                        return
                elif kind == "status":
                    await send_message(
                        writer, {"type": "status", "status": self.status()}
                    )
                elif kind == "heartbeat":
                    pass
                elif name is None:
                    await self._reject(
                        writer, "protocol", f"{kind!r} before hello"
                    )
                    return
                elif kind == "request":
                    await send_message(writer, self._grant(name))
                elif kind == "entry":
                    self._handle_entry(name, message)
                elif kind == "failure":
                    self._handle_failure(message)
                elif kind == "lease_done":
                    self._release_lease(message.get("lease"), completed=True)
        except ProtocolError as exc:
            # a hostile or broken peer kills its own connection only;
            # the serve loop and every other worker keep going
            self._bump_audit("protocol_errors")
            print(f"[fleet-coordinator] dropping connection: {exc}",
                  file=sys.stderr)
            try:
                await send_message(writer, {
                    "type": "error", "code": "protocol", "reason": str(exc),
                })
            except (ConnectionResetError, OSError):
                pass
        except (ConnectionResetError, OSError, asyncio.TimeoutError):
            pass
        finally:
            if name is not None and self._worker_conn.get(name) == conn_id:
                self._drop_worker(name, "disconnected")
            writer.close()

    async def _authenticate(self, message, reader, writer, name, peer):
        """Run the challenge/response for one hello; True when authed.

        The challenge carries the coordinator's own proof over both
        nonces, so the worker authenticates us before it answers; the
        worker's reply binds its name and model version, so neither can
        be swapped by a peer replaying someone else's handshake.
        """
        client_nonce = str(message.get("nonce") or "")
        server_nonce = new_nonce()
        await send_message(writer, {
            "type": "challenge",
            "nonce": server_nonce,
            "proof": coordinator_proof(
                self.secret, client_nonce, server_nonce
            ),
        })
        try:
            reply = await asyncio.wait_for(
                read_message(reader, peer=peer),
                timeout=max(1.0, self.heartbeat_timeout),
            )
        except asyncio.TimeoutError:
            self._bump_audit("auth_failures")
            return False
        except (ConnectionError, OSError):
            # the peer hung up on the challenge: it holds no secret, or
            # it rejected *our* proof — mutual auth failing either way
            self._bump_audit("auth_failures")
            return False
        expected = worker_proof(
            self.secret, client_nonce, server_nonce,
            str(name), str(message.get("model_version")),
        )
        if reply.get("type") != "auth" or not macs_equal(
            expected, reply.get("mac")
        ):
            self._bump_audit("auth_failures")
            await self._reject(
                writer, "auth-failed",
                "authentication failed: wrong or missing shared secret",
            )
            return False
        return True

    async def _handle_hello(self, message, reader, writer, conn_id, peer):
        name = message.get("worker")
        if not valid_worker_name(name):
            await self._reject(
                writer, "bad-name", f"invalid worker name {name!r}"
            )
            return None
        if self.secret is not None:
            if not await self._authenticate(
                message, reader, writer, name, peer
            ):
                return None
        version = message.get("model_version")
        if version != self.model_version:
            # counted separately from generic hello rejections: version
            # skew is a deployment problem, not a hostile peer
            self._bump_audit("rejected_versions")
            await self._reject(writer, "version-skew", (
                f"model version mismatch: campaign is "
                f"{self.model_version}, worker runs {version} — "
                "deploy matching sources before joining the fleet"
            ))
            return None
        # a worker that reconnects holds no lease state any more; return
        # leases from its previous connection to the pool right away
        self._revoke_leases(name, "reconnected")
        self._worker_last[name] = time.monotonic()
        self._worker_conn[name] = conn_id
        self._writers[name] = writer
        await send_message(writer, {
            "type": "config",
            "spec": self.spec.to_dict(),
            "directory": self.directory,
            "repro_dir": self.repro_dir,
            "snapshot_dir": self.worker_snapshot_dir,
            "cache": self.cache,
            "cache_dir": self.cache_dir,
            "heartbeat": max(0.1, self.heartbeat_timeout / 3.0),
        })
        return name

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def drain_worker(self, name):
        """Mark ``name`` for drain-then-exit retirement.

        The worker finishes the lease it is executing (it only asks for
        more work between leases), then its next ``request`` is answered
        with ``shutdown`` and it exits cleanly — no draw is ever lost to
        a scale-down.
        """
        self._draining.add(name)

    def _leased_indices(self, point_id):
        """Union of every active lease's unfinished indices on a point."""
        leased = set()
        for lease_id in self._point_leases.get(point_id, ()):
            leased |= self._leases[lease_id]["indices"]
        return leased

    def _make_lease(self, point_id, indices, worker):
        lease_id = self._next_lease
        self._next_lease += 1
        self._leases[lease_id] = {
            "point": point_id, "indices": set(indices), "worker": worker,
        }
        self._point_leases.setdefault(point_id, set()).add(lease_id)
        self._worker_point[worker] = point_id
        self._ledger.granted(lease_id, point_id, indices, worker)
        point = self._points[point_id]
        return {
            "type": "lease",
            "lease": lease_id,
            "point": {
                "benchmark": point.benchmark,
                "scheme": point.scheme.name,
                "vdd": point.vdd,
            },
            "indices": list(indices),
        }

    def _steal(self, worker):
        """Split the biggest straggler tail and re-lease it, or None.

        Only reached when no unleased work exists anywhere, i.e. the
        requesting worker is idle while others hold unfinished leases.
        The victim is the lease with the most unfinished indices (at
        least :attr:`min_steal` — a single in-flight draw cannot be
        moved, it is already being executed). The victim worker is not
        told: it keeps executing the stolen indices it already holds,
        and the exactly-once gate drops whichever copy arrives second.
        """
        victim_id, victim = max(
            (
                (lease_id, lease)
                for lease_id, lease in self._leases.items()
                if lease["worker"] != worker
                and len(lease["indices"]) >= self.min_steal
            ),
            key=lambda item: (len(item[1]["indices"]), -item[0]),
            default=(None, None),
        )
        if victim_id is None:
            return None
        tail = sorted(victim["indices"])
        tail = tail[(len(tail) + 1) // 2:]
        victim["indices"].difference_update(tail)
        reply = self._make_lease(victim["point"], tail, worker)
        self._bump_audit("steals")
        self._ledger.stolen(
            reply["lease"], victim_id, victim["point"], tail,
            worker, victim["worker"],
        )
        return reply

    def _grant(self, worker):
        """A lease / wait / shutdown reply for a work request."""
        if self._finished or worker in self._draining:
            self._waiting.pop(worker, None)
            return {"type": "shutdown"}
        preferred = self._worker_point.get(worker)
        order = self._order
        if preferred in self._schedulers:
            order = [preferred] + [p for p in order if p != preferred]
        for point_id in order:
            scheduler = self._schedulers.get(point_id)
            if scheduler is None or scheduler.done:
                continue
            if scheduler.next_batch() is None:
                self._finalize_point(point_id)
                if self._finished:
                    return {"type": "shutdown"}
                continue
            free = [
                i for i in scheduler.pending()
                if i not in self._leased_indices(point_id)
            ]
            if not free:
                continue
            self._waiting.pop(worker, None)
            return self._make_lease(point_id, free, worker)
        if self.steal:
            stolen = self._steal(worker)
            if stolen is not None:
                self._waiting.pop(worker, None)
                return stolen
        self._waiting.setdefault(worker, time.monotonic())
        return {"type": "wait", "delay": self.wait_delay}

    def _release_lease(self, lease_id, completed, reason="released"):
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return
        self._unlink_point_lease(lease["point"], lease_id)
        if completed:
            self._ledger.completed(lease_id)
        else:
            self._ledger.revoked(lease_id, reason)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _handle_entry(self, worker, message):
        entry = message.get("entry") or {}
        point_id = entry.get("point")
        scheduler = self._schedulers.get(point_id)
        if scheduler is None:
            return  # stale entry for an already-finalized point
        accepted = scheduler.record(
            entry["index"], entry["metrics"], entry["counts"]
        )
        if not accepted:
            return  # duplicate from a revoked/stolen lease: exactly-once
        self._shard_journal(worker).append(entry)
        # the lease holding this index may belong to another worker — a
        # stolen index can be journaled by the victim first; credit the
        # lease that holds it, whoever executed it
        for lease_id in list(self._point_leases.get(point_id, ())):
            lease = self._leases[lease_id]
            if entry["index"] in lease["indices"]:
                lease["indices"].discard(entry["index"])
                if not lease["indices"]:
                    self._release_lease(lease_id, completed=True)
                break
        if scheduler.next_batch() is None and scheduler.done:
            self._finalize_point(point_id)

    def _handle_failure(self, message):
        point_id = message.get("point")
        scheduler = self._schedulers.get(point_id)
        if scheduler is None or scheduler.done:
            return
        scheduler.fail(message.get("failure") or {})
        for lease_id in list(self._point_leases.get(point_id, ())):
            self._release_lease(lease_id, completed=False,
                                reason="point failed")
        self._finalize_point(point_id)

    def _finalize_point(self, point_id):
        scheduler = self._schedulers.get(point_id)
        if scheduler is None or point_id in self._completed:
            return
        event = scheduler.completion_event()
        self._coord_journal.append(event)
        self._completed[point_id] = event
        del self._schedulers[point_id]
        for lease_id in list(self._point_leases.get(point_id, ())):
            self._release_lease(lease_id, completed=False,
                                reason="point finalized")
        if not self._schedulers:
            self._finish()

    def _sweep_finished(self):
        """Finalize points whose stopping rule already fired on replay."""
        for point_id in list(self._schedulers):
            scheduler = self._schedulers[point_id]
            if scheduler.next_batch() is None and scheduler.done:
                self._finalize_point(point_id)
        if not self._schedulers and not self._finished:
            self._finish()

    def _finish(self):
        if self._finished:
            return
        self._finished = True
        self._coord_journal.append({"event": "done"})
        self._done.set()
        # proactively shut connected workers down; they may be deep in a
        # wait backoff and would otherwise find a closed socket
        for name, writer in list(self._writers.items()):
            try:
                from repro.fleet.protocol import encode

                writer.write(encode({"type": "shutdown"}))
            except (ConnectionResetError, OSError):
                pass

    # ------------------------------------------------------------------
    def load(self):
        """Cheap elastic-pool signal: how much work wants more workers.

        Unlike :meth:`status` this touches no disk — the autoscaler
        polls it every few hundred milliseconds. ``queue_depth`` counts
        open points that could absorb another worker right now (an
        unleased batch tail, or a batch not yet opened); ``idle``
        counts workers currently parked in wait backoff, with the
        longest wait in ``max_wait_s`` — the signal that the pool is
        too big.
        """
        queue_depth = 0
        for point_id, scheduler in self._schedulers.items():
            if scheduler.done:
                continue
            if scheduler._batch is None:
                queue_depth += 1  # a batch will open on the next request
                continue
            pending = set(scheduler.pending())
            if pending - self._leased_indices(point_id):
                queue_depth += 1
        now = time.monotonic()
        waits = [now - since for since in self._waiting.values()]
        return {
            "queue_depth": queue_depth,
            "open_points": len(self._schedulers),
            "leases": len(self._leases),
            "workers": len(self._worker_last),
            "idle": len(self._waiting),
            "idle_workers": sorted(self._waiting),
            "max_wait_s": round(max(waits), 3) if waits else 0.0,
            "draining": sorted(self._draining),
            "complete": self._finished,
        }

    def status(self):
        """Live status dict (same shape as ``campaign status`` + fleet)."""
        state = replay_shards(
            self.directory, base=Journal(self.directory).replay()
        )
        status = status_from_state(self.spec, state)
        status["complete"] = self._finished
        now = time.monotonic()
        status["workers"] = {
            name: {
                "last_seen_s": round(now - last, 3),
                "draining": name in self._draining,
            }
            for name, last in sorted(self._worker_last.items())
        }
        status["leases"] = [
            {
                "lease": lease_id,
                "point": lease["point"],
                "worker": lease["worker"],
                "pending": sorted(lease["indices"]),
            }
            for lease_id, lease in sorted(self._leases.items())
        ]
        status["audit"] = dict(self.audit)
        status["load"] = self.load()
        return status


def serve_fleet(directory, spec=None, **kwargs):
    """Run a coordinator to campaign completion (blocking wrapper)."""
    coordinator = FleetCoordinator(directory, spec=spec, **kwargs)
    return asyncio.run(coordinator.serve())
