"""Local fleet runner: one coordinator plus a (possibly elastic) pool.

:func:`fleet_run` is the one-command path (`fleet run` on the CLI): it
serves the coordinator in-process on an ephemeral localhost port, spawns
worker subprocesses pointed at it, and returns the final report — the
distributed twin of :func:`repro.campaign.executor.run_campaign`,
producing a byte-identical ``journal.jsonl`` and ``report.json``. It is
also what the throughput benchmark and the CI fleet-smoke jobs drive.

Workers are real subprocesses (``python -m repro.harness.cli fleet
worker``), not threads, so the fault-tolerance paths exercised in tests
— SIGKILL mid-lease, heartbeat expiry — are the same paths a multi-host
fleet exercises.

**Elastic pools.** With ``max_workers`` set, an :class:`ElasticPool`
autoscaler polls the coordinator's cheap load signal
(:meth:`~repro.fleet.coordinator.FleetCoordinator.load`, also embedded
in every ``status`` reply for remote autoscalers) and keeps the local
pool between ``min_workers`` and ``max_workers``: it spawns a worker
whenever unleased work exists and nobody is idle, and retires one —
via the coordinator's drain-then-exit path, so no draw is ever lost —
once a worker has been idle past a grace period. Crashed workers are
respawned while the pool is below its floor. Every decision is
audited as a ``scale`` event in the lease ledger.
"""

import asyncio
import os
import subprocess
import sys

from repro.fleet.coordinator import FleetCoordinator

#: autoscaler poll cadence and how long a worker may idle before retire
SCALE_INTERVAL = 0.25
IDLE_GRACE = 1.0


def query_status(host, port, timeout=5.0, secret=None, tls_ca=None):
    """Ask a live coordinator for its status dict (blocking).

    ``status`` asks are answered before the handshake gate — they carry
    no lease and reveal only campaign progress — but when the
    coordinator serves TLS the connection itself needs ``tls_ca``.
    ``secret`` is accepted for symmetry and future tightening.
    """
    from repro.fleet.protocol import read_message, send_message
    from repro.fleet.security import client_ssl_context

    ssl_context = client_ssl_context(tls_ca)

    async def _query():
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, ssl=ssl_context), timeout
        )
        try:
            await send_message(writer, {"type": "status"})
            reply = await asyncio.wait_for(read_message(reader), timeout)
        finally:
            writer.close()
        if reply.get("type") != "status":
            raise RuntimeError(
                f"coordinator replied {reply.get('type')!r} to a status ask"
            )
        return reply["status"]

    return asyncio.run(_query())


def offline_status(directory):
    """Status of a fleet directory from its journals (no coordinator).

    Folds the merged journal (if any) with the shard journals, so it is
    correct for a live-but-unreachable, killed, or finished fleet — the
    same ``campaign status`` shape, fed by :func:`replay_shards`. The
    coordinator's last persisted security audit counters ride along
    under ``"audit"`` (``None`` when the ledger never recorded any),
    matching the live :meth:`~repro.fleet.coordinator.FleetCoordinator.
    status` shape.
    """
    from repro.campaign.journal import Journal, read_manifest
    from repro.campaign.plan import CampaignSpec
    from repro.campaign.status import status_from_state
    from repro.fleet.ledger import LeaseLedger
    from repro.fleet.merge import replay_shards

    spec = CampaignSpec.from_dict(read_manifest(directory)["spec"])
    state = replay_shards(directory, base=Journal(directory).replay())
    status = status_from_state(spec, state)
    status["audit"] = LeaseLedger(directory).replay()["audit"]
    return status


def worker_command(host, port, name, cache=True, cache_dir=None,
                   snapshots=True, snapshot_dir=None, tls_ca=None,
                   reconnect_attempts=None, reconnect_delay=None,
                   reconnect_max_delay=None, throttle=None):
    """argv for one worker subprocess joining ``host:port`` as ``name``.

    The shared secret never rides argv (it would leak through ``ps``);
    :func:`worker_env` exports it as ``$REPRO_FLEET_SECRET`` instead.
    """
    cmd = [
        sys.executable, "-m", "repro.harness.cli", "fleet", "worker",
        "--connect", f"{host}:{port}", "--name", name,
    ]
    if not cache:
        cmd.append("--no-cache")
    elif cache_dir:
        cmd += ["--cache-dir", str(cache_dir)]
    if not snapshots:
        cmd.append("--no-snapshot")
    elif snapshot_dir:
        cmd += ["--snapshot-dir", str(snapshot_dir)]
    if tls_ca:
        cmd += ["--tls-ca", str(tls_ca)]
    if reconnect_attempts is not None:
        cmd += ["--reconnect-attempts", str(reconnect_attempts)]
    if reconnect_delay is not None:
        cmd += ["--reconnect-delay", str(reconnect_delay)]
    if reconnect_max_delay is not None:
        cmd += ["--reconnect-max-delay", str(reconnect_max_delay)]
    if throttle:
        cmd += ["--throttle", str(throttle)]
    return cmd


def worker_env(secret=None):
    """Subprocess environment with ``repro`` importable from this tree."""
    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing
        else src_root + os.pathsep + existing
    )
    if secret is not None:
        env["REPRO_FLEET_SECRET"] = (
            secret.decode() if isinstance(secret, bytes) else str(secret)
        )
    return env


def spawn_worker(host, port, name, secret=None, **kwargs):
    """Start one local worker subprocess (stdout/stderr inherited)."""
    return subprocess.Popen(
        worker_command(host, port, name, **kwargs),
        env=worker_env(secret=secret),
    )


def reap_workers(procs, grace=10.0):
    """Collect worker subprocesses, escalating to terminate/kill."""
    codes = []
    for proc in procs:
        try:
            codes.append(proc.wait(timeout=grace))
            continue
        except subprocess.TimeoutExpired:
            proc.terminate()
        try:
            codes.append(proc.wait(timeout=2.0))
        except subprocess.TimeoutExpired:
            proc.kill()
            codes.append(proc.wait())
    return codes


def scale_decision(load, alive, draining, min_workers, max_workers,
                   idle_grace=IDLE_GRACE):
    """The autoscaler policy, as a pure function for unit testing.

    Returns ``("spawn", None)``, ``("retire", <idle worker name>)``, or
    ``("hold", None)`` for one poll tick. ``alive`` is the number of
    live local workers, ``draining`` the subset already retiring (they
    still count against the ceiling but are spoken for).
    """
    active = alive - draining
    if active < min_workers:
        return ("spawn", None)
    busy_work = load["queue_depth"] > 0 and load["idle"] == 0
    if busy_work and alive < max_workers:
        return ("spawn", None)
    if (
        active > min_workers
        and load["idle"] > 0
        and load["max_wait_s"] >= idle_grace
    ):
        candidates = [
            name for name in load["idle_workers"]
            if name not in load["draining"]
        ]
        if candidates:
            return ("retire", candidates[0])
    return ("hold", None)


class ElasticPool:
    """Autoscaled local worker subprocess pool for one coordinator.

    Owns spawn/retire/respawn; the coordinator owns drain semantics
    (:meth:`~repro.fleet.coordinator.FleetCoordinator.drain_worker`) so
    retirement never loses a draw: the drained worker finishes its
    in-flight lease, receives ``shutdown`` on its next request, and
    exits 0.
    """

    def __init__(self, coordinator, min_workers, max_workers,
                 spawn_kwargs=None, secret=None, interval=SCALE_INTERVAL,
                 idle_grace=IDLE_GRACE, name_prefix="worker"):
        self.coordinator = coordinator
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        if self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.min_workers > self.max_workers:
            raise ValueError(
                f"min_workers ({self.min_workers}) must be <= "
                f"max_workers ({self.max_workers})"
            )
        self.spawn_kwargs = dict(spawn_kwargs or {})
        self.secret = secret
        self.interval = float(interval)
        self.idle_grace = float(idle_grace)
        self.name_prefix = name_prefix
        self.procs = {}  # name -> Popen
        self.retired = set()  # names drained on purpose
        self.spawned = 0  # lifetime spawn count (also names workers)

    def spawn(self, reason):
        name = f"{self.name_prefix}{self.spawned}"
        self.spawned += 1
        self.procs[name] = spawn_worker(
            self.coordinator.host, self.coordinator.port, name,
            secret=self.secret, **self.spawn_kwargs
        )
        self.coordinator._ledger.scaled("spawn", name, reason)
        return name

    def retire(self, name, reason):
        self.retired.add(name)
        self.coordinator.drain_worker(name)
        self.coordinator._ledger.scaled("retire", name, reason)

    def start(self, initial):
        for _ in range(initial):
            self.spawn("initial pool")

    def _reap_exited(self):
        for name, proc in list(self.procs.items()):
            if proc.poll() is not None:
                del self.procs[name]

    async def run(self):
        """Poll the load signal and scale until the campaign finishes."""
        while not self.coordinator._done.is_set():
            await asyncio.sleep(self.interval)
            self._reap_exited()
            load = self.coordinator.load()
            if load["complete"]:
                break
            alive = len(self.procs)
            draining = sum(
                1 for name in self.procs if name in self.retired
            )
            action, target = scale_decision(
                load, alive, draining, self.min_workers,
                self.max_workers, self.idle_grace,
            )
            if action == "spawn":
                active = alive - draining
                reason = (
                    "below pool floor" if active < self.min_workers
                    else f"queue depth {load['queue_depth']}, no idle "
                         "workers"
                )
                self.spawn(reason)
            elif action == "retire" and target in self.procs:
                self.retire(
                    target,
                    f"idle {load['max_wait_s']}s >= {self.idle_grace}s",
                )


def fleet_run(directory, spec=None, workers=2, host="127.0.0.1", port=0,
              resume=False, cache=True, cache_dir=None, snapshots=True,
              snapshot_dir=None, heartbeat_timeout=15.0, linger=1.0,
              secret=None, tls_cert=None, tls_key=None, tls_ca=None,
              min_workers=None, max_workers=None, steal=True,
              reconnect_attempts=None, reconnect_delay=None,
              reconnect_max_delay=None):
    """Run (or resume) a campaign on a local fleet; returns the report.

    ``workers`` local worker subprocesses execute the draws; the
    in-process coordinator owns leasing, journaling, and stopping. The
    campaign directory afterwards contains the same canonical
    ``journal.jsonl`` / ``report.json`` a single-pool run writes, plus
    ``shards/`` and ``leases.jsonl`` for audit.

    Setting ``min_workers``/``max_workers`` makes the pool elastic:
    ``workers`` (clamped into the band) is only the starting size, and
    an :class:`ElasticPool` grows or drains the pool against the
    coordinator's live load signal. ``secret`` turns on the shared-
    secret handshake (exported to worker subprocesses via the
    environment, never argv); ``tls_cert``/``tls_key`` wrap the local
    sockets in TLS, with workers pinning ``tls_ca`` (defaulting to the
    coordinator certificate itself — the self-signed case).
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    elastic = min_workers is not None or max_workers is not None
    if elastic:
        low = 1 if min_workers is None else int(min_workers)
        high = workers if max_workers is None else int(max_workers)
        if low < 1:
            raise ValueError(f"min_workers must be >= 1, got {low}")
        if low > high:
            raise ValueError(
                f"min_workers ({low}) must be <= max_workers ({high})"
            )
        workers = min(max(workers, low), high)
    worker_tls_ca = tls_ca or tls_cert
    spawn_kwargs = dict(
        cache=cache, cache_dir=cache_dir, snapshots=snapshots,
        snapshot_dir=snapshot_dir, tls_ca=worker_tls_ca,
        reconnect_attempts=reconnect_attempts,
        reconnect_delay=reconnect_delay,
        reconnect_max_delay=reconnect_max_delay,
    )

    async def _main():
        coordinator = FleetCoordinator(
            directory, spec=spec, host=host, port=port, resume=resume,
            cache=cache, cache_dir=cache_dir, snapshots=snapshots,
            snapshot_dir=snapshot_dir, heartbeat_timeout=heartbeat_timeout,
            linger=linger, secret=secret, tls_cert=tls_cert,
            tls_key=tls_key, steal=steal,
        )
        serve_task = asyncio.create_task(coordinator.serve())
        await coordinator.ready.wait()
        procs = []
        scale_task = None
        pool = None
        if not serve_task.done():  # already-complete campaigns skip workers
            if elastic:
                pool = ElasticPool(
                    coordinator, low, high, spawn_kwargs=spawn_kwargs,
                    secret=secret,
                )
                pool.start(workers)
                scale_task = asyncio.create_task(pool.run())
            else:
                procs = [
                    spawn_worker(
                        coordinator.host, coordinator.port, f"worker{i}",
                        secret=secret, **spawn_kwargs
                    )
                    for i in range(workers)
                ]
        try:
            report = await serve_task
        finally:
            if scale_task is not None:
                scale_task.cancel()
            if pool is not None:
                procs = list(pool.procs.values())
            await asyncio.to_thread(reap_workers, procs)
        return report

    return asyncio.run(_main())
