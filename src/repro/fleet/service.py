"""Local fleet runner: one coordinator plus N worker subprocesses.

:func:`fleet_run` is the one-command path (`fleet run` on the CLI): it
serves the coordinator in-process on an ephemeral localhost port, spawns
``workers`` worker subprocesses pointed at it, and returns the final
report — the distributed twin of :func:`repro.campaign.executor.
run_campaign`, producing a byte-identical ``journal.jsonl`` and
``report.json``. It is also what the throughput benchmark and the CI
fleet-smoke job drive.

Workers are real subprocesses (``python -m repro.harness.cli fleet
worker``), not threads, so the fault-tolerance paths exercised in tests
— SIGKILL mid-lease, heartbeat expiry — are the same paths a multi-host
fleet exercises.
"""

import asyncio
import os
import subprocess
import sys

from repro.fleet.coordinator import FleetCoordinator


def query_status(host, port, timeout=5.0):
    """Ask a live coordinator for its status dict (blocking)."""
    from repro.fleet.protocol import read_message, send_message

    async def _query():
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        try:
            await send_message(writer, {"type": "status"})
            reply = await asyncio.wait_for(read_message(reader), timeout)
        finally:
            writer.close()
        if reply.get("type") != "status":
            raise RuntimeError(
                f"coordinator replied {reply.get('type')!r} to a status ask"
            )
        return reply["status"]

    return asyncio.run(_query())


def offline_status(directory):
    """Status of a fleet directory from its journals (no coordinator).

    Folds the merged journal (if any) with the shard journals, so it is
    correct for a live-but-unreachable, killed, or finished fleet — the
    same ``campaign status`` shape, fed by :func:`replay_shards`.
    """
    from repro.campaign.journal import Journal, read_manifest
    from repro.campaign.plan import CampaignSpec
    from repro.campaign.status import status_from_state
    from repro.fleet.merge import replay_shards

    spec = CampaignSpec.from_dict(read_manifest(directory)["spec"])
    state = replay_shards(directory, base=Journal(directory).replay())
    return status_from_state(spec, state)


def worker_command(host, port, name, cache=True, cache_dir=None,
                   snapshots=True, snapshot_dir=None):
    """argv for one worker subprocess joining ``host:port`` as ``name``."""
    cmd = [
        sys.executable, "-m", "repro.harness.cli", "fleet", "worker",
        "--connect", f"{host}:{port}", "--name", name,
    ]
    if not cache:
        cmd.append("--no-cache")
    elif cache_dir:
        cmd += ["--cache-dir", str(cache_dir)]
    if not snapshots:
        cmd.append("--no-snapshot")
    elif snapshot_dir:
        cmd += ["--snapshot-dir", str(snapshot_dir)]
    return cmd


def worker_env():
    """Subprocess environment with ``repro`` importable from this tree."""
    import repro

    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing
        else src_root + os.pathsep + existing
    )
    return env


def spawn_worker(host, port, name, **kwargs):
    """Start one local worker subprocess (stdout/stderr inherited)."""
    return subprocess.Popen(
        worker_command(host, port, name, **kwargs), env=worker_env()
    )


def reap_workers(procs, grace=10.0):
    """Collect worker subprocesses, escalating to terminate/kill."""
    codes = []
    for proc in procs:
        try:
            codes.append(proc.wait(timeout=grace))
            continue
        except subprocess.TimeoutExpired:
            proc.terminate()
        try:
            codes.append(proc.wait(timeout=2.0))
        except subprocess.TimeoutExpired:
            proc.kill()
            codes.append(proc.wait())
    return codes


def fleet_run(directory, spec=None, workers=2, host="127.0.0.1", port=0,
              resume=False, cache=True, cache_dir=None, snapshots=True,
              snapshot_dir=None, heartbeat_timeout=15.0, linger=1.0):
    """Run (or resume) a campaign on a local fleet; returns the report.

    ``workers`` local worker subprocesses execute the draws; the
    in-process coordinator owns leasing, journaling, and stopping. The
    campaign directory afterwards contains the same canonical
    ``journal.jsonl`` / ``report.json`` a single-pool run writes, plus
    ``shards/`` and ``leases.jsonl`` for audit.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    async def _main():
        coordinator = FleetCoordinator(
            directory, spec=spec, host=host, port=port, resume=resume,
            cache=cache, cache_dir=cache_dir, snapshots=snapshots,
            snapshot_dir=snapshot_dir, heartbeat_timeout=heartbeat_timeout,
            linger=linger,
        )
        serve_task = asyncio.create_task(coordinator.serve())
        await coordinator.ready.wait()
        procs = []
        if not serve_task.done():  # already-complete campaigns skip workers
            procs = [
                spawn_worker(
                    coordinator.host, coordinator.port, f"worker{i}",
                    cache=cache, cache_dir=cache_dir, snapshots=snapshots,
                    snapshot_dir=snapshot_dir,
                )
                for i in range(workers)
            ]
        try:
            report = await serve_task
        finally:
            await asyncio.to_thread(reap_workers, procs)
        return report

    return asyncio.run(_main())
