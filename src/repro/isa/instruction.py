"""Static and dynamic instruction representations.

A :class:`StaticInst` is one instruction of a synthetic program: a fixed PC,
an op class, architectural register operands, and (for memory/control ops)
address/branch behaviour parameters. A :class:`DynInst` is one dynamic
instance of a static instruction flowing through the pipeline; it carries
the runtime state the simulator needs (sequence number, resolved memory
address, branch outcome, fault prediction and fault outcome).
"""

from repro.isa.opcodes import OP_FU_KIND, OP_LATENCY, OpClass

#: sentinel wake cycle meaning "not yet computed" — matches
#: :data:`repro.uarch.regfile.INFINITE` so an entry whose sources are
#: still unready caches "infinitely far" and re-probes next cycle.
_WAKE_UNKNOWN = 1 << 60


class StaticInst:
    """A static instruction at a fixed program counter.

    Parameters
    ----------
    pc:
        Program counter (byte address; instructions are 4 bytes).
    op:
        Operation class.
    dest:
        Destination architectural register index, or ``None`` for stores,
        branches and nops.
    srcs:
        Tuple of source architectural register indices (0..2 entries).
    mem_base, mem_stride, mem_region:
        For loads/stores: the synthetic address stream is
        ``mem_base + k * mem_stride`` (mod the region size) for the k-th
        dynamic instance, which produces the strided/looping access patterns
        that give real programs their cache behaviour.
    taken_prob:
        For branches: probability that the branch is taken.
    """

    __slots__ = (
        "pc",
        "op",
        "dest",
        "srcs",
        "fu_kind",
        "latency",
        "is_mem",
        "is_branch",
        "mem_base",
        "mem_stride",
        "mem_region",
        "taken_prob",
        "exec_count",
    )

    def __init__(
        self,
        pc,
        op,
        dest=None,
        srcs=(),
        mem_base=0,
        mem_stride=0,
        mem_region=0,
        taken_prob=0.0,
    ):
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = tuple(srcs)
        self.fu_kind = OP_FU_KIND[op]
        self.latency = OP_LATENCY[op]
        # precomputed classification flags: these are read once per dynamic
        # instance on the simulator's hot path, so they are plain attributes
        self.is_mem = op is OpClass.LOAD or op is OpClass.STORE
        self.is_branch = op is OpClass.BRANCH
        self.mem_base = mem_base
        self.mem_stride = mem_stride
        self.mem_region = mem_region
        self.taken_prob = taken_prob
        self.exec_count = 0

    def address_at(self, k):
        """Memory address of the k-th dynamic instance (pure function).

        The stream strides through the instruction's region and wraps, so
        the working set stays bounded — this is what makes L1/L2 hit rates
        controllable per benchmark.
        """
        if not self.is_mem:
            return 0
        if self.mem_region:
            offset = (k * self.mem_stride) % self.mem_region
        else:
            offset = 0
        return self.mem_base + offset

    def next_address(self):
        """Address for the next instance per this object's ``exec_count``.

        Prefer :meth:`address_at` with a caller-owned counter when several
        independent traces share one program (the trace generator does).
        """
        return self.address_at(self.exec_count)

    def __repr__(self):
        return (
            f"StaticInst(pc={self.pc:#x}, op={self.op.name}, "
            f"dest={self.dest}, srcs={self.srcs})"
        )


class DynInst:
    """One dynamic instance of a static instruction in flight.

    The simulator mutates these objects as the instruction moves through the
    pipeline. Fields are grouped by concern:

    * identity: ``seq`` (global fetch order), ``static`` (the StaticInst)
    * dataflow: renamed physical registers, readiness
    * timing: per-stage cycle bookkeeping filled in by the pipeline
    * faults: predicted fault stage (from the TEP) and the set of stages in
      which this instance *actually* violates timing (from the injector)
    """

    __slots__ = (
        "seq",
        "static",
        # static pass-throughs, copied at construction: the scheduler reads
        # these hundreds of thousands of times per run, so they are plain
        # attributes rather than properties delegating to ``static``
        "pc",
        "op",
        "fu_kind",
        "latency",
        "is_load",
        "is_store",
        "is_mem",
        "is_branch",
        "mem_addr",
        "taken",
        "mispredicted",
        # rename state
        "phys_dest",
        "prev_phys_dest",
        "phys_srcs",
        # fault state
        "pred_fault_stage",
        "pred_critical",
        "fault_stages",
        "replayed",
        "tep_key",
        "refetched",
        # pipeline bookkeeping (cycles)
        "fetch_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        # flags
        "completed",
        "squashed",
        "in_iq",
        "timestamp",
        "dispatch_order",
        "version",
        # cached earliest issue cycle (issue_queue.ready_entries probe
        # cache); _WAKE_UNKNOWN until all sources have finite ready cycles
        "wake",
        # loads only: cached memory-disambiguation gate cycle (latest
        # older-store resolve cycle, LoadStoreQueue.older_stores_gate);
        # _WAKE_UNKNOWN until every older store address is known
        "mem_gate",
    )

    def __init__(self, seq, static, mem_addr=0, taken=False, mispredicted=False):
        self.seq = seq
        self.static = static
        op = static.op
        self.pc = static.pc
        self.op = op
        self.fu_kind = static.fu_kind
        self.latency = static.latency
        self.is_load = op is OpClass.LOAD
        self.is_store = op is OpClass.STORE
        self.is_mem = static.is_mem
        self.is_branch = static.is_branch
        self.mem_addr = mem_addr
        self.taken = taken
        self.mispredicted = mispredicted
        self.phys_dest = -1
        self.prev_phys_dest = -1
        self.phys_srcs = ()
        self.pred_fault_stage = None
        self.pred_critical = False
        self.fault_stages = 0  # bitmask over PipeStage values
        self.replayed = False
        self.tep_key = None
        self.refetched = False
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        self.completed = False
        self.squashed = False
        self.in_iq = False
        self.timestamp = 0
        self.dispatch_order = 0
        self.version = 0
        self.wake = _WAKE_UNKNOWN
        self.mem_gate = _WAKE_UNKNOWN

    def faults_in(self, stage):
        """Return True when this instance violates timing in ``stage``."""
        return bool(self.fault_stages & (1 << int(stage)))

    def add_fault(self, stage):
        """Mark an actual timing violation in ``stage``."""
        self.fault_stages |= 1 << int(stage)

    @property
    def has_fault(self):
        """True when this instance violates timing in any stage."""
        return self.fault_stages != 0

    @property
    def predicted_faulty(self):
        """True when the TEP predicted a violation for this instance."""
        return self.pred_fault_stage is not None

    def reset_for_refetch(self):
        """Clear pipeline state before re-injection after a replay squash.

        Identity (seq, address, branch outcome) and fault annotations are
        retained — this is the *same dynamic instance* re-executing.
        """
        self.phys_dest = -1
        self.prev_phys_dest = -1
        self.phys_srcs = ()
        self.pred_fault_stage = None
        self.pred_critical = False
        self.tep_key = None
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        self.completed = False
        self.squashed = False
        self.in_iq = False
        self.refetched = True
        self.wake = _WAKE_UNKNOWN
        self.mem_gate = _WAKE_UNKNOWN
        self.version += 1  # invalidates events scheduled for the old pass

    def __repr__(self):
        return (
            f"DynInst(seq={self.seq}, pc={self.pc:#x}, op={self.op.name}, "
            f"pred={self.pred_fault_stage}, faults={self.fault_stages:#x})"
        )
