"""A small load/store RISC ISA used by the trace generator and the simulator.

The ISA intentionally carries only what the paper's timing model needs:
operation classes (which determine functional-unit kind and latency),
register dependencies, memory addresses for loads/stores, and control flow.
"""

from repro.isa.opcodes import FuKind, OpClass, PipeStage, OP_LATENCY, OP_FU_KIND
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.program import BasicBlock, Program

__all__ = [
    "FuKind",
    "OpClass",
    "PipeStage",
    "OP_LATENCY",
    "OP_FU_KIND",
    "StaticInst",
    "DynInst",
    "BasicBlock",
    "Program",
]
