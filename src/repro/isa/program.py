"""Synthetic program structure: basic blocks and control-flow graphs.

A :class:`Program` is a set of :class:`BasicBlock` objects plus edge
probabilities. Dynamic execution is a probabilistic walk over the CFG; each
visit to a block emits dynamic instances of its static instructions. This
gives the trace the properties the paper's predictors rely on: a bounded
static-PC footprint, heavy PC recurrence through loops, and correlated
branch behaviour.
"""


class BasicBlock:
    """A straight-line sequence of static instructions ending in a branch.

    Parameters
    ----------
    index:
        Block index within the program.
    insts:
        Static instructions in program order. The final instruction is the
        block terminator when ``successors`` has more than one entry.
    successors:
        List of ``(block_index, probability)`` pairs. Probabilities must sum
        to 1 (within floating-point tolerance).
    """

    __slots__ = ("index", "insts", "successors")

    def __init__(self, index, insts, successors):
        if not insts:
            raise ValueError("a basic block needs at least one instruction")
        total = sum(p for _, p in successors)
        if successors and abs(total - 1.0) > 1e-6:
            raise ValueError(f"successor probabilities sum to {total}, not 1")
        self.index = index
        self.insts = list(insts)
        self.successors = list(successors)

    def __len__(self):
        return len(self.insts)

    def __repr__(self):
        return f"BasicBlock(index={self.index}, n_insts={len(self.insts)})"


class Program:
    """A synthetic program: basic blocks, an entry block, and its PC map.

    The program exposes the static instruction footprint (``static_insts``)
    so fault models can assign per-PC timing properties before simulation.
    """

    def __init__(self, blocks, entry=0, name="synthetic"):
        if not blocks:
            raise ValueError("a program needs at least one basic block")
        self.blocks = list(blocks)
        self.entry = entry
        self.name = name
        self._pc_map = {}
        for block in self.blocks:
            for inst in block.insts:
                if inst.pc in self._pc_map:
                    raise ValueError(f"duplicate PC {inst.pc:#x}")
                self._pc_map[inst.pc] = inst

    @property
    def static_insts(self):
        """All static instructions of the program, in PC order."""
        return [self._pc_map[pc] for pc in sorted(self._pc_map)]

    @property
    def n_static(self):
        """Number of static instructions."""
        return len(self._pc_map)

    def lookup(self, pc):
        """Return the static instruction at ``pc``.

        Raises ``KeyError`` for unknown PCs.
        """
        return self._pc_map[pc]

    def walk(self, rng, max_blocks=None):
        """Yield basic blocks along a probabilistic CFG walk.

        Parameters
        ----------
        rng:
            A ``random.Random``-like object providing ``random()``.
        max_blocks:
            Stop after this many block visits (``None`` = endless).
        """
        count = 0
        block = self.blocks[self.entry]
        while max_blocks is None or count < max_blocks:
            yield block
            count += 1
            if not block.successors:
                return
            r = rng.random()
            cumulative = 0.0
            chosen = block.successors[-1][0]
            for succ, prob in block.successors:
                cumulative += prob
                if r < cumulative:
                    chosen = succ
                    break
            block = self.blocks[chosen]

    def __repr__(self):
        return (
            f"Program(name={self.name!r}, blocks={len(self.blocks)}, "
            f"static_insts={self.n_static})"
        )
