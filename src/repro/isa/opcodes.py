"""Operation classes, functional-unit kinds, pipe stages and latencies.

The operation classes follow the Fabscalar Core-1 split the paper uses
(Section 4.1): single-cycle simple-ALU operations, multi-cycle complex-ALU
operations (pipelined multiply, unpipelined divide), loads/stores through a
memory port, and branches resolved on a simple ALU.
"""

import enum


class OpClass(enum.IntEnum):
    """Instruction operation class.

    The class determines which functional-unit kind executes the instruction
    and its execution latency.
    """

    IALU = 0      #: single-cycle integer ALU op (add/sub/logic/shift)
    IMUL = 1      #: pipelined multi-cycle integer multiply
    IDIV = 2      #: unpipelined multi-cycle integer divide
    FPU = 3       #: pipelined multi-cycle floating-point op
    LOAD = 4      #: memory load (AGEN + cache access)
    STORE = 5     #: memory store (AGEN + LSQ entry, data written at commit)
    BRANCH = 6    #: conditional/unconditional branch, resolved at execute
    NOP = 7       #: no-op (pipeline filler)


class FuKind(enum.IntEnum):
    """Functional-unit kind an instruction issues to."""

    SIMPLE = 0    #: single-cycle ALU, also resolves branches
    COMPLEX = 1   #: multi-cycle ALU (IMUL pipelined, IDIV unpipelined, FPU)
    MEM = 2       #: memory port (address generation + cache/LSQ access)


class PipeStage(enum.IntEnum):
    """Pipeline stages, usable as timing-fault sites.

    The OoO engine spans ISSUE..WRITEBACK (Figure 1); the paper's proposed
    scheduling framework targets those stages, while the in-order front end
    (FETCH..DISPATCH) and RETIRE are covered by stalls or replay (Section 2.2).
    """

    FETCH = 0
    DECODE = 1
    RENAME = 2
    DISPATCH = 3
    ISSUE = 4
    REGREAD = 5
    EXECUTE = 6
    MEM = 7
    WRITEBACK = 8
    RETIRE = 9

    @property
    def in_ooo_engine(self) -> bool:
        """True when the stage belongs to the OoO engine (Issue..Writeback)."""
        return PipeStage.ISSUE <= self <= PipeStage.WRITEBACK


#: Stages of the OoO engine, in pipeline order.
OOO_STAGES = (
    PipeStage.ISSUE,
    PipeStage.REGREAD,
    PipeStage.EXECUTE,
    PipeStage.MEM,
    PipeStage.WRITEBACK,
)

#: Execution latency (cycles spent in the execute stage) per op class.
#: LOAD/STORE latency here covers address generation only; cache latency is
#: added by the memory hierarchy.
OP_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.FPU: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}

#: Functional-unit kind per op class.
OP_FU_KIND = {
    OpClass.IALU: FuKind.SIMPLE,
    OpClass.IMUL: FuKind.COMPLEX,
    OpClass.IDIV: FuKind.COMPLEX,
    OpClass.FPU: FuKind.COMPLEX,
    OpClass.LOAD: FuKind.MEM,
    OpClass.STORE: FuKind.MEM,
    OpClass.BRANCH: FuKind.SIMPLE,
    OpClass.NOP: FuKind.SIMPLE,
}

#: Op classes whose execution is pipelined when multi-cycle (Section 3.3.3).
PIPELINED_OPS = frozenset({OpClass.IMUL, OpClass.FPU})

#: Op classes executed on an unpipelined multi-cycle unit.
UNPIPELINED_OPS = frozenset({OpClass.IDIV})


def is_mem_op(op: OpClass) -> bool:
    """Return True for loads and stores."""
    return op is OpClass.LOAD or op is OpClass.STORE
