"""Batch experiment engine: parallel fan-out plus an on-disk result cache.

The experiment drivers (tables, figures, calibration, shmoo) all reduce to
"run this grid of :class:`~repro.harness.runner.RunSpec` points".
:func:`run_many` is the single entry point for that pattern:

* **Caching** — every completed :class:`~repro.harness.runner.SimResult`
  is pickled under a content address derived from ``RunSpec.key()``, so
  re-running an experiment (or a different experiment sharing points, e.g.
  Figure 4 after Table 1) is free. The cache is invalidated wholesale
  whenever the simulator's source changes: results live in a subdirectory
  named after :func:`model_version`, a digest of every ``repro`` source
  file. Stale model versions are pruned opportunistically.

* **Parallelism** — cache misses are farmed to a ``multiprocessing`` pool.
  Runs are pure functions of their spec (the simulator threads explicit
  seeds everywhere), so fan-out cannot change results; a determinism test
  pins ``run_many(jobs=N) == serial``.

Both are safe because runs are deterministic and self-contained: a spec
fully determines its result (see ``RunSpec.canonical``).
"""

import hashlib
import os
import pickle
import sys

from repro.harness.runner import run_one

#: cache-format version; bump to orphan every existing cache entry.
_CACHE_FORMAT = 1

_version_cache = None


def model_version():
    """Digest of the simulator sources: the cache-invalidation stamp.

    Hashes every ``.py`` file under the installed ``repro`` package (path
    and contents, in sorted path order) so any change to the model —
    pipeline, fault injector, energy model, workload generator — retires
    all previously cached results.
    """
    global _version_cache
    if _version_cache is not None:
        return _version_cache
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256(b"repro-cache-format:%d" % _CACHE_FORMAT)
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            digest.update(rel.encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    _version_cache = digest.hexdigest()[:16]
    return _version_cache


class ResultCache:
    """Content-addressed store of pickled :class:`SimResult` objects.

    Layout: ``<root>/<model_version>/<spec_key>.pkl``. Loads and stores
    are best-effort — a corrupt or unreadable entry is treated as a miss
    and overwritten, never raised to the caller.
    """

    def __init__(self, root=None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
                os.getcwd(), ".sim_cache"
            )
        self.root = str(root)
        self.version = model_version()
        self.hits = 0
        self.misses = 0

    def _path(self, spec):
        return os.path.join(self.root, self.version, spec.key() + ".pkl")

    def load(self, spec):
        """The cached result for ``spec``, or ``None`` on a miss.

        Any unreadable entry — truncated write, corrupted bytes, a
        pickle from renamed classes — is logged, unlinked, and treated
        as a miss: a bad cache file must cost one recompute, never a
        crashed batch.
        """
        path = self._path(spec)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except OSError:
            self.misses += 1
            return None
        except Exception as exc:  # noqa: BLE001 — any corrupt entry
            self.misses += 1
            print(
                f"[cache] discarding unreadable entry "
                f"{os.path.basename(path)}: {exc!r}",
                file=sys.stderr,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    _tmp_counter = 0

    def store(self, spec, result):
        """Persist ``result`` under ``spec``'s content address.

        Write-then-atomic-rename, with a per-(process, call) unique temp
        name, so concurrent processes sharing the cache directory can
        never observe (or clobber each other with) a half-written
        entry. If another process prunes the version directory between
        our ``makedirs`` and ``replace`` (a ``FileNotFoundError``), the
        write is retried once into a recreated directory.
        """
        path = self._path(spec)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        for attempt in (0, 1):
            ResultCache._tmp_counter += 1
            tmp = "%s.tmp.%d.%d" % (
                path, os.getpid(), ResultCache._tmp_counter
            )
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(tmp, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)  # atomic: concurrent writers both win
                return
            except FileNotFoundError:
                # version dir vanished under us (concurrent prune_stale)
                if attempt == 0:
                    continue
                return
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return

    def prune_stale(self):
        """Delete result directories from older model versions.

        Safe under concurrent processes: each stale version directory is
        first renamed aside (atomic, so a concurrent writer either lands
        its entry before the rename — and it is deleted with the rest —
        or recreates the directory afresh via :meth:`store`'s retry),
        then removed; directories that vanish mid-prune (another process
        pruning the same root) are skipped silently.
        """
        try:
            versions = os.listdir(self.root)
        except OSError:
            return
        import shutil

        for version in versions:
            if version == self.version or version.startswith(".trash-"):
                continue
            path = os.path.join(self.root, version)
            if not os.path.isdir(path):
                continue
            trash = os.path.join(
                self.root, ".trash-%s-%d" % (version, os.getpid())
            )
            try:
                os.rename(path, trash)
            except OSError:  # already pruned/renamed by a peer
                continue
            shutil.rmtree(trash, ignore_errors=True)
        # sweep trash left behind by peers killed mid-prune
        try:
            leftovers = os.listdir(self.root)
        except OSError:
            return
        for name in leftovers:
            if name.startswith(".trash-"):
                shutil.rmtree(
                    os.path.join(self.root, name), ignore_errors=True
                )


def _worker(spec):
    # module-level so it pickles under every multiprocessing start method
    if (
        getattr(spec, "verify", False)
        or getattr(spec, "storm", None) is not None
        or getattr(spec, "corruption", None)
    ):
        # verification failures come back as RunFailure result objects
        # (with a repro bundle) instead of killing the whole batch
        from repro.verify.driver import run_checked

        return run_checked(spec)
    return run_one(spec)


def _resolve_jobs(jobs, n_pending):
    if jobs in (None, 0):
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_pending))


def run_many(specs, jobs=1, cache=False, cache_dir=None):
    """Run a batch of specs; results in the same order as ``specs``.

    ``jobs``: worker processes for the cache misses. ``1`` (the default)
    runs serially in-process; ``None``/``0`` uses every core. ``cache``:
    when true, consult and populate the on-disk :class:`ResultCache`
    (rooted at ``cache_dir``, the ``REPRO_CACHE_DIR`` environment
    variable, or ``./.sim_cache``). An existing :class:`ResultCache` may
    be passed directly as ``cache``.

    Identical specs in one batch are simulated once and share the result.
    """
    specs = list(specs)
    if isinstance(cache, ResultCache):
        store = cache
    elif cache:
        store = ResultCache(cache_dir)
    else:
        store = None

    keys = [spec.key() for spec in specs]
    results = [None] * len(specs)
    pending = {}  # spec key -> first index (dedup within the batch)
    for i, (spec, key) in enumerate(zip(specs, keys)):
        if key in pending or results[i] is not None:
            continue
        cached = store.load(spec) if store is not None else None
        if cached is not None:
            for j in range(i, len(specs)):
                if keys[j] == key:
                    results[j] = cached
        else:
            pending[key] = i

    if pending:
        todo = [specs[i] for i in pending.values()]
        n_jobs = _resolve_jobs(jobs, len(todo))
        if n_jobs > 1:
            import multiprocessing

            # fork (when available) shares the warm program caches with
            # the workers; spawn still works because _worker is importable
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = multiprocessing.get_context()
            with ctx.Pool(n_jobs) as pool:
                fresh = pool.map(_worker, todo)
        else:
            fresh = [_worker(spec) for spec in todo]
        for (key, i), result in zip(pending.items(), fresh):
            # failures are never cached: a transient capture must not
            # poison future batches with a pre-failed result
            if store is not None and not getattr(result, "is_failure", False):
                store.store(specs[i], result)
            for j in range(len(specs)):
                if keys[j] == key:
                    results[j] = result
    return results


def collect_series(results):
    """Interval-metrics series of a batch, pooled into one mean timeline.

    Results ride their telemetry through the pool and the cache (a
    :class:`~repro.harness.runner.SimResult` carries its
    ``TelemetryResult`` as plain data), so pooling after ``run_many`` is
    pure aggregation: every result whose spec enabled metrics
    contributes its series to a :meth:`~repro.telemetry.metrics.
    MetricsSeries.merge` (windows aligned by index, averaged pointwise).
    Returns ``None`` when no result carries a series.
    """
    from repro.telemetry.metrics import MetricsSeries

    series = [
        result.telemetry.metrics
        for result in results
        if result is not None
        and getattr(result, "telemetry", None) is not None
        and result.telemetry.metrics is not None
    ]
    return MetricsSeries.merge(series)
