"""Batch experiment engine: parallel fan-out plus an on-disk result cache.

The experiment drivers (tables, figures, calibration, shmoo) all reduce to
"run this grid of :class:`~repro.harness.runner.RunSpec` points".
:func:`run_many` is the single entry point for that pattern:

* **Caching** — every completed :class:`~repro.harness.runner.SimResult`
  is pickled under a content address derived from ``RunSpec.key()``, so
  re-running an experiment (or a different experiment sharing points, e.g.
  Figure 4 after Table 1) is free. The cache is invalidated wholesale
  whenever the simulator's source changes: results live in a subdirectory
  named after :func:`model_version`, a digest of every ``repro`` source
  file. Stale model versions are pruned opportunistically.

* **Parallelism** — cache misses are farmed to a ``multiprocessing`` pool.
  Runs are pure functions of their spec (the simulator threads explicit
  seeds everywhere), so fan-out cannot change results; a determinism test
  pins ``run_many(jobs=N) == serial``.

Both are safe because runs are deterministic and self-contained: a spec
fully determines its result (see ``RunSpec.canonical``).
"""

import hashlib
import os
import pickle
import sys

from repro.harness.diskcache import BlobStore
from repro.harness.runner import run_one

#: cache-format version; bump to orphan every existing cache entry.
_CACHE_FORMAT = 1

_version_cache = None


def model_version():
    """Digest of the simulator sources: the cache-invalidation stamp.

    Hashes every ``.py`` file under the installed ``repro`` package (path
    and contents, in sorted path order) so any change to the model —
    pipeline, fault injector, energy model, workload generator — retires
    all previously cached results.
    """
    global _version_cache
    if _version_cache is not None:
        return _version_cache
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256(b"repro-cache-format:%d" % _CACHE_FORMAT)
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            digest.update(rel.encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
    _version_cache = digest.hexdigest()[:16]
    return _version_cache


def default_cache_root():
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``./.sim_cache``."""
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.getcwd(), ".sim_cache"
    )


class ResultCache(BlobStore):
    """Content-addressed store of pickled :class:`SimResult` objects.

    Layout: ``<root>/<model_version>/<spec_key>.pkl`` (the store/prune
    mechanics live in :class:`~repro.harness.diskcache.BlobStore`, shared
    with the snapshot cache). Loads and stores are best-effort — a
    corrupt or unreadable entry is treated as a miss and overwritten,
    never raised to the caller.
    """

    suffix = ".pkl"

    def __init__(self, root=None):
        if root is None:
            root = default_cache_root()
        super().__init__(root, model_version())
        self.hits = 0
        self.misses = 0

    def _path(self, spec):
        return self.path_for(spec.key())

    def load(self, spec):
        """The cached result for ``spec``, or ``None`` on a miss.

        Any unreadable entry — truncated write, corrupted bytes, a
        pickle from renamed classes — is logged, unlinked, and treated
        as a miss: a bad cache file must cost one recompute, never a
        crashed batch.
        """
        key = spec.key()
        payload = self.read_bytes(key)
        if payload is None:
            self.misses += 1
            return None
        try:
            result = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 — any corrupt entry
            self.misses += 1
            print(
                f"[cache] discarding unreadable entry "
                f"{key + self.suffix}: {exc!r}",
                file=sys.stderr,
            )
            self.remove(key)
            return None
        self.hits += 1
        return result

    def store(self, spec, result):
        """Persist ``result`` under ``spec``'s content address."""
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self.write_bytes(spec.key(), payload)


def _worker(spec):
    # module-level so it pickles under every multiprocessing start method
    if (
        getattr(spec, "verify", False)
        or getattr(spec, "storm", None) is not None
        or getattr(spec, "corruption", None)
    ):
        # verification failures come back as RunFailure result objects
        # (with a repro bundle) instead of killing the whole batch
        from repro.verify.driver import run_checked

        return run_checked(spec)
    return run_one(spec)


def _resolve_jobs(jobs, n_pending):
    if jobs in (None, 0):
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_pending))


def _task(item):
    # module-level so it pickles under every multiprocessing start method;
    # items are ("batch", [specs...]) or ("one", spec)
    kind, payload = item
    if kind == "batch":
        from repro.snapshot.batch import run_batch

        return run_batch(payload, payload[0].snapshot_dir)
    return _worker(payload)


def _plan_tasks(todo, batch_lanes):
    """Partition ``todo`` into pool tasks, vectorizing where possible.

    Eligible specs sharing one warmup snapshot (and snapshot dir) become
    ``("batch", group)`` tasks of up to ``batch_lanes`` lanes; everything
    else stays a ``("one", spec)`` task. Returns ``(tasks, index_lists)``
    where ``index_lists[t]`` maps task ``t``'s results back to positions
    in ``todo``.
    """
    from repro.snapshot.batch import batch_groups

    by_dir = {}
    for i, spec in enumerate(todo):
        sd = getattr(spec, "snapshot_dir", None)
        if sd is not None:
            by_dir.setdefault(str(sd), []).append(i)
    index_of = {id(spec): i for i, spec in enumerate(todo)}
    grouped = set()
    tasks = []
    index_lists = []
    for indices in by_dir.values():
        groups, _rest = batch_groups([todo[i] for i in indices], batch_lanes)
        for group in groups:
            tasks.append(("batch", group))
            index_lists.append([index_of[id(spec)] for spec in group])
            grouped.update(index_lists[-1])
    for i, spec in enumerate(todo):
        if i not in grouped:
            tasks.append(("one", spec))
            index_lists.append([i])
    return tasks, index_lists


def _run_todo(todo, n_jobs, batch_lanes):
    """Run the cache-missing specs; results aligned with ``todo``."""
    if batch_lanes > 1:
        tasks, index_lists = _plan_tasks(todo, batch_lanes)
    else:
        tasks = [("one", spec) for spec in todo]
        index_lists = [[i] for i in range(len(todo))]
    if n_jobs > 1 and len(tasks) > 1:
        import multiprocessing

        # fork (when available) shares the warm program caches with
        # the workers; spawn still works because _task is importable
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        with ctx.Pool(min(n_jobs, len(tasks))) as pool:
            outs = pool.map(_task, tasks)
    else:
        outs = [_task(item) for item in tasks]
    results = [None] * len(todo)
    for (kind, _payload), indices, out in zip(tasks, index_lists, outs):
        if kind == "batch":
            for i, result in zip(indices, out):
                results[i] = result
        else:
            results[indices[0]] = out
    return results


def _ensure_snapshot_worker(spec):
    # module-level so it pickles under every multiprocessing start method
    from repro.snapshot import ensure_snapshot

    ensure_snapshot(spec, spec.snapshot_dir)


def prewarm_snapshots(specs, n_jobs=1):
    """Warm each unique warmup prefix of ``specs`` once, storing snapshots.

    Without this pre-pass, parallel cache misses sharing one warmup
    prefix would each re-simulate the warmup from cycle 0 — the snapshot
    store only dedupes after the first write lands. Missing prefixes are
    warmed once (in parallel when the batch itself is parallel) so the
    fan-out that follows forks every draw from a warmed snapshot.

    Public because every execution tier reuses it: ``run_many`` batches,
    the campaign executor's timeout pool, and fleet workers warming a
    leased point once before streaming its draws.
    """
    from repro.snapshot import SnapshotCache, ensure_snapshot, snapshot_eligible

    groups = {}  # (dir, warmup_key) -> first spec with that prefix
    for spec in specs:
        directory = getattr(spec, "snapshot_dir", None)
        if directory is None or not snapshot_eligible(spec):
            continue
        groups.setdefault((str(directory), spec.warmup_key()), spec)
    todo = [
        spec for (directory, key), spec in groups.items()
        if not SnapshotCache(directory).has(key)
    ]
    if not todo:
        return
    n_jobs = max(1, int(n_jobs))
    if min(n_jobs, len(todo)) > 1:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        with ctx.Pool(min(n_jobs, len(todo))) as pool:
            pool.map(_ensure_snapshot_worker, todo)
    else:
        for spec in todo:
            ensure_snapshot(spec, spec.snapshot_dir)


#: former private name, kept for callers that predate the public export
_prewarm_snapshots = prewarm_snapshots


def run_many(specs, jobs=1, cache=False, cache_dir=None, snapshot_dir=None,
             batch_lanes=None):
    """Run a batch of specs; results in the same order as ``specs``.

    ``jobs``: worker processes for the cache misses. ``1`` (the default)
    runs serially in-process; ``None``/``0`` uses every core. ``cache``:
    when true, consult and populate the on-disk :class:`ResultCache`
    (rooted at ``cache_dir``, the ``REPRO_CACHE_DIR`` environment
    variable, or ``./.sim_cache``). An existing :class:`ResultCache` may
    be passed directly as ``cache``.

    ``snapshot_dir``: when set, stamp it onto every spec as the warmup
    snapshot cache location (specs already carrying a ``snapshot_dir``
    keep theirs). Each unique warmup prefix of the batch is then warmed
    exactly once and every eligible run forks from its snapshot — see
    :mod:`repro.snapshot`.

    ``batch_lanes``: when ≥ 2 (default: ``REPRO_BATCH_LANES``, else off),
    cache-missing specs that share one warmup snapshot run through the
    lockstep batch engine (:mod:`repro.snapshot.batch`), up to that many
    lanes per engine call. Results are bit-identical to the scalar path;
    ineligible specs and singleton groups run scalar as before.

    Identical specs in one batch are simulated once and share the result.
    """
    from repro.snapshot.batch import resolve_batch_lanes

    specs = list(specs)
    batch_lanes = resolve_batch_lanes(batch_lanes)
    if isinstance(cache, ResultCache):
        store = cache
    elif cache:
        store = ResultCache(cache_dir)
    else:
        store = None
    if snapshot_dir is not None:
        for spec in specs:
            if getattr(spec, "snapshot_dir", None) is None:
                spec.snapshot_dir = str(snapshot_dir)

    keys = [spec.key() for spec in specs]
    results = [None] * len(specs)
    pending = {}  # spec key -> first index (dedup within the batch)
    for i, (spec, key) in enumerate(zip(specs, keys)):
        if key in pending or results[i] is not None:
            continue
        cached = store.load(spec) if store is not None else None
        if cached is not None:
            for j in range(i, len(specs)):
                if keys[j] == key:
                    results[j] = cached
        else:
            pending[key] = i

    if pending:
        todo = [specs[i] for i in pending.values()]
        n_jobs = _resolve_jobs(jobs, len(todo))
        prewarm_snapshots(todo, n_jobs)
        fresh = _run_todo(todo, n_jobs, batch_lanes)
        for (key, i), result in zip(pending.items(), fresh):
            # failures are never cached: a transient capture must not
            # poison future batches with a pre-failed result
            if store is not None and not getattr(result, "is_failure", False):
                store.store(specs[i], result)
            for j in range(len(specs)):
                if keys[j] == key:
                    results[j] = result
    return results


def collect_series(results):
    """Interval-metrics series of a batch, pooled into one mean timeline.

    Results ride their telemetry through the pool and the cache (a
    :class:`~repro.harness.runner.SimResult` carries its
    ``TelemetryResult`` as plain data), so pooling after ``run_many`` is
    pure aggregation: every result whose spec enabled metrics
    contributes its series to a :meth:`~repro.telemetry.metrics.
    MetricsSeries.merge` (windows aligned by index, averaged pointwise).
    Returns ``None`` when no result carries a series.
    """
    from repro.telemetry.metrics import MetricsSeries

    series = [
        result.telemetry.metrics
        for result in results
        if result is not None
        and getattr(result, "telemetry", None) is not None
        and result.telemetry.metrics is not None
    ]
    return MetricsSeries.merge(series)
