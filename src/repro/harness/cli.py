"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro-timing table1 --instructions 20000
    repro-timing fig4 --benchmarks astar sjeng
    repro-timing all --instructions 5000 --warmup 2000
"""

import argparse
import sys

from repro.harness import experiments


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing",
        description=(
            "Reproduce the evaluation of 'Efficiently Tolerating Timing "
            "Violations in Pipelined Microprocessors' (DAC 2013)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(experiments.EXPERIMENTS) + ["all", "run"],
        help="which table/figure to regenerate, or 'run' for a single "
             "simulation point",
    )
    parser.add_argument(
        "--instructions", type=int, default=10000,
        help="committed instructions measured per run (paper: 1M)",
    )
    parser.add_argument(
        "--warmup", type=int, default=4000,
        help="warmup instructions before measurement",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation grids (0 = all cores; "
             "default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.sim_cache)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the experiment's data as JSON (one file; with "
             "'all', a {name} placeholder is substituted)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmarks (default: the paper's set)",
    )
    single = parser.add_argument_group("single-run options (experiment=run)")
    single.add_argument("--scheme", default="ABS",
                        help="fault-handling scheme (default ABS)")
    single.add_argument("--vdd", type=float, default=0.97,
                        help="supply voltage (default 0.97)")
    single.add_argument("--overclock", type=float, default=1.0,
                        help="cycle-time shrink factor (default 1.0)")
    single.add_argument("--predictor", default="tep",
                        choices=["tep", "mre", "tvp"],
                        help="violation predictor design")
    single.add_argument("--trace", type=int, default=0, metavar="N",
                        help="print a pipeline timeline of N instructions")
    return parser


def _run_single(args):
    """Run one simulation point and print its summary (+optional trace)."""
    from repro.harness.export import write_json
    from repro.harness.runner import (
        RunSpec, SimResult, build_core, prime_caches,
    )
    from repro.power.energy_model import EnergyModel
    from repro.uarch.pipetrace import PipeTracer
    from repro.uarch.stats import SimStats

    benchmark = (args.benchmarks or ["bzip2"])[0]
    spec = RunSpec(
        benchmark, args.scheme, args.vdd, args.instructions, args.warmup,
        args.seed, predictor=args.predictor, overclock=args.overclock,
    )
    core = build_core(spec)
    tracer = PipeTracer(core) if args.trace else None
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
        core.stats = SimStats()
        core.hierarchy.reset_stats()
    stats = core.run(spec.n_instructions)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    result = SimResult(spec, stats, energy, core.hierarchy.stats())
    print(f"{spec!r}")
    for key, value in stats.as_dict().items():
        print(f"  {key:20s} {value}")
    print(f"  {'energy_pJ':20s} {energy.total:.1f}")
    print(f"  {'edp':20s} {energy.edp:.3e}")
    if tracer is not None:
        print()
        first = stats.committed + spec.warmup - args.trace
        print(tracer.render(first_seq=max(0, first), count=args.trace))
    if args.json:
        path = args.json.replace("{name}", "run")
        write_json(result, path)
        print(f"[wrote {path}]")
    return result


def _run(name, args):
    fn = experiments.EXPERIMENTS[name]
    if name in ("table2", "table3"):
        result = fn()
    elif name == "fig7":
        result = fn(seed=args.seed)
    else:
        result = fn(
            n_instructions=args.instructions,
            warmup=args.warmup,
            seed=args.seed,
            benchmarks=args.benchmarks,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    print(result.render())
    print()
    if args.json:
        from repro.harness.export import write_json

        path = args.json.replace("{name}", name)
        write_json(result, path)
        print(f"[wrote {path}]")
    return result


def main(argv=None):
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "run":
        _run_single(args)
        return 0
    names = (
        sorted(experiments.EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        _run(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
