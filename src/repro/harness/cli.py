"""Command-line interface: regenerate any table or figure of the paper.

Examples::

    repro-timing table1 --instructions 20000
    repro-timing fig4 --benchmarks astar sjeng
    repro-timing all --instructions 5000 --warmup 2000
    repro-timing campaign run --dir out/c1 --benchmarks astar --schemes ABS
    repro-timing campaign resume --dir out/c1 --jobs 4
"""

import argparse
import sys

from repro.harness import experiments


def _known_benchmarks():
    """All resolvable benchmark names (SPEC profiles + microbenchmarks)."""
    from repro.workloads.microbench import MICROBENCH_PROFILES
    from repro.workloads.profiles import SPEC2006_PROFILES

    return sorted(SPEC2006_PROFILES) + sorted(MICROBENCH_PROFILES)


def _known_schemes():
    from repro.core.schemes import SchemeKind

    return [kind.name for kind in SchemeKind]


def _validate_benchmarks(names):
    """Exit code (or None) after eagerly checking benchmark names.

    A bad name used to surface as a ``KeyError`` from deep inside
    ``get_profile`` mid-run; fail fast with the known list instead.
    """
    if not names:
        return None
    known = _known_benchmarks()
    bad = sorted(set(names) - set(known))
    if bad:
        print(
            f"unknown benchmark(s): {', '.join(bad)}\n"
            f"known benchmarks: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    return None


def _validate_schemes(names):
    """Exit code (or None) after eagerly checking scheme names."""
    from repro.core.schemes import make_scheme

    bad = []
    for name in names:
        try:
            make_scheme(name)
        except (ValueError, KeyError):
            bad.append(name)
    if bad:
        print(
            f"unknown scheme(s): {', '.join(bad)}\n"
            f"known schemes: {', '.join(_known_schemes())}",
            file=sys.stderr,
        )
        return 2
    return None


def _validate_telemetry_interval(interval):
    """Exit code (or None) after eagerly checking --telemetry-interval.

    A negative window would only blow up once the first simulation
    builds its TelemetryConfig; reject it up front like bad benchmark
    or scheme names.
    """
    if interval is None or interval >= 0:
        return None
    print(
        f"--telemetry-interval must be >= 0 cycles (0 = off), "
        f"got {interval}",
        file=sys.stderr,
    )
    return 2


def _validate_endpoint(host, port, allow_ephemeral=True):
    """Exit code (or None) after eagerly checking a host/port pair."""
    if not str(host).strip():
        print(
            "--host must be a non-empty host name or address "
            "(e.g. 127.0.0.1)",
            file=sys.stderr,
        )
        return 2
    low = 0 if allow_ephemeral else 1
    if not low <= port <= 65535:
        hint = "0 (pick an ephemeral port) or 1..65535" if allow_ephemeral \
            else "1..65535"
        print(f"--port must be {hint}, got {port}", file=sys.stderr)
        return 2
    return None


def _parse_connect(value):
    """``(host, port)`` from a HOST:PORT string; ValueError with a hint."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--connect expects HOST:PORT (e.g. 127.0.0.1:7777), "
            f"got {value!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--connect port must be an integer, got {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(f"--connect port must be 1..65535, got {port}")
    return host, port


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing",
        description=(
            "Reproduce the evaluation of 'Efficiently Tolerating Timing "
            "Violations in Pipelined Microprocessors' (DAC 2013)."
        ),
        epilog=(
            "Statistical campaigns (grids of seeds with confidence-driven "
            "stopping) live under the 'campaign' subcommand: "
            "repro-timing campaign {plan,run,resume,report,status} --dir "
            "DIR ... Distributed campaigns live under 'fleet': "
            "repro-timing fleet {serve,worker,run,status} ..."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(experiments.EXPERIMENTS) + ["all", "run"],
        help="which table/figure to regenerate, or 'run' for a single "
             "simulation point",
    )
    parser.add_argument(
        "--list-benchmarks", action="store_true",
        help="print the known benchmark names and exit",
    )
    parser.add_argument(
        "--instructions", type=int, default=10000,
        help="committed instructions measured per run (paper: 1M)",
    )
    parser.add_argument(
        "--warmup", type=int, default=4000,
        help="warmup instructions before measurement",
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation grids (0 = all cores; "
             "default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.sim_cache)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the experiment's data as JSON (one file; with "
             "'all', a {name} placeholder is substituted)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmarks (default: the paper's set)",
    )
    single = parser.add_argument_group("single-run options (experiment=run)")
    single.add_argument("--scheme", default="ABS",
                        help="fault-handling scheme (default ABS)")
    single.add_argument("--vdd", type=float, default=0.97,
                        help="supply voltage (default 0.97)")
    single.add_argument("--overclock", type=float, default=1.0,
                        help="cycle-time shrink factor (default 1.0)")
    single.add_argument("--predictor", default="tep",
                        choices=["tep", "mre", "tvp"],
                        help="violation predictor design")
    single.add_argument("--trace", type=int, default=0, metavar="N",
                        help="print a pipeline timeline of N instructions")
    return parser


def _run_single(args):
    """Run one simulation point and print its summary (+optional trace)."""
    from repro.harness.export import write_json
    from repro.harness.runner import (
        RunSpec, SimResult, build_core, prime_caches,
    )
    from repro.power.energy_model import EnergyModel
    from repro.uarch.pipetrace import PipeTracer
    from repro.uarch.stats import SimStats

    benchmark = (args.benchmarks or ["bzip2"])[0]
    spec = RunSpec(
        benchmark, args.scheme, args.vdd, args.instructions, args.warmup,
        args.seed, predictor=args.predictor, overclock=args.overclock,
    )
    core = build_core(spec)
    tracer = PipeTracer(core) if args.trace else None
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
        core.stats = SimStats()
        core.hierarchy.reset_stats()
    stats = core.run(spec.n_instructions)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    result = SimResult(spec, stats, energy, core.hierarchy.stats())
    print(f"{spec!r}")
    for key, value in stats.as_dict().items():
        print(f"  {key:20s} {value}")
    print(f"  {'energy_pJ':20s} {energy.total:.1f}")
    print(f"  {'edp':20s} {energy.edp:.3e}")
    if tracer is not None:
        print()
        first = stats.committed + spec.warmup - args.trace
        print(tracer.render(first_seq=max(0, first), count=args.trace))
    if args.json:
        path = args.json.replace("{name}", "run")
        write_json(result, path)
        print(f"[wrote {path}]")
    return result


def _run(name, args):
    fn = experiments.EXPERIMENTS[name]
    if name in ("table2", "table3"):
        result = fn()
    elif name == "fig7":
        result = fn(seed=args.seed)
    else:
        result = fn(
            n_instructions=args.instructions,
            warmup=args.warmup,
            seed=args.seed,
            benchmarks=args.benchmarks,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
    print(result.render())
    print()
    if args.json:
        from repro.harness.export import write_json

        path = args.json.replace("{name}", name)
        write_json(result, path)
        print(f"[wrote {path}]")
    return result


# ----------------------------------------------------------------------
# trace subcommand
# ----------------------------------------------------------------------
def _trace_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing trace",
        description=(
            "Telemetry capture on a single simulation point: structured "
            "event tracing (Chrome/Perfetto or JSONL export) and "
            "cycle-windowed interval metrics (CSV/JSON export). See "
            "docs/observability.md."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)
    run = verbs.add_parser(
        "run", help="record pipeline events; export a Perfetto/JSONL trace"
    )
    metrics = verbs.add_parser(
        "metrics", help="record interval metrics; export a CSV/JSON table"
    )
    for sub in (run, metrics):
        sub.add_argument("--benchmark", default="bzip2",
                         help="benchmark to simulate (default bzip2)")
        sub.add_argument("--scheme", default="CDS",
                         help="fault-handling scheme (default CDS)")
        sub.add_argument("--vdd", type=float, default=0.97,
                         help="supply voltage (default 0.97)")
        sub.add_argument("--instructions", type=int, default=10000,
                         help="measured instructions")
        sub.add_argument("--warmup", type=int, default=2000,
                         help="warmup instructions (not recorded)")
        sub.add_argument("--seed", type=int, default=1, help="run seed")
        sub.add_argument("--overclock", type=float, default=1.0,
                         help="cycle-time shrink factor")
        sub.add_argument("--predictor", default="tep",
                         choices=["tep", "mre", "tvp"],
                         help="violation predictor design")
        sub.add_argument("--interval", type=int, default=500,
                         metavar="CYCLES",
                         help="metrics window size in cycles")
        sub.add_argument("--storm", action="store_true",
                         help="run under the default fault storm")
        sub.add_argument("--profile", action="store_true",
                         help="also print the simulator self-profile")
        sub.add_argument("--out", default=None, metavar="FILE",
                         help="output path (default: trace.json / "
                              "events.jsonl / metrics.csv|json)")
    run.add_argument("--format", choices=["perfetto", "jsonl"],
                     default="perfetto", help="trace export format")
    run.add_argument("--event-capacity", type=int, default=65536,
                     help="event ring-buffer capacity (oldest evicted)")
    metrics.add_argument("--format", choices=["csv", "json"], default="csv",
                         help="metrics export format")
    return parser


def _trace_main(argv):
    args = _trace_parser().parse_args(argv)
    code = _validate_benchmarks([args.benchmark])
    if code is None:
        code = _validate_schemes([args.scheme])
    if code is not None:
        return code
    from repro.harness.runner import RunSpec, run_one
    from repro.telemetry import TelemetryConfig

    storm = None
    if args.storm:
        from repro.faults.storm import default_storm

        storm = default_storm()
    config = TelemetryConfig(
        metrics=True,
        interval=args.interval,
        events=args.verb == "run",
        event_capacity=getattr(args, "event_capacity", 65536),
        profile=args.profile,
    )
    spec = RunSpec(
        args.benchmark, args.scheme, args.vdd, args.instructions,
        args.warmup, args.seed, predictor=args.predictor,
        overclock=args.overclock, storm=storm, telemetry=config,
    )
    result = run_one(spec)
    telem = result.telemetry
    print(f"{spec!r}")
    print(
        f"  {result.stats.committed} committed in {result.stats.cycles} "
        f"cycles (ipc {result.ipc:.3f}, fault_rate {result.fault_rate:.4f})"
    )
    if args.verb == "run":
        print(
            f"  events: {telem.events_emitted} emitted, "
            f"{telem.events_dropped} dropped, counts "
            f"{dict(sorted(telem.event_counts.items()))}"
        )
        if args.format == "perfetto":
            from repro.telemetry import validate_trace, write_perfetto

            path = args.out or "trace.json"
            trace = write_perfetto(
                path, telem.events, series=telem.metrics,
                name=f"{args.benchmark}/{args.scheme}",
            )
            problems = validate_trace(trace)
            if problems:
                for problem in problems:
                    print(f"invalid trace: {problem}", file=sys.stderr)
                return 1
            print(
                f"[wrote {path}: {len(trace['traceEvents'])} trace events; "
                "open in https://ui.perfetto.dev]"
            )
        else:
            from repro.telemetry import write_jsonl

            path = args.out or "events.jsonl"
            write_jsonl(telem.events, path)
            print(f"[wrote {path}: {len(telem.events)} events]")
    else:
        series = telem.metrics
        print(f"  metrics: {len(series)} windows of {series.interval} cycles")
        summary = series.summary()
        for name in ("ipc", "fault_rate", "replay_rate"):
            entry = summary[name]
            print(
                f"    {name:12s} mean {entry['mean']:.4f} "
                f"[{entry['min']:.4f}..{entry['max']:.4f}]"
            )
        path = args.out or f"metrics.{args.format}"
        payload = (
            series.to_csv() if args.format == "csv" else series.to_json()
        )
        with open(path, "w") as fh:
            fh.write(payload)
            if not payload.endswith("\n"):
                fh.write("\n")
        print(f"[wrote {path}]")
    if args.profile and telem.profile is not None:
        profile = telem.profile
        print(f"  self-profile: {profile['wall_seconds']:.3f}s wall")
        for label, entry in profile["stages"].items():
            print(
                f"    {label:12s} {entry['seconds']:.3f}s "
                f"({entry['calls']} calls)"
            )
        print(f"    {'other':12s} {profile['other_seconds']:.3f}s")
    return 0


# ----------------------------------------------------------------------
# verify subcommand
# ----------------------------------------------------------------------
def _verify_parser():
    from repro.faults.storm import StormConfig

    parser = argparse.ArgumentParser(
        prog="repro-timing verify",
        description=(
            "Runtime verification: lockstep golden-model checking, "
            "fault-storm stress runs, and repro-bundle replay. Any "
            "divergence or hang is captured as a minimized, replayable "
            "JSON bundle. See docs/robustness.md."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)
    lockstep = verbs.add_parser(
        "lockstep",
        help="lockstep-check a (benchmark x scheme x vdd) grid",
    )
    storm = verbs.add_parser(
        "storm",
        help="fault-storm stress runs under the lockstep checker",
    )
    for sub in (lockstep, storm):
        sub.add_argument("--benchmarks", nargs="+",
                         default=["astar", "bzip2"],
                         help="benchmarks to check")
        sub.add_argument("--schemes", nargs="+",
                         default=["FAULT_FREE", "ABS", "FFS", "CDS"],
                         help="schemes to check")
        sub.add_argument("--vdds", nargs="+", type=float,
                         default=[1.10, 0.97],
                         help="supply voltages to check")
        sub.add_argument("--instructions", type=int, default=4000,
                         help="measured instructions per run")
        sub.add_argument("--warmup", type=int, default=1000,
                         help="warmup instructions per run")
        sub.add_argument("--seed", type=int, default=1, help="base seed")
        sub.add_argument("--seeds", type=int, default=1,
                         help="consecutive seeds per grid point")
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (0 = all cores)")
        sub.add_argument("--bundle-dir", default="repro_bundles",
                         help="where failing runs drop repro bundles")
    for name in StormConfig.FIELDS:
        storm.add_argument(
            f"--{name.replace('_', '-')}", type=float, default=None,
            help=f"override the default-storm {name}",
        )
    replay = verbs.add_parser(
        "replay-bundle", help="re-run a repro bundle and diff the failure"
    )
    replay.add_argument("bundle", help="path of the bundle JSON")
    replay.add_argument("--full", action="store_true",
                        help="replay the original spec instead of the "
                             "minimized one")
    return parser


def _verify_main(argv):
    import json

    args = _verify_parser().parse_args(argv)
    if args.verb == "replay-bundle":
        from repro.verify.bundle import replay_bundle

        try:
            report = replay_bundle(args.bundle, minimized=not args.full)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot replay {args.bundle}: {exc!r}", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2, sort_keys=True))
        if report["identical"]:
            print("replay: failure reproduced byte-identically")
            return 0
        if report["reproduced"]:
            print("replay: failure kind reproduced but detail differs "
                  "(model drift? check model_version)", file=sys.stderr)
        else:
            print("replay: failure did NOT reproduce", file=sys.stderr)
        return 1

    code = _validate_benchmarks(args.benchmarks)
    if code is None:
        code = _validate_schemes(args.schemes)
    if code is not None:
        return code
    storm = None
    if args.verb == "storm":
        from repro.faults.storm import StormConfig, default_storm

        storm = default_storm()
        overrides = {
            name: getattr(args, name)
            for name in StormConfig.FIELDS
            if getattr(args, name) is not None
        }
        if overrides:
            knobs = storm.to_dict()
            knobs.update(overrides)
            storm = StormConfig.from_dict(knobs)
    from repro.harness.parallel import run_many
    from repro.harness.runner import RunSpec

    specs = []
    for benchmark in args.benchmarks:
        for scheme in args.schemes:
            for vdd in args.vdds:
                for s in range(args.seeds):
                    spec = RunSpec(
                        benchmark, scheme, vdd, args.instructions,
                        args.warmup, args.seed + s,
                        verify=True, storm=storm,
                    )
                    spec.repro_dir = args.bundle_dir
                    specs.append(spec)
    results = run_many(specs, jobs=args.jobs)
    failures = 0
    for spec, result in zip(specs, results):
        scheme = getattr(spec.scheme, "name", spec.scheme)
        tag = f"{spec.benchmark}/{scheme}/vdd={spec.vdd!r}/seed={spec.seed}"
        if getattr(result, "is_failure", False):
            failures += 1
            print(f"FAIL {tag}: {result.kind} -> {result.bundle_path}")
        else:
            verification = getattr(result, "verification", {}) or {}
            print(
                f"ok   {tag}: {verification.get('commits', '?')} commits, "
                f"digest {verification.get('digest', '?')}, "
                f"safety_net={result.stats.safety_net_replays}, "
                f"storm_faults={result.stats.storm_faults}"
            )
    print(
        f"verify {args.verb}: {len(specs) - failures}/{len(specs)} runs "
        f"clean, {failures} failure(s)"
        + (f" (bundles in {args.bundle_dir})" if failures else "")
    )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# campaign subcommand
# ----------------------------------------------------------------------
def _add_spec_options(parser):
    parser.add_argument("--name", default="campaign",
                        help="campaign name (report header)")
    parser.add_argument("--benchmarks", nargs="+",
                        default=["astar", "bzip2"],
                        help="benchmark axis of the grid")
    parser.add_argument("--schemes", nargs="+",
                        default=["EP", "ABS", "FFS", "CDS"],
                        help="scheme axis of the grid")
    parser.add_argument("--vdds", nargs="+", type=float, default=[0.97],
                        help="supply-voltage axis of the grid")
    parser.add_argument("--instructions", type=int, default=6000,
                        help="measured instructions per run")
    parser.add_argument("--warmup", type=int, default=3000,
                        help="warmup instructions per run")
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed of the per-point seed streams")
    parser.add_argument("--seeds-min", type=int, default=3,
                        help="minimum seed draws per grid point")
    parser.add_argument("--seeds-max", type=int, default=12,
                        help="maximum seed draws per grid point")
    parser.add_argument("--batch", type=int, default=3,
                        help="seed draws per sequential batch")
    parser.add_argument(
        "--half-width", nargs="*", metavar="METRIC=HW", default=None,
        help="stopping targets, e.g. perf_overhead=0.02 fault_rate=0.005 "
             "(default: those two)",
    )
    parser.add_argument("--predictor", default="tep",
                        choices=["tep", "mre", "tvp"],
                        help="violation predictor design")
    parser.add_argument(
        "--telemetry-interval", type=int, default=0, metavar="CYCLES",
        help="collect cycle-windowed interval metrics on every scheme "
             "run at this window size and aggregate them in the report "
             "(0 = off)",
    )


def _add_exec_options(parser):
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run timeout in seconds (default: none)")
    parser.add_argument("--retries", type=int, default=2,
                        help="bounded retries for failed/hung batches")
    parser.add_argument("--batch-lanes", type=int, default=None, metavar="N",
                        help="vectorize draws sharing a warmup snapshot, "
                             "N lanes per batch-engine call (default: "
                             "$REPRO_BATCH_LANES, else off; results are "
                             "bit-identical either way)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="disable warmup snapshot forking (always "
                             "re-simulate warmups)")
    parser.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="warmup snapshot cache location (default: "
                             "$REPRO_SNAPSHOT_DIR, the result cache root, "
                             "or <dir>/snapshots when --no-cache)")


def _campaign_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing campaign",
        description=(
            "Statistical fault-injection campaigns: plan a (benchmark x "
            "scheme x vdd) grid, measure each point over a derived seed "
            "stream until its confidence intervals meet the targets, "
            "journal everything for crash-safe resume, and report "
            "(mean, CI, n) aggregates. See docs/campaigns.md."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)
    plan = verbs.add_parser("plan", help="write the campaign manifest")
    plan.add_argument("--dir", required=True, help="campaign directory")
    _add_spec_options(plan)
    run = verbs.add_parser("run", help="plan (if needed) and execute")
    run.add_argument("--dir", required=True, help="campaign directory")
    _add_spec_options(run)
    _add_exec_options(run)
    resume = verbs.add_parser("resume", help="continue a killed campaign")
    resume.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(resume)
    report = verbs.add_parser("report", help="rebuild report.json/.md")
    report.add_argument("--dir", required=True, help="campaign directory")
    status = verbs.add_parser(
        "status",
        help="per-point draw counts, CI half-widths, and stopping state",
    )
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument("--json", action="store_true",
                        help="print the status dict as JSON")
    status.add_argument("--follow", action="store_true",
                        help="live-refresh until the campaign completes "
                             "(Ctrl-C to stop)")
    status.add_argument("--interval", type=float, default=0.5, metavar="S",
                        help="journal poll interval with --follow "
                             "(default 0.5)")
    return parser


def _parse_targets(pairs):
    targets = {}
    for pair in pairs:
        metric, _, value = pair.partition("=")
        if not value:
            raise ValueError(f"expected METRIC=HALFWIDTH, got {pair!r}")
        targets[metric] = float(value)
    return targets


def _campaign_spec(args):
    from repro.campaign import CampaignSpec

    targets = (
        _parse_targets(args.half_width) if args.half_width is not None
        else None
    )
    return CampaignSpec(
        name=args.name,
        benchmarks=args.benchmarks,
        schemes=args.schemes,
        vdds=args.vdds,
        n_instructions=args.instructions,
        warmup=args.warmup,
        master_seed=args.seed,
        min_seeds=args.seeds_min,
        max_seeds=args.seeds_max,
        batch_size=args.batch,
        targets=targets,
        predictor=args.predictor,
        telemetry_interval=args.telemetry_interval,
    )


def _print_report_summary(report):
    print(
        f"campaign {report['campaign']!r}: "
        f"{report['points_done']}/{report['points_total']} points, "
        f"{report['runs_total']} seed draws "
        f"({report['sims_total']} simulations), "
        f"complete={report['complete']}"
    )


def _campaign_main(argv):
    import os

    from repro.campaign import (
        CampaignError, read_manifest, run_campaign, write_manifest,
        write_reports,
    )

    args = _campaign_parser().parse_args(argv)
    if args.verb in ("plan", "run"):
        code = _validate_benchmarks(args.benchmarks)
        if code is None:
            code = _validate_schemes(args.schemes)
        if code is None:
            code = _validate_telemetry_interval(args.telemetry_interval)
        if code is not None:
            return code
    if args.verb == "status":
        import json

        from repro.campaign import build_status, render_status

        if args.follow:
            from repro.dashboard import follow_status

            try:
                return follow_status(args.dir, interval=args.interval)
            except FileNotFoundError:
                print(f"no campaign manifest in {args.dir}",
                      file=sys.stderr)
                return 2
        try:
            status = build_status(args.dir)
        except FileNotFoundError:
            print(f"no campaign manifest in {args.dir}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(render_status(status))
        return 0
    if args.verb == "plan":
        try:
            spec = _campaign_spec(args).validate()
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        write_manifest(args.dir, spec)
        points = spec.points()
        print(
            f"planned {len(points)} grid points x "
            f"{spec.min_seeds}..{spec.max_seeds} seeds -> "
            f"{os.path.join(args.dir, 'manifest.json')}"
        )
        return 0
    if args.verb == "report":
        try:
            read_manifest(args.dir)
        except FileNotFoundError:
            print(f"no campaign manifest in {args.dir}", file=sys.stderr)
            return 2
        report = write_reports(args.dir)
        _print_report_summary(report)
        print(f"[wrote {os.path.join(args.dir, 'report.json')} and .md]")
        return 0
    # run / resume
    spec = None
    if args.verb == "run":
        try:
            read_manifest(args.dir)
        except FileNotFoundError:
            spec = _campaign_spec(args)
    try:
        report = run_campaign(
            args.dir, spec=spec, jobs=args.jobs,
            cache=not args.no_cache, cache_dir=args.cache_dir,
            resume=args.verb == "resume", timeout=args.timeout,
            retries=args.retries, snapshots=not args.no_snapshot,
            snapshot_dir=args.snapshot_dir, batch_lanes=args.batch_lanes,
        )
    except (CampaignError, ValueError, FileNotFoundError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_report_summary(report)
    print(f"[wrote {os.path.join(args.dir, 'report.json')} and .md]")
    return 0


# ----------------------------------------------------------------------
# dashboard subcommand
# ----------------------------------------------------------------------
def _dashboard_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing dashboard",
        description=(
            "Live results service: serve a campaign directory (live, "
            "killed, or finished; single-pool or fleet) as a web "
            "dashboard with JSON endpoints and a Server-Sent-Events "
            "stream. See docs/observability.md ('Live dashboard')."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)
    serve = verbs.add_parser(
        "serve", help="serve the dashboard for a campaign directory"
    )
    serve.add_argument("--dir", required=True, help="campaign directory")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to listen on (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to listen on (default 0 = ephemeral; "
                            "the bound port lands in dashboard.json)")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="S",
                       help="journal poll cadence in seconds "
                            "(default 0.5)")
    return parser


def _dashboard_main(argv):
    args = _dashboard_parser().parse_args(argv)
    code = _validate_endpoint(args.host, args.port)
    if code is not None:
        return code
    if args.poll_interval <= 0:
        print(f"--poll-interval must be > 0, got {args.poll_interval}",
              file=sys.stderr)
        return 2
    from repro.campaign import read_manifest
    from repro.dashboard import serve_dashboard

    try:
        read_manifest(args.dir)
    except FileNotFoundError:
        print(f"no campaign manifest in {args.dir}", file=sys.stderr)
        return 2
    return serve_dashboard(
        args.dir, host=args.host, port=args.port,
        poll_interval=args.poll_interval,
    )


# ----------------------------------------------------------------------
# fleet subcommand
# ----------------------------------------------------------------------
def _add_fleet_cache_options(parser):
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="disable warmup snapshot forking")
    parser.add_argument("--snapshot-dir", default=None, metavar="DIR",
                        help="warmup snapshot cache location")


def _add_fleet_security_options(parser, server):
    parser.add_argument("--secret", default=None, metavar="SECRET",
                        help="shared fleet secret (HMAC handshake); "
                             "prefer --secret-file or $REPRO_FLEET_SECRET "
                             "over putting it in argv")
    parser.add_argument("--secret-file", default=None, metavar="FILE",
                        help="file holding the shared fleet secret")
    if server:
        parser.add_argument("--tls-cert", default=None, metavar="PEM",
                            help="serve TLS with this certificate chain")
        parser.add_argument("--tls-key", default=None, metavar="PEM",
                            help="private key for --tls-cert")
        parser.add_argument("--tls-ca", default=None, metavar="PEM",
                            help="require client certificates signed by "
                                 "this CA (mutual TLS)")
    else:
        parser.add_argument("--tls-ca", default=None, metavar="PEM",
                            help="connect over TLS, trusting only this CA "
                                 "(for a self-signed coordinator, its own "
                                 "certificate)")
        parser.add_argument("--tls-cert", default=None, metavar="PEM",
                            help="client certificate (mutual TLS)")
        parser.add_argument("--tls-key", default=None, metavar="PEM",
                            help="private key for --tls-cert")


def _validate_fleet_security(args):
    """Fail fast on unusable secret/TLS arguments; the resolved secret.

    Raises :class:`~repro.fleet.security.SecurityError` — an unreadable
    ``--secret-file`` or a ``--tls-cert`` without its key must die at
    the CLI with a clear message, not minutes later inside a serve loop
    or a worker's reconnect storm.
    """
    from repro.fleet.security import resolve_secret, validate_tls_args

    secret = resolve_secret(args.secret, args.secret_file)
    validate_tls_args(args.tls_cert, args.tls_key, args.tls_ca)
    return secret


def _fleet_parser():
    parser = argparse.ArgumentParser(
        prog="repro-timing fleet",
        description=(
            "Distributed campaigns: a coordinator leases seed draws to "
            "workers over TCP, streams their journal entries into "
            "per-worker shards, and merges a journal/report "
            "byte-identical to a single-pool 'campaign run'. See "
            "docs/campaigns.md ('Running on a fleet')."
        ),
    )
    verbs = parser.add_subparsers(dest="verb", required=True)
    serve = verbs.add_parser(
        "serve", help="run the coordinator for a campaign directory"
    )
    serve.add_argument("--dir", required=True, help="campaign directory")
    _add_spec_options(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to listen on (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to listen on (default 0 = ephemeral; "
                            "the bound port lands in coordinator.json)")
    serve.add_argument("--resume", action="store_true",
                       help="continue a campaign with journaled progress")
    serve.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       metavar="S",
                       help="seconds of worker silence before its leases "
                            "are revoked and re-leased (default 15)")
    _add_fleet_cache_options(serve)
    _add_fleet_security_options(serve, server=True)
    worker = verbs.add_parser(
        "worker", help="join a coordinator and execute leased draws"
    )
    worker.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="coordinator endpoint")
    worker.add_argument("--dir", default=None,
                        help="campaign directory to read the coordinator "
                             "endpoint from (alternative to --connect)")
    worker.add_argument("--name", default=None,
                        help="worker name (shard journal name; default "
                             "<hostname>-<pid>)")
    _add_fleet_cache_options(worker)
    _add_fleet_security_options(worker, server=False)
    worker.add_argument("--reconnect-attempts", type=int, default=None,
                        metavar="N",
                        help="consecutive failed connections before "
                             "giving up (default 5; progress refills "
                             "the budget)")
    worker.add_argument("--reconnect-delay", type=float, default=None,
                        metavar="S",
                        help="base reconnect backoff in seconds "
                             "(default 0.5, doubling per attempt)")
    worker.add_argument("--reconnect-max-delay", type=float, default=None,
                        metavar="S",
                        help="reconnect backoff ceiling (default 8)")
    worker.add_argument("--throttle", type=float, default=0.0, metavar="S",
                        help="artificial per-draw delay — a straggler "
                             "dial for work-stealing experiments")
    worker.add_argument("--batch-lanes", type=int, default=None, metavar="N",
                        help="vectorize a lease's draws through the batch "
                             "engine, N lanes per call (default: "
                             "$REPRO_BATCH_LANES, else per-draw)")
    run = verbs.add_parser(
        "run", help="coordinator + N local workers, one command"
    )
    run.add_argument("--dir", required=True, help="campaign directory")
    _add_spec_options(run)
    run.add_argument("--workers", type=int, default=2, metavar="N",
                     help="local worker subprocesses (default 2); with "
                          "--min-workers/--max-workers this is only the "
                          "starting size of an elastic pool")
    run.add_argument("--min-workers", type=int, default=None, metavar="N",
                     help="elastic pool floor (enables autoscaling)")
    run.add_argument("--max-workers", type=int, default=None, metavar="N",
                     help="elastic pool ceiling (enables autoscaling)")
    run.add_argument("--no-steal", action="store_true",
                     help="disable work-stealing of straggler lease tails")
    run.add_argument("--host", default="127.0.0.1",
                     help="address to listen on (default 127.0.0.1)")
    run.add_argument("--port", type=int, default=0,
                     help="port to listen on (default 0 = ephemeral)")
    run.add_argument("--resume", action="store_true",
                     help="continue a campaign with journaled progress")
    run.add_argument("--heartbeat-timeout", type=float, default=15.0,
                     metavar="S", help="worker-silence revocation timeout")
    _add_fleet_cache_options(run)
    _add_fleet_security_options(run, server=True)
    status = verbs.add_parser(
        "status", help="per-point progress of a fleet campaign"
    )
    status.add_argument("--dir", default=None,
                        help="campaign directory (live query via its "
                             "coordinator.json when possible, shard "
                             "replay otherwise)")
    status.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="ask a live coordinator directly")
    status.add_argument("--json", action="store_true",
                        help="print the status dict as JSON")
    status.add_argument("--tls-ca", default=None, metavar="PEM",
                        help="the coordinator serves TLS; trust this CA")
    status.add_argument("--follow", action="store_true",
                        help="live-refresh from the journals/ledger until "
                             "the campaign completes (requires --dir)")
    status.add_argument("--interval", type=float, default=0.5, metavar="S",
                        help="journal poll interval with --follow "
                             "(default 0.5)")
    return parser


def _fleet_endpoint(args):
    """``(host, port)`` for worker/status verbs; ValueError with a hint."""
    if args.connect:
        return _parse_connect(args.connect)
    if args.dir:
        from repro.fleet import read_endpoint

        try:
            endpoint = read_endpoint(args.dir)
        except FileNotFoundError:
            raise ValueError(
                f"no coordinator.json in {args.dir} — is a coordinator "
                "serving this campaign? (or pass --connect HOST:PORT)"
            ) from None
        return endpoint["host"], endpoint["port"]
    raise ValueError("pass --connect HOST:PORT or --dir DIR")


def _render_fleet_extras(status):
    lines = []
    workers = status.get("workers")
    if workers is not None:
        shown = ", ".join(
            f"{name} ({info['last_seen_s']}s ago)"
            for name, info in workers.items()
        ) or "none"
        lines.append(f"  workers: {shown}")
    leases = status.get("leases")
    if leases is not None:
        for lease in leases:
            lines.append(
                f"  lease {lease['lease']}: {lease['point']} "
                f"-> {lease['worker']} ({len(lease['pending'])} pending)"
            )
    audit = status.get("audit")
    if audit:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(audit.items()))
        lines.append(f"  audit: {shown}")
    return "\n".join(lines)


def _fleet_main(argv):
    import json
    import os

    args = _fleet_parser().parse_args(argv)
    if args.verb in ("serve", "run"):
        code = _validate_benchmarks(args.benchmarks)
        if code is None:
            code = _validate_schemes(args.schemes)
        if code is None:
            code = _validate_telemetry_interval(args.telemetry_interval)
        if code is None:
            code = _validate_endpoint(args.host, args.port)
        if code is not None:
            return code
    if args.verb == "run" and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.verb == "run":
        low, high = args.min_workers, args.max_workers
        if low is not None and low < 1:
            print(f"--min-workers must be >= 1, got {low}",
                  file=sys.stderr)
            return 2
        if (low is not None and high is not None and low > high):
            print(
                f"--min-workers ({low}) must be <= --max-workers ({high})",
                file=sys.stderr,
            )
            return 2
    secret = None
    if args.verb in ("serve", "worker", "run"):
        from repro.fleet.security import SecurityError

        try:
            secret = _validate_fleet_security(args)
        except SecurityError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.verb == "worker" and args.name is not None:
        from repro.fleet.coordinator import valid_worker_name

        if not valid_worker_name(args.name):
            print(
                f"invalid worker name {args.name!r}: 1-64 characters "
                "from [A-Za-z0-9._-], not starting with '.' or '_'",
                file=sys.stderr,
            )
            return 2

    if args.verb == "status":
        from repro.fleet.service import offline_status, query_status

        if args.follow:
            if not args.dir:
                print("--follow needs --dir (it tails the journals and "
                      "lease ledger on disk)", file=sys.stderr)
                return 2
            from repro.dashboard import follow_status

            try:
                return follow_status(
                    args.dir, fleet=True, interval=args.interval
                )
            except FileNotFoundError:
                print(f"no campaign manifest in {args.dir}",
                      file=sys.stderr)
                return 2
        status = None
        if args.connect or args.dir:
            try:
                host, port = _fleet_endpoint(args)
                status = query_status(host, port, tls_ca=args.tls_ca)
            except (ValueError, OSError, RuntimeError) as exc:
                if args.connect or not args.dir:
                    print(str(exc), file=sys.stderr)
                    return 2
        else:
            print("pass --connect HOST:PORT or --dir DIR", file=sys.stderr)
            return 2
        if status is None:
            try:
                status = offline_status(args.dir)
            except FileNotFoundError:
                print(f"no campaign manifest in {args.dir}",
                      file=sys.stderr)
                return 2
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        from repro.campaign import render_status

        print(render_status(status))
        extras = _render_fleet_extras(status)
        if extras:
            print(extras)
        return 0

    if args.verb == "worker":
        from repro.fleet import run_worker

        try:
            host, port = _fleet_endpoint(args)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        kwargs = {}
        if args.reconnect_attempts is not None:
            kwargs["reconnect_attempts"] = args.reconnect_attempts
        if args.reconnect_delay is not None:
            kwargs["reconnect_delay"] = args.reconnect_delay
        if args.reconnect_max_delay is not None:
            kwargs["reconnect_max_delay"] = args.reconnect_max_delay
        return run_worker(
            host, port, name=args.name, cache=not args.no_cache,
            cache_dir=args.cache_dir, snapshots=not args.no_snapshot,
            snapshot_dir=args.snapshot_dir, secret=secret,
            tls_ca=args.tls_ca, tls_cert=args.tls_cert,
            tls_key=args.tls_key, throttle=args.throttle,
            batch_lanes=args.batch_lanes, **kwargs,
        )

    # serve / run
    from repro.campaign import CampaignError, read_manifest
    from repro.fleet import FleetError

    spec = None
    try:
        read_manifest(args.dir)
    except FileNotFoundError:
        if args.resume:
            print(f"no campaign manifest in {args.dir}", file=sys.stderr)
            return 2
        spec = _campaign_spec(args)
    try:
        if args.verb == "serve":
            from repro.fleet import serve_fleet

            report = serve_fleet(
                args.dir, spec=spec, host=args.host, port=args.port,
                resume=args.resume, cache=not args.no_cache,
                cache_dir=args.cache_dir, snapshots=not args.no_snapshot,
                snapshot_dir=args.snapshot_dir,
                heartbeat_timeout=args.heartbeat_timeout,
                secret=secret, tls_cert=args.tls_cert,
                tls_key=args.tls_key, tls_ca=args.tls_ca,
            )
        else:
            from repro.fleet import fleet_run

            report = fleet_run(
                args.dir, spec=spec, workers=args.workers, host=args.host,
                port=args.port, resume=args.resume,
                cache=not args.no_cache, cache_dir=args.cache_dir,
                snapshots=not args.no_snapshot,
                snapshot_dir=args.snapshot_dir,
                heartbeat_timeout=args.heartbeat_timeout,
                secret=secret, tls_cert=args.tls_cert,
                tls_key=args.tls_key, tls_ca=args.tls_ca,
                min_workers=args.min_workers,
                max_workers=args.max_workers,
                steal=not args.no_steal,
            )
    except (FleetError, CampaignError, ValueError,
            FileNotFoundError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _print_report_summary(report)
    print(f"[wrote {os.path.join(args.dir, 'report.json')} and .md]")
    return 0


def main(argv=None):
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if "--list-benchmarks" in argv:
        print("\n".join(_known_benchmarks()))
        return 0
    if argv[:1] == ["campaign"]:
        return _campaign_main(argv[1:])
    if argv[:1] == ["fleet"]:
        return _fleet_main(argv[1:])
    if argv[:1] == ["dashboard"]:
        return _dashboard_main(argv[1:])
    if argv[:1] == ["verify"]:
        return _verify_main(argv[1:])
    if argv[:1] == ["trace"]:
        return _trace_main(argv[1:])
    args = _build_parser().parse_args(argv)
    code = _validate_benchmarks(args.benchmarks)
    if code is not None:
        return code
    if args.experiment == "run":
        code = _validate_schemes([args.scheme])
        if code is not None:
            return code
        _run_single(args)
        return 0
    names = (
        sorted(experiments.EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        _run(name, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
