"""Single-run and paired-run simulation drivers.

``run_one`` assembles the full stack — synthetic program, memory hierarchy,
fault substrate, predictor, scheme, pipeline, energy model — for one
(benchmark, scheme, VDD) point and returns a :class:`SimResult`.

Runs are deterministic given the :class:`RunSpec`. A short warmup phase
(caches + TEP training) precedes measurement, mirroring the paper's use of
SimPoint phases from steady-state execution.
"""

from repro.core.predictors import make_predictor
from repro.core.schemes import SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.faults.injector import FaultInjector
from repro.faults.sensors import VoltageSensor
from repro.faults.timing import (
    StageTimingModel,
    VDD_NOMINAL,
    VoltageScaling,
)
from repro.faults.variation import ProcessVariationModel
from repro.mem.hierarchy import MemoryHierarchy
from repro.power.energy_model import EnergyModel
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.uarch.stats import SimStats
from repro.workloads.generator import build_program, estimate_pc_freq
from repro.workloads.profiles import get_profile
from repro.workloads.trace import TraceGenerator


class RunSpec:
    """Everything needed to reproduce one simulation run."""

    def __init__(self, benchmark, scheme=SchemeKind.FAULT_FREE,
                 vdd=VDD_NOMINAL, n_instructions=20000, warmup=4000, seed=1,
                 config=None, tep_config=None, predictor="tep",
                 overclock=1.0):
        self.benchmark = benchmark
        self.scheme = scheme
        self.vdd = vdd
        self.n_instructions = n_instructions
        self.warmup = warmup
        self.seed = seed
        self.config = config
        self.tep_config = tep_config
        #: which timing-violation predictor design drives the scheme:
        #: "tep" (the paper's), "mre" (Xin/Joseph) or "tvp" (Roy et al.)
        self.predictor = predictor
        #: cycle-time shrink factor (>1 = run faster than the nominal
        #: frequency; violations appear once the guardband is consumed)
        self.overclock = overclock

    def __repr__(self):
        scheme = getattr(self.scheme, "name", self.scheme)
        return (
            f"RunSpec({self.benchmark}, {scheme}, vdd={self.vdd}, "
            f"n={self.n_instructions})"
        )


class SimResult:
    """Outcome of one run: statistics, energy, and derived metrics."""

    def __init__(self, spec, stats, energy, cache_stats):
        self.spec = spec
        self.stats = stats
        self.energy = energy
        self.cache_stats = cache_stats

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def cycles(self):
        """Measured cycles."""
        return self.stats.cycles

    @property
    def edp(self):
        """Energy-delay product."""
        return self.energy.edp

    @property
    def fault_rate(self):
        """Faulting instructions per committed instruction."""
        return self.stats.fault_rate

    def perf_overhead(self, baseline):
        """Relative cycle overhead vs a fault-free baseline result."""
        return self.cycles / baseline.cycles - 1.0

    def ed_overhead(self, baseline):
        """Relative energy-delay overhead vs a fault-free baseline result."""
        return self.edp / baseline.edp - 1.0

    def __repr__(self):
        return (
            f"SimResult({self.spec.benchmark}, "
            f"{getattr(self.spec.scheme, 'name', self.spec.scheme)}, "
            f"ipc={self.ipc:.3f}, fr={self.fault_rate:.4f})"
        )


def _build_injector(profile, program, spec, timing_model):
    injector = FaultInjector(timing_model, seed=spec.seed + 301)
    # estimate frequencies over the same CFG walk (same seed) and exactly
    # the measured window, so the dynamic fault-rate targets refer to PCs
    # that are actually exercised during measurement
    pc_freq = estimate_pc_freq(
        program,
        seed=spec.seed + 101,
        n_instructions=max(spec.n_instructions, 3000),
        skip=spec.warmup,
    )
    injector.assign(
        program.static_insts, pc_freq, profile.fr_low, profile.fr_high
    )
    return injector


def build_core(spec):
    """Assemble (but do not run) the full simulation stack for ``spec``."""
    profile = get_profile(spec.benchmark)
    program = build_program(profile, seed=spec.seed)
    trace = TraceGenerator(program, seed=spec.seed + 101)
    hierarchy = MemoryHierarchy()
    scheme = make_scheme(spec.scheme)
    injector = None
    stressed = spec.vdd < VDD_NOMINAL or spec.overclock > 1.0
    if scheme.kind is not SchemeKind.FAULT_FREE and stressed:
        scaling = VoltageScaling()
        variation = ProcessVariationModel(seed=spec.seed + 201)
        timing_model = StageTimingModel(scaling, variation)
        injector = _build_injector(profile, program, spec, timing_model)
        injector.frequency_factor = spec.overclock
    tep = None
    if scheme.uses_tep:
        if spec.predictor == "tep":
            tep = TimingErrorPredictor(spec.tep_config)
        else:
            tep = make_predictor(spec.predictor)
    sensor = VoltageSensor(spec.vdd, overclocked=spec.overclock > 1.0)
    config = spec.config or CoreConfig.core1()
    core = OoOCore(
        config, trace, hierarchy, scheme,
        injector=injector, tep=tep, sensor=sensor, vdd=spec.vdd,
    )
    core.program = program  # kept for cache priming and diagnostics
    return core


#: Regions larger than this are treated as streaming and never primed.
_PRIME_LIMIT = 2 * 1024 * 1024


def prime_caches(program, hierarchy, line_bytes=64):
    """Pre-touch bounded memory regions so short runs start at steady state.

    The paper measures 1M-instruction SimPoint phases from the middle of
    execution, where resident working sets are already cached; a 20k-
    instruction run would otherwise spend itself on cold misses. Streaming
    regions (beyond the limit) are intentionally left cold — they miss in
    steady state too.
    """
    for static in program.static_insts:
        if not static.is_mem or not static.mem_region:
            continue
        if static.mem_region > _PRIME_LIMIT:
            continue
        for offset in range(0, static.mem_region, line_bytes):
            hierarchy.access_data(static.mem_base + offset)
    hierarchy.reset_stats()


def run_one(spec):
    """Run one simulation point and return its :class:`SimResult`."""
    core = build_core(spec)
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
        core.stats = SimStats()
        core.hierarchy.reset_stats()
        core.lsq.cam_searches = 0
        core.lsq.forwards = 0
    stats = core.run(spec.n_instructions)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    return SimResult(spec, stats, energy, core.hierarchy.stats())


def run_pair(benchmark, scheme, vdd, n_instructions=20000, warmup=4000,
             seed=1, config=None):
    """Run a scheme and its fault-free baseline; return (result, baseline).

    The baseline executes the identical trace with faults disabled at the
    same supply, which is how the paper's overhead tuples are normalized.
    """
    base_spec = RunSpec(
        benchmark, SchemeKind.FAULT_FREE, vdd, n_instructions, warmup,
        seed, config,
    )
    spec = RunSpec(benchmark, scheme, vdd, n_instructions, warmup, seed, config)
    return run_one(spec), run_one(base_spec)
