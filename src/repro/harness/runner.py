"""Single-run and paired-run simulation drivers.

``run_one`` assembles the full stack — synthetic program, memory hierarchy,
fault substrate, predictor, scheme, pipeline, energy model — for one
(benchmark, scheme, VDD) point and returns a :class:`SimResult`.

Runs are deterministic given the :class:`RunSpec`. A short warmup phase
(caches + TEP training) precedes measurement, mirroring the paper's use of
SimPoint phases from steady-state execution.
"""

from repro.core.predictors import make_predictor
from repro.core.schemes import SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.faults.injector import FaultInjector
from repro.faults.sensors import VoltageSensor
from repro.faults.timing import (
    StageTimingModel,
    VDD_NOMINAL,
    VoltageScaling,
)
from repro.faults.variation import ProcessVariationModel
from repro.mem.hierarchy import MemoryHierarchy
from repro.power.energy_model import EnergyModel
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.uarch.stats import SimStats
from repro.workloads.generator import build_program, estimate_pc_freq
from repro.workloads.profiles import get_profile
from repro.workloads.trace import TraceGenerator


class RunSpec:
    """Everything needed to reproduce one simulation run."""

    def __init__(self, benchmark, scheme=SchemeKind.FAULT_FREE,
                 vdd=VDD_NOMINAL, n_instructions=20000, warmup=4000, seed=1,
                 config=None, tep_config=None, predictor="tep",
                 overclock=1.0, storm=None, verify=False, corruption=None,
                 telemetry=None):
        self.benchmark = benchmark
        self.scheme = scheme
        self.vdd = vdd
        self.n_instructions = n_instructions
        self.warmup = warmup
        self.seed = seed
        self.config = config
        self.tep_config = tep_config
        #: which timing-violation predictor design drives the scheme:
        #: "tep" (the paper's), "mre" (Xin/Joseph) or "tvp" (Roy et al.)
        self.predictor = predictor
        #: cycle-time shrink factor (>1 = run faster than the nominal
        #: frequency; violations appear once the guardband is consumed)
        self.overclock = overclock
        #: optional :class:`~repro.faults.storm.StormConfig` — fault-storm
        #: stress mode (wild faults, sensor dropouts, TEP chaos)
        self.storm = storm
        #: run under the lockstep golden-model checker (repro.verify)
        self.verify = verify
        #: optional dict form of a test-only
        #: :class:`~repro.verify.chaos.CorruptionHook` (implies verify)
        self.corruption = corruption
        #: optional :class:`~repro.telemetry.config.TelemetryConfig` (or
        #: its dict form) — interval metrics, event tracing, and
        #: self-profiling recorded over the measured window
        if telemetry is not None and not hasattr(telemetry, "canonical"):
            from repro.telemetry.config import TelemetryConfig

            telemetry = TelemetryConfig.from_dict(telemetry)
        self.telemetry = telemetry
        #: directory for repro bundles on failure — an execution detail,
        #: deliberately NOT part of :meth:`canonical`
        self.repro_dir = None

    def canonical(self):
        """A nested tuple of primitives that fully determines this run.

        Two specs with equal canonical forms produce bit-identical
        simulations; the form feeds :meth:`key` and is stable across
        processes (no ``id()``, no hash randomization, no float repr
        ambiguity — floats are carried as ``repr`` strings).
        """
        config = self.config
        if config is not None:
            fu_counts = tuple(
                (kind.name, n) for kind, n in sorted(
                    config.fu_counts.items(), key=lambda kv: kv[0].name
                )
            )
            config = (
                config.width, config.iq_size, config.rob_size,
                config.lsq_size, config.n_arch_regs, config.n_phys_regs,
                fu_counts, config.frontend_depth, config.redirect_penalty,
                config.replay_recovery, config.recovery_bubbles,
                config.replay_mode, config.bp_history_bits,
                config.bp_table_bits, config.criticality_threshold,
                config.mem_dependence, config.model_wrong_path,
                config.model_inorder_faults,
            )
        tep_config = self.tep_config
        if tep_config is not None:
            tep_config = (
                tep_config.n_entries, tep_config.tag_bits,
                tep_config.counter_bits, tep_config.history_bits,
            )
        storm = self.storm.canonical() if self.storm is not None else None
        corruption = (
            tuple(sorted(self.corruption.items()))
            if self.corruption else None
        )
        telemetry = (
            self.telemetry.canonical() if self.telemetry is not None
            else None
        )
        return (
            self.benchmark,
            getattr(self.scheme, "value", self.scheme),
            repr(self.vdd),
            self.n_instructions,
            self.warmup,
            self.seed,
            config,
            tep_config,
            self.predictor,
            repr(self.overclock),
            storm,
            bool(self.verify),
            corruption,
            telemetry,
        )

    def key(self):
        """Deterministic content hash of the spec (hex digest).

        Used by :mod:`repro.harness.parallel` to address the on-disk
        result cache; identical across processes and interpreter runs.
        """
        import hashlib

        return hashlib.sha256(repr(self.canonical()).encode()).hexdigest()

    def __repr__(self):
        scheme = getattr(self.scheme, "name", self.scheme)
        return (
            f"RunSpec({self.benchmark}, {scheme}, vdd={self.vdd}, "
            f"n={self.n_instructions})"
        )


class SimResult:
    """Outcome of one run: statistics, energy, and derived metrics.

    ``telemetry`` carries the run's :class:`~repro.telemetry.
    TelemetryResult` when its spec asked for any (metrics series, event
    recording, self-profile); it is plain picklable data and rides the
    result through multiprocessing fan-out and the on-disk cache.
    """

    def __init__(self, spec, stats, energy, cache_stats, telemetry=None):
        self.spec = spec
        self.stats = stats
        self.energy = energy
        self.cache_stats = cache_stats
        self.telemetry = telemetry

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def cycles(self):
        """Measured cycles."""
        return self.stats.cycles

    @property
    def edp(self):
        """Energy-delay product."""
        return self.energy.edp

    @property
    def fault_rate(self):
        """Faulting instructions per committed instruction."""
        return self.stats.fault_rate

    def perf_overhead(self, baseline):
        """Relative cycle overhead vs a fault-free baseline result."""
        return self.cycles / baseline.cycles - 1.0

    def ed_overhead(self, baseline):
        """Relative energy-delay overhead vs a fault-free baseline result."""
        return self.edp / baseline.edp - 1.0

    def __repr__(self):
        return (
            f"SimResult({self.spec.benchmark}, "
            f"{getattr(self.spec.scheme, 'name', self.spec.scheme)}, "
            f"ipc={self.ipc:.3f}, fr={self.fault_rate:.4f})"
        )


#: Memoized pure build products. Programs are deterministic in
#: (profile, seed) and carry no per-run state (fault assignments live on
#: the injector, not the statics), so rebuilding one for every point of a
#: sweep is pure waste. Bounded by wholesale clearing: sweeps revisit a
#: handful of keys, so eviction order is irrelevant.
_BUILD_CACHE_LIMIT = 128
_PROGRAM_CACHE = {}
_PC_FREQ_CACHE = {}


def _cached_program(profile, seed):
    key = (profile.name, seed)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        if len(_PROGRAM_CACHE) >= _BUILD_CACHE_LIMIT:
            _PROGRAM_CACHE.clear()
        program = build_program(profile, seed=seed)
        _PROGRAM_CACHE[key] = program
    return program


def _build_injector(profile, program, spec, timing_model):
    injector = FaultInjector(timing_model, seed=spec.seed + 301)
    # estimate frequencies over the same CFG walk (same seed) and exactly
    # the measured window, so the dynamic fault-rate targets refer to PCs
    # that are actually exercised during measurement
    key = (
        profile.name, spec.seed,
        max(spec.n_instructions, 3000), spec.warmup,
    )
    pc_freq = _PC_FREQ_CACHE.get(key)
    if pc_freq is None:
        if len(_PC_FREQ_CACHE) >= _BUILD_CACHE_LIMIT:
            _PC_FREQ_CACHE.clear()
        pc_freq = estimate_pc_freq(
            program,
            seed=spec.seed + 101,
            n_instructions=max(spec.n_instructions, 3000),
            skip=spec.warmup,
        )
        _PC_FREQ_CACHE[key] = pc_freq
    injector.assign(
        program.static_insts, pc_freq, profile.fr_low, profile.fr_high
    )
    return injector


def build_core(spec):
    """Assemble (but do not run) the full simulation stack for ``spec``."""
    profile = get_profile(spec.benchmark)
    program = _cached_program(profile, spec.seed)
    trace = TraceGenerator(program, seed=spec.seed + 101)
    hierarchy = MemoryHierarchy()
    scheme = make_scheme(spec.scheme)
    injector = None
    stressed = spec.vdd < VDD_NOMINAL or spec.overclock > 1.0
    if scheme.kind is not SchemeKind.FAULT_FREE and stressed:
        scaling = VoltageScaling()
        variation = ProcessVariationModel(seed=spec.seed + 201)
        timing_model = StageTimingModel(scaling, variation)
        injector = _build_injector(profile, program, spec, timing_model)
        injector.frequency_factor = spec.overclock
    tep = None
    if scheme.uses_tep:
        if spec.predictor == "tep":
            tep = TimingErrorPredictor(spec.tep_config)
        else:
            tep = make_predictor(spec.predictor)
    sensor = VoltageSensor(spec.vdd, overclocked=spec.overclock > 1.0)
    storm = getattr(spec, "storm", None)
    if storm is not None:
        # storm wrapping must precede core construction: the core latches
        # its sensor gate and TEP lookup method in __init__
        from repro.faults.storm import ChaoticTEP, FlakySensor, StormInjector

        injector = StormInjector(injector, storm, seed=spec.seed + 401)
        if storm.sensor_flap > 0.0:
            sensor = FlakySensor(sensor, storm.sensor_flap,
                                 seed=spec.seed + 402)
        if tep is not None and (storm.tep_drop > 0.0
                                or storm.tep_fabricate > 0.0):
            tep = ChaoticTEP(tep, storm.tep_drop, storm.tep_fabricate,
                             seed=spec.seed + 403)
    config = spec.config or CoreConfig.core1()
    core = OoOCore(
        config, trace, hierarchy, scheme,
        injector=injector, tep=tep, sensor=sensor, vdd=spec.vdd,
    )
    core.program = program  # kept for cache priming and diagnostics
    return core


#: Regions larger than this are treated as streaming and never primed.
_PRIME_LIMIT = 2 * 1024 * 1024


def prime_caches(program, hierarchy, line_bytes=64):
    """Pre-touch bounded memory regions so short runs start at steady state.

    The paper measures 1M-instruction SimPoint phases from the middle of
    execution, where resident working sets are already cached; a 20k-
    instruction run would otherwise spend itself on cold misses. Streaming
    regions (beyond the limit) are intentionally left cold — they miss in
    steady state too.
    """
    # the address walk depends only on the program; memoize it on the
    # program object (same line-fill sequence as access_data, minus the
    # latency bookkeeping — all counters are reset below anyway)
    addrs = getattr(program, "_prime_addrs", None)
    if addrs is None or getattr(program, "_prime_line_bytes", 0) != line_bytes:
        addrs = []
        for static in program.static_insts:
            if not static.is_mem or not static.mem_region:
                continue
            if static.mem_region > _PRIME_LIMIT:
                continue
            base = static.mem_base
            for offset in range(0, static.mem_region, line_bytes):
                addrs.append(base + offset)
        program._prime_addrs = addrs
        program._prime_line_bytes = line_bytes
    l1d_access = hierarchy.l1d.access
    l2_access = hierarchy.l2.access
    for addr in addrs:
        if not l1d_access(addr):
            l2_access(addr)
    hierarchy.reset_stats()


def run_one(spec):
    """Run one simulation point and return its :class:`SimResult`.

    Specs with ``verify`` (or a ``corruption`` hook) run under the
    lockstep golden-model checker and raise
    :class:`~repro.verify.lockstep.DivergenceError` on any architectural
    divergence — see :func:`repro.verify.driver.run_verified`.
    """
    if getattr(spec, "verify", False) or getattr(spec, "corruption", None):
        from repro.verify.driver import run_verified

        return run_verified(spec)
    core = build_core(spec)
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
        core.stats = SimStats()
        core.hierarchy.reset_stats()
        core.lsq.cam_searches = 0
        core.lsq.forwards = 0
    collector = None
    if getattr(spec, "telemetry", None) is not None:
        from repro.telemetry import attach_telemetry

        # attach after warmup so the series/events cover exactly the
        # measured window, mirroring the stats reset above
        collector = attach_telemetry(core, spec.telemetry)
    stats = core.run(spec.n_instructions)
    stats.storm_faults = getattr(core.injector, "storm_faults", 0)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    telemetry = collector.finalize(core) if collector is not None else None
    return SimResult(
        spec, stats, energy, core.hierarchy.stats(), telemetry=telemetry
    )


def run_pair(benchmark, scheme, vdd, n_instructions=20000, warmup=4000,
             seed=1, config=None):
    """Run a scheme and its fault-free baseline; return (result, baseline).

    The baseline executes the identical trace with faults disabled at the
    same supply, which is how the paper's overhead tuples are normalized.
    """
    base_spec = RunSpec(
        benchmark, SchemeKind.FAULT_FREE, vdd, n_instructions, warmup,
        seed, config,
    )
    spec = RunSpec(benchmark, scheme, vdd, n_instructions, warmup, seed, config)
    return run_one(spec), run_one(base_spec)
