"""Single-run and paired-run simulation drivers.

``run_one`` assembles the full stack — synthetic program, memory hierarchy,
fault substrate, predictor, scheme, pipeline, energy model — for one
(benchmark, scheme, VDD) point and returns a :class:`SimResult`.

Runs are deterministic given the :class:`RunSpec`. A short warmup phase
(caches + TEP training) precedes measurement, mirroring the paper's use of
SimPoint phases from steady-state execution.
"""

from repro.core.predictors import make_predictor
from repro.core.schemes import SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.faults.injector import FaultInjector
from repro.faults.sensors import VoltageSensor
from repro.faults.timing import (
    StageTimingModel,
    VDD_NOMINAL,
    VoltageScaling,
)
from repro.faults.variation import ProcessVariationModel
from repro.mem.hierarchy import MemoryHierarchy
from repro.power.energy_model import EnergyModel
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.uarch.stats import SimStats
from repro.workloads.generator import build_program, estimate_pc_freq
from repro.workloads.profiles import get_profile
from repro.workloads.trace import TraceGenerator


class RunSpec:
    """Everything needed to reproduce one simulation run."""

    def __init__(self, benchmark, scheme=SchemeKind.FAULT_FREE,
                 vdd=VDD_NOMINAL, n_instructions=20000, warmup=4000, seed=1,
                 config=None, tep_config=None, predictor="tep",
                 overclock=1.0, storm=None, verify=False, corruption=None,
                 telemetry=None, measurement_seed=None):
        self.benchmark = benchmark
        self.scheme = scheme
        self.vdd = vdd
        self.n_instructions = n_instructions
        self.warmup = warmup
        self.seed = seed
        self.config = config
        self.tep_config = tep_config
        #: which timing-violation predictor design drives the scheme:
        #: "tep" (the paper's), "mre" (Xin/Joseph) or "tvp" (Roy et al.)
        self.predictor = predictor
        #: cycle-time shrink factor (>1 = run faster than the nominal
        #: frequency; violations appear once the guardband is consumed)
        self.overclock = overclock
        #: optional :class:`~repro.faults.storm.StormConfig` — fault-storm
        #: stress mode (wild faults, sensor dropouts, TEP chaos)
        self.storm = storm
        #: run under the lockstep golden-model checker (repro.verify)
        self.verify = verify
        #: optional dict form of a test-only
        #: :class:`~repro.verify.chaos.CorruptionHook` (implies verify)
        self.corruption = corruption
        #: optional :class:`~repro.telemetry.config.TelemetryConfig` (or
        #: its dict form) — interval metrics, event tracing, and
        #: self-profiling recorded over the measured window
        if telemetry is not None and not hasattr(telemetry, "canonical"):
            from repro.telemetry.config import TelemetryConfig

            telemetry = TelemetryConfig.from_dict(telemetry)
        self.telemetry = telemetry
        #: when set, the measurement window draws its fault-side RNG
        #: streams (injector, storm wrappers) from this seed instead of
        #: continuing the warmup streams. The warmup then depends only on
        #: :meth:`warmup_canonical`, so one warmed snapshot is shared by
        #: every draw differing only in measurement seed / storm /
        #: telemetry. ``None`` (default) keeps the legacy single-stream
        #: behavior bit-for-bit.
        self.measurement_seed = measurement_seed
        #: directory for repro bundles on failure — an execution detail,
        #: deliberately NOT part of :meth:`canonical`
        self.repro_dir = None
        #: warmup snapshot cache directory (see :mod:`repro.snapshot`) —
        #: an execution detail like ``repro_dir``: forking from a cached
        #: snapshot is bit-identical to a cold run, so the cache location
        #: must never influence :meth:`canonical`
        self.snapshot_dir = None

    def warmup_canonical(self):
        """The prefix of :meth:`canonical` that determines the warmup.

        Everything the simulation state depends on *up to the warmup
        boundary*: program identity and dynamic window (``n_instructions``
        shapes the injector's PC-frequency estimate, so it belongs here),
        machine configuration, predictor design, and the warmup-phase RNG
        roots. Two specs with equal warmup prefixes reach bit-identical
        post-warmup machine state — this is the snapshot-cache key
        (:meth:`warmup_key`).
        """
        config = self.config
        if config is not None:
            fu_counts = tuple(
                (kind.name, n) for kind, n in sorted(
                    config.fu_counts.items(), key=lambda kv: kv[0].name
                )
            )
            config = (
                config.width, config.iq_size, config.rob_size,
                config.lsq_size, config.n_arch_regs, config.n_phys_regs,
                fu_counts, config.frontend_depth, config.redirect_penalty,
                config.replay_recovery, config.recovery_bubbles,
                config.replay_mode, config.bp_history_bits,
                config.bp_table_bits, config.criticality_threshold,
                config.mem_dependence, config.model_wrong_path,
                config.model_inorder_faults,
            )
        tep_config = self.tep_config
        if tep_config is not None:
            tep_config = (
                tep_config.n_entries, tep_config.tag_bits,
                tep_config.counter_bits, tep_config.history_bits,
            )
        return (
            self.benchmark,
            getattr(self.scheme, "value", self.scheme),
            repr(self.vdd),
            self.n_instructions,
            self.warmup,
            self.seed,
            config,
            tep_config,
            self.predictor,
            repr(self.overclock),
        )

    def measurement_canonical(self):
        """The suffix of :meth:`canonical`: measurement-window-only fields.

        Everything here first takes effect at the warmup→measurement
        boundary (storm wrapping and fault-stream reseeding happen there,
        telemetry attaches there, verification changes no machine state),
        so specs differing only in this suffix share one warmup snapshot.
        """
        storm = self.storm.canonical() if self.storm is not None else None
        corruption = (
            tuple(sorted(self.corruption.items()))
            if self.corruption else None
        )
        telemetry = (
            self.telemetry.canonical() if self.telemetry is not None
            else None
        )
        return (
            self.measurement_seed,
            storm,
            bool(self.verify),
            corruption,
            telemetry,
        )

    def canonical(self):
        """A nested tuple of primitives that fully determines this run.

        Two specs with equal canonical forms produce bit-identical
        simulations; the form feeds :meth:`key` and is stable across
        processes (no ``id()``, no hash randomization, no float repr
        ambiguity — floats are carried as ``repr`` strings). It is the
        exact concatenation of :meth:`warmup_canonical` and
        :meth:`measurement_canonical`; a partition test pins that every
        spec field lands in exactly one half.
        """
        return self.warmup_canonical() + self.measurement_canonical()

    def key(self):
        """Deterministic content hash of the spec (hex digest).

        Used by :mod:`repro.harness.parallel` to address the on-disk
        result cache; identical across processes and interpreter runs.
        """
        import hashlib

        return hashlib.sha256(repr(self.canonical()).encode()).hexdigest()

    def warmup_key(self):
        """Content hash of the warmup prefix: the snapshot-cache address.

        Every spec sharing this key reaches bit-identical post-warmup
        state, so one warmed snapshot serves all of them (see
        :mod:`repro.snapshot`).
        """
        import hashlib

        return hashlib.sha256(
            repr(self.warmup_canonical()).encode()
        ).hexdigest()

    def __repr__(self):
        scheme = getattr(self.scheme, "name", self.scheme)
        return (
            f"RunSpec({self.benchmark}, {scheme}, vdd={self.vdd}, "
            f"n={self.n_instructions})"
        )


class SimResult:
    """Outcome of one run: statistics, energy, and derived metrics.

    ``telemetry`` carries the run's :class:`~repro.telemetry.
    TelemetryResult` when its spec asked for any (metrics series, event
    recording, self-profile); it is plain picklable data and rides the
    result through multiprocessing fan-out and the on-disk cache.
    """

    def __init__(self, spec, stats, energy, cache_stats, telemetry=None):
        self.spec = spec
        self.stats = stats
        self.energy = energy
        self.cache_stats = cache_stats
        self.telemetry = telemetry

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        return self.stats.ipc

    @property
    def cycles(self):
        """Measured cycles."""
        return self.stats.cycles

    @property
    def edp(self):
        """Energy-delay product."""
        return self.energy.edp

    @property
    def fault_rate(self):
        """Faulting instructions per committed instruction."""
        return self.stats.fault_rate

    def perf_overhead(self, baseline):
        """Relative cycle overhead vs a fault-free baseline result."""
        return self.cycles / baseline.cycles - 1.0

    def ed_overhead(self, baseline):
        """Relative energy-delay overhead vs a fault-free baseline result."""
        return self.edp / baseline.edp - 1.0

    def __repr__(self):
        return (
            f"SimResult({self.spec.benchmark}, "
            f"{getattr(self.spec.scheme, 'name', self.spec.scheme)}, "
            f"ipc={self.ipc:.3f}, fr={self.fault_rate:.4f})"
        )


#: Memoized pure build products. Programs are deterministic in
#: (profile, seed) and carry no per-run state (fault assignments live on
#: the injector, not the statics), so rebuilding one for every point of a
#: sweep is pure waste. Bounded by wholesale clearing: sweeps revisit a
#: handful of keys, so eviction order is irrelevant.
_BUILD_CACHE_LIMIT = 128
_PROGRAM_CACHE = {}
_PC_FREQ_CACHE = {}


def _cached_program(profile, seed):
    key = (profile.name, seed)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        if len(_PROGRAM_CACHE) >= _BUILD_CACHE_LIMIT:
            _PROGRAM_CACHE.clear()
        program = build_program(profile, seed=seed)
        _PROGRAM_CACHE[key] = program
    return program


def _build_injector(profile, program, spec, timing_model):
    injector = FaultInjector(timing_model, seed=spec.seed + 301)
    # estimate frequencies over the same CFG walk (same seed) and exactly
    # the measured window, so the dynamic fault-rate targets refer to PCs
    # that are actually exercised during measurement
    key = (
        profile.name, spec.seed,
        max(spec.n_instructions, 3000), spec.warmup,
    )
    pc_freq = _PC_FREQ_CACHE.get(key)
    if pc_freq is None:
        if len(_PC_FREQ_CACHE) >= _BUILD_CACHE_LIMIT:
            _PC_FREQ_CACHE.clear()
        pc_freq = estimate_pc_freq(
            program,
            seed=spec.seed + 101,
            n_instructions=max(spec.n_instructions, 3000),
            skip=spec.warmup,
        )
        _PC_FREQ_CACHE[key] = pc_freq
    injector.assign(
        program.static_insts, pc_freq, profile.fr_low, profile.fr_high
    )
    return injector


def build_core(spec):
    """Assemble (but do not run) the full simulation stack for ``spec``."""
    profile = get_profile(spec.benchmark)
    program = _cached_program(profile, spec.seed)
    trace = TraceGenerator(program, seed=spec.seed + 101)
    hierarchy = MemoryHierarchy()
    scheme = make_scheme(spec.scheme)
    injector = None
    stressed = spec.vdd < VDD_NOMINAL or spec.overclock > 1.0
    if scheme.kind is not SchemeKind.FAULT_FREE and stressed:
        scaling = VoltageScaling()
        variation = ProcessVariationModel(seed=spec.seed + 201)
        timing_model = StageTimingModel(scaling, variation)
        injector = _build_injector(profile, program, spec, timing_model)
        injector.frequency_factor = spec.overclock
    tep = None
    if scheme.uses_tep:
        if spec.predictor == "tep":
            tep = TimingErrorPredictor(spec.tep_config)
        else:
            tep = make_predictor(spec.predictor)
    sensor = VoltageSensor(spec.vdd, overclocked=spec.overclock > 1.0)
    # storm wrapping happens at the warmup→measurement boundary
    # (begin_measurement), not here: the storm is a measured-window
    # stressor, so a storm draw can fork from a storm-free warmup
    # snapshot and the warmup stays a pure function of warmup_canonical()
    config = spec.config or CoreConfig.core1()
    core = OoOCore(
        config, trace, hierarchy, scheme,
        injector=injector, tep=tep, sensor=sensor, vdd=spec.vdd,
    )
    core.program = program  # kept for cache priming and diagnostics
    return core


#: Regions larger than this are treated as streaming and never primed.
_PRIME_LIMIT = 2 * 1024 * 1024


def prime_caches(program, hierarchy, line_bytes=64):
    """Pre-touch bounded memory regions so short runs start at steady state.

    The paper measures 1M-instruction SimPoint phases from the middle of
    execution, where resident working sets are already cached; a 20k-
    instruction run would otherwise spend itself on cold misses. Streaming
    regions (beyond the limit) are intentionally left cold — they miss in
    steady state too.
    """
    # the address walk depends only on the program; memoize it on the
    # program object (same line-fill sequence as access_data, minus the
    # latency bookkeeping — all counters are reset below anyway)
    addrs = getattr(program, "_prime_addrs", None)
    if addrs is None or getattr(program, "_prime_line_bytes", 0) != line_bytes:
        addrs = []
        for static in program.static_insts:
            if not static.is_mem or not static.mem_region:
                continue
            if static.mem_region > _PRIME_LIMIT:
                continue
            base = static.mem_base
            for offset in range(0, static.mem_region, line_bytes):
                addrs.append(base + offset)
        program._prime_addrs = addrs
        program._prime_line_bytes = line_bytes
    l1d_access = hierarchy.l1d.access
    l2_access = hierarchy.l2.access
    for addr in addrs:
        if not l1d_access(addr):
            l2_access(addr)
    hierarchy.reset_stats()


def warm_core(spec):
    """Build and warm a core through ``spec``'s warmup prefix (cold path).

    The returned core sits exactly at the warmup boundary: caches primed,
    ``spec.warmup`` instructions retired, no measurement-window effects
    (storm, telemetry, fault-stream reseed) applied yet. Its state is a
    pure function of ``spec.warmup_canonical()`` — this is what the
    snapshot cache captures.
    """
    core = build_core(spec)
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
    return core


def begin_measurement(core, spec):
    """Transition a warmed core to the measured window; return collector.

    Shared by the cold path, the snapshot-fork path, and the verified
    driver, so the boundary semantics cannot drift between them:

    * measurement counters reset (stats, cache stats, LSQ counters);
    * with ``spec.measurement_seed`` set, the injector's per-instance
      stream restarts from it (warmup consumed the ``spec.seed`` stream);
    * storm wrapping is applied *here* — the storm stresses the measured
      window only, and its generators derive from the measurement seed
      when one is set — and the core re-latches its per-fetch gates;
    * telemetry attaches last, covering exactly the measured window.
    """
    core.stats = SimStats()
    core.hierarchy.reset_stats()
    core.lsq.cam_searches = 0
    core.lsq.forwards = 0
    mseed = getattr(spec, "measurement_seed", None)
    if mseed is not None and core.injector is not None:
        core.injector.reseed(mseed + 301)
    storm = getattr(spec, "storm", None)
    if storm is not None:
        from repro.faults.storm import ChaoticTEP, FlakySensor, StormInjector

        sseed = mseed if mseed is not None else spec.seed
        core.injector = StormInjector(core.injector, storm,
                                      seed=sseed + 401)
        if storm.sensor_flap > 0.0:
            core.sensor = FlakySensor(core.sensor, storm.sensor_flap,
                                      seed=sseed + 402)
        if core.tep is not None and (storm.tep_drop > 0.0
                                     or storm.tep_fabricate > 0.0):
            core.tep = ChaoticTEP(core.tep, storm.tep_drop,
                                  storm.tep_fabricate, seed=sseed + 403)
        core.rebind_mechanisms()
    collector = None
    if getattr(spec, "telemetry", None) is not None:
        from repro.telemetry import attach_telemetry

        collector = attach_telemetry(core, spec.telemetry)
    return collector


def measure(core, spec):
    """Measure a warmed core and package the :class:`SimResult`."""
    collector = begin_measurement(core, spec)
    stats = core.run(spec.n_instructions)
    stats.storm_faults = getattr(core.injector, "storm_faults", 0)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    telemetry = collector.finalize(core) if collector is not None else None
    return SimResult(
        spec, stats, energy, core.hierarchy.stats(), telemetry=telemetry
    )


def run_one(spec):
    """Run one simulation point and return its :class:`SimResult`.

    Specs with ``verify`` (or a ``corruption`` hook) run under the
    lockstep golden-model checker and raise
    :class:`~repro.verify.lockstep.DivergenceError` on any architectural
    divergence — see :func:`repro.verify.driver.run_verified`.

    With ``spec.snapshot_dir`` set (and the spec snapshot-eligible), the
    warmup is forked from the content-addressed snapshot cache instead of
    re-simulated — bit-identical to the cold path by construction, and
    pinned so by the fork-vs-cold digest tests.
    """
    if getattr(spec, "verify", False) or getattr(spec, "corruption", None):
        from repro.verify.driver import run_verified

        return run_verified(spec)
    snapshot_dir = getattr(spec, "snapshot_dir", None)
    if snapshot_dir is not None:
        from repro.snapshot import snapshot_eligible, warmed_core

        if snapshot_eligible(spec):
            return measure(warmed_core(spec, snapshot_dir), spec)
    return measure(warm_core(spec), spec)


def run_pair(benchmark, scheme, vdd, n_instructions=20000, warmup=4000,
             seed=1, config=None):
    """Run a scheme and its fault-free baseline; return (result, baseline).

    The baseline executes the identical trace with faults disabled at the
    same supply, which is how the paper's overhead tuples are normalized.
    """
    base_spec = RunSpec(
        benchmark, SchemeKind.FAULT_FREE, vdd, n_instructions, warmup,
        seed, config,
    )
    spec = RunSpec(benchmark, scheme, vdd, n_instructions, warmup, seed, config)
    return run_one(spec), run_one(base_spec)
