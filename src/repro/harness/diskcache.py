"""Versioned on-disk blob store shared by the result and snapshot caches.

Both caches follow the same contract — content-addressed files under a
``model_version`` directory, atomic unique-tmp stores, rename-aside
pruning of stale versions — so the mechanics live here once.
:class:`~repro.harness.parallel.ResultCache` layers pickle-with-corrupt-
handling of :class:`~repro.harness.runner.SimResult` objects on top;
:class:`~repro.snapshot.cache.SnapshotCache` stores raw warmed-core
blobs. Layout::

    <root>/<model_version>/<key><suffix>

where ``model_version`` is the source digest of
:func:`~repro.harness.parallel.model_version`: any change to the
simulator retires every entry of both caches wholesale.
"""

import os


class BlobStore:
    """Content-addressed files under a version directory, written atomically.

    Subclasses set ``suffix`` so different entry kinds can share one root
    (and one version directory) without key collisions. All operations
    are best-effort with respect to the filesystem: a concurrent prune,
    a full disk, or a vanished directory costs a miss or a dropped
    store, never an exception to the caller.
    """

    suffix = ".blob"

    def __init__(self, root, version):
        self.root = str(root)
        self.version = version

    def path_for(self, key):
        """On-disk path of ``key``'s entry for the current model version."""
        return os.path.join(self.root, self.version, key + self.suffix)

    def read_bytes(self, key):
        """The stored payload for ``key``, or ``None`` when absent."""
        try:
            with open(self.path_for(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    _tmp_counter = 0

    def write_bytes(self, key, payload):
        """Persist ``payload`` under ``key``'s content address.

        Write-then-atomic-rename, with a per-(process, call) unique temp
        name, so concurrent processes sharing the store can never observe
        (or clobber each other with) a half-written entry. If another
        process prunes the version directory between our ``makedirs`` and
        ``replace`` (a ``FileNotFoundError``), the write is retried once
        into a recreated directory.
        """
        path = self.path_for(key)
        for attempt in (0, 1):
            BlobStore._tmp_counter += 1
            tmp = "%s.tmp.%d.%d" % (path, os.getpid(), BlobStore._tmp_counter)
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(tmp, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)  # atomic: concurrent writers both win
                return
            except FileNotFoundError:
                # version dir vanished under us (concurrent prune_stale)
                if attempt == 0:
                    continue
                return
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return

    def remove(self, key):
        """Unlink ``key``'s entry (corrupt-entry eviction); never raises."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass

    def prune_stale(self):
        """Delete entry directories from older model versions.

        Safe under concurrent processes: each stale version directory is
        first renamed aside (atomic, so a concurrent writer either lands
        its entry before the rename — and it is deleted with the rest —
        or recreates the directory afresh via :meth:`write_bytes`'s
        retry), then removed; directories that vanish mid-prune (another
        process pruning the same root) are skipped silently.
        """
        try:
            versions = os.listdir(self.root)
        except OSError:
            return
        import shutil

        for version in versions:
            if version == self.version or version.startswith(".trash-"):
                continue
            path = os.path.join(self.root, version)
            if not os.path.isdir(path):
                continue
            trash = os.path.join(
                self.root, ".trash-%s-%d" % (version, os.getpid())
            )
            try:
                os.rename(path, trash)
            except OSError:  # already pruned/renamed by a peer
                continue
            shutil.rmtree(trash, ignore_errors=True)
        # sweep trash left behind by peers killed mid-prune
        try:
            leftovers = os.listdir(self.root)
        except OSError:
            return
        for name in leftovers:
            if name.startswith(".trash-"):
                shutil.rmtree(
                    os.path.join(self.root, name), ignore_errors=True
                )
