"""Multi-seed measurement with confidence intervals.

The default experiments are single-seed (as the paper's single SimPoint
phases effectively are); this module quantifies the synthetic workloads'
seed-to-seed variation: run one (benchmark, scheme, vdd) point over a set
of seeds — each seed generates a different program realization of the same
statistical profile — and report mean, standard deviation, and a normal
95% confidence interval for the overhead metrics.
"""

import math

from repro.core.schemes import SchemeKind
from repro.harness.parallel import run_many
from repro.harness.runner import RunSpec


class SeedStatistic:
    """Mean/stddev/CI of one metric over seeds."""

    def __init__(self, values):
        if not values:
            raise ValueError("need at least one value")
        self.values = list(values)
        self.n = len(values)
        self.mean = sum(values) / self.n
        if self.n > 1:
            var = sum((v - self.mean) ** 2 for v in values) / (self.n - 1)
            self.std = math.sqrt(var)
        else:
            self.std = 0.0

    @property
    def ci95(self):
        """Half-width of the normal-approximation 95% interval."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def __repr__(self):
        return (
            f"SeedStatistic(mean={self.mean:.4f} "
            f"+/- {self.ci95:.4f}, n={self.n})"
        )


class MultiSeedResult:
    """Per-metric statistics of one simulation point across seeds."""

    def __init__(self, benchmark, scheme, vdd, perf_overhead, ed_overhead,
                 ipc, fault_rate):
        self.benchmark = benchmark
        self.scheme = scheme
        self.vdd = vdd
        self.perf_overhead = perf_overhead
        self.ed_overhead = ed_overhead
        self.ipc = ipc
        self.fault_rate = fault_rate

    def __repr__(self):
        return (
            f"MultiSeedResult({self.benchmark}/{self.scheme.name}: "
            f"perf {self.perf_overhead.mean:.2%} "
            f"+/- {self.perf_overhead.ci95:.2%})"
        )


def run_seeds(benchmark, scheme, vdd, seeds=(1, 2, 3), n_instructions=6000,
              warmup=3000, jobs=1, cache=False, cache_dir=None,
              **spec_kwargs):
    """Measure a point over several seeds with paired baselines.

    Each seed's overheads are computed against the fault-free baseline of
    the *same* seed (the same program and trace), so seed-to-seed program
    variation cancels out of the overhead metrics. The whole
    (seed x {scheme, baseline}) grid goes through the batch engine, so
    ``jobs`` fans the runs out and ``cache`` reuses earlier points.
    """
    specs = []
    for seed in seeds:
        specs.append(
            RunSpec(benchmark, SchemeKind.FAULT_FREE, vdd,
                    n_instructions, warmup, seed, **spec_kwargs)
        )
        specs.append(
            RunSpec(benchmark, scheme, vdd,
                    n_instructions, warmup, seed, **spec_kwargs)
        )
    points = run_many(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    perf, ed, ipcs, frs = [], [], [], []
    for i in range(len(seeds)):
        baseline = points[2 * i]
        result = points[2 * i + 1]
        perf.append(result.perf_overhead(baseline))
        ed.append(result.ed_overhead(baseline))
        ipcs.append(baseline.ipc)
        frs.append(result.fault_rate)
    return MultiSeedResult(
        benchmark, scheme, vdd,
        SeedStatistic(perf), SeedStatistic(ed),
        SeedStatistic(ipcs), SeedStatistic(frs),
    )
