"""Multi-seed measurement with confidence intervals.

Since the campaign engine landed (:mod:`repro.campaign`) this module is
a thin preset over it: ``run_seeds`` measures one (benchmark, scheme,
vdd) grid point over a fixed set of seeds — explicit, or drawn from the
campaign's derived seed stream — through
:func:`repro.campaign.executor.measure_point`, and re-shapes the
accumulator into the historical :class:`MultiSeedResult` API. The
interval math lives in :mod:`repro.campaign.stats`; nothing is
duplicated here. For open-ended sampling with confidence-driven
stopping (and crash-safe journaling), use a campaign directly.
"""

# NOTE: repro.campaign imports are deferred to call time — this module
# is pulled in by ``repro.harness.__init__``, which the campaign engine
# itself imports (plan -> harness.runner), so a module-level import here
# would be circular.


class SeedStatistic:
    """Mean/stddev/CI of one metric over seeds."""

    def __init__(self, values):
        from repro.campaign.stats import mean_std

        self.values = list(values)
        self.n = len(self.values)
        self.mean, self.std = mean_std(self.values)

    @property
    def ci95(self):
        """Half-width of the normal-approximation 95% interval."""
        from repro.campaign.stats import normal_halfwidth

        if self.n < 2:
            return 0.0
        return normal_halfwidth(self.std, self.n)

    def __repr__(self):
        return (
            f"SeedStatistic(mean={self.mean:.4f} "
            f"+/- {self.ci95:.4f}, n={self.n})"
        )


class MultiSeedResult:
    """Per-metric statistics of one simulation point across seeds."""

    def __init__(self, benchmark, scheme, vdd, perf_overhead, ed_overhead,
                 ipc, fault_rate):
        self.benchmark = benchmark
        self.scheme = scheme
        self.vdd = vdd
        self.perf_overhead = perf_overhead
        self.ed_overhead = ed_overhead
        self.ipc = ipc
        self.fault_rate = fault_rate

    def __repr__(self):
        return (
            f"MultiSeedResult({self.benchmark}/{self.scheme.name}: "
            f"perf {self.perf_overhead.mean:.2%} "
            f"+/- {self.perf_overhead.ci95:.2%})"
        )


def run_seeds(benchmark, scheme, vdd, seeds=(1, 2, 3), n_instructions=6000,
              warmup=3000, jobs=1, cache=False, cache_dir=None,
              **spec_kwargs):
    """Measure a point over several seeds with paired baselines.

    Each seed's overheads are computed against the fault-free baseline
    of the *same* seed (the same program and trace), so seed-to-seed
    program variation cancels out of the overhead metrics. ``seeds`` may
    be an explicit sequence, or an integer N to draw N seeds from the
    campaign engine's derived seed stream (reproducible from the master
    seed, ``spec_kwargs['master_seed']``, default 1). All runs go
    through the batch engine: ``jobs`` fans them out and ``cache``
    reuses earlier points.
    """
    from repro.campaign.executor import make_run_fn, measure_point
    from repro.campaign.plan import CampaignSpec

    seed_list = None if isinstance(seeds, int) else list(seeds)
    n_seeds = seeds if isinstance(seeds, int) else len(seed_list)
    spec = CampaignSpec(
        name=f"multiseed-{benchmark}",
        benchmarks=[benchmark],
        schemes=[scheme],
        vdds=[vdd],
        n_instructions=n_instructions,
        warmup=warmup,
        seeds=seed_list,
        min_seeds=n_seeds,
        max_seeds=n_seeds,
        batch_size=n_seeds,
        targets={},  # fixed-N: exactly n_seeds draws, no early stop
        **spec_kwargs,
    )
    point = spec.points()[0]
    run_fn = make_run_fn(jobs=jobs, cache=cache, cache_dir=cache_dir)
    acc, _reason, failure = measure_point(spec, point, run_fn)
    if failure is not None:
        # no journal to park a failed point in here: stay loud
        raise RuntimeError(
            f"verified run failed during multiseed sweep: {failure!r}"
        )
    return MultiSeedResult(
        benchmark, point.scheme, vdd,
        SeedStatistic(acc.values["perf_overhead"]),
        SeedStatistic(acc.values["ed_overhead"]),
        SeedStatistic(acc.values["ipc"]),
        SeedStatistic(acc.values["fault_rate"]),
    )
