"""JSON serialization of simulation and experiment results.

Downstream analysis (plotting, regression tracking) wants machine-readable
outputs. ``sim_result_to_dict`` flattens a :class:`~repro.harness.runner.
SimResult`; ``experiment_to_dict`` wraps an experiment's data; and
``write_json`` dumps either to a file. Objects that are not natively JSON
(enums, numpy scalars, report objects) are coerced conservatively.
"""

import json

from repro.isa.opcodes import OpClass, PipeStage


def _coerce(value):
    """Best-effort conversion of a value to something JSON-serializable."""
    if isinstance(value, (OpClass, PipeStage)):
        return value.name
    if isinstance(value, dict):
        return {_key(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_coerce(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "__dict__"):
        return {
            k: _coerce(v)
            for k, v in vars(value).items()
            if not k.startswith("_")
        }
    return repr(value)


def _key(key):
    if isinstance(key, (OpClass, PipeStage)):
        return key.name
    if isinstance(key, (int, float, str, bool)):
        return str(key)
    return repr(key)


def sim_result_to_dict(result):
    """Flatten one :class:`~repro.harness.runner.SimResult`."""
    spec = result.spec
    return {
        "spec": {
            "benchmark": spec.benchmark,
            "scheme": getattr(spec.scheme, "name", str(spec.scheme)),
            "vdd": spec.vdd,
            "n_instructions": spec.n_instructions,
            "warmup": spec.warmup,
            "seed": spec.seed,
            "predictor": spec.predictor,
            "overclock": spec.overclock,
        },
        "metrics": {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "fault_rate": result.fault_rate,
            "energy_pj": result.energy.total,
            "edp": result.edp,
        },
        "stats": _coerce(result.stats.as_dict()),
        "stage_faults": _coerce(result.stats.stage_faults),
        "cache": _coerce(result.cache_stats),
    }


def experiment_to_dict(experiment):
    """Wrap an :class:`~repro.harness.experiments.ExperimentResult`."""
    return {
        "experiment": experiment.name,
        "data": _coerce(experiment.data),
        "rendered": experiment.render(),
    }


def write_json(obj, path, indent=2):
    """Serialize ``obj`` (result, experiment, or plain data) to ``path``."""
    if hasattr(obj, "render") and hasattr(obj, "data"):
        payload = experiment_to_dict(obj)
    elif hasattr(obj, "stats") and hasattr(obj, "spec"):
        payload = sim_result_to_dict(obj)
    else:
        payload = _coerce(obj)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, default=repr)
    return path
