"""Experiment definitions: one function per table/figure of the paper.

Every experiment returns a result object with the raw data (``data``) and a
``render()`` method producing the text report; the CLI and the benchmark
suite are thin wrappers over these.

The scheduling experiments share simulation runs through a
:class:`SchedulingSweep`, which runs (benchmark x scheme) at one supply
voltage and caches the results — Figure 4 and 5 (and 8 and 9) use the same
sweep.
"""

from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_HIGH_FAULT, VDD_LOW_FAULT, VDD_NOMINAL
from repro.harness import paper_data
from repro.harness.parallel import run_many
from repro.harness.runner import RunSpec
from repro.harness.tables import format_bar_series, format_table
from repro.workloads.profiles import profile_names

_PROPOSED = (SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS)


class ExperimentResult:
    """Raw data plus a text rendering for one experiment."""

    def __init__(self, name, data, text):
        self.name = name
        self.data = data
        self._text = text

    def render(self):
        """The plain-text report."""
        return self._text

    def __repr__(self):
        return f"ExperimentResult({self.name})"


class SchedulingSweep:
    """Caches (benchmark, scheme) simulation results at one voltage.

    ``jobs``/``cache``/``cache_dir`` configure the batch engine
    (:func:`repro.harness.parallel.run_many`) used to fill the sweep:
    points requested in bulk (:meth:`prefetch`, or implicitly by
    :meth:`relative_overheads`) fan out over ``jobs`` worker processes,
    and with ``cache`` enabled every point is persisted to — and replayed
    from — the on-disk result cache.
    """

    def __init__(self, vdd, n_instructions=10000, warmup=4000, seed=1,
                 benchmarks=None, jobs=1, cache=False, cache_dir=None):
        self.vdd = vdd
        self.n_instructions = n_instructions
        self.warmup = warmup
        self.seed = seed
        self.benchmarks = list(benchmarks or profile_names())
        self.jobs = jobs
        self.cache = cache
        self.cache_dir = cache_dir
        self._cache = {}

    def spec(self, benchmark, scheme):
        """The :class:`RunSpec` of one sweep point."""
        return RunSpec(
            benchmark, scheme, self.vdd,
            self.n_instructions, self.warmup, self.seed,
        )

    def _run_many(self, specs):
        return run_many(
            specs, jobs=self.jobs, cache=self.cache,
            cache_dir=self.cache_dir,
        )

    def prefetch(self, schemes):
        """Fill the (benchmark x scheme) grid through the batch engine."""
        pairs = [
            (benchmark, scheme)
            for benchmark in self.benchmarks
            for scheme in schemes
            if (benchmark, scheme) not in self._cache
        ]
        if not pairs:
            return
        results = self._run_many([self.spec(b, s) for b, s in pairs])
        self._cache.update(zip(pairs, results))

    def result(self, benchmark, scheme):
        """Run (or fetch) one simulation point."""
        key = (benchmark, scheme)
        if key not in self._cache:
            self._cache[key] = self._run_many([self.spec(*key)])[0]
        return self._cache[key]

    def baseline(self, benchmark):
        """The fault-free baseline at this voltage."""
        return self.result(benchmark, SchemeKind.FAULT_FREE)

    def perf_overhead(self, benchmark, scheme):
        """Cycle overhead of a scheme vs the fault-free baseline."""
        return self.result(benchmark, scheme).perf_overhead(
            self.baseline(benchmark)
        )

    def ed_overhead(self, benchmark, scheme):
        """Energy-delay overhead of a scheme vs the fault-free baseline."""
        return self.result(benchmark, scheme).ed_overhead(
            self.baseline(benchmark)
        )

    def relative_overheads(self, metric="perf"):
        """{scheme_name: {benchmark: overhead normalized to EP}}.

        Benchmarks where the EP overhead is non-positive (possible at very
        low fault rates with measurement noise) are skipped — a ratio to a
        <=0 denominator is meaningless.
        """
        self.prefetch((SchemeKind.FAULT_FREE, SchemeKind.EP) + _PROPOSED)
        fn = self.perf_overhead if metric == "perf" else self.ed_overhead
        series = {s.name: {} for s in _PROPOSED}
        for benchmark in self.benchmarks:
            ep = fn(benchmark, SchemeKind.EP)
            if ep <= 0:
                continue
            for scheme in _PROPOSED:
                series[scheme.name][benchmark] = max(
                    fn(benchmark, scheme), 0.0
                ) / ep
        return series


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
           sweeps=None, jobs=1, cache=False, cache_dir=None):
    """Reproduce Table 1: IPC, fault rates, Razor and EP overheads.

    ``sweeps`` optionally supplies precomputed
    {vdd: :class:`SchedulingSweep`} so runs are shared with the figure
    experiments.
    """
    benchmarks = list(benchmarks or profile_names())
    rows = []
    data = {}
    if sweeps is None:
        sweeps = {
            vdd: SchedulingSweep(vdd, n_instructions, warmup, seed,
                                 benchmarks, jobs=jobs, cache=cache,
                                 cache_dir=cache_dir)
            for vdd in (VDD_HIGH_FAULT, VDD_LOW_FAULT)
        }
    for sweep in sweeps.values():
        sweep.prefetch(
            (SchemeKind.FAULT_FREE, SchemeKind.RAZOR, SchemeKind.EP)
        )
    nominal = run_many(
        [
            RunSpec(benchmark, SchemeKind.FAULT_FREE, VDD_NOMINAL,
                    n_instructions, warmup, seed)
            for benchmark in benchmarks
        ],
        jobs=jobs, cache=cache, cache_dir=cache_dir,
    )
    for benchmark, nominal_result in zip(benchmarks, nominal):
        ipc = nominal_result.ipc
        entry = {"ipc": ipc}
        row = [benchmark, round(ipc, 2)]
        for vdd in (VDD_HIGH_FAULT, VDD_LOW_FAULT):
            sweep = sweeps[vdd]
            razor = sweep.result(benchmark, SchemeKind.RAZOR)
            fr = razor.fault_rate * 100
            razor_ov = (
                sweep.perf_overhead(benchmark, SchemeKind.RAZOR) * 100,
                sweep.ed_overhead(benchmark, SchemeKind.RAZOR) * 100,
            )
            ep_ov = (
                sweep.perf_overhead(benchmark, SchemeKind.EP) * 100,
                sweep.ed_overhead(benchmark, SchemeKind.EP) * 100,
            )
            entry[vdd] = {"fr": fr, "razor": razor_ov, "ep": ep_ov}
            row.extend([
                round(fr, 2),
                f"({razor_ov[0]:.1f},{razor_ov[1]:.1f})",
                f"({ep_ov[0]:.2f},{ep_ov[1]:.2f})",
            ])
        paper = paper_data.PAPER_TABLE1[benchmark]
        row.append(f"[paper ipc={paper.ipc}, fr={paper.fr_high}/{paper.fr_low}]")
        rows.append(row)
        data[benchmark] = entry
    text = format_table(
        ["bench", "IPC", "FR%@0.97", "Razor@0.97", "EP@0.97",
         "FR%@1.04", "Razor@1.04", "EP@1.04", "paper"],
        rows,
        title="Table 1: fault rates and Razor/EP overhead (perf%, ED%)",
    )
    return ExperimentResult("table1", data, text)


# ----------------------------------------------------------------------
# Figures 4/5 (1.04V) and 8/9 (0.97V)
# ----------------------------------------------------------------------
def _figure(metric, vdd, name, title, n_instructions, warmup, seed,
            benchmarks, sweep=None, jobs=1, cache=False, cache_dir=None):
    if benchmarks is None:
        benchmarks = (
            profile_names()
            if vdd == VDD_LOW_FAULT
            else list(paper_data.HIGH_FR_BENCHMARKS)
        )
    if sweep is None:
        sweep = SchedulingSweep(vdd, n_instructions, warmup, seed,
                                benchmarks, jobs=jobs, cache=cache,
                                cache_dir=cache_dir)
    else:
        benchmarks = sweep.benchmarks
    series = sweep.relative_overheads(metric)
    averages = {
        name_: (sum(vals.values()) / len(vals) if vals else float("nan"))
        for name_, vals in series.items()
    }
    for name_, avg in averages.items():
        series[name_]["AVERAGE"] = avg
    text = format_bar_series(
        title, list(benchmarks) + ["AVERAGE"], series
    )
    return ExperimentResult(
        name, {"series": series, "averages": averages, "vdd": vdd}, text
    )


def fig4(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
         sweep=None, jobs=1, cache=False, cache_dir=None):
    """Figure 4: performance overhead vs EP at 1.04V (lower is better)."""
    return _figure(
        "perf", VDD_LOW_FAULT, "fig4",
        "Figure 4: relative performance overhead vs EP (VDD=1.04V)",
        n_instructions, warmup, seed, benchmarks, sweep,
        jobs=jobs, cache=cache, cache_dir=cache_dir,
    )


def fig5(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
         sweep=None, jobs=1, cache=False, cache_dir=None):
    """Figure 5: ED overhead vs EP at 1.04V."""
    return _figure(
        "ed", VDD_LOW_FAULT, "fig5",
        "Figure 5: relative ED overhead vs EP (VDD=1.04V)",
        n_instructions, warmup, seed, benchmarks, sweep,
        jobs=jobs, cache=cache, cache_dir=cache_dir,
    )


def fig8(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
         sweep=None, jobs=1, cache=False, cache_dir=None):
    """Figure 8: performance overhead vs EP at 0.97V."""
    return _figure(
        "perf", VDD_HIGH_FAULT, "fig8",
        "Figure 8: relative performance overhead vs EP (VDD=0.97V)",
        n_instructions, warmup, seed, benchmarks, sweep,
        jobs=jobs, cache=cache, cache_dir=cache_dir,
    )


def fig9(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
         sweep=None, jobs=1, cache=False, cache_dir=None):
    """Figure 9: ED overhead vs EP at 0.97V."""
    return _figure(
        "ed", VDD_HIGH_FAULT, "fig9",
        "Figure 9: relative ED overhead vs EP (VDD=0.97V)",
        n_instructions, warmup, seed, benchmarks, sweep,
        jobs=jobs, cache=cache, cache_dir=cache_dir,
    )


# ----------------------------------------------------------------------
# Table 2 / Table 3 / Figure 7 (circuit-level)
# ----------------------------------------------------------------------
def table2():
    """Reproduce Table 2: VTE area/power overheads."""
    from repro.power.overhead import SchedulerOverheadModel

    model = SchedulerOverheadModel()
    rows = []
    data = {}
    for scheme, sched, core in model.table2():
        paper = paper_data.PAPER_TABLE2[scheme]
        rows.append([
            scheme,
            f"{sched.area:.2%}", f"{sched.dynamic:.2%}",
            f"{sched.leakage:.2%}",
            f"{core.area:.3%}", f"{core.dynamic:.3%}", f"{core.leakage:.3%}",
            f"[paper sched {paper['sched']}]",
        ])
        data[scheme] = {"sched": sched, "core": core}
    text = format_table(
        ["scheme", "area", "dyn", "leak", "core area", "core dyn",
         "core leak", "paper"],
        rows,
        title="Table 2: VTE area/power overhead vs baseline scheduler",
    )
    return ExperimentResult("table2", data, text)


def table3(mapped=True):
    """Reproduce Table 3: synthesized component characteristics."""
    from repro.circuits.builders import (
        build_agen,
        build_alu,
        build_forward_check,
        build_issue_select,
    )
    from repro.circuits.synthesis import synthesize

    builders = {
        "IssueQSelect": build_issue_select,
        "ALU": build_alu,
        "AGen": build_agen,
        "ForwardCheck": build_forward_check,
    }
    rows = []
    data = {}
    for name, builder in builders.items():
        netlist, _ = builder()
        report = synthesize(netlist, mapped=mapped)
        paper_gates, paper_depth = paper_data.PAPER_TABLE3[name]
        rows.append([
            name, report.n_gates, report.depth, round(report.area, 1),
            f"[paper {paper_gates}/{paper_depth}]",
        ])
        data[name] = report
    text = format_table(
        ["module", "gates", "depth", "area um^2", "paper gates/depth"],
        rows,
        title=f"Table 3: synthesized components ({'NAND-mapped' if mapped else 'native'})",
    )
    return ExperimentResult("table3", data, text)


def fig7(seed=7):
    """Reproduce Figure 7: sensitized-path commonality per component."""
    from repro.circuits.builders import (
        build_agen,
        build_alu,
        build_forward_check,
        build_issue_select,
    )
    from repro.circuits.sensitization import (
        toggle_sets_per_pc,
        weighted_commonality,
    )
    from repro.workloads.operand_streams import (
        FIG7_COMPONENTS,
        SPEC2000INT_PROFILES,
        StreamBuilder,
    )

    builders = {
        "IssueQSelect": build_issue_select,
        "AGen": build_agen,
        "ForwardCheck": build_forward_check,
        "ALU": build_alu,
    }
    series = {name: {} for name in SPEC2000INT_PROFILES}
    averages = {}
    for component in FIG7_COMPONENTS:
        netlist, _ = builders[component]()
        values = []
        for bench, profile in SPEC2000INT_PROFILES.items():
            stream = StreamBuilder(profile, seed=seed).stream_for(component)
            sets = toggle_sets_per_pc(netlist, stream)
            value = weighted_commonality(sets)
            series[bench][component] = value
            values.append(value)
        averages[component] = sum(values) / len(values)
    text = format_bar_series(
        "Figure 7: sensitized-path commonality "
        f"(paper avgs: {paper_data.PAPER_FIG7_AVG})",
        list(FIG7_COMPONENTS),
        series,
    )
    return ExperimentResult(
        "fig7", {"series": series, "averages": averages}, text
    )


# ----------------------------------------------------------------------
# headline claims (abstract / Section 5.2 / Section S2)
# ----------------------------------------------------------------------
def headline(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
             sweeps=None, jobs=1, cache=False, cache_dir=None):
    """Average overhead reductions vs EP, compared to the paper's claims.

    ``sweeps`` optionally maps vdd -> precomputed :class:`SchedulingSweep`.
    """
    results = {}
    for name, fig_fn, claim_key, vdd in (
        ("perf@1.04V", fig4, "perf_reduction_low_fr", VDD_LOW_FAULT),
        ("ED@1.04V", fig5, "ed_reduction_low_fr", VDD_LOW_FAULT),
        ("perf@0.97V", fig8, "perf_reduction_high_fr", VDD_HIGH_FAULT),
        ("ED@0.97V", fig9, "ed_reduction_high_fr", VDD_HIGH_FAULT),
    ):
        sweep = sweeps.get(vdd) if sweeps else None
        fig = fig_fn(n_instructions, warmup, seed, benchmarks, sweep=sweep,
                     jobs=jobs, cache=cache, cache_dir=cache_dir)
        best = min(fig.data["averages"].values())
        reduction = 1.0 - best
        results[name] = {
            "measured_reduction": reduction,
            "paper_reduction": paper_data.PAPER_CLAIMS[claim_key],
            "per_scheme": {
                k: 1.0 - v for k, v in fig.data["averages"].items()
            },
        }
    rows = [
        [name, f"{r['measured_reduction']:.0%}", f"{r['paper_reduction']:.0%}"]
        for name, r in results.items()
    ]
    text = format_table(
        ["metric", "measured avg reduction", "paper"],
        rows,
        title="Headline: average overhead reduction vs Error Padding",
    )
    return ExperimentResult("headline", results, text)


# ----------------------------------------------------------------------
# calibration report (not a paper artifact; quality gate for the repro)
# ----------------------------------------------------------------------
def calibration(n_instructions=10000, warmup=4000, seed=1, benchmarks=None,
                jobs=1, cache=False, cache_dir=None):
    """Measured vs paper fault-free IPC and fault rates per benchmark."""
    benchmarks = list(benchmarks or profile_names())
    rows = []
    data = {}
    grid = [
        RunSpec(benchmark, scheme, vdd, n_instructions, warmup, seed)
        for benchmark in benchmarks
        for scheme, vdd in (
            (SchemeKind.FAULT_FREE, VDD_NOMINAL),
            (SchemeKind.RAZOR, VDD_LOW_FAULT),
            (SchemeKind.RAZOR, VDD_HIGH_FAULT),
        )
    ]
    points = run_many(grid, jobs=jobs, cache=cache, cache_dir=cache_dir)
    for i, benchmark in enumerate(benchmarks):
        paper = paper_data.PAPER_TABLE1[benchmark]
        ipc = points[3 * i].ipc
        fr_low = points[3 * i + 1].fault_rate * 100
        fr_high = points[3 * i + 2].fault_rate * 100
        ipc_err = abs(ipc - paper.ipc) / paper.ipc
        rows.append([
            benchmark,
            round(ipc, 2), paper.ipc, f"{ipc_err:.0%}",
            round(fr_low, 2), paper.fr_low,
            round(fr_high, 2), paper.fr_high,
        ])
        data[benchmark] = {
            "ipc": ipc, "ipc_paper": paper.ipc, "ipc_err": ipc_err,
            "fr_low": fr_low, "fr_high": fr_high,
        }
    mean_err = sum(d["ipc_err"] for d in data.values()) / len(data)
    text = format_table(
        ["bench", "IPC", "paper", "err", "FR%@1.04", "paper",
         "FR%@0.97", "paper"],
        rows,
        title=(
            "Calibration vs Table 1 "
            f"(mean |IPC error| = {mean_err:.1%})"
        ),
    )
    return ExperimentResult(
        "calibration", {"rows": data, "mean_ipc_err": mean_err}, text
    )


# ----------------------------------------------------------------------
# shmoo characterization (not a paper artifact; silicon-style V/f grid)
# ----------------------------------------------------------------------
def shmoo(n_instructions=4000, warmup=2000, seed=1, benchmarks=None,
          scheme=SchemeKind.ABS, vdds=(1.10, 1.04, 0.97),
          overclocks=(1.00, 1.04, 1.08), jobs=1, cache=False,
          cache_dir=None):
    """Voltage/frequency grid: fault rate and net throughput per cell.

    Net throughput is IPC x frequency factor, normalized to the fault-free
    nominal corner — the classic silicon shmoo, answering "which (V, f)
    corners are profitable under this fault-tolerance scheme?".
    """
    benchmark = (benchmarks or ["bzip2"])[0]
    cells = [(vdd, factor) for vdd in vdds for factor in overclocks]
    specs = [
        RunSpec(benchmark, SchemeKind.FAULT_FREE, VDD_NOMINAL,
                n_instructions, warmup, seed)
    ] + [
        RunSpec(benchmark, scheme, vdd, n_instructions, warmup, seed,
                overclock=factor)
        for vdd, factor in cells
    ]
    points = run_many(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
    nominal = points[0]
    rows = []
    data = {}
    for (vdd, factor), result in zip(cells, points[1:]):
        throughput = result.ipc * factor / nominal.ipc
        rows.append([
            vdd, factor, f"{result.fault_rate:.2%}",
            round(throughput, 3),
            "+" if throughput > 1.0 else ("=" if throughput == 1 else "-"),
        ])
        data[(vdd, factor)] = {
            "fault_rate": result.fault_rate,
            "throughput": throughput,
        }
    scheme_name = getattr(scheme, "name", str(scheme))
    text = format_table(
        ["VDD", "f", "fault rate", "net throughput", ""],
        rows,
        title=(
            f"Shmoo: {benchmark} under {scheme_name} "
            "(throughput normalized to fault-free nominal corner)"
        ),
    )
    return ExperimentResult("shmoo", data, text)


#: All experiments by name (used by the CLI).
EXPERIMENTS = {
    "calibration": calibration,
    "shmoo": shmoo,
    "table1": table1,
    "fig4": fig4,
    "fig5": fig5,
    "fig8": fig8,
    "fig9": fig9,
    "table2": table2,
    "table3": table3,
    "fig7": fig7,
    "headline": headline,
}
