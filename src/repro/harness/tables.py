"""Plain-text rendering of tables and bar-chart series."""


def format_table(headers, rows, title=None):
    """Render an ASCII table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_series(title, categories, series, max_width=40):
    """Render grouped horizontal bars (one group per category).

    ``series`` is ``{series_name: {category: value}}``. Values are shown
    with bars scaled to the global maximum.
    """
    peak = max(
        (v for by_cat in series.values() for v in by_cat.values()),
        default=1.0,
    )
    peak = peak or 1.0
    lines = [title]
    name_width = max(len(n) for n in series)
    for cat in categories:
        lines.append(f"{cat}:")
        for name, by_cat in series.items():
            value = by_cat.get(cat)
            if value is None:
                continue
            bar = "#" * max(1, int(round(value / peak * max_width)))
            lines.append(f"  {name.ljust(name_width)} {value:7.3f} {bar}")
    return "\n".join(lines)
