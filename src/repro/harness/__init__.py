"""Experiment harness: runners, experiment definitions, rendering, CLI."""

from repro.harness.runner import RunSpec, SimResult, run_one, run_pair
from repro.harness.export import sim_result_to_dict, write_json
from repro.harness.multiseed import MultiSeedResult, SeedStatistic, run_seeds

__all__ = [
    "RunSpec",
    "SimResult",
    "run_one",
    "run_pair",
    "sim_result_to_dict",
    "write_json",
    "MultiSeedResult",
    "SeedStatistic",
    "run_seeds",
]
