"""Published numbers from the paper, for comparison in reports and tests.

Sources: Table 1 (fault rates and Razor/EP overheads), Table 2 (VTE
area/power overheads), Table 3 (synthesized component characteristics),
Figure 7 (sensitized-path commonality averages), and the headline claims in
the abstract / Sections 5.2 and S2.
"""


class Table1Row:
    """One benchmark row of the paper's Table 1.

    Overhead tuples are (performance %, energy-efficiency %) degradations.
    Fault rates are percentages of instructions.
    """

    def __init__(self, ipc, fr_high, razor_high, ep_high,
                 fr_low, razor_low, ep_low):
        self.ipc = ipc
        self.fr_high = fr_high
        self.razor_high = razor_high
        self.ep_high = ep_high
        self.fr_low = fr_low
        self.razor_low = razor_low
        self.ep_low = ep_low


#: Table 1 of the paper (VDD = 0.97V is the high-fault, 1.04V the low-fault
#: environment).
PAPER_TABLE1 = {
    "astar": Table1Row(0.69, 6.74, (31.2, 45.6), (5.17, 6.45),
                       2.01, (10.2, 14.6), (1.29, 1.7)),
    "bzip2": Table1Row(1.48, 8.92, (43.2, 56.8), (12.35, 16.5),
                       2.24, (17.4, 25.6), (3.1, 3.7)),
    "gcc": Table1Row(1.34, 8.43, (47.2, 61.3), (8.57, 10.3),
                     1.5, (19.4, 29.6), (2.14, 2.6)),
    "gobmk": Table1Row(1.68, 8.64, (47.3, 53.3), (12.65, 16.3),
                       2.16, (18.2, 24.5), (3.16, 3.95)),
    "libquantum": Table1Row(0.51, 10.54, (25.3, 32.5), (4.5, 5.7),
                            2.1, (6.8, 10.2), (1.12, 1.5)),
    "mcf": Table1Row(0.34, 6.45, (30.1, 42.3), (1.96, 2.8),
                     1.73, (9.5, 12.6), (0.49, 0.85)),
    "perlbench": Table1Row(1.31, 7.21, (45.7, 54.7), (6.52, 7.1),
                           1.8, (15.6, 21.2), (1.63, 2.1)),
    "povray": Table1Row(1.941, 6.31, (51.2, 75.4), (7.58, 9.1),
                        1.57, (24.5, 32.5), (1.89, 2.25)),
    "sjeng": Table1Row(1.93, 9.19, (58.6, 72.5), (15.19, 17.8),
                       2.29, (23.5, 29.8), (3.79, 4.83)),
    "sphinx3": Table1Row(1.30, 6.95, (52.5, 67.4), (5.45, 5.9),
                         1.73, (17.2, 22.5), (1.36, 1.78)),
    "tonto": Table1Row(1.41, 5.59, (45.6, 65.7), (5.04, 6.5),
                       1.39, (16.5, 21.4), (1.25, 2.6)),
    "xalancbmk": Table1Row(0.51, 7.95, (34.5, 45.2), (3.09, 3.8),
                           1.99, (12.5, 15.6), (0.77, 1.02)),
}

#: Table 2: (scheduler-level %, core-level %) for (area, dynamic, leakage).
PAPER_TABLE2 = {
    "ABS": {"sched": (0.77, 0.57, 0.87), "core": (0.03, 0.05, 0.01)},
    "FFS": {"sched": (0.77, 0.57, 0.87), "core": (0.03, 0.05, 0.01)},
    "CDS": {"sched": (6.35, 1.56, 6.80), "core": (0.24, 0.13, 0.08)},
}

#: Table 3: synthesized component (gate count, logic depth).
PAPER_TABLE3 = {
    "IssueQSelect": (189, 33),
    "ALU": (4728, 46),
    "AGen": (491, 43),
    "ForwardCheck": (428, 15),
}

#: Figure 7: average sensitized-path commonality per component.
PAPER_FIG7_AVG = {
    "IssueQSelect": 0.874,
    "AGen": 0.89,
    "ForwardCheck": 0.924,
    "ALU": 0.90,
}

#: Headline claims (abstract, Section 5.2, Section S2).
PAPER_CLAIMS = {
    # average reduction of performance overhead vs EP
    "perf_reduction_low_fr": 0.87,   # VDD = 1.04V (Section 5.2)
    "perf_reduction_high_fr": 0.88,  # VDD = 0.97V (Section S2)
    # average reduction of ED overhead vs EP
    "ed_reduction_low_fr": 0.82,
    "ed_reduction_high_fr": 0.83,
    # per-benchmark extremes quoted in the text
    "astar_abs_reduction_low_fr": 0.97,
    "libquantum_cds_reduction_low_fr": 0.86,
    "libquantum_abs_reduction_low_fr": 0.64,
    # overall reduction band (abstract)
    "reduction_band": (0.64, 0.97),
}

#: Benchmarks shown in Figures 8/9 (povray is absent at 0.97V).
HIGH_FR_BENCHMARKS = [
    "astar", "bzip2", "gcc", "gobmk", "libquantum", "mcf",
    "perlbench", "sjeng", "sphinx3", "tonto", "xalancbmk",
]
