"""Simulator self-profiling: where does the *Python* time go?

Wraps a core's per-cycle stage methods (fetch, dispatch, select/issue,
commit, event processing) with ``perf_counter`` accounting, so a run can
report wall-clock seconds and call counts per simulator stage — the data
behind docs/performance.md's hot-path work, now available from any run.

The disabled path costs nothing measurable: profiling *replaces* the
bound methods on one core instance before its run loop binds them; with
profiling off, no wrapper exists and the loop executes the original
methods untouched. (The numbers are wall-clock and therefore
nondeterministic; they are excluded from telemetry determinism
guarantees and from cached-result byte-identity.)
"""

from time import perf_counter


class SelfProfiler:
    """Per-stage wall-clock accounting of one core's simulation loop."""

    #: label -> OoOCore method wrapped (run() rebinds these each call,
    #: so wrapping the instance attribute is enough)
    STAGES = (
        ("fetch", "_fetch"),
        ("dispatch", "_dispatch"),
        ("select", "_select"),
        ("commit", "_commit"),
        ("events", "_process_events"),
    )

    def __init__(self):
        self.seconds = {label: 0.0 for label, _ in self.STAGES}
        self.calls = {label: 0 for label, _ in self.STAGES}
        self._t_start = None
        self.wall_seconds = 0.0

    def attach(self, core):
        """Wrap ``core``'s stage methods; call before ``core.run``."""
        for label, attr in self.STAGES:
            setattr(core, attr, self._wrap(label, getattr(core, attr)))
        self._t_start = perf_counter()
        return self

    def _wrap(self, label, fn):
        seconds = self.seconds
        calls = self.calls

        def timed(*args, **kwargs):
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                seconds[label] += perf_counter() - t0
                calls[label] += 1

        return timed

    def stop(self):
        """Close the wall-clock window opened by :meth:`attach`."""
        if self._t_start is not None:
            self.wall_seconds = perf_counter() - self._t_start
            self._t_start = None
        return self

    def report(self):
        """JSON-safe breakdown: per-stage seconds/calls + the remainder.

        ``other_seconds`` is the run-loop residue — scheduling, watchdog
        checks, and everything not inside a wrapped stage method.
        """
        self.stop()
        staged = sum(self.seconds.values())
        return {
            "wall_seconds": self.wall_seconds,
            "other_seconds": max(self.wall_seconds - staged, 0.0),
            "stages": {
                label: {
                    "seconds": self.seconds[label],
                    "calls": self.calls[label],
                }
                for label, _ in self.STAGES
            },
        }
