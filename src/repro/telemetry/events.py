"""Structured event tracing: a bounded ring-buffer event bus.

The pipeline emits one event per *mechanism activation* — a timing
violation detected, a TEP prediction or training update, a VTE pad, a
slot freeze, an EP stall, a replay, a squash batch, a safety-net
recovery, a watchdog trip, and each retired instruction — each tagged
with its cycle and a small JSON-safe payload. Emission is opt-in: with
no bus attached the hook sites cost one attribute check.

Recording is a ``deque(maxlen=capacity)`` ring, so a run can never grow
without bound; overflow evicts the *oldest* events and counts them in
``dropped`` (surfaced by every exporter header — a trace that lost its
head says so). Subscribers (e.g. :class:`~repro.uarch.pipetrace.
PipeTracer`) receive every event of their name synchronously, before any
eviction, so analysis built on subscriptions is exact even when the ring
is small.

Event taxonomy (stable names, documented in docs/observability.md):

=================== ====================================================
``fault``           actual violation detected (stage, tolerated?)
``tep_predict``     TEP predicted a faulty stage at decode
``tep_train``       TEP trained on an observed outcome
``vte_pad``         VTE inserted the extra cycle for a predicted fault
``slot_freeze``     issue slot frozen behind a predicted-faulty inst
``ep_stall``        whole-pipeline Error Padding stall scheduled
``inorder_stall``   front-end stall for a predicted in-order fault
``safety_net``      detect-and-replay safety net absorbed a wild fault
``replay``          Razor-style flush recovery began (squash count)
``selective``       Razor-I in-place re-execution of one stage
``memdep``          load/store ordering violation squash
``watchdog``        hang watchdog fired (terminal)
``retire``          one instruction committed (full stage timing)
=================== ====================================================
"""

import json
from collections import deque

EVENT_NAMES = (
    "fault", "tep_predict", "tep_train", "vte_pad", "slot_freeze",
    "ep_stall", "inorder_stall", "safety_net", "replay", "selective",
    "memdep", "watchdog", "retire",
)


class EventBus:
    """Bounded recorder + dispatcher of ``(cycle, name, payload)`` events."""

    __slots__ = ("capacity", "emitted", "dropped", "_ring", "_subs")

    def __init__(self, capacity=65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.emitted = 0
        self.dropped = 0
        self._ring = deque(maxlen=self.capacity)
        self._subs = {}

    def emit(self, cycle, name, **payload):
        """Record one event and dispatch it to subscribers of ``name``."""
        self.emitted += 1
        ring = self._ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append((cycle, name, payload))
        subs = self._subs.get(name)
        if subs:
            for fn in subs:
                fn(cycle, name, payload)

    def subscribe(self, name, fn):
        """Call ``fn(cycle, name, payload)`` for every ``name`` event."""
        self._subs.setdefault(name, []).append(fn)

    def events(self):
        """Snapshot of the recorded ring, oldest first."""
        return list(self._ring)

    def counts(self):
        """``{event name: occurrences}`` over the recorded ring."""
        out = {}
        for _cycle, name, _payload in self._ring:
            out[name] = out.get(name, 0) + 1
        return out


def events_to_jsonl(events):
    """One JSON object per line: ``{"ts": cycle, "ev": name, ...payload}``.

    Deterministic (sorted keys, compact separators) so two identical
    runs export byte-identical files.
    """
    lines = []
    for cycle, name, payload in events:
        record = {"ts": cycle, "ev": name}
        record.update(payload)
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events, path):
    """Write :func:`events_to_jsonl` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(events_to_jsonl(events))
