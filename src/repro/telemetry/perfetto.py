"""Chrome/Perfetto ``trace_event`` export of telemetry.

Converts an event-bus recording (plus an optional interval-metrics
series) into the JSON object format consumed by ``ui.perfetto.dev`` and
``chrome://tracing``: a ``{"traceEvents": [...]}`` document where one
simulated cycle maps to one microsecond of trace time.

Track layout:

* tids 1–4 (``fetch``/``dispatch``/``issue``/``writeback``): per-stage
  duration slices built from ``retire`` events, so every committed
  instruction shows its walk through the pipeline (gem5-O3PipeView
  style, but zoomable). Faulty instructions are colored distinctly via
  ``cname``.
* tid 10 (``mechanisms``): instant events for predictions, pads,
  freezes, and stalls.
* tid 11 (``recovery``): instant events for faults, replays, squashes,
  safety-net recoveries, and watchdog trips.
* counter tracks (``ph: "C"``): one per metrics column (IPC, occupancy,
  fault/replay rates), so transients line up with the slices above.

:func:`validate_trace` is the schema check used by tests and the CI
telemetry-smoke job.
"""

import json

PID = 1

_STAGE_TRACKS = (
    # (tid, track name, start field, end field) of the per-stage slices
    (1, "fetch", "fetch", "dispatch"),
    (2, "dispatch", "dispatch", "issue"),
    (3, "issue", "issue", "complete"),
    (4, "writeback", "complete", "commit"),
)

_MECHANISM_EVENTS = ("tep_predict", "tep_train", "vte_pad", "slot_freeze",
                     "ep_stall", "inorder_stall")
_RECOVERY_EVENTS = ("fault", "safety_net", "replay", "selective", "memdep",
                    "watchdog")

_COUNTER_COLUMNS = ("ipc", "iq_occ", "rob_occ", "lsq_occ", "fault_rate",
                    "replay_rate", "stall_rate", "tep_hit_rate")


def _metadata(name):
    events = [{
        "ph": "M", "pid": PID, "tid": 0, "name": "process_name",
        "args": {"name": name},
    }]
    for tid, track, _start, _end in _STAGE_TRACKS:
        events.append({
            "ph": "M", "pid": PID, "tid": tid, "name": "thread_name",
            "args": {"name": f"stage:{track}"},
        })
    events.append({
        "ph": "M", "pid": PID, "tid": 10, "name": "thread_name",
        "args": {"name": "mechanisms"},
    })
    events.append({
        "ph": "M", "pid": PID, "tid": 11, "name": "thread_name",
        "args": {"name": "recovery"},
    })
    return events


def _retire_slices(cycle, payload):
    label = f"{payload.get('op', '?')} {payload.get('pc', 0):#x}"
    args = {"seq": payload.get("seq")}
    faulty = payload.get("faulty")
    out = []
    for tid, _track, start_field, end_field in _STAGE_TRACKS:
        start = payload.get(start_field, -1)
        end = payload.get(end_field, -1)
        if end_field == "commit":
            end = cycle
        if start is None or end is None or start < 0 or end < start:
            continue
        slice_event = {
            "ph": "X", "pid": PID, "tid": tid, "name": label,
            "ts": start, "dur": end - start, "args": args,
        }
        if faulty:
            slice_event["cname"] = "terrible"
        elif payload.get("predicted"):
            slice_event["cname"] = "bad"
        out.append(slice_event)
    return out


def to_perfetto(events, series=None, name="repro-sim"):
    """Build the ``trace_event`` JSON object for a telemetry recording.

    ``events`` is a list of ``(cycle, name, payload)`` tuples (an
    :meth:`~repro.telemetry.events.EventBus.events` snapshot); ``series``
    an optional :class:`~repro.telemetry.metrics.MetricsSeries` rendered
    as counter tracks.
    """
    trace = _metadata(name)
    counts = {}
    for cycle, ev_name, payload in events:
        counts[ev_name] = counts.get(ev_name, 0) + 1
        if ev_name == "retire":
            trace.extend(_retire_slices(cycle, payload))
        elif ev_name in _MECHANISM_EVENTS or ev_name in _RECOVERY_EVENTS:
            tid = 10 if ev_name in _MECHANISM_EVENTS else 11
            args = {
                k: v for k, v in payload.items()
                if isinstance(v, (int, float, str, bool)) or v is None
            }
            trace.append({
                "ph": "i", "pid": PID, "tid": tid, "name": ev_name,
                "ts": cycle, "s": "t", "args": args,
            })
    if series is not None and len(series):
        for column in _COUNTER_COLUMNS:
            if column not in series.columns:
                continue
            idx = series.columns.index(column)
            cycle_idx = series.columns.index("cycle")
            for row in series.rows:
                trace.append({
                    "ph": "C", "pid": PID, "tid": 0, "name": column,
                    "ts": row[cycle_idx], "args": {column: row[idx]},
                })
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "time_unit": "1 trace us = 1 core cycle",
            "event_counts": counts,
        },
    }


def write_perfetto(path, events, series=None, name="repro-sim"):
    """Serialize :func:`to_perfetto` to ``path`` (deterministic JSON)."""
    trace = to_perfetto(events, series=series, name=name)
    with open(path, "w") as fh:
        json.dump(trace, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return trace


_REQUIRED_KEYS = {"ph", "pid", "tid", "name"}
_TS_REQUIRED = {"X", "i", "C"}


def validate_trace(trace):
    """Return a list of schema problems (empty = loads in Perfetto).

    Checks the subset of the ``trace_event`` format this exporter emits:
    the ``traceEvents`` envelope, required keys per phase, numeric
    non-negative timestamps, and ``dur`` on complete events.
    """
    problems = []
    if not isinstance(trace, dict):
        return ["top level is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        missing = _REQUIRED_KEYS - set(event)
        if missing:
            problems.append(f"event {i} missing keys {sorted(missing)}")
            continue
        ph = event["ph"]
        if ph in _TS_REQUIRED:
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i} ({ph}) has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} (X) has bad dur {dur!r}")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"event {i} (C) has no args")
    return problems
