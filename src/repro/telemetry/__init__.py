"""Telemetry subsystem: metrics, event tracing, and self-profiling.

Three opt-in layers over the cycle-level simulator (see
docs/observability.md):

* **metrics** — :class:`~repro.telemetry.metrics.IntervalSampler`
  snapshots IPC, queue occupancies, fault/replay/stall rates, and TEP
  accuracy every N cycles into a :class:`~repro.telemetry.metrics.
  MetricsSeries` (JSON/CSV-exportable, mergeable across campaign
  points).
* **events** — an :class:`~repro.telemetry.events.EventBus` records
  structured pipeline events (faults, predictions, pads, freezes,
  replays, retires) into a bounded ring, exported as JSONL or
  Chrome/Perfetto ``trace_event`` JSON
  (:mod:`repro.telemetry.perfetto`).
* **profile** — :class:`~repro.telemetry.profile.SelfProfiler` accounts
  the simulator's own wall-clock time per stage method.

The harness entry point is :func:`attach_telemetry`: given a core and a
:class:`~repro.telemetry.config.TelemetryConfig`, it wires the requested
layers and returns a :class:`TelemetryCollector` whose
:meth:`~TelemetryCollector.finalize` packs everything into a picklable
:class:`TelemetryResult` riding on the run's ``SimResult``.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import EventBus, events_to_jsonl, write_jsonl
from repro.telemetry.metrics import (
    IntervalSampler,
    MetricsRegistry,
    MetricsSeries,
    default_registry,
)
from repro.telemetry.perfetto import to_perfetto, validate_trace, write_perfetto
from repro.telemetry.profile import SelfProfiler

__all__ = [
    "EventBus",
    "IntervalSampler",
    "MetricsRegistry",
    "MetricsSeries",
    "SelfProfiler",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryResult",
    "attach_telemetry",
    "default_registry",
    "events_to_jsonl",
    "to_perfetto",
    "validate_trace",
    "write_jsonl",
    "write_perfetto",
]


class TelemetryResult:
    """Picklable telemetry payload of one run.

    ``metrics`` is a :class:`MetricsSeries` (or ``None``); ``events`` a
    list of ``(cycle, name, payload)`` tuples; ``profile`` the
    self-profiler's report dict. Plain data throughout, so results
    survive multiprocessing fan-out and the on-disk result cache
    unchanged.
    """

    def __init__(self, config, metrics=None, events=None, event_counts=None,
                 events_emitted=0, events_dropped=0, profile=None):
        self.config = config
        self.metrics = metrics
        self.events = events
        self.event_counts = event_counts or {}
        self.events_emitted = events_emitted
        self.events_dropped = events_dropped
        self.profile = profile

    def to_dict(self):
        """JSON-safe flattening (exports, campaign journals)."""
        return {
            "config": self.config.to_dict(),
            "metrics": (
                self.metrics.to_dict() if self.metrics is not None else None
            ),
            "events": (
                [
                    dict(payload, ts=cycle, ev=name)
                    for cycle, name, payload in self.events
                ]
                if self.events is not None else None
            ),
            "event_counts": dict(self.event_counts),
            "events_emitted": self.events_emitted,
            "events_dropped": self.events_dropped,
            "profile": self.profile,
        }

    def summary(self):
        """Compact per-run summary journaled with a campaign draw.

        The interval-metrics summary (``None`` when the metrics layer
        was off) plus, when event tracing ran, the ``dropped_events``
        tally — so ring-buffer truncation is visible wherever the
        summary travels, not just in a rendered trace.
        """
        if self.metrics is None:
            return None
        out = self.metrics.summary()
        if self.events is not None:
            out["dropped_events"] = self.events_dropped
        return out

    def __repr__(self):
        windows = len(self.metrics) if self.metrics is not None else 0
        n_events = len(self.events) if self.events is not None else 0
        return (
            f"TelemetryResult(windows={windows}, events={n_events}, "
            f"dropped={self.events_dropped}, "
            f"profiled={self.profile is not None})"
        )


class TelemetryCollector:
    """Live telemetry attachments of one core, finalized after its run."""

    def __init__(self, config, sampler=None, bus=None, profiler=None):
        self.config = config
        self.sampler = sampler
        self.bus = bus
        self.profiler = profiler

    def finalize(self, core):
        """Detach and pack everything into a :class:`TelemetryResult`."""
        metrics = (
            self.sampler.finalize(core) if self.sampler is not None else None
        )
        events = event_counts = None
        emitted = dropped = 0
        if self.bus is not None:
            events = self.bus.events()
            event_counts = self.bus.counts()
            emitted = self.bus.emitted
            dropped = self.bus.dropped
            # surface ring evictions on the run's own counters too, so
            # stats.as_dict() exports carry them without a telemetry
            # payload in hand
            core.stats.dropped_events = dropped
        profile = (
            self.profiler.report() if self.profiler is not None else None
        )
        return TelemetryResult(
            self.config, metrics=metrics, events=events,
            event_counts=event_counts, events_emitted=emitted,
            events_dropped=dropped, profile=profile,
        )


def attach_telemetry(core, config):
    """Wire ``config``'s telemetry layers onto ``core``.

    Returns a :class:`TelemetryCollector`, or ``None`` when ``config``
    is ``None`` or all-off. Attach *after* warmup (the sampler starts
    its first window at the core's current cycle) and *before* the
    measured ``core.run`` call (the run loop latches the sampler and
    the profiler wraps methods the loop binds at entry).
    """
    if config is None or not config.enabled:
        return None
    sampler = bus = profiler = None
    if config.metrics:
        sampler = IntervalSampler(config.interval).attach(core)
    if config.events:
        bus = EventBus(config.event_capacity)
        core.ebus = bus
    if config.profile:
        profiler = SelfProfiler().attach(core)
    return TelemetryCollector(config, sampler, bus, profiler)
