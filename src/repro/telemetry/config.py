"""Telemetry configuration: what to record and at what granularity.

A :class:`TelemetryConfig` rides on :class:`~repro.harness.runner.RunSpec`
and is part of ``RunSpec.canonical()``: two specs that differ only in
telemetry settings are distinct cache entries, so a cached result always
carries exactly the telemetry its spec asked for.

Telemetry never changes simulation outcomes — the sampler and event bus
only *read* machine state — but it does change what a run returns, which
is why it participates in the cache key.
"""


class TelemetryConfig:
    """Knobs of the telemetry subsystem; all-off means "no telemetry".

    Parameters
    ----------
    metrics:
        Record a cycle-windowed :class:`~repro.telemetry.metrics.
        MetricsSeries` (IPC, occupancies, fault/replay/stall rates, TEP
        hit/false-positive rates) sampled every ``interval`` cycles.
    interval:
        Sampling window in cycles.
    events:
        Record structured pipeline events (fault detections, TEP
        predict/train, VTE padding, slot freezes, replays, squashes...)
        into a bounded ring buffer of ``event_capacity`` entries.
    event_capacity:
        Ring-buffer bound; the oldest events are dropped (and counted)
        once it fills.
    profile:
        Wall-clock self-profiling of the simulator's own stage methods
        (fetch/dispatch/select/commit/events). Nondeterministic by
        nature; excluded from determinism guarantees.
    """

    FIELDS = ("metrics", "interval", "events", "event_capacity", "profile")

    def __init__(self, metrics=True, interval=500, events=False,
                 event_capacity=65536, profile=False):
        self.metrics = bool(metrics)
        self.interval = int(interval)
        self.events = bool(events)
        self.event_capacity = int(event_capacity)
        self.profile = bool(profile)
        if self.metrics and self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.events and self.event_capacity <= 0:
            raise ValueError("event_capacity must be positive")

    @property
    def enabled(self):
        """True when any telemetry layer is on."""
        return self.metrics or self.events or self.profile

    def canonical(self):
        """Primitive form feeding ``RunSpec.canonical()``."""
        return tuple((name, getattr(self, name)) for name in self.FIELDS)

    def to_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    @classmethod
    def from_dict(cls, data):
        return cls(**{k: data[k] for k in cls.FIELDS if k in data})

    def __repr__(self):
        knobs = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.FIELDS
        )
        return f"TelemetryConfig({knobs})"
