"""Cycle-windowed metrics: counter/gauge registry, sampler, time series.

The paper's evaluation is built from *rates over windows* (TEP accuracy,
per-stage violation counts, overhead transients) that end-of-run scalars
cannot show. :class:`IntervalSampler` snapshots a core every N cycles and
appends one row per window to a :class:`MetricsSeries`:

* **counters** are monotonic sources (SimStats attributes) read as
  per-window deltas, so every row is self-contained;
* **gauges** are instantaneous reads (ROB/LSQ occupancy at the sample
  point);
* **derived** columns are pure functions of the window (IPC, fault rate,
  TEP hit rate) computed from the deltas — deterministic because their
  inputs are integer counters.

A :class:`MetricsSeries` is JSON/CSV-exportable and mergeable across
campaign points (:meth:`MetricsSeries.merge` averages aligned windows),
so multi-seed studies can plot a mean timeline with no extra machinery.
"""

import json


class MetricsRegistry:
    """Declares what a sampler records: counters, gauges, derived columns.

    ``counter(name, read)`` registers a monotonic source sampled as a
    per-window delta; ``gauge(name, read)`` an instantaneous read; and
    ``derived(name, fn)`` a function of the window dict (which maps every
    counter/gauge name plus ``"cycles"`` to its value for the window).
    """

    def __init__(self):
        self.counters = []
        self.gauges = []
        self.derived_cols = []

    def counter(self, name, read):
        self.counters.append((name, read))
        return self

    def gauge(self, name, read):
        self.gauges.append((name, read))
        return self

    def derived(self, name, fn):
        self.derived_cols.append((name, fn))
        return self

    def columns(self):
        """Column names in row order: cycle, cycles, counters, gauges, derived."""
        return (
            ["cycle", "cycles"]
            + [name for name, _ in self.counters]
            + [name for name, _ in self.gauges]
            + [name for name, _ in self.derived_cols]
        )


def _ratio(num, den):
    return num / den if den else 0.0


def default_registry():
    """The standard pipeline registry (see docs/observability.md)."""
    reg = MetricsRegistry()
    s = lambda attr: (lambda core: getattr(core.stats, attr))  # noqa: E731
    reg.counter("committed", s("committed"))
    reg.counter("issued", s("issued"))
    reg.counter("faults", s("faults_total"))
    reg.counter("faults_predicted", s("faults_predicted"))
    reg.counter("false_predictions", s("false_predictions"))
    reg.counter("replays", s("replays"))
    reg.counter("safety_net_replays", s("safety_net_replays"))
    reg.counter("squashed", s("squashed"))
    reg.counter("ep_stalls", s("ep_stalls"))
    reg.counter("inorder_stalls", s("inorder_stalls"))
    reg.counter("iq_occ_accum", s("iq_occupancy_accum"))
    reg.gauge("rob_occ", lambda core: len(core.rob))
    reg.gauge("lsq_occ", lambda core: len(core.lsq))
    reg.derived("ipc", lambda w: _ratio(w["committed"], w["cycles"]))
    reg.derived("iq_occ", lambda w: _ratio(w["iq_occ_accum"], w["cycles"]))
    reg.derived("fault_rate", lambda w: _ratio(w["faults"], w["committed"]))
    reg.derived("replay_rate", lambda w: _ratio(w["replays"], w["committed"]))
    reg.derived(
        "stall_rate",
        lambda w: _ratio(w["ep_stalls"] + w["inorder_stalls"], w["cycles"]),
    )
    reg.derived(
        "tep_hit_rate", lambda w: _ratio(w["faults_predicted"], w["faults"])
    )
    reg.derived(
        "tep_false_rate",
        lambda w: _ratio(w["false_predictions"], w["committed"]),
    )
    return reg


class MetricsSeries:
    """A compact column-named time series of interval samples.

    ``rows`` is a list of equal-length value lists aligned with
    ``columns``; ``interval`` is the nominal window size in cycles (the
    final row may cover a shorter tail window — its ``cycles`` column
    says how many cycles it actually spans).
    """

    def __init__(self, interval, columns, rows=None, n_merged=1):
        self.interval = int(interval)
        self.columns = list(columns)
        self.rows = list(rows) if rows is not None else []
        #: how many series were averaged into this one (1 = a raw run)
        self.n_merged = int(n_merged)

    def __len__(self):
        return len(self.rows)

    def column(self, name):
        """All values of one column, in window order."""
        i = self.columns.index(name)
        return [row[i] for row in self.rows]

    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "interval": self.interval,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "n_merged": self.n_merged,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["interval"], data["columns"], data["rows"],
                   data.get("n_merged", 1))

    def to_json(self):
        """Deterministic JSON text (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def to_csv(self):
        """Plot-ready CSV text with a header row."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(
                repr(v) if isinstance(v, float) else str(v) for v in row
            ))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def summary(self, names=("ipc", "fault_rate", "replay_rate")):
        """Per-column (min, mean, max) aggregates for report surfacing."""
        out = {"windows": len(self.rows), "interval": self.interval}
        for name in names:
            if name not in self.columns or not self.rows:
                continue
            values = self.column(name)
            out[name] = {
                "min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values),
            }
        return out

    @classmethod
    def merge(cls, series_list):
        """Average several aligned series into one (campaign pooling).

        Series are aligned by window index and truncated to the shortest;
        every numeric column is averaged pointwise except ``cycle`` /
        ``cycles``, which are taken from the first series (identical
        schedules — differing schedules still merge, on the first one's
        axis). The result's ``n_merged`` records the pool size.
        """
        series_list = [s for s in series_list if s is not None and len(s)]
        if not series_list:
            return None
        first = series_list[0]
        n_rows = min(len(s) for s in series_list)
        passthrough = {"cycle", "cycles"}
        rows = []
        for i in range(n_rows):
            row = []
            for j, name in enumerate(first.columns):
                if name in passthrough:
                    row.append(first.rows[i][j])
                else:
                    row.append(
                        sum(s.rows[i][j] for s in series_list)
                        / len(series_list)
                    )
            rows.append(row)
        total = sum(s.n_merged for s in series_list)
        return cls(first.interval, first.columns, rows, n_merged=total)


class IntervalSampler:
    """Snapshots a core's registry every ``interval`` cycles.

    The pipeline's run loop consults ``next_cycle`` once per cycle (a
    single integer comparison against +inf when no sampler is attached)
    and calls :meth:`sample` when due. :meth:`finalize` flushes the
    partial tail window so short transients at run end are not lost.
    """

    def __init__(self, interval=500, registry=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = int(interval)
        self.registry = registry if registry is not None else default_registry()
        self.series = None
        self.next_cycle = 0
        self._prev = None
        self._prev_cycles = 0

    def attach(self, core):
        """Bind to ``core`` from its current cycle (post-warmup start)."""
        self.series = MetricsSeries(self.interval, self.registry.columns())
        self._prev = [read(core) for _, read in self.registry.counters]
        self._prev_cycles = core.stats.cycles
        self.next_cycle = core.cycle + self.interval
        core.telemetry_sampler = self
        return self

    def sample(self, core, cycle):
        """Record one window ending at ``cycle``; returns the next due cycle."""
        stats_cycles = core.stats.cycles
        d_cycles = stats_cycles - self._prev_cycles
        registry = self.registry
        current = [read(core) for _, read in registry.counters]
        window = {"cycles": d_cycles}
        row = [cycle, d_cycles]
        for (name, _), now, before in zip(
            registry.counters, current, self._prev
        ):
            delta = now - before
            window[name] = delta
            row.append(delta)
        for name, read in registry.gauges:
            value = read(core)
            window[name] = value
            row.append(value)
        for name, fn in registry.derived_cols:
            row.append(fn(window))
        self.series.rows.append(row)
        self._prev = current
        self._prev_cycles = stats_cycles
        self.next_cycle = cycle + self.interval
        return self.next_cycle

    def finalize(self, core):
        """Flush the partial tail window; returns the finished series."""
        if core.stats.cycles > self._prev_cycles:
            self.sample(core, core.cycle)
        return self.series
