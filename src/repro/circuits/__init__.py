"""Gate-level substrate for the paper's circuit-architectural methodology.

The paper synthesizes four Fabscalar components (Issue Queue Select, simple
ALU, AGEN, Forward Check) with Synopsys DC on a 45nm FreePDK library, runs
gate-level simulation under NC-Verilog, and studies which gates toggle per
dynamic instance of a static instruction (Section S1). This package
provides the equivalents:

* :mod:`repro.circuits.library` — a small 45nm-like standard-cell library;
* :mod:`repro.circuits.gates` / :mod:`repro.circuits.netlist` — gate types,
  netlists, levelized logic simulation with toggle capture;
* :mod:`repro.circuits.builders` — generators for adders, the ALU, the
  issue-queue select arbiter, the AGEN, the forward-check logic, the CDL
  encoder, and counters;
* :mod:`repro.circuits.sta` — (statistical) static timing analysis with
  the process-variation model;
* :mod:`repro.circuits.sensitization` — sensitized-path commonality
  (Figure 7);
* :mod:`repro.circuits.synthesis` — area/power/gate-count reports
  (Tables 2 and 3).
"""

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.library import CellLibrary, CellSpec, default_library
from repro.circuits.netlist import Gate, Netlist
from repro.circuits.sta import critical_path, monte_carlo_delay
from repro.circuits.sensitization import (
    commonality,
    toggle_sets_per_pc,
    weighted_commonality,
)
from repro.circuits.synthesis import SynthesisReport, synthesize

__all__ = [
    "GateType",
    "eval_gate",
    "CellLibrary",
    "CellSpec",
    "default_library",
    "Gate",
    "Netlist",
    "critical_path",
    "monte_carlo_delay",
    "commonality",
    "toggle_sets_per_pc",
    "weighted_commonality",
    "SynthesisReport",
    "synthesize",
]
