"""A small 45nm-class standard-cell library.

Numbers are representative of a 45nm educational PDK (FreePDK45-like
magnitudes): areas in um^2, intrinsic delays in ps, leakage in nW, and
switching energy in fJ per output toggle. Sequential storage is modelled
by a single DFF cell used for per-bit state (issue-queue fields, counters,
predictor tables).
"""

from repro.circuits.gates import GateType


class CellSpec:
    """Physical characteristics of one cell type."""

    __slots__ = ("area", "delay", "leakage", "energy")

    def __init__(self, area, delay, leakage, energy):
        self.area = area
        self.delay = delay
        self.leakage = leakage
        self.energy = energy

    def __repr__(self):
        return (
            f"CellSpec(area={self.area}, delay={self.delay}ps, "
            f"leak={self.leakage}nW, e={self.energy}fJ)"
        )


class CellLibrary:
    """Cell specs per gate type plus storage cells.

    Two storage flavours: ``dff`` for random logic state (FUSR, counters,
    pipeline latches) and the denser ``ram_bit`` for array storage (issue
    queue payload/field RAM, predictor tables).
    """

    def __init__(self, cells, dff, ram_bit=None):
        self.cells = dict(cells)
        self.dff = dff
        self.ram_bit = ram_bit or dff

    def spec(self, gtype):
        """CellSpec of a combinational gate type."""
        return self.cells[gtype]

    def gate_delay(self, gtype):
        """Nominal propagation delay (ps) of a gate type."""
        return self.cells[gtype].delay

    def netlist_area(self, netlist):
        """Total combinational cell area of a netlist (um^2)."""
        return sum(self.cells[g.gtype].area for g in netlist.gates)

    def netlist_leakage(self, netlist):
        """Total combinational leakage of a netlist (nW)."""
        return sum(self.cells[g.gtype].leakage for g in netlist.gates)

    def storage_area(self, bits, ram=False):
        """Area of ``bits`` storage bits (``ram=True`` for array storage)."""
        cell = self.ram_bit if ram else self.dff
        return bits * cell.area

    def storage_leakage(self, bits, ram=False):
        """Leakage of ``bits`` storage bits."""
        cell = self.ram_bit if ram else self.dff
        return bits * cell.leakage


_DEFAULT_CELLS = {
    GateType.INV: CellSpec(0.8, 11.0, 1.0, 0.10),
    GateType.BUF: CellSpec(1.1, 16.0, 1.2, 0.14),
    GateType.AND2: CellSpec(1.6, 20.0, 1.6, 0.22),
    GateType.OR2: CellSpec(1.6, 22.0, 1.6, 0.22),
    GateType.NAND2: CellSpec(1.2, 14.0, 1.3, 0.16),
    GateType.NOR2: CellSpec(1.2, 16.0, 1.3, 0.16),
    GateType.XOR2: CellSpec(2.7, 28.0, 2.4, 0.34),
    GateType.XNOR2: CellSpec(2.7, 28.0, 2.4, 0.34),
    GateType.MUX2: CellSpec(2.9, 30.0, 2.6, 0.36),
    GateType.AND3: CellSpec(2.1, 26.0, 2.0, 0.28),
    GateType.OR3: CellSpec(2.1, 28.0, 2.0, 0.28),
}

_DEFAULT_DFF = CellSpec(4.8, 0.0, 4.2, 0.55)
_DEFAULT_RAM_BIT = CellSpec(1.3, 0.0, 1.1, 0.09)


def default_library():
    """The default 45nm-like library instance."""
    return CellLibrary(_DEFAULT_CELLS, _DEFAULT_DFF, _DEFAULT_RAM_BIT)
