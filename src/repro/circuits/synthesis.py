"""Synthesis-style reports: gate count, depth, area, leakage (Table 3).

``synthesize`` evaluates a netlist against the cell library, optionally
after NAND-level technology mapping so gate counts are comparable to the
paper's Design Compiler results.
"""

from repro.circuits.builders.techmap import tech_map
from repro.circuits.library import default_library


class SynthesisReport:
    """Gate-level characteristics of one synthesized component."""

    def __init__(self, name, n_gates, depth, area, leakage, histogram):
        self.name = name
        self.n_gates = n_gates
        self.depth = depth
        self.area = area
        self.leakage = leakage
        self.histogram = histogram

    def __repr__(self):
        return (
            f"SynthesisReport({self.name}: {self.n_gates} gates, "
            f"depth {self.depth}, {self.area:.1f} um^2, "
            f"{self.leakage:.1f} nW)"
        )


def synthesize(netlist, library=None, mapped=True):
    """Return the :class:`SynthesisReport` of ``netlist``.

    ``mapped=True`` first rewrites the netlist to NAND2/NOR2/INV (what a
    synthesis tool's gate count means); ``mapped=False`` reports the
    generator's native complex-gate netlist.
    """
    library = library or default_library()
    target = tech_map(netlist) if mapped else netlist
    return SynthesisReport(
        name=netlist.name,
        n_gates=target.n_gates,
        depth=target.depth,
        area=library.netlist_area(target),
        leakage=library.netlist_leakage(target),
        histogram=target.gate_histogram(),
    )
