"""32-bit integer ALU: add/sub datapath, logic ops, barrel shifters.

Op encoding (op bus LSB-first):

====  =================
op    result
====  =================
0     a + b
1     a - b
2     a & b
3     a | b
4     a ^ b
5     a >> (b & 31)   (logical)
6     (a << (b & 31)) & mask
7     a + b
====  =================

A single carry-lookahead adder serves ops 0/1/7: the subtract control
(``op == 1``) conditionally inverts ``b`` and feeds the carry-in.
Two MUX2 barrel shifters (one per direction) and a per-bit MUX2 tree on
the op bits produce the final result, keeping depth logarithmic.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

from repro.circuits.builders.adder import carry_lookahead_adder


def _mux(nl, when0, when1, sel):
    """MUX2 wrapper: sel ? when1 : when0."""
    return nl.add_gate(GateType.MUX2, [when0, when1, sel])


def _barrel_shift(nl, bits, shamt, left):
    """Logarithmic shifter: one MUX2 rank per shift-amount bit."""
    n = len(bits)
    cur = list(bits)
    for k, sel in enumerate(shamt):
        step = 1 << k
        nxt = []
        for i in range(n):
            src = i - step if left else i + step
            shifted = cur[src] if 0 <= src < n else nl.const0
            nxt.append(_mux(nl, cur[i], shifted, sel))
        cur = nxt
    return cur


def build_alu(width=32):
    """``width``-bit ALU; returns (netlist, ports)."""
    shamt_bits = max(1, (width - 1).bit_length())
    nl = Netlist("ALU")
    a = nl.add_inputs(width)
    b = nl.add_inputs(width)
    op = nl.add_inputs(3)
    op0, op1, op2 = op

    # op == 1 selects subtract: invert b, carry-in 1.
    not_op1 = nl.add_gate(GateType.INV, [op1])
    not_op2 = nl.add_gate(GateType.INV, [op2])
    sub = nl.add_gate(GateType.AND3, [op0, not_op1, not_op2])
    b_eff = [nl.add_gate(GateType.XOR2, [bi, sub]) for bi in b]
    addsub, _cout = carry_lookahead_adder(nl, a, b_eff, cin=sub)

    and_bits = [nl.add_gate(GateType.AND2, [ai, bi]) for ai, bi in zip(a, b)]
    or_bits = [nl.add_gate(GateType.OR2, [ai, bi]) for ai, bi in zip(a, b)]
    xor_bits = [nl.add_gate(GateType.XOR2, [ai, bi]) for ai, bi in zip(a, b)]

    shamt = b[:shamt_bits]
    shr_bits = _barrel_shift(nl, a, shamt, left=False)
    shl_bits = _barrel_shift(nl, a, shamt, left=True)

    result = []
    for i in range(width):
        # op0 level: pairs (0,1), (2,3), (4,5), (6,7)
        m01 = addsub[i]  # ops 0 and 1 share the add/sub datapath
        m23 = _mux(nl, and_bits[i], or_bits[i], op0)
        m45 = _mux(nl, xor_bits[i], shr_bits[i], op0)
        m67 = _mux(nl, shl_bits[i], addsub[i], op0)
        # op1 level
        m_lo = _mux(nl, m01, m23, op1)
        m_hi = _mux(nl, m45, m67, op1)
        # op2 level
        result.append(_mux(nl, m_lo, m_hi, op2))
    for net in result:
        nl.mark_output(net)
    ports = {"a": a, "b": b, "op": op, "result": result}
    return nl, ports
