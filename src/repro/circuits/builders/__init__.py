"""Structural netlist builders for the paper's datapath components.

Each ``build_*`` function returns ``(netlist, ports)`` where ``ports``
maps logical bus names to LSB-first net lists. The four big components
(ALU, AGen, issue select, forward check) are the ones characterized in
Table III; the small counters back the VTE scheduler overhead model.
"""

from repro.circuits.builders.adder import (
    and_tree,
    carry_lookahead_adder,
    equality_comparator,
    full_adder,
    or_tree,
    ripple_carry_adder,
)
from repro.circuits.builders.agen import build_agen
from repro.circuits.builders.alu import build_alu
from repro.circuits.builders.counters import (
    build_incrementer,
    build_match_counter,
    build_threshold_compare,
)
from repro.circuits.builders.encoder import (
    exclusive_prefix_or,
    lowest_set_onehot,
    prefix_or,
)
from repro.circuits.builders.fwdcheck import build_forward_check
from repro.circuits.builders.select import build_issue_select
from repro.circuits.builders.techmap import tech_map

__all__ = [
    "and_tree",
    "build_agen",
    "build_alu",
    "build_forward_check",
    "build_incrementer",
    "build_issue_select",
    "build_match_counter",
    "build_threshold_compare",
    "carry_lookahead_adder",
    "equality_comparator",
    "exclusive_prefix_or",
    "full_adder",
    "lowest_set_onehot",
    "or_tree",
    "prefix_or",
    "ripple_carry_adder",
    "tech_map",
]
