"""Priority-encoding helpers: prefix OR networks and one-hot extraction.

The issue-select builder needs "lowest set bit wins" arbitration. The
classic gate-efficient form computes an exclusive prefix OR of the request
vector (``blocked[i] = req[0] | ... | req[i-1]``) so that
``grant[i] = req[i] & ~blocked[i]`` is one-hot at the lowest requester.
The prefix network is Kogge-Stone, giving log depth so wide request
vectors stay shallow after technology mapping.
"""

from repro.circuits.gates import GateType


def prefix_or(nl, nets):
    """Inclusive Kogge-Stone prefix OR: out[i] = nets[0] | ... | nets[i]."""
    out = list(nets)
    n = len(out)
    dist = 1
    while dist < n:
        nxt = list(out)
        for i in range(dist, n):
            nxt[i] = nl.add_gate(GateType.OR2, [out[i], out[i - dist]])
        out = nxt
        dist *= 2
    return out


def exclusive_prefix_or(nl, nets):
    """Exclusive prefix OR: out[0] = 0, out[i] = nets[0] | ... | nets[i-1]."""
    inclusive = prefix_or(nl, nets)
    return [nl.const0] + inclusive[:-1]


def lowest_set_onehot(nl, nets):
    """One-hot vector marking the lowest-index set bit of ``nets``.

    Returns (onehot_bits, blocked_bits) where ``blocked[i]`` is the
    exclusive prefix OR (reused by callers that mask off granted bits).
    """
    blocked = exclusive_prefix_or(nl, nets)
    onehot = []
    for bit, blk in zip(nets, blocked):
        not_blk = nl.add_gate(GateType.INV, [blk])
        onehot.append(nl.add_gate(GateType.AND2, [bit, not_blk]))
    return onehot, blocked
