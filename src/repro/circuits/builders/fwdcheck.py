"""Bypass-network forward check: producer-tag vs consumer-source CAM match.

Models the wakeup/forwarding comparators of the bypass network: each of
``width * n_srcs`` consumer source tags is compared against every one of
the ``width`` producer destination tags currently in flight; a match
qualified by the producer's valid bit raises that source's forward line.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

from repro.circuits.builders.adder import equality_comparator, or_tree


def build_forward_check(width=4, n_srcs=2, tag_bits=7):
    """Build the forward-check comparators; returns (netlist, ports).

    Inputs (LSB-first buses, in order): ``width`` producer tags of
    ``tag_bits`` each, ``width`` producer valid bits, then
    ``width * n_srcs`` source tags of ``tag_bits`` each. Outputs, per
    source: the ``width`` qualified match bits, then the forward bit
    (OR of the matches).
    """
    nl = Netlist("ForwardCheck")
    producers = [nl.add_inputs(tag_bits) for _ in range(width)]
    valids = nl.add_inputs(width)
    sources = [nl.add_inputs(tag_bits) for _ in range(width * n_srcs)]
    match_groups = []
    forwards = []
    for src in sources:
        matches = []
        for prod, valid in zip(producers, valids):
            raw = equality_comparator(nl, prod, src)
            matches.append(nl.add_gate(GateType.AND2, [raw, valid]))
        forward = or_tree(nl, matches)
        for net in matches:
            nl.mark_output(net)
        nl.mark_output(forward)
        match_groups.append(matches)
        forwards.append(forward)
    ports = {
        "producers": producers,
        "valids": valids,
        "sources": sources,
        "matches": match_groups,
        "forwards": forwards,
    }
    return nl, ports
