"""Issue-queue select logic: N-wide oldest-first arbitration.

``build_issue_select`` models the select tree of a superscalar issue
stage: given a request bit per issue-queue entry, it grants up to
``n_grants`` requests, always to the lowest-indexed (oldest) requesters
first. Each grant rank is a priority arbiter over the requests left
unclaimed by earlier ranks; the prefix-OR networks inside each rank are
log-depth (see :mod:`repro.circuits.builders.encoder`) so the mapped
depth stays moderate even at 32 entries x 4 grants.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

from repro.circuits.builders.encoder import lowest_set_onehot


def build_issue_select(n_requests=32, n_grants=4):
    """Build the select network; returns (netlist, ports).

    Outputs are grant-rank major: ``n_grants`` consecutive groups of
    ``n_requests`` bits, group ``k`` one-hot at the (k+1)-th lowest set
    request (all-zero when fewer requests are pending).
    """
    nl = Netlist("IssueQSelect")
    requests = nl.add_inputs(n_requests)
    avail = list(requests)
    grants = []
    for _rank in range(n_grants):
        onehot, _blocked = lowest_set_onehot(nl, avail)
        grants.append(onehot)
        nxt = []
        for bit, grant in zip(avail, onehot):
            not_grant = nl.add_gate(GateType.INV, [grant])
            nxt.append(nl.add_gate(GateType.AND2, [bit, not_grant]))
        avail = nxt
    for onehot in grants:
        for net in onehot:
            nl.mark_output(net)
    ports = {"requests": requests, "grants": grants}
    return nl, ports
