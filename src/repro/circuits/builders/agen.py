"""Address generation unit: base + offset effective-address adder.

AGen is one of the four paper components (Table III); it is a plain
carry-lookahead add so its toggle profile tracks operand locality, which
is what Fig. 7's commonality analysis measures.
"""

from repro.circuits.netlist import Netlist

from repro.circuits.builders.adder import carry_lookahead_adder


def build_agen(width=32):
    """``width``-bit effective-address adder.

    Inputs: base (``width``), offset (``width``); outputs: sum bits then
    the carry-out. Returns (netlist, ports).
    """
    nl = Netlist("AGen")
    base = nl.add_inputs(width)
    offset = nl.add_inputs(width)
    sums, cout = carry_lookahead_adder(nl, base, offset)
    for net in sums:
        nl.mark_output(net)
    nl.mark_output(cout)
    ports = {"base": base, "offset": offset, "sum": sums, "cout": [cout]}
    return nl, ports
