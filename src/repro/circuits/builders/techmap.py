"""Structural technology mapping onto a NAND2/NOR2/INV cell subset.

``tech_map`` rewrites a netlist gate-by-gate into the universal
{NAND2, NOR2, INV} subset, the way a naive library binder would before
any logic optimization. The mapped netlist is functionally identical and
preserves the input/output port order and the netlist name, so synthesis
reports and STA can be run on either form interchangeably.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist


def tech_map(netlist):
    """Return a new netlist computing the same function with NAND/NOR/INV."""
    mapped = Netlist(netlist.name)
    xlat = {0: 0}
    for net in netlist.inputs:
        xlat[net] = mapped.add_input()

    def inv(x):
        return mapped.add_gate(GateType.INV, [x])

    def nand(x, y):
        return mapped.add_gate(GateType.NAND2, [x, y])

    def nor(x, y):
        return mapped.add_gate(GateType.NOR2, [x, y])

    def and2(x, y):
        return inv(nand(x, y))

    def or2(x, y):
        return inv(nor(x, y))

    def xor2(x, y):
        # classic 4-NAND realization
        t = nand(x, y)
        return nand(nand(x, t), nand(y, t))

    for gate in netlist.gates:
        ins = [xlat[n] for n in gate.inputs]
        gt = gate.gtype
        if gt is GateType.INV:
            out = inv(ins[0])
        elif gt is GateType.BUF:
            out = inv(inv(ins[0]))
        elif gt is GateType.AND2:
            out = and2(ins[0], ins[1])
        elif gt is GateType.OR2:
            out = or2(ins[0], ins[1])
        elif gt is GateType.NAND2:
            out = nand(ins[0], ins[1])
        elif gt is GateType.NOR2:
            out = nor(ins[0], ins[1])
        elif gt is GateType.XOR2:
            out = xor2(ins[0], ins[1])
        elif gt is GateType.XNOR2:
            out = inv(xor2(ins[0], ins[1]))
        elif gt is GateType.MUX2:
            a, b, sel = ins
            not_sel = inv(sel)
            out = nand(nand(a, not_sel), nand(b, sel))
        elif gt is GateType.AND3:
            out = and2(and2(ins[0], ins[1]), ins[2])
        elif gt is GateType.OR3:
            out = or2(or2(ins[0], ins[1]), ins[2])
        else:  # pragma: no cover - exhaustive over GateType
            raise ValueError(f"unmappable gate type {gt}")
        xlat[gate.output] = out

    for net in netlist.outputs:
        mapped.mark_output(xlat[net])
    return mapped
