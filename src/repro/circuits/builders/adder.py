"""Adder generators: ripple-carry, Kogge-Stone lookahead, comparators.

Both adders share the ``(netlist, a_bits, b_bits) -> (sum_bits, cout)``
calling convention used throughout the builders: the caller owns the
netlist and the input buses (LSB-first net lists) and receives the output
nets to wire or mark as it pleases.
"""

from repro.circuits.gates import GateType


def full_adder(nl, a, b, cin):
    """One full adder; returns (sum, carry_out)."""
    axb = nl.add_gate(GateType.XOR2, [a, b])
    s = nl.add_gate(GateType.XOR2, [axb, cin])
    t0 = nl.add_gate(GateType.AND2, [a, b])
    t1 = nl.add_gate(GateType.AND2, [axb, cin])
    cout = nl.add_gate(GateType.OR2, [t0, t1])
    return s, cout


def ripple_carry_adder(nl, a, b, cin=None):
    """Linear-depth adder: ``len(a)`` chained full adders.

    Returns (sum_bits, carry_out). ``cin`` defaults to constant zero.
    """
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    carry = nl.const0 if cin is None else cin
    sums = []
    for ai, bi in zip(a, b):
        s, carry = full_adder(nl, ai, bi, carry)
        sums.append(s)
    return sums, carry


def carry_lookahead_adder(nl, a, b, cin=None):
    """Log-depth Kogge-Stone prefix adder.

    Generate/propagate pairs are combined with the usual prefix operator
    ``(g2, p2) o (g1, p1) = (g2 | p2 & g1, p2 & p1)``; the carry into bit
    ``i`` is the inclusive prefix generate of bits ``0..i-1`` (with ``cin``
    folded into bit 0). Returns (sum_bits, carry_out).
    """
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    n = len(a)
    g = [nl.add_gate(GateType.AND2, [ai, bi]) for ai, bi in zip(a, b)]
    p = [nl.add_gate(GateType.XOR2, [ai, bi]) for ai, bi in zip(a, b)]
    if cin is not None:
        # fold the carry-in into bit 0: g0' = g0 | p0 & cin
        t = nl.add_gate(GateType.AND2, [p[0], cin])
        g[0] = nl.add_gate(GateType.OR2, [g[0], t])
    prefix_g = list(g)
    prefix_p = list(p)
    dist = 1
    while dist < n:
        new_g = list(prefix_g)
        new_p = list(prefix_p)
        for i in range(dist, n):
            t = nl.add_gate(GateType.AND2, [prefix_p[i], prefix_g[i - dist]])
            new_g[i] = nl.add_gate(GateType.OR2, [prefix_g[i], t])
            new_p[i] = nl.add_gate(GateType.AND2, [prefix_p[i], prefix_p[i - dist]])
        prefix_g = new_g
        prefix_p = new_p
        dist *= 2
    carry0 = nl.const0 if cin is None else cin
    sums = [nl.add_gate(GateType.XOR2, [p[0], carry0])]
    for i in range(1, n):
        sums.append(nl.add_gate(GateType.XOR2, [p[i], prefix_g[i - 1]]))
    return sums, prefix_g[n - 1]


def and_tree(nl, nets):
    """Balanced AND reduction of ``nets`` (returns the single result net)."""
    if not nets:
        return nl.const1
    nets = list(nets)
    while len(nets) > 1:
        nxt = []
        for i in range(0, len(nets) - 1, 2):
            nxt.append(nl.add_gate(GateType.AND2, [nets[i], nets[i + 1]]))
        if len(nets) & 1:
            nxt.append(nets[-1])
        nets = nxt
    return nets[0]


def or_tree(nl, nets):
    """Balanced OR reduction of ``nets``."""
    if not nets:
        return nl.const0
    nets = list(nets)
    while len(nets) > 1:
        nxt = []
        for i in range(0, len(nets) - 1, 2):
            nxt.append(nl.add_gate(GateType.OR2, [nets[i], nets[i + 1]]))
        if len(nets) & 1:
            nxt.append(nets[-1])
        nets = nxt
    return nets[0]


def equality_comparator(nl, a, b):
    """Single net that is 1 iff buses ``a`` and ``b`` carry equal values."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    matches = [
        nl.add_gate(GateType.XNOR2, [ai, bi]) for ai, bi in zip(a, b)
    ]
    return and_tree(nl, matches)
