"""Small arithmetic blocks for VTE scheduler metadata.

The scheduling schemes (Section IV of the paper) need a handful of tiny
datapath blocks beyond the baseline issue logic: timestamp incrementers
(ABS), match counters and threshold comparators over issue-queue
dependence vectors (CDS). Each builder returns ``(netlist, ports)`` like
the large structural builders.
"""

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

from repro.circuits.builders.adder import ripple_carry_adder


def build_incrementer(bits=6):
    """``bits``-wide +1 circuit: out = (value + 1) mod 2**bits."""
    nl = Netlist(f"Incrementer{bits}")
    value = nl.add_inputs(bits)
    carry = None
    outs = []
    for i, v in enumerate(value):
        if i == 0:
            outs.append(nl.add_gate(GateType.INV, [v]))
            carry = v
        else:
            outs.append(nl.add_gate(GateType.XOR2, [v, carry]))
            carry = nl.add_gate(GateType.AND2, [v, carry])
    for net in outs:
        nl.mark_output(net)
    ports = {"value": value, "out": outs}
    return nl, ports


def build_match_counter(n_lines=32):
    """Population count of ``n_lines`` match lines as a binary bus.

    Built as a balanced adder tree over 1-bit partial counts; output is
    ``ceil(log2(n_lines + 1))`` bits wide.
    """
    nl = Netlist(f"MatchCounter{n_lines}")
    lines = nl.add_inputs(n_lines)
    counts = [[line] for line in lines]
    while len(counts) > 1:
        nxt = []
        for i in range(0, len(counts) - 1, 2):
            a, b = counts[i], counts[i + 1]
            width = max(len(a), len(b))
            a = a + [nl.const0] * (width - len(a))
            b = b + [nl.const0] * (width - len(b))
            sums, cout = ripple_carry_adder(nl, a, b)
            nxt.append(sums + [cout])
        if len(counts) & 1:
            nxt.append(counts[-1])
        counts = nxt
    count = counts[0]
    for net in count:
        nl.mark_output(net)
    ports = {"lines": lines, "count": count}
    return nl, ports


def build_threshold_compare(bits=6, threshold=8):
    """Single-output ``count >= threshold`` comparator.

    Implemented as ``count + (2**bits - threshold)``: the adder's carry-out
    is exactly the comparison result, reusing the ripple-carry datapath.
    """
    if not 0 < threshold < (1 << bits):
        raise ValueError(f"threshold {threshold} out of range for {bits} bits")
    nl = Netlist(f"ThresholdCompare{bits}_{threshold}")
    count = nl.add_inputs(bits)
    complement = (1 << bits) - threshold
    const_bits = [
        nl.const1 if (complement >> i) & 1 else nl.const0
        for i in range(bits)
    ]
    _, cout = ripple_carry_adder(nl, count, const_bits)
    nl.mark_output(cout)
    ports = {"count": count, "ge": [cout]}
    return nl, ports
