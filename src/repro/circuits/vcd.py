"""Value Change Dump (IEEE 1364) output for netlist simulations.

``VcdWriter`` records a netlist's primary inputs, outputs and (optionally)
internal nets across a sequence of vectors, producing a standard .vcd file
any waveform viewer (GTKWave etc.) can open — the customary artifact of a
gate-level debug session.
"""

from repro.circuits.netlist import Netlist


def _identifier(index):
    """Compact VCD identifier codes: !, ", #, ... (printable ASCII)."""
    chars = []
    index += 1
    while index:
        index, digit = divmod(index - 1, 94)
        chars.append(chr(33 + digit))
    return "".join(chars)


class VcdWriter:
    """Accumulates value changes for one netlist and renders a VCD file."""

    def __init__(self, netlist, include_internal=False, timescale="1ns"):
        self.netlist = netlist
        self.timescale = timescale
        self._nets = list(netlist.inputs) + list(netlist.outputs)
        if include_internal:
            internal = [
                g.output for g in netlist.gates
                if g.output not in self._nets
            ]
            self._nets += internal
        self._ids = {
            net: _identifier(i) for i, net in enumerate(self._nets)
        }
        self._last = {}
        self._changes = []  # (time, net, value)
        self._time = 0

    def _label(self, net):
        if net in self.netlist.inputs:
            return f"in{self.netlist.inputs.index(net)}"
        if net in self.netlist.outputs:
            return f"out{self.netlist.outputs.index(net)}"
        return f"n{net}"

    def sample(self, input_vector):
        """Apply one input vector, record all changed nets, advance time."""
        self.netlist.simulate(input_vector)
        values = self.netlist._values
        for net in self._nets:
            value = values[net]
            if self._last.get(net) != value:
                self._changes.append((self._time, net, value))
                self._last[net] = value
        self._time += 1
        return self._time

    def render(self):
        """The complete VCD document as a string."""
        lines = [
            "$date reproduction run $end",
            "$version repro.circuits.vcd $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.netlist.name} $end",
        ]
        for net in self._nets:
            lines.append(
                f"$var wire 1 {self._ids[net]} {self._label(net)} $end"
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current_time = None
        for time, net, value in self._changes:
            if time != current_time:
                lines.append(f"#{time}")
                current_time = time
            lines.append(f"{value}{self._ids[net]}")
        lines.append(f"#{self._time}")
        return "\n".join(lines) + "\n"

    def write(self, path):
        """Write the VCD document to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.render())
        return path


def dump_vcd(netlist, vectors, path, include_internal=False):
    """Simulate ``vectors`` on ``netlist`` and write the waveform to ``path``."""
    if not isinstance(netlist, Netlist):
        raise TypeError("netlist must be a Netlist")
    writer = VcdWriter(netlist, include_internal=include_internal)
    for vector in vectors:
        writer.sample(vector)
    return writer.write(path)
