"""Activity-based dynamic power estimation.

Static power reports weight every gate equally; real dynamic power follows
the *switching activity* each gate actually sees. This module runs a
vector stream through a netlist, counts per-gate output toggles, and
weights each toggle by the cell's switching energy — the standard
simulation-based power flow (the architectural analogue is the event-based
model in :mod:`repro.power.energy_model`).
"""

from repro.circuits.library import default_library


class ActivityReport:
    """Per-gate switching activity and the implied dynamic energy."""

    def __init__(self, name, n_vectors, toggles, energy, library):
        self.name = name
        self.n_vectors = n_vectors
        self.toggles = toggles            # gate index -> toggle count
        self.energy = energy              # fJ over the whole stream
        self._library = library

    @property
    def total_toggles(self):
        """Total output toggles over the stream."""
        return sum(self.toggles.values())

    @property
    def mean_activity(self):
        """Average toggles per gate per vector (the activity factor)."""
        if not self.n_vectors or not self.toggles:
            return 0.0
        return self.total_toggles / (len(self.toggles) * self.n_vectors)

    @property
    def energy_per_vector(self):
        """Mean switching energy per applied vector (fJ)."""
        return self.energy / self.n_vectors if self.n_vectors else 0.0

    def hottest(self, count=5):
        """The ``count`` most active gates as (gate_index, toggles)."""
        ranked = sorted(self.toggles.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def __repr__(self):
        return (
            f"ActivityReport({self.name}: {self.n_vectors} vectors, "
            f"activity={self.mean_activity:.3f}, "
            f"{self.energy_per_vector:.1f} fJ/vector)"
        )


def measure_activity(netlist, vectors, library=None):
    """Simulate ``vectors`` and return the :class:`ActivityReport`.

    Every gate starts counted at zero; the first vector's settling toggles
    are included (as a gate-level power tool's would be after reset).
    """
    library = library or default_library()
    toggles = {gate.index: 0 for gate in netlist.gates}
    energy = 0.0
    specs = [library.spec(gate.gtype) for gate in netlist.gates]
    n = 0
    for vector in vectors:
        _, toggled = netlist.simulate(vector, track_toggles=True)
        for index in toggled:
            toggles[index] += 1
            energy += specs[index].energy
        n += 1
    return ActivityReport(netlist.name, n, toggles, energy, library)


def compare_activity(netlist, stream_a, stream_b, library=None):
    """Energy ratio of two input streams on the same netlist.

    Useful for quantifying data-dependent power (e.g. high- vs low-
    locality operand streams on the ALU). Returns
    ``(report_a, report_b, ratio_b_over_a)``.
    """
    report_a = measure_activity(netlist, stream_a, library)
    report_b = measure_activity(netlist, stream_b, library)
    if report_a.energy == 0:
        raise ValueError("first stream produced no switching energy")
    return report_a, report_b, report_b.energy / report_a.energy
