"""Netlists: construction, levelized simulation, toggle capture.

Construction is inherently topological: a gate's inputs must be existing
nets, and every gate creates its output net, so evaluating gates in
insertion order is a valid levelized simulation. The netlist keeps the
previous simulation state so that per-vector *toggle sets* (the gates whose
output changed) can be captured — the quantity the paper's sensitized-path
commonality study is built on (Section S1.2).
"""

from repro.circuits.gates import GATE_ARITY, GateType, eval_gate


class Gate:
    """One gate instance: type, input nets, output net."""

    __slots__ = ("index", "gtype", "inputs", "output")

    def __init__(self, index, gtype, inputs, output):
        self.index = index
        self.gtype = gtype
        self.inputs = tuple(inputs)
        self.output = output

    def __repr__(self):
        return (
            f"Gate({self.index}, {self.gtype.name}, in={self.inputs}, "
            f"out={self.output})"
        )


class Netlist:
    """A combinational netlist with named input/output nets."""

    def __init__(self, name="netlist"):
        self.name = name
        self.n_nets = 1  # net 0 is constant zero
        self.gates = []
        self.inputs = []
        self.outputs = []
        self._values = [0]
        self._const1 = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self):
        """Create one primary-input net and return its id."""
        net = self.n_nets
        self.n_nets += 1
        self._values.append(0)
        self.inputs.append(net)
        return net

    def add_inputs(self, count):
        """Create ``count`` primary inputs (LSB-first for buses)."""
        return [self.add_input() for _ in range(count)]

    @property
    def const0(self):
        """The constant-zero net."""
        return 0

    @property
    def const1(self):
        """The constant-one net (an inverter on const0, created lazily)."""
        if self._const1 is None:
            self._const1 = self.add_gate(GateType.INV, [0])
        return self._const1

    def add_gate(self, gtype, inputs):
        """Add a gate; returns its output net id."""
        if len(inputs) != GATE_ARITY[gtype]:
            raise ValueError(
                f"{gtype.name} takes {GATE_ARITY[gtype]} inputs, "
                f"got {len(inputs)}"
            )
        for net in inputs:
            if not 0 <= net < self.n_nets:
                raise ValueError(f"unknown input net {net}")
        out = self.n_nets
        self.n_nets += 1
        self._values.append(0)
        self.gates.append(Gate(len(self.gates), gtype, inputs, out))
        return out

    def mark_output(self, net):
        """Declare ``net`` a primary output."""
        if not 0 <= net < self.n_nets:
            raise ValueError(f"unknown net {net}")
        self.outputs.append(net)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(self, input_values, track_toggles=False):
        """Apply one input vector; return output values (and toggles).

        ``input_values`` maps each primary input (in creation order) to
        0/1. State is retained between calls, so the returned toggle set
        reflects the transition from the previous vector — exactly what a
        gate-level simulator trace shows between consecutive instructions.
        """
        if len(input_values) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input values, "
                f"got {len(input_values)}"
            )
        values = self._values
        for net, v in zip(self.inputs, input_values):
            values[net] = 1 if v else 0
        toggled = set() if track_toggles else None
        for gate in self.gates:
            new = eval_gate(gate.gtype, [values[n] for n in gate.inputs])
            if track_toggles and new != values[gate.output]:
                toggled.add(gate.index)
            values[gate.output] = new
        outs = [values[n] for n in self.outputs]
        if track_toggles:
            return outs, toggled
        return outs

    def read_bus(self, nets):
        """Current value of a bus (LSB-first net list) as an int."""
        return sum(self._values[n] << i for i, n in enumerate(nets))

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def levels(self):
        """Logic level of every net (inputs at 0)."""
        level = [0] * self.n_nets
        for gate in self.gates:
            level[gate.output] = 1 + max(level[n] for n in gate.inputs)
        return level

    @property
    def depth(self):
        """Logic depth: maximum gates on any input-to-output path."""
        if not self.gates:
            return 0
        return max(self.levels())

    @property
    def n_gates(self):
        """Number of gate instances."""
        return len(self.gates)

    def gate_histogram(self):
        """Gate count per type."""
        histogram = {}
        for gate in self.gates:
            histogram[gate.gtype] = histogram.get(gate.gtype, 0) + 1
        return histogram

    def __repr__(self):
        return (
            f"Netlist({self.name!r}, gates={self.n_gates}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)}, "
            f"depth={self.depth})"
        )
