"""Structural Verilog export/import for netlists.

``write_verilog`` emits a gate-level module (primitive instances ``not``,
``buf``, ``and``, ``or``, ``nand``, ``nor``, ``xor``, ``xnor`` plus a
behavioural mux) so a netlist generated here can be synthesized, linted,
or simulated by external EDA tools; ``parse_verilog`` reads the same
subset back, round-tripping our own output.
"""

import re

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

_PRIMITIVES = {
    GateType.INV: "not",
    GateType.BUF: "buf",
    GateType.AND2: "and",
    GateType.OR2: "or",
    GateType.NAND2: "nand",
    GateType.NOR2: "nor",
    GateType.XOR2: "xor",
    GateType.XNOR2: "xnor",
    GateType.AND3: "and",
    GateType.OR3: "or",
}

_REVERSE_2IN = {
    "not": GateType.INV,
    "buf": GateType.BUF,
    "and": GateType.AND2,
    "or": GateType.OR2,
    "nand": GateType.NAND2,
    "nor": GateType.NOR2,
    "xor": GateType.XOR2,
    "xnor": GateType.XNOR2,
}

_REVERSE_3IN = {"and": GateType.AND3, "or": GateType.OR3}


def _net_name(net, netlist):
    if net == 0:
        return "const0"
    if net in netlist.inputs:
        return f"in{netlist.inputs.index(net)}"
    return f"n{net}"


def write_verilog(netlist, module_name=None):
    """Render ``netlist`` as a structural Verilog module (a string)."""
    name = module_name or re.sub(r"\W", "_", netlist.name)
    inputs = [f"in{i}" for i in range(len(netlist.inputs))]
    outputs = [f"out{i}" for i in range(len(netlist.outputs))]
    lines = [f"module {name} ({', '.join(inputs + outputs)});"]
    for port in inputs:
        lines.append(f"  input {port};")
    for port in outputs:
        lines.append(f"  output {port};")
    lines.append("  wire const0;")
    lines.append("  assign const0 = 1'b0;")
    for gate in netlist.gates:
        lines.append(f"  wire n{gate.output};")
    for gate in netlist.gates:
        out = f"n{gate.output}"
        ins = [_net_name(n, netlist) for n in gate.inputs]
        if gate.gtype is GateType.MUX2:
            a, b, sel = ins
            lines.append(
                f"  assign {out} = {sel} ? {b} : {a};  // mux2"
            )
        else:
            prim = _PRIMITIVES[gate.gtype]
            lines.append(
                f"  {prim} g{gate.index} ({out}, {', '.join(ins)});"
            )
    for i, net in enumerate(netlist.outputs):
        lines.append(f"  assign out{i} = {_net_name(net, netlist)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    r"^\s*(not|buf|and|or|nand|nor|xor|xnor)\s+\w+\s*\(([^)]*)\)\s*;"
)
_MUX_RE = re.compile(
    r"^\s*assign\s+(\w+)\s*=\s*(\w+)\s*\?\s*(\w+)\s*:\s*(\w+)\s*;"
)
_ASSIGN_RE = re.compile(r"^\s*assign\s+(\w+)\s*=\s*(\w+)\s*;")
_INPUT_RE = re.compile(r"^\s*input\s+(\w+)\s*;")
_OUTPUT_RE = re.compile(r"^\s*output\s+(\w+)\s*;")
_MODULE_RE = re.compile(r"^\s*module\s+(\w+)")


def parse_verilog(text):
    """Parse a module produced by :func:`write_verilog` back to a netlist.

    Supports exactly the emitted subset: primitive gate instances, the
    ternary mux assign, plain-wire assigns, and the const0 convention.
    """
    netlist = None
    name = "parsed"
    net_by_name = {}
    output_ports = []
    aliases = {}

    def resolve(token):
        if token == "const0" or token == "1'b0":
            return 0
        while token in aliases:
            token = aliases[token]
        if token not in net_by_name:
            raise ValueError(f"undriven net {token!r}")
        return net_by_name[token]

    pending = []
    for line in text.splitlines():
        m = _MODULE_RE.match(line)
        if m:
            name = m.group(1)
            netlist = Netlist(name)
            continue
        if netlist is None:
            continue
        m = _INPUT_RE.match(line)
        if m:
            net_by_name[m.group(1)] = netlist.add_input()
            continue
        m = _OUTPUT_RE.match(line)
        if m:
            output_ports.append(m.group(1))
            continue
        m = _GATE_RE.match(line)
        if m:
            prim, args = m.groups()
            tokens = [t.strip() for t in args.split(",")]
            out, ins = tokens[0], tokens[1:]
            table = _REVERSE_3IN if len(ins) == 3 else _REVERSE_2IN
            gtype = table[prim]
            net_by_name[out] = netlist.add_gate(
                gtype, [resolve(t) for t in ins]
            )
            continue
        m = _MUX_RE.match(line)
        if m:
            out, sel, b, a = m.groups()
            net_by_name[out] = netlist.add_gate(
                GateType.MUX2, [resolve(a), resolve(b), resolve(sel)]
            )
            continue
        m = _ASSIGN_RE.match(line)
        if m:
            lhs, rhs = m.groups()
            if lhs == "const0":
                continue
            pending.append((lhs, rhs))
            continue
    if netlist is None:
        raise ValueError("no module found")
    for lhs, rhs in pending:
        aliases[lhs] = rhs
    for port in output_ports:
        netlist.mark_output(resolve(port))
    return netlist
