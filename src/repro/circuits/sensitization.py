"""Sensitized-path commonality analysis (Section S1).

The paper's estimator: if phi is the set of gates that change state in
*every* dynamic instance of a static PC and psi the set of gates that
change state in *at least one* instance, the commonality is |phi| / |psi|.
Figure 7 reports the frequency-weighted average over the static PCs
exercising each component.

The driver simulates an interleaved stream of (pc, input-vector) pairs so
that the circuit state between instances of the same PC reflects whatever
other instructions did in between — as in the paper's trace-driven
NC-Verilog runs.
"""


def toggle_sets_per_pc(netlist, stream):
    """Gather per-PC toggle sets from a (pc, prev_vector, vector) stream.

    Following Section S1.2 ("for each PC, we also identify the preceding
    instruction PC that sets the internal logic state"), each dynamic
    instance is measured as a transition: the predecessor's input vector is
    applied first to set the circuit state, then the instance's own vector,
    and the gates that change state in that second step form the instance's
    sensitized set.

    Returns ``{pc: [toggle_set_per_instance, ...]}``.
    """
    sets = {}
    for pc, prev_vector, vector in stream:
        netlist.simulate(prev_vector)
        _, toggled = netlist.simulate(vector, track_toggles=True)
        sets.setdefault(pc, []).append(toggled)
    return sets


def commonality(instance_sets):
    """|intersection| / |union| of a PC's per-instance toggle sets.

    Returns 1.0 for a PC whose instances never toggle anything (a degenerate
    case that would otherwise divide by zero: identical no-op instances are
    perfectly common).
    """
    if not instance_sets:
        raise ValueError("need at least one instance")
    union = set().union(*instance_sets)
    if not union:
        return 1.0
    inter = set(instance_sets[0])
    for s in instance_sets[1:]:
        inter &= s
    return len(inter) / len(union)


def weighted_commonality(sets_by_pc, min_instances=2):
    """Frequency-weighted average commonality over PCs (Figure 7's metric).

    PCs with fewer than ``min_instances`` dynamic instances are skipped
    (single-instance commonality is trivially 1). Weights are instance
    counts, matching the paper's "weighted average, based on frequencies
    of each instruction".
    """
    total_weight = 0
    acc = 0.0
    for instances in sets_by_pc.values():
        if len(instances) < min_instances:
            continue
        weight = len(instances)
        acc += weight * commonality(instances)
        total_weight += weight
    if not total_weight:
        raise ValueError("no PC had enough dynamic instances")
    return acc / total_weight
