"""Gate types and their boolean evaluation."""

import enum


class GateType(enum.IntEnum):
    """Combinational cell types of the library."""

    INV = 0
    BUF = 1
    AND2 = 2
    OR2 = 3
    NAND2 = 4
    NOR2 = 5
    XOR2 = 6
    XNOR2 = 7
    MUX2 = 8    # inputs: (a, b, sel) -> sel ? b : a
    AND3 = 9
    OR3 = 10


#: Number of inputs each gate type takes.
GATE_ARITY = {
    GateType.INV: 1,
    GateType.BUF: 1,
    GateType.AND2: 2,
    GateType.OR2: 2,
    GateType.NAND2: 2,
    GateType.NOR2: 2,
    GateType.XOR2: 2,
    GateType.XNOR2: 2,
    GateType.MUX2: 3,
    GateType.AND3: 3,
    GateType.OR3: 3,
}


def eval_gate(gtype, inputs):
    """Evaluate one gate. ``inputs`` is a sequence of ints (0/1)."""
    if gtype == GateType.INV:
        return inputs[0] ^ 1
    if gtype == GateType.BUF:
        return inputs[0]
    if gtype == GateType.AND2:
        return inputs[0] & inputs[1]
    if gtype == GateType.OR2:
        return inputs[0] | inputs[1]
    if gtype == GateType.NAND2:
        return (inputs[0] & inputs[1]) ^ 1
    if gtype == GateType.NOR2:
        return (inputs[0] | inputs[1]) ^ 1
    if gtype == GateType.XOR2:
        return inputs[0] ^ inputs[1]
    if gtype == GateType.XNOR2:
        return inputs[0] ^ inputs[1] ^ 1
    if gtype == GateType.MUX2:
        return inputs[1] if inputs[2] else inputs[0]
    if gtype == GateType.AND3:
        return inputs[0] & inputs[1] & inputs[2]
    if gtype == GateType.OR3:
        return inputs[0] | inputs[1] | inputs[2]
    raise ValueError(f"unknown gate type {gtype!r}")
