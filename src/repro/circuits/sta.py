"""(Statistical) static timing analysis over netlists.

``critical_path`` computes nominal arrival times; ``monte_carlo_delay``
samples per-gate delay factors from the process-variation model (the same
model the architectural fault injector uses, Section 4.3) and returns the
critical-path delay distribution, whose mu and sigma feed the mu+2sigma
fault criterion.
"""

import statistics

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on bare installs
    np = None


def critical_path(netlist, library, factors=None):
    """Nominal (or factor-scaled) critical path.

    Returns ``(delay_ps, path_gate_indices)`` for the slowest input-to-
    output path. ``factors`` optionally gives a per-gate delay multiplier
    (e.g. one Monte-Carlo die sample).
    """
    arrival = [0.0] * netlist.n_nets
    pred = [None] * netlist.n_nets
    for gate in netlist.gates:
        worst_in = max(gate.inputs, key=lambda n: arrival[n])
        delay = library.gate_delay(gate.gtype)
        if factors is not None:
            delay *= factors[gate.index]
        arrival[gate.output] = arrival[worst_in] + delay
        pred[gate.output] = (gate.index, worst_in)
    if not netlist.outputs:
        raise ValueError("netlist has no outputs")
    end = max(netlist.outputs, key=lambda n: arrival[n])
    path = []
    node = end
    while pred[node] is not None:
        gate_index, prev = pred[node]
        path.append(gate_index)
        node = prev
    path.reverse()
    return arrival[end], path


def monte_carlo_delay(netlist, library, variation, n_samples=64):
    """Critical-path delay distribution under process variation.

    Returns ``(delays, mu, sigma)`` where ``delays`` is an array of
    per-die critical path delays in ps.
    """
    if n_samples <= 0:
        raise ValueError("need at least one sample")
    delays = (
        np.empty(n_samples) if np is not None else [0.0] * n_samples
    )
    for i in range(n_samples):
        sample = variation.sample_gate_factors(netlist.n_gates)
        delays[i], _ = critical_path(netlist, library, sample.factors)
    if np is not None:
        return delays, float(delays.mean()), float(delays.std())
    return delays, statistics.fmean(delays), statistics.pstdev(delays)
