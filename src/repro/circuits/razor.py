"""Razor-style in-situ error detection at the circuit level.

The comparative schemes' detection substrate (Razor [15] / RazorII [3])
augments the timing-critical flip-flops of a stage with shadow latches
clocked half a cycle late: if the main and shadow values disagree, the
combinational result arrived after the clock edge — a timing violation.
This module models the three circuit-level consequences for a netlist:

* **Detection window** — violations are caught only if the late
  transition lands inside the shadow-latch window
  ``(T_clk, T_clk + window]``; later arrivals escape detection. The
  detection coverage of a stage is evaluated by Monte-Carlo over process
  variation.
* **Minimum-delay (hold) constraint** — any path *faster* than the shadow
  window would corrupt the shadow value for the *next* cycle, so short
  paths must be padded with buffers. ``min_delay_padding`` computes how
  many buffers that costs for a netlist.
* **Area/energy overhead** — each protected flip-flop pays a shadow latch
  plus an XOR comparator; ``razor_overhead`` totals this against the plain
  registers, reproducing the classic result that Razor protection is far
  from free — the context for the paper's claim that VTE scheduling is
  the energy-efficient alternative (Section S3).
"""

import math

from repro.circuits.gates import GateType
from repro.circuits.sta import critical_path


class RazorStageReport:
    """Detection characteristics of one Razor-protected stage."""

    def __init__(self, coverage, escape_rate, window, t_clk):
        self.coverage = coverage
        self.escape_rate = escape_rate
        self.window = window
        self.t_clk = t_clk

    def __repr__(self):
        return (
            f"RazorStageReport(coverage={self.coverage:.2%}, "
            f"window={self.window:.0f}ps @ Tclk={self.t_clk:.0f}ps)"
        )


def detection_coverage(netlist, library, variation, t_clk, window_frac=0.5,
                       n_samples=64):
    """Monte-Carlo detection coverage of a Razor-protected stage.

    For each sampled die, the stage violates timing when its critical-path
    delay exceeds ``t_clk``; the violation is *detected* when the delay is
    within the shadow window ``t_clk * (1 + window_frac)``. Returns a
    :class:`RazorStageReport` with the fraction of violations caught
    (1.0 when the sampled dies never violate).
    """
    if t_clk <= 0 or window_frac <= 0:
        raise ValueError("t_clk and window_frac must be positive")
    window = t_clk * window_frac
    violations = 0
    detected = 0
    for _ in range(n_samples):
        sample = variation.sample_gate_factors(netlist.n_gates)
        delay, _ = critical_path(netlist, library, sample.factors)
        if delay > t_clk:
            violations += 1
            if delay <= t_clk + window:
                detected += 1
    coverage = detected / violations if violations else 1.0
    escape = 1.0 - coverage if violations else 0.0
    return RazorStageReport(coverage, escape, window, t_clk)


def min_path_delays(netlist, library):
    """Per-output *shortest* input-to-output delay (hold analysis)."""
    inf = float("inf")
    earliest = [0.0] * netlist.n_nets
    driven = [False] * netlist.n_nets
    for net in netlist.inputs:
        driven[net] = True
    for gate in netlist.gates:
        ins = [
            earliest[n] if driven[n] else 0.0 for n in gate.inputs
        ]
        earliest[gate.output] = min(ins) + library.gate_delay(gate.gtype)
        driven[gate.output] = True
    return {
        net: (earliest[net] if driven[net] else inf)
        for net in netlist.outputs
    }


def min_delay_padding(netlist, library, window, buffer_type=GateType.BUF):
    """Buffers needed so every output's min path exceeds the shadow window.

    Returns ``(n_buffers, padded_outputs)``: total buffer count and how
    many outputs required padding. This is the classic Razor short-path
    constraint: a path faster than the window would race through and
    corrupt the shadow latch.
    """
    if window < 0:
        raise ValueError("window must be non-negative")
    buffer_delay = library.gate_delay(buffer_type)
    mins = min_path_delays(netlist, library)
    n_buffers = 0
    padded = 0
    for net, delay in mins.items():
        if delay < window:
            need = math.ceil((window - delay) / buffer_delay)
            n_buffers += need
            padded += 1
    return n_buffers, padded


class RazorOverheadReport:
    """Cost of Razor-protecting a stage's output flip-flops."""

    def __init__(self, n_flops, area_overhead, energy_overhead, n_buffers):
        self.n_flops = n_flops
        self.area_overhead = area_overhead
        self.energy_overhead = energy_overhead
        self.n_buffers = n_buffers

    def __repr__(self):
        return (
            f"RazorOverheadReport({self.n_flops} FFs: "
            f"area +{self.area_overhead:.1%}, "
            f"energy +{self.energy_overhead:.1%}, "
            f"{self.n_buffers} hold buffers)"
        )


def razor_overhead(netlist, library, window_frac=0.5, t_clk=None):
    """Area/energy overhead of Razor flip-flops on a stage's outputs.

    Each protected flip-flop adds a shadow latch (modelled as ~0.7 of a
    DFF), an XOR comparator, and its share of the error-OR tree; hold
    fixing adds the buffers from :func:`min_delay_padding`. Overheads are
    relative to the unprotected stage (netlist + plain output registers).
    """
    if t_clk is None:
        t_clk, _ = critical_path(netlist, library)
    window = t_clk * window_frac
    n_flops = len(netlist.outputs)
    dff = library.dff
    xor = library.spec(GateType.XOR2)
    or2 = library.spec(GateType.OR2)
    buf = library.spec(GateType.BUF)

    base_area = library.netlist_area(netlist) + n_flops * dff.area
    shadow_area = n_flops * (0.7 * dff.area + xor.area) + max(
        n_flops - 1, 0
    ) * or2.area
    n_buffers, _ = min_delay_padding(netlist, library, window)
    shadow_area += n_buffers * buf.area

    base_energy = (
        sum(library.spec(g.gtype).energy for g in netlist.gates)
        + n_flops * dff.energy
    )
    shadow_energy = (
        n_flops * (0.7 * dff.energy + xor.energy) + n_buffers * buf.energy
    )
    return RazorOverheadReport(
        n_flops,
        shadow_area / base_area,
        shadow_energy / base_energy,
        n_buffers,
    )
