"""Violation Tolerant Enhancement effects per pipe stage (Sections 3.2-3.3).

Given a predicted faulty stage and the instruction's operation class, this
module decides the two things the scheduler must do (Section 3.1):

1. how many extra cycles the instruction spends, and where in its timing
   chain they land (register read / execute / memory / writeback), which in
   turn delays its tag broadcast by one cycle (Section 3.2.2); and
2. which resource is frozen for the following cycle so no new instruction
   enters the faulty logic behind it (issue-slot management, Section 3.2.3).
"""

import enum

from repro.isa.opcodes import (
    OpClass,
    PipeStage,
    PIPELINED_OPS,
    UNPIPELINED_OPS,
)


class FreezeKind(enum.Enum):
    """How the resource behind a faulty instruction is frozen."""

    NONE = "none"
    #: freeze the FU's issue slot for one cycle (issue/regread faults,
    #: single-cycle execute faults, memory-port faults)
    SLOT_ONE_CYCLE = "slot_one_cycle"
    #: no new instructions to the (pipelined, multi-cycle) unit until the
    #: faulty instruction completes (Section 3.3.3)
    UNTIL_COMPLETE = "until_complete"
    #: unpipelined unit busy one extra cycle beyond completion
    BUSY_PLUS_ONE = "busy_plus_one"
    #: writeback input slot frozen next cycle (Section 3.3.5)
    WB_SLOT = "wb_slot"


class VteEffects:
    """Scheduling adjustments for one predicted-faulty instruction."""

    __slots__ = ("stage", "rr_extra", "ex_extra", "mem_extra", "wb_extra", "freeze")

    def __init__(self, stage, rr_extra=0, ex_extra=0, mem_extra=0, wb_extra=0,
                 freeze=FreezeKind.NONE):
        self.stage = stage
        self.rr_extra = rr_extra
        self.ex_extra = ex_extra
        self.mem_extra = mem_extra
        self.wb_extra = wb_extra
        self.freeze = freeze

    @property
    def broadcast_delay(self):
        """Extra cycles before the result tag is visible to dependents."""
        return self.rr_extra + self.ex_extra + self.mem_extra

    def __repr__(self):
        stage = PipeStage(self.stage).name if self.stage is not None else None
        return (
            f"VteEffects(stage={stage}, +rr={self.rr_extra}, "
            f"+ex={self.ex_extra}, +mem={self.mem_extra}, "
            f"+wb={self.wb_extra}, freeze={self.freeze.value})"
        )


_NO_EFFECTS = VteEffects(None)

#: (stage, op) -> VteEffects. The decision is a pure function of a tiny
#: domain (|PipeStage| x |OpClass| pairs), and the issue path asks for it
#: on every predicted-faulty instruction, so results are interned: every
#: caller shares one immutable VteEffects per pair.
_EFFECTS_CACHE = {}


def vte_effects(stage, op):
    """VTE scheduling effects for a prediction of a violation in ``stage``.

    Returns a :class:`VteEffects`; predictions outside the OoO engine (or
    ``None``) yield no effects — the in-order engine is handled by stall
    signals, not by the scheduler (Section 2.2).
    """
    cached = _EFFECTS_CACHE.get((stage, op))
    if cached is not None:
        return cached
    effects = _compute_effects(stage, op)
    _EFFECTS_CACHE[(stage, op)] = effects
    return effects


def _compute_effects(stage, op):
    if stage is None or not PipeStage(stage).in_ooo_engine:
        return _NO_EFFECTS

    if stage is PipeStage.ISSUE:
        # wakeup/select input held steady two cycles; the instruction's own
        # execution is unaffected (Section 3.3.1)
        return VteEffects(stage, freeze=FreezeKind.SLOT_ONE_CYCLE)

    if stage is PipeStage.REGREAD:
        # register read completes in two cycles; the read port is blocked
        # in the following cycle (Section 3.3.2)
        return VteEffects(stage, rr_extra=1, freeze=FreezeKind.SLOT_ONE_CYCLE)

    if stage is PipeStage.EXECUTE:
        if op in UNPIPELINED_OPS:
            freeze = FreezeKind.BUSY_PLUS_ONE
        elif op in PIPELINED_OPS:
            freeze = FreezeKind.UNTIL_COMPLETE
        else:
            freeze = FreezeKind.SLOT_ONE_CYCLE
        return VteEffects(stage, ex_extra=1, freeze=freeze)

    if stage is PipeStage.MEM:
        if op not in (OpClass.LOAD, OpClass.STORE):
            # a non-memory instruction never enters the memory stage; the
            # prediction is stale metadata and has no effect
            return _NO_EFFECTS
        # the CAM match proceeds for two cycles; no load/store is issued
        # behind the faulty one (Section 3.3.4)
        return VteEffects(stage, mem_extra=1, freeze=FreezeKind.SLOT_ONE_CYCLE)

    # WRITEBACK: the input slot recirculates for one extra cycle
    return VteEffects(stage, wb_extra=1, freeze=FreezeKind.WB_SLOT)
