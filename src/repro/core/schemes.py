"""Comparative schemes of the evaluation (Section 5).

* **FAULT_FREE** — the baseline machine at nominal voltage; no faults.
* **RAZOR** — no prediction; every timing violation triggers an
  instruction replay [3, 15].
* **EP** (Error Padding) — the stall-based baseline [12, 13]: a predicted
  violation stalls the whole pipeline for one cycle when the faulty
  instruction occupies its faulty stage; unpredicted violations replay.
* **ABS / FFS / CDS** — the paper's violation-aware scheduling schemes:
  VTE handling (per-instruction extra cycle + slot freeze) with the
  respective selection policy; unpredicted violations replay.
"""

import enum

from repro.core.policies import (
    AgeBasedSelection,
    CriticalityDrivenSelection,
    FaultyFirstSelection,
)


class SchemeKind(enum.Enum):
    """Identifier of a fault-handling scheme."""

    FAULT_FREE = "fault_free"
    RAZOR = "razor"
    EP = "ep"
    ABS = "abs"
    FFS = "ffs"
    CDS = "cds"


class Scheme:
    """A fault-tolerance scheme: prediction use, handling style, policy."""

    def __init__(self, kind, policy, uses_tep, uses_vte, uses_ep_stall,
                 detects_criticality=False):
        self.kind = kind
        self.policy = policy
        self.uses_tep = uses_tep
        self.uses_vte = uses_vte
        self.uses_ep_stall = uses_ep_stall
        self.detects_criticality = detects_criticality

    @property
    def name(self):
        """Scheme name as used in the paper's figures."""
        return self.kind.name

    @property
    def tolerates_predicted_faults(self):
        """True when a correctly predicted violation avoids a replay."""
        return self.uses_vte or self.uses_ep_stall

    def __repr__(self):
        return f"Scheme({self.kind.name}, policy={self.policy.name})"


def make_scheme(kind):
    """Construct a :class:`Scheme` for ``kind`` (enum or its value/name)."""
    if isinstance(kind, str):
        try:
            kind = SchemeKind[kind.upper()]
        except KeyError:
            kind = SchemeKind(kind.lower())
    if kind is SchemeKind.FAULT_FREE:
        return Scheme(kind, AgeBasedSelection(), False, False, False)
    if kind is SchemeKind.RAZOR:
        return Scheme(kind, AgeBasedSelection(), False, False, False)
    if kind is SchemeKind.EP:
        # the paper uses age-based selection for the EP baseline (§4.2)
        return Scheme(kind, AgeBasedSelection(), True, False, True)
    if kind is SchemeKind.ABS:
        return Scheme(kind, AgeBasedSelection(), True, True, False)
    if kind is SchemeKind.FFS:
        return Scheme(kind, FaultyFirstSelection(), True, True, False)
    if kind is SchemeKind.CDS:
        return Scheme(
            kind, CriticalityDrivenSelection(), True, True, False,
            detects_criticality=True,
        )
    raise ValueError(f"unknown scheme kind: {kind!r}")


#: The schemes of Figures 4/5/8/9, in presentation order.
PROPOSED_SCHEMES = (SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS)
