"""The prior predictor designs the TEP combines (Section 2.1.1).

The paper's Timing Error Predictor "combines features from the Most Recent
Entry (MRE) predictor proposed by Xin et al. with the Timing Violation
Predictor (TVP) proposed by Roy et al. [12, 13]". To support ablation of
that design decision, this module provides faithful sketches of the two
constituents behind the same ``predict``/``train`` interface as
:class:`~repro.core.tep.TimingErrorPredictor`:

* :class:`MostRecentEntryPredictor` (MICRO'11 [13]) — a small
  fully-associative table of the PCs that *most recently* caused timing
  violations, LRU-replaced; predicts a violation whenever the PC is
  resident. No confidence counters, no history hashing: fast to react,
  quick to evict.
* :class:`TimingViolationPredictor` (DAC'12 [12]) — a direct-mapped,
  untagged table of 2-bit saturating counters indexed by PC bits XOR
  recent branch outcomes; predicts when the counter crosses a threshold.
  Confident and history-sensitive, but subject to aliasing.

Both record the faulty pipe stage so the violation-aware scheduler can be
driven by either. ``make_predictor`` builds any of the three designs by
name.
"""

from collections import OrderedDict

from repro.core.tep import TEPConfig, TEPPrediction, TimingErrorPredictor


class MostRecentEntryPredictor:
    """MRE: fully-associative LRU table of recent violators."""

    def __init__(self, n_entries=64):
        if n_entries <= 0:
            raise ValueError("n_entries must be positive")
        self.n_entries = n_entries
        self._table = OrderedDict()  # pc -> (stage, critical)
        self.lookups = 0
        self.hits = 0
        self.trainings = 0

    def key_for(self, pc, ghr):
        """The key used for this PC (MRE ignores branch history)."""
        del ghr
        return pc

    def predict(self, pc, ghr):
        """Predict a violation iff ``pc`` is resident (and refresh LRU)."""
        del ghr
        self.lookups += 1
        entry = self._table.get(pc)
        if entry is None:
            return None
        self.hits += 1
        self._table.move_to_end(pc)
        stage, critical = entry
        return TEPPrediction(stage, critical, pc)

    def train(self, key, stage, faulted):
        """Insert violators; evict on clean execution (MRE semantics)."""
        if key is None:
            return
        self.trainings += 1
        if faulted:
            critical = self._table.get(key, (None, False))[1]
            self._table[key] = (stage, critical)
            self._table.move_to_end(key)
            while len(self._table) > self.n_entries:
                self._table.popitem(last=False)
        else:
            # a clean run of a resident PC drops it immediately: the MRE
            # tracks *recent* violators only
            self._table.pop(key, None)

    def mark_critical(self, key, critical=True):
        """Attach the CDL verdict to a resident entry."""
        entry = self._table.get(key)
        if entry is not None:
            self._table[key] = (entry[0], critical)

    @property
    def occupancy(self):
        """Fraction of the table in use."""
        return len(self._table) / self.n_entries

    def reset(self):
        """Clear table and statistics."""
        self._table.clear()
        self.lookups = self.hits = self.trainings = 0


class TimingViolationPredictor:
    """TVP: untagged direct-mapped 2-bit counters over PC ^ history."""

    def __init__(self, n_entries=1024, history_bits=4, threshold=2):
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a positive power of two")
        if not 1 <= threshold <= 3:
            raise ValueError("threshold must be a 2-bit counter level")
        self.n_entries = n_entries
        self.history_bits = history_bits
        self.threshold = threshold
        self._mask = n_entries - 1
        self._hist_mask = (1 << history_bits) - 1 if history_bits else 0
        self._counters = [0] * n_entries
        self._stages = [None] * n_entries
        self._critical = [False] * n_entries
        self.lookups = 0
        self.hits = 0
        self.trainings = 0

    def key_for(self, pc, ghr):
        """Table index for (pc, history)."""
        return ((pc >> 2) ^ (ghr & self._hist_mask)) & self._mask

    def predict(self, pc, ghr):
        """Predict when the counter has reached the confidence threshold."""
        self.lookups += 1
        index = self.key_for(pc, ghr)
        if self._counters[index] >= self.threshold:
            self.hits += 1
            return TEPPrediction(
                self._stages[index], self._critical[index], index
            )
        return None

    def train(self, key, stage, faulted):
        """Saturating-counter update; untagged, so aliases share fate."""
        if key is None:
            return
        self.trainings += 1
        if faulted:
            self._counters[key] = min(3, self._counters[key] + 1)
            self._stages[key] = stage
        elif self._counters[key] > 0:
            self._counters[key] -= 1

    def mark_critical(self, key, critical=True):
        """Attach the CDL verdict to the indexed entry."""
        if key is not None:
            self._critical[key] = critical

    @property
    def occupancy(self):
        """Fraction of counters above zero."""
        return sum(1 for c in self._counters if c) / self.n_entries

    def reset(self):
        """Clear counters and statistics."""
        self._counters = [0] * self.n_entries
        self._stages = [None] * self.n_entries
        self._critical = [False] * self.n_entries
        self.lookups = self.hits = self.trainings = 0


def make_predictor(kind, **kwargs):
    """Build a timing-violation predictor by name.

    ``kind``: ``"tep"`` (the paper's combined design), ``"mre"`` or
    ``"tvp"``. Keyword arguments are passed to the constructor (for
    ``"tep"``, they populate a :class:`~repro.core.tep.TEPConfig`).
    """
    kind = kind.lower()
    if kind == "tep":
        return TimingErrorPredictor(TEPConfig(**kwargs) if kwargs else None)
    if kind == "mre":
        return MostRecentEntryPredictor(**kwargs)
    if kind == "tvp":
        return TimingViolationPredictor(**kwargs)
    raise ValueError(f"unknown predictor kind {kind!r}")
