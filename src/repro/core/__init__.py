"""The paper's contribution: violation-aware instruction scheduling.

* :mod:`repro.core.tep` — the Timing Error Predictor (Section 2.1.1).
* :mod:`repro.core.policies` — ABS / FFS / CDS selection (Section 3.5).
* :mod:`repro.core.criticality` — Criticality Detection Logic (CDL,
  Section 3.5.2).
* :mod:`repro.core.vte` — per-stage Violation Tolerant Enhancement effects
  (Sections 3.2-3.3).
* :mod:`repro.core.schemes` — the comparative schemes of Section 5
  (FaultFree / Razor / Error Padding / ABS / FFS / CDS).
"""

from repro.core.tep import TEPConfig, TEPPrediction, TimingErrorPredictor
from repro.core.predictors import (
    MostRecentEntryPredictor,
    TimingViolationPredictor,
    make_predictor,
)
from repro.core.policies import (
    AgeBasedSelection,
    CriticalityDrivenSelection,
    FaultyFirstSelection,
    SelectionPolicy,
)
from repro.core.criticality import CriticalityDetector, DEFAULT_CRITICALITY_THRESHOLD
from repro.core.vte import FreezeKind, VteEffects, vte_effects
from repro.core.schemes import Scheme, SchemeKind, make_scheme

__all__ = [
    "TEPConfig",
    "MostRecentEntryPredictor",
    "TimingViolationPredictor",
    "make_predictor",
    "TEPPrediction",
    "TimingErrorPredictor",
    "SelectionPolicy",
    "AgeBasedSelection",
    "FaultyFirstSelection",
    "CriticalityDrivenSelection",
    "CriticalityDetector",
    "DEFAULT_CRITICALITY_THRESHOLD",
    "FreezeKind",
    "VteEffects",
    "vte_effects",
    "Scheme",
    "SchemeKind",
    "make_scheme",
]
