"""Timing Error Predictor (TEP), Section 2.1.1.

The TEP combines the Most-Recent-Entry predictor of Xin & Joseph [13] with
the Timing Violation Predictor of Roy & Chakraborty [12]:

* the table is indexed by a hash of instruction PC bits and recent branch
  outcomes (the global history register),
* each entry holds a 2-byte tag derived from the PC, a 2-bit saturating
  counter (non-zero means "predict a violation"), the faulty pipe stage the
  violation was observed in, and the criticality bit the CDL stores
  (Section 3.5.2).

Predictions are only armed when the voltage/thermal sensors report
conditions favourable to timing errors — the pipeline gates lookups on
:meth:`repro.faults.sensors.VoltageSensor.favorable`.
"""


class TEPConfig:
    """Geometry of the predictor table."""

    def __init__(self, n_entries=1024, tag_bits=16, counter_bits=2, history_bits=0):
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("n_entries must be a positive power of two")
        self.n_entries = n_entries
        self.tag_bits = tag_bits
        self.counter_bits = counter_bits
        self.history_bits = history_bits
        self.counter_max = (1 << counter_bits) - 1

    @property
    def storage_bits(self):
        """Total predictor storage in bits (tag+counter+stage+critical)."""
        # 4-bit stage field + 1 criticality bit per entry (Section 3.2.1)
        per_entry = self.tag_bits + self.counter_bits + 4 + 1
        return self.n_entries * per_entry


class TEPPrediction:
    """Outcome of a TEP lookup that predicts a violation."""

    __slots__ = ("stage", "critical", "key")

    def __init__(self, stage, critical, key):
        self.stage = stage
        self.critical = critical
        self.key = key

    def __repr__(self):
        return f"TEPPrediction(stage={self.stage}, critical={self.critical})"


class _Entry:
    __slots__ = ("tag", "counter", "stage", "critical")

    def __init__(self):
        self.tag = -1
        self.counter = 0
        self.stage = None
        self.critical = False


class TimingErrorPredictor:
    """PC+history indexed timing-violation predictor."""

    def __init__(self, config=None):
        self.config = config or TEPConfig()
        self._entries = [_Entry() for _ in range(self.config.n_entries)]
        self._index_mask = self.config.n_entries - 1
        self._tag_mask = (1 << self.config.tag_bits) - 1
        self._hist_mask = (1 << self.config.history_bits) - 1
        # (pc, masked history) -> (index, tag): the key is a pure hash of
        # its inputs and each static PC recurs thousands of times per run,
        # so memoizing avoids recomputing (and reallocating) the tuple
        self._key_cache = {}
        self.lookups = 0
        self.hits = 0
        self.trainings = 0

    def _key(self, pc, ghr):
        hist = ghr & self._hist_mask
        if hist:
            # history-indexed configs vary per lookup; compute directly
            word = pc >> 2
            return ((word ^ hist) & self._index_mask,
                    (word >> 10) & self._tag_mask)
        key = self._key_cache.get(pc)
        if key is None:
            word = pc >> 2
            key = (word & self._index_mask, (word >> 10) & self._tag_mask)
            self._key_cache[pc] = key
        return key

    # ------------------------------------------------------------------
    def predict(self, pc, ghr):
        """Look up ``pc`` under branch history ``ghr``.

        Returns a :class:`TEPPrediction` when an entry with a matching tag
        has a non-zero counter, else ``None``. The returned ``key`` must be
        kept with the instruction and passed back to :meth:`train` so
        training hits the same entry regardless of later history shifts.
        """
        self.lookups += 1
        key = self._key(pc, ghr)
        entry = self._entries[key[0]]
        if entry.tag == key[1] and entry.counter > 0:
            self.hits += 1
            return TEPPrediction(entry.stage, entry.critical, key)
        return None

    def key_for(self, pc, ghr):
        """The (index, tag) key a lookup of ``pc``/``ghr`` would use."""
        return self._key(pc, ghr)

    def predict_or_key(self, pc, ghr):
        """Single-probe fetch path: returns ``(prediction, key)``.

        Equivalent to :meth:`predict` followed by :meth:`key_for` but with
        one table probe and one key computation.
        """
        self.lookups += 1
        key = self._key(pc, ghr)
        entry = self._entries[key[0]]
        if entry.tag == key[1] and entry.counter > 0:
            self.hits += 1
            return TEPPrediction(entry.stage, entry.critical, key), key
        return None, key

    def train(self, key, stage, faulted):
        """Update the entry at ``key`` with an observed outcome.

        A detected violation allocates/reinforces the entry and records the
        faulty stage; a clean execution of a tracked instruction decays the
        counter (2-bit saturating behaviour).
        """
        if key is None:
            return
        self.trainings += 1
        index, tag = key
        entry = self._entries[index]
        if faulted:
            if entry.tag == tag:
                entry.counter = min(self.config.counter_max, entry.counter + 1)
                entry.stage = stage
            else:
                entry.tag = tag
                entry.counter = 1
                entry.stage = stage
                entry.critical = False
        elif entry.tag == tag and entry.counter > 0:
            entry.counter -= 1

    def mark_critical(self, key, critical=True):
        """Store the CDL's criticality verdict with the entry (§3.5.2)."""
        if key is None:
            return
        index, tag = key
        entry = self._entries[index]
        if entry.tag == tag:
            entry.critical = critical

    # ------------------------------------------------------------------
    @property
    def occupancy(self):
        """Fraction of table entries currently allocated."""
        used = sum(1 for e in self._entries if e.tag >= 0)
        return used / len(self._entries)

    def reset(self):
        """Clear the table and statistics."""
        for entry in self._entries:
            entry.tag = -1
            entry.counter = 0
            entry.stage = None
            entry.critical = False
        self.lookups = self.hits = self.trainings = 0
