"""Instruction selection policies (Section 3.5).

All three policies operate on the operand-ready entries of the issue queue
and confine fault penalties to the faulty instruction and its dependents;
they differ only in selection priority:

* **ABS** — age-based: oldest first, by the 6-bit modulo-64 timestamp
  stamped at dispatch. Age comparison is performed relative to the oldest
  live timestamp, which is how a hardware modulo counter disambiguates
  wraparound while the live window is narrower than the counter period.
* **FFS** — faulty-first: entries with the fault-prediction bit set win;
  ties (and the no-faulty case) fall back to age.
* **CDS** — criticality-driven: predicted-faulty entries whose TEP entry
  carries the criticality bit (set by the CDL when a broadcast matched at
  least CT waiting dependents) win; then age.
"""

from repro.uarch.issue_queue import TIMESTAMP_MASK

_PERIOD = TIMESTAMP_MASK + 1


def _no_wraparound(ready, iq):
    """True when mod-64 relative age equals plain entry order for ``ready``.

    The ready list is a subsequence of ``iq.entries`` (ascending dispatch
    order); as long as the youngest ready entry is within one timestamp
    period of the queue head, the modulo ages cannot wrap and the list is
    already age-sorted.
    """
    entries = iq.entries
    return (
        not entries
        or ready[-1].dispatch_order - entries[0].dispatch_order < _PERIOD
    )


class SelectionPolicy:
    """Base class: orders ready entries for the select logic."""

    name = "base"

    def order(self, ready, iq):
        """Return ``ready`` sorted by selection priority (highest first)."""
        raise NotImplementedError

    def order_ready(self, ready, iq):
        """Fast path for a ready list already in age order.

        The pipeline builds its ready list by scanning the issue queue in
        entry order, which is ascending age (see
        :meth:`~repro.uarch.issue_queue.IssueQueue.head_timestamp`), so
        subclasses can replace the full sort with a stable partition.
        Falls back to :meth:`order` when not overridden.
        """
        return self.order(ready, iq)

    @staticmethod
    def relative_age(entry, head_ts):
        """Modulo-64 age of ``entry`` relative to the oldest timestamp."""
        return (entry.timestamp - head_ts) & TIMESTAMP_MASK

    def __repr__(self):
        return f"{type(self).__name__}()"


class AgeBasedSelection(SelectionPolicy):
    """ABS: oldest ready instruction first.

    ``exact`` switches to true fetch-order age (sequence numbers), used by
    the ablation study to quantify the cost of the 6-bit timestamp.
    """

    name = "ABS"

    def __init__(self, exact=False):
        self.exact = exact

    def order(self, ready, iq):
        if self.exact:
            return sorted(ready, key=lambda e: e.seq)
        head_ts = iq.head_timestamp()
        return sorted(ready, key=lambda e: self.relative_age(e, head_ts))

    def order_ready(self, ready, iq):
        # exact mode: the ready list is already in fetch order; non-exact:
        # entry order equals mod-64 age order unless the window wrapped
        if len(ready) < 2 or self.exact or _no_wraparound(ready, iq):
            return ready
        return self.order(ready, iq)


class FaultyFirstSelection(SelectionPolicy):
    """FFS: predicted-faulty instructions first, then age."""

    name = "FFS"

    def order(self, ready, iq):
        head_ts = iq.head_timestamp()
        return sorted(
            ready,
            key=lambda e: (
                0 if e.predicted_faulty else 1,
                self.relative_age(e, head_ts),
            ),
        )

    def order_ready(self, ready, iq):
        # stable partition: equivalent to the sort because the input is
        # already age-ordered (sorted() is stable)
        if len(ready) < 2 or not _no_wraparound(ready, iq):
            return self.order(ready, iq) if len(ready) > 1 else ready
        faulty = [e for e in ready if e.pred_fault_stage is not None]
        if not faulty or len(faulty) == len(ready):
            return ready
        faulty.extend(e for e in ready if e.pred_fault_stage is None)
        return faulty


class CriticalityDrivenSelection(SelectionPolicy):
    """CDS: predicted-faulty *and* critical instructions first, then age."""

    name = "CDS"

    def order(self, ready, iq):
        head_ts = iq.head_timestamp()
        return sorted(
            ready,
            key=lambda e: (
                0 if (e.predicted_faulty and e.pred_critical) else 1,
                self.relative_age(e, head_ts),
            ),
        )

    def order_ready(self, ready, iq):
        if len(ready) < 2 or not _no_wraparound(ready, iq):
            return self.order(ready, iq) if len(ready) > 1 else ready
        critical = [
            e
            for e in ready
            if e.pred_fault_stage is not None and e.pred_critical
        ]
        if not critical or len(critical) == len(ready):
            return ready
        critical.extend(
            e
            for e in ready
            if e.pred_fault_stage is None or not e.pred_critical
        )
        return critical
