"""Instruction selection policies (Section 3.5).

All three policies operate on the operand-ready entries of the issue queue
and confine fault penalties to the faulty instruction and its dependents;
they differ only in selection priority:

* **ABS** — age-based: oldest first, by the 6-bit modulo-64 timestamp
  stamped at dispatch. Age comparison is performed relative to the oldest
  live timestamp, which is how a hardware modulo counter disambiguates
  wraparound while the live window is narrower than the counter period.
* **FFS** — faulty-first: entries with the fault-prediction bit set win;
  ties (and the no-faulty case) fall back to age.
* **CDS** — criticality-driven: predicted-faulty entries whose TEP entry
  carries the criticality bit (set by the CDL when a broadcast matched at
  least CT waiting dependents) win; then age.
"""

from repro.uarch.issue_queue import TIMESTAMP_MASK


class SelectionPolicy:
    """Base class: orders ready entries for the select logic."""

    name = "base"

    def order(self, ready, iq):
        """Return ``ready`` sorted by selection priority (highest first)."""
        raise NotImplementedError

    @staticmethod
    def relative_age(entry, head_ts):
        """Modulo-64 age of ``entry`` relative to the oldest timestamp."""
        return (entry.timestamp - head_ts) & TIMESTAMP_MASK

    def __repr__(self):
        return f"{type(self).__name__}()"


class AgeBasedSelection(SelectionPolicy):
    """ABS: oldest ready instruction first.

    ``exact`` switches to true fetch-order age (sequence numbers), used by
    the ablation study to quantify the cost of the 6-bit timestamp.
    """

    name = "ABS"

    def __init__(self, exact=False):
        self.exact = exact

    def order(self, ready, iq):
        if self.exact:
            return sorted(ready, key=lambda e: e.seq)
        head_ts = iq.head_timestamp()
        return sorted(ready, key=lambda e: self.relative_age(e, head_ts))


class FaultyFirstSelection(SelectionPolicy):
    """FFS: predicted-faulty instructions first, then age."""

    name = "FFS"

    def order(self, ready, iq):
        head_ts = iq.head_timestamp()
        return sorted(
            ready,
            key=lambda e: (
                0 if e.predicted_faulty else 1,
                self.relative_age(e, head_ts),
            ),
        )


class CriticalityDrivenSelection(SelectionPolicy):
    """CDS: predicted-faulty *and* critical instructions first, then age."""

    name = "CDS"

    def order(self, ready, iq):
        head_ts = iq.head_timestamp()
        return sorted(
            ready,
            key=lambda e: (
                0 if (e.predicted_faulty and e.pred_critical) else 1,
                self.relative_age(e, head_ts),
            ),
        )
