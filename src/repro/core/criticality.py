"""Criticality Detection Logic (CDL), Section 3.5.2.

Hardware cannot see the program's dataflow graph, so the paper estimates
instruction criticality by a low-complexity proxy: when an instruction
broadcasts its result tag, count the tag matches in the reservation station
(the number of dependents waiting in the issue queue), feed the count
through an encoder and compare it against a predefined Criticality
Threshold (CT). Instructions meeting the threshold are recorded as critical
in the TEP. The paper finds CT = 8 works best.
"""

DEFAULT_CRITICALITY_THRESHOLD = 8


class CriticalityDetector:
    """Counts broadcast tag matches and stores criticality in the TEP."""

    def __init__(self, tep, threshold=DEFAULT_CRITICALITY_THRESHOLD):
        if threshold <= 0:
            raise ValueError("criticality threshold must be positive")
        self.tep = tep
        self.threshold = threshold
        self.observations = 0
        self.critical_marks = 0

    def observe_broadcast(self, inst, n_dependents):
        """Process one tag broadcast with ``n_dependents`` IQ matches.

        Marks the instruction's TEP entry critical when the dependent count
        reaches the threshold. The bit is sticky: the paper stores the
        criticality with the predictor entry once observed, and the entry
        is only cleared on replacement.
        """
        self.observations += 1
        if n_dependents >= self.threshold:
            self.critical_marks += 1
            if inst.tep_key is not None:
                self.tep.mark_critical(inst.tep_key)
            return True
        return False

    @property
    def mark_rate(self):
        """Fraction of observed broadcasts that met the threshold."""
        if not self.observations:
            return 0.0
        return self.critical_marks / self.observations
