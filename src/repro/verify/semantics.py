"""Deterministic functional semantics for synthetic programs.

The timing simulator models *when* instructions execute, not *what* they
compute — a synthetic :class:`~repro.isa.instruction.StaticInst` has no
arithmetic meaning. For lockstep checking we give every instruction one:
a 64-bit value computed by a strong mixing function over its operation
class, PC, and the current values of its source registers (plus the
loaded memory word for loads). The function is:

* **deterministic** — same instruction over the same architectural state
  always produces the same value, in any process;
* **sensitive** — any commit-stream defect (a lost, duplicated,
  reordered, or phantom retirement; a wrong store address; a load/store
  ordering violation that leaks through) changes some downstream value
  with overwhelming probability, so a single end-of-run image comparison
  (or the first per-commit comparison after the defect) catches it;
* **cheap** — a handful of xors and multiplies per committed instruction,
  so verified runs stay within ~2x of unverified throughput.

Both the golden in-order reference and the pipeline-side commit executor
call the same :func:`execute`; any disagreement between the two machines
is therefore a genuine difference in *retired architectural state*, never
a modelling artefact of the checker itself.

Memory is modelled at the LSQ's 8-byte match granularity: stores and
loads to the same 8-byte word alias, exactly as the store-forwarding CAM
sees them.
"""

from repro.isa.opcodes import OpClass

_MASK64 = (1 << 64) - 1
#: Word granularity of the memory image — matches the LSQ CAM (8 bytes).
_WORD_SHIFT = 3
_MEM_SALT = 0x9E3779B97F4A7C15
_REG_SALT = 0xD1B54A32D192ED03


def mix64(x):
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


#: Per-opclass salt so e.g. an IALU and an IMUL over the same sources
#: produce unrelated values.
_OP_SALT = tuple(mix64(0xA076_1D64_78BD_642F * (int(op) + 1)) for op in OpClass)


class ArchState:
    """Architectural machine state: register file plus sparse memory.

    Registers start from a deterministic non-zero pattern; memory words
    are lazily materialized from a pure function of their address, so two
    machines that touched different words still agree on every word
    either of them reads.
    """

    __slots__ = ("regs", "mem")

    def __init__(self, n_regs):
        self.regs = [mix64(_REG_SALT ^ (r + 1)) for r in range(n_regs)]
        self.mem = {}

    def load(self, addr):
        """Value of the 8-byte word containing ``addr``."""
        word = addr >> _WORD_SHIFT
        value = self.mem.get(word)
        if value is None:
            value = mix64(_MEM_SALT ^ word)
        return value

    def store(self, addr, value):
        """Overwrite the 8-byte word containing ``addr``."""
        self.mem[addr >> _WORD_SHIFT] = value

    def digest(self):
        """Short stable hex digest of the full architectural image."""
        import hashlib

        h = hashlib.sha256()
        for value in self.regs:
            h.update(value.to_bytes(8, "little"))
        for word in sorted(self.mem):
            h.update(word.to_bytes(8, "little", signed=word < 0))
            h.update(self.mem[word].to_bytes(8, "little"))
        return h.hexdigest()[:16]

    def snapshot(self):
        """JSON-safe summary of the image (for divergence reports)."""
        return {
            "regs": list(self.regs),
            "mem_words": len(self.mem),
            "digest": self.digest(),
        }


#: Fields compared per commit, in the order they are checked.
RECORD_FIELDS = (
    "seq", "pc", "op", "taken", "mem_addr", "dest", "store_data", "value",
)


class CommitRecord:
    """The architecturally visible outcome of one retired instruction."""

    __slots__ = RECORD_FIELDS

    def __init__(self, seq, pc, op, taken, mem_addr, dest, store_data, value):
        self.seq = seq
        self.pc = pc
        self.op = op
        self.taken = taken
        self.mem_addr = mem_addr
        self.dest = dest
        self.store_data = store_data
        self.value = value

    def to_dict(self):
        """JSON-safe dict with a symbolic op name."""
        return {
            "seq": self.seq,
            "pc": self.pc,
            "op": OpClass(self.op).name,
            "taken": self.taken,
            "mem_addr": self.mem_addr,
            "dest": self.dest,
            "store_data": self.store_data,
            "value": self.value,
        }

    def __eq__(self, other):
        return isinstance(other, CommitRecord) and all(
            getattr(self, f) == getattr(other, f) for f in RECORD_FIELDS
        )

    def __repr__(self):
        return (
            f"CommitRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"op={OpClass(self.op).name}, dest={self.dest}, "
            f"value={self.value})"
        )


def execute(state, inst):
    """Apply one dynamic instruction to ``state``; return its record.

    ``inst`` is a :class:`~repro.isa.instruction.DynInst` (only its
    architectural identity is read: pc, op, register operands, resolved
    memory address, branch outcome). The same function serves the golden
    model (trace order) and the lockstep checker (commit order).
    """
    op = inst.op
    static = inst.static
    regs = state.regs
    acc = _OP_SALT[op] ^ mix64(inst.pc)
    for i, r in enumerate(static.srcs):
        acc ^= mix64(regs[r] + 3 * i + 1)
    dest = static.dest
    value = None
    store_data = None
    mem_addr = None
    taken = None
    if op is OpClass.LOAD:
        mem_addr = inst.mem_addr
        value = mix64(acc ^ state.load(mem_addr))
    elif op is OpClass.STORE:
        mem_addr = inst.mem_addr
        store_data = mix64(acc)
        state.store(mem_addr, store_data)
    elif op is OpClass.BRANCH:
        taken = inst.taken
    elif dest is not None:
        value = mix64(acc)
    if dest is not None and value is not None:
        regs[dest] = value
    return CommitRecord(
        inst.seq, inst.pc, int(op), taken, mem_addr, dest, store_data, value,
    )
