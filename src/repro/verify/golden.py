"""Golden in-order functional reference model.

The golden machine is the simplest correct implementation of the ISA
contract: it pulls dynamic instructions off its *own* trace generator
(same program, same seed — trace generation is deterministic, so the
stream is identical to the one the pipeline fetches) and executes them
one at a time, strictly in program order, with
:func:`repro.verify.semantics.execute`. No pipeline, no speculation, no
faults: whatever this machine retires is, by definition, the correct
architectural outcome.

The lockstep checker advances the golden machine one instruction per
pipeline commit, which is exactly the paper's correctness obligation: an
out-of-order machine under any timing-fault handling scheme must retire
the same architectural stream as the in-order fault-free machine.
"""

from repro.verify.semantics import ArchState, execute
from repro.workloads.trace import TraceGenerator


class GoldenModel:
    """Sequential reference execution of a program's dynamic trace."""

    def __init__(self, program, trace_seed, n_arch_regs):
        self.trace = TraceGenerator(program, seed=trace_seed)
        self.state = ArchState(n_arch_regs)
        self.executed = 0

    @classmethod
    def for_core(cls, core, trace_seed):
        """Golden twin of ``core`` (same program, regfile width, trace)."""
        return cls(core.program, trace_seed, core.config.n_arch_regs)

    def next_record(self):
        """Execute the next trace instruction; ``None`` when exhausted."""
        try:
            inst = next(self.trace)
        except StopIteration:
            return None
        self.executed += 1
        return execute(self.state, inst)

    def run(self, n):
        """Execute ``n`` instructions and return their records."""
        records = []
        for _ in range(n):
            record = self.next_record()
            if record is None:
                break
            records.append(record)
        return records
