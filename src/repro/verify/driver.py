"""Drivers wiring lockstep verification into single runs and batch workers.

:func:`run_verified` is :func:`~repro.harness.runner.run_one` with the
golden-model lockstep checker attached: it raises
:class:`~repro.verify.lockstep.DivergenceError` the moment the pipeline's
retired stream departs from the in-order reference, and audits the final
register/memory images at end of run. :func:`run_checked` is the
batch-worker wrapper: instead of letting a divergence or hang kill the
whole batch, it captures the failure into a replayable repro bundle and
returns a :class:`~repro.verify.bundle.RunFailure` result object that the
campaign executor journals and skips past.
"""

from repro.harness.runner import (
    SimResult,
    begin_measurement,
    build_core,
    prime_caches,
)
from repro.power.energy_model import EnergyModel
from repro.verify.chaos import CorruptionHook
from repro.verify.golden import GoldenModel
from repro.verify.lockstep import LockstepChecker


def run_verified(spec):
    """Run one point under the lockstep checker; return its SimResult.

    The golden model spans warmup *and* measurement (it checks every
    commit, not just the measured window — which is why verified runs are
    never snapshot-forked); the warmup→measurement transition itself is
    the shared :func:`~repro.harness.runner.begin_measurement`, so stat
    resets, storm wrapping, fault-stream reseeding, and telemetry attach
    behave identically to the unverified driver. The returned result
    carries the checker's end-of-run report as ``.verification``. Raises
    :class:`~repro.verify.lockstep.DivergenceError` on divergence and
    :class:`~repro.uarch.pipeline.SimulationHangError` on a wedged
    machine.
    """
    core = build_core(spec)
    golden = GoldenModel.for_core(core, spec.seed + 101)
    corruption = getattr(spec, "corruption", None)
    if corruption:
        corruption = CorruptionHook.from_dict(dict(corruption))
    else:
        corruption = None
    checker = LockstepChecker(core, golden, corruption=corruption)
    prime_caches(core.program, core.hierarchy)
    if spec.warmup:
        core.run(spec.warmup)
    collector = begin_measurement(core, spec)
    stats = core.run(spec.n_instructions)
    report = checker.finalize()
    stats.storm_faults = getattr(core.injector, "storm_faults", 0)
    energy = EnergyModel().evaluate(
        stats, core.hierarchy.stats(), spec.vdd, core.scheme.uses_tep
    )
    telemetry = collector.finalize(core) if collector is not None else None
    result = SimResult(
        spec, stats, energy, core.hierarchy.stats(), telemetry=telemetry
    )
    result.verification = report
    return result


def run_checked(spec):
    """``run_one`` that converts verification failures into results.

    Divergences and hangs are captured into a minimized repro bundle
    (written under ``spec.repro_dir`` when set) and returned as a
    :class:`~repro.verify.bundle.RunFailure` instead of raised, so one
    bad point cannot take down a batch or campaign. Any other exception
    still propagates — an infrastructure crash should stay loud.
    """
    from repro.harness.runner import run_one
    from repro.uarch.pipeline import SimulationHangError
    from repro.verify.bundle import capture_failure
    from repro.verify.lockstep import DivergenceError

    try:
        return run_one(spec)
    except (DivergenceError, SimulationHangError) as exc:
        return capture_failure(spec, exc, getattr(spec, "repro_dir", None))
