"""Lockstep checker: pipeline commits vs the golden reference, per retire.

The checker installs itself as the core's ``commit_listener`` and, for
every retired instruction, (1) applies the shared functional semantics to
its own commit-order architectural state, (2) advances the golden
in-order model by one instruction, and (3) compares the two commit
records field by field — sequence number, PC, operation, branch outcome,
memory address, destination register and its value, store data. At end
of run :meth:`LockstepChecker.finalize` additionally compares the full
register file and memory images.

Any mismatch raises a structured :class:`DivergenceError` carrying both
records, the commit index, the simulator cycle, and both machines'
architectural snapshots — everything the repro-bundle capturer needs to
journal an actionable, replayable failure.
"""

from repro.verify.semantics import RECORD_FIELDS, ArchState, execute


class DivergenceError(RuntimeError):
    """The pipeline's retired stream departed from the golden model."""

    def __init__(self, message, field=None, expected=None, actual=None,
                 commit_index=None, cycle=None, golden_state=None,
                 dut_state=None):
        super().__init__(message)
        self.field = field
        #: golden-side :class:`CommitRecord` dict (None for final-state
        #: divergences, which have no single offending commit)
        self.expected = expected
        self.actual = actual
        self.commit_index = commit_index
        self.cycle = cycle
        self.golden_state = golden_state
        self.dut_state = dut_state

    def detail(self):
        """Deterministic JSON-safe description (bundle `failure.detail`)."""
        return {
            "field": self.field,
            "expected": self.expected,
            "actual": self.actual,
            "commit_index": self.commit_index,
            "cycle": self.cycle,
            "golden_state": self.golden_state,
            "dut_state": self.dut_state,
            "message": str(self),
        }

    def __reduce__(self):
        return (_rebuild_divergence, (str(self), self.field, self.expected,
                                      self.actual, self.commit_index,
                                      self.cycle, self.golden_state,
                                      self.dut_state))


def _rebuild_divergence(message, field, expected, actual, commit_index,
                        cycle, golden_state, dut_state):
    return DivergenceError(message, field, expected, actual, commit_index,
                           cycle, golden_state, dut_state)


class LockstepChecker:
    """Commit-by-commit comparison of a core against its golden twin.

    Parameters
    ----------
    core:
        An :class:`~repro.uarch.pipeline.OoOCore`; the checker installs
        itself as its ``commit_listener``.
    golden:
        The :class:`~repro.verify.golden.GoldenModel` twin.
    corruption:
        Optional :class:`~repro.verify.chaos.CorruptionHook` perturbing
        the DUT-side commit stream — the test-only hook that proves the
        checker catches silent corruption end to end.
    """

    def __init__(self, core, golden, corruption=None):
        self.core = core
        self.golden = golden
        #: the DUT's architectural state, rebuilt in *commit order* with
        #: the same semantics the golden model applies in *trace order*
        self.state = ArchState(core.config.n_arch_regs)
        self.corruption = corruption
        self.commits = 0
        core.commit_listener = self.on_commit

    # ------------------------------------------------------------------
    def on_commit(self, inst):
        """Compare one retired instruction against the golden stream."""
        if self.corruption is not None:
            records = self.corruption.apply(self.state, inst)
        else:
            records = (execute(self.state, inst),)
        for dut in records:
            golden = self.golden.next_record()
            index = self.commits
            self.commits = index + 1
            if golden is None:
                self._raise("stream", None, dut, index)
            for field in RECORD_FIELDS:
                if getattr(golden, field) != getattr(dut, field):
                    self._raise(field, golden, dut, index)

    def _raise(self, field, golden, dut, index):
        expected = golden.to_dict() if golden is not None else None
        actual = dut.to_dict() if dut is not None else None
        raise DivergenceError(
            f"architectural divergence at commit #{index} "
            f"(cycle {self.core.cycle}): field {field!r} — "
            f"golden={expected and expected.get(field)!r} "
            f"vs pipeline={actual and actual.get(field)!r}",
            field=field,
            expected=expected,
            actual=actual,
            commit_index=index,
            cycle=self.core.cycle,
            golden_state=self.golden.state.snapshot(),
            dut_state=self.state.snapshot(),
        )

    # ------------------------------------------------------------------
    def finalize(self):
        """End-of-run audit: final regfile + memory images must match.

        Trivially true when every per-commit record matched — kept as an
        independent invariant so a checker bug (or a corruption mode that
        slips through record comparison) still cannot certify a corrupt
        machine. Returns a small report dict on success.
        """
        golden_state = self.golden.state
        dut_state = self.state
        if golden_state.regs != dut_state.regs:
            bad = next(
                r for r, (g, d)
                in enumerate(zip(golden_state.regs, dut_state.regs))
                if g != d
            )
            raise DivergenceError(
                f"final register image mismatch at r{bad}: "
                f"golden={golden_state.regs[bad]:#x} "
                f"vs pipeline={dut_state.regs[bad]:#x}",
                field=f"final_reg_{bad}",
                commit_index=self.commits,
                cycle=self.core.cycle,
                golden_state=golden_state.snapshot(),
                dut_state=dut_state.snapshot(),
            )
        if golden_state.mem != dut_state.mem:
            words = set(golden_state.mem) | set(dut_state.mem)
            bad = min(
                w for w in words
                if golden_state.mem.get(w) != dut_state.mem.get(w)
            )
            raise DivergenceError(
                f"final memory image mismatch at word {bad:#x}: "
                f"golden={golden_state.mem.get(bad)!r} "
                f"vs pipeline={dut_state.mem.get(bad)!r}",
                field="final_mem",
                commit_index=self.commits,
                cycle=self.core.cycle,
                golden_state=golden_state.snapshot(),
                dut_state=dut_state.snapshot(),
            )
        return {
            "commits": self.commits,
            "digest": dut_state.digest(),
            "mem_words": len(dut_state.mem),
        }
