"""Runtime verification: golden-model lockstep checking and repro bundles.

The paper's central correctness claim — a predicted-faulty instruction
gets exactly one extra cycle in its faulty stage, only its dependents are
delayed, and architectural state is never corrupted — is enforced here at
runtime rather than assumed:

* :mod:`repro.verify.semantics` gives every synthetic instruction a
  deterministic functional meaning (values, memory), shared by the golden
  model and the pipeline's commit-order executor.
* :mod:`repro.verify.golden` executes the same program/trace with simple
  sequential in-order semantics — the reference machine.
* :mod:`repro.verify.lockstep` compares the out-of-order pipeline's
  retired stream against the golden model at every commit and the final
  architectural images at end of run, raising a structured
  :class:`~repro.verify.lockstep.DivergenceError` on any mismatch.
* :mod:`repro.verify.chaos` is the test-only silent-corruption hook used
  to prove the checker (and the bundle pipeline behind it) actually fires.
* :mod:`repro.verify.bundle` captures any divergence/hang into a
  delta-debugged, self-contained, replayable JSON repro bundle.
* :mod:`repro.verify.driver` wires all of it into single runs
  (:func:`~repro.verify.driver.run_verified`) and checked batch workers
  (:func:`~repro.verify.driver.run_checked`).
"""

from repro.verify.chaos import CorruptionHook
from repro.verify.golden import GoldenModel
from repro.verify.lockstep import DivergenceError, LockstepChecker
from repro.verify.semantics import ArchState, CommitRecord, execute, mix64

__all__ = [
    "ArchState",
    "CommitRecord",
    "CorruptionHook",
    "DivergenceError",
    "GoldenModel",
    "LockstepChecker",
    "execute",
    "mix64",
]
