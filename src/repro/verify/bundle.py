"""Self-contained, replayable repro bundles for verification failures.

When a verified run diverges from the golden model (or the watchdog
declares a hang), the raw failing configuration is often huge: tens of
thousands of instructions, warmup, a full storm schedule. The bundle
capturer delta-debugs it down — drop warmup, binary-search the smallest
failing instruction window, strip storm knobs that aren't needed — and
writes a single JSON file holding everything required to reproduce the
failure on any machine with the same model version:

```
{
  "format": 1,
  "model_version": "<source digest>",
  "failure":   {"kind": "divergence"|"hang"|..., "detail": {...}},
  "spec":      {...original RunSpec...},
  "minimized": {"spec": {...}, "failure": {...}},
  "trials":    [{"n_instructions": ..., "warmup": ..., "reproduced": ...}]
}
```

``repro-timing verify replay-bundle <file>`` re-runs the minimized spec
and compares the observed failure against the recorded one field by
field; because runs are deterministic in their spec, a healthy bundle
replays **byte-identically**.

Bundles record only the declarative spec fields; runs with a custom
``CoreConfig``/``TEPConfig`` object are captured un-minimized with the
default-config caveat noted in ``docs/robustness.md``.
"""

import json
import os
import sys

from repro.harness.runner import RunSpec


BUNDLE_FORMAT = 1

#: Probe budget for delta-debugging one failure (each trial is a run of
#: at most the original window; minimization must never dominate the
#: campaign it serves).
MAX_TRIALS = 24


class RunFailure:
    """Result object standing in for a SimResult when a run failed.

    Batch engines and the campaign executor detect it via the
    ``is_failure`` attribute (``getattr`` probe — no import needed),
    journal the bundle path, and move on. Never stored in the result
    cache.
    """

    is_failure = True

    def __init__(self, spec, kind, detail, bundle_path=None):
        self.spec = spec
        #: "divergence", "hang", or the exception class name
        self.kind = kind
        #: JSON-safe structured description of the failure
        self.detail = detail
        #: path of the written repro bundle (None if capture failed)
        self.bundle_path = bundle_path

    def __repr__(self):
        return (
            f"RunFailure({self.spec!r}, kind={self.kind!r}, "
            f"bundle={self.bundle_path!r})"
        )


def failure_signature(exc):
    """``(kind, JSON-safe detail)`` of a verification failure."""
    from repro.uarch.pipeline import SimulationHangError
    from repro.verify.lockstep import DivergenceError

    if isinstance(exc, DivergenceError):
        return "divergence", exc.detail()
    if isinstance(exc, SimulationHangError):
        return "hang", exc.detail()
    return type(exc).__name__, {"message": str(exc)}


# ----------------------------------------------------------------------
# spec (de)serialization — the declarative subset that bundles carry
# ----------------------------------------------------------------------
def spec_to_dict(spec):
    """JSON form of a RunSpec's declarative fields."""
    storm = getattr(spec, "storm", None)
    return {
        "benchmark": spec.benchmark,
        "scheme": getattr(spec.scheme, "name", str(spec.scheme)),
        "vdd": spec.vdd,
        "n_instructions": spec.n_instructions,
        "warmup": spec.warmup,
        "seed": spec.seed,
        "predictor": spec.predictor,
        "overclock": spec.overclock,
        "verify": bool(getattr(spec, "verify", False)),
        "storm": storm.to_dict() if storm is not None else None,
        "corruption": getattr(spec, "corruption", None),
    }


def spec_from_dict(data):
    """Rebuild a runnable RunSpec from its bundle form."""
    from repro.core.schemes import make_scheme
    from repro.faults.storm import StormConfig

    storm = data.get("storm")
    return RunSpec(
        data["benchmark"],
        # back to the enum so the rebuilt spec's canonical form (and
        # cache key) is identical to the captured one's
        make_scheme(data["scheme"]).kind,
        data["vdd"],
        data["n_instructions"],
        data["warmup"],
        data["seed"],
        predictor=data.get("predictor", "tep"),
        overclock=data.get("overclock", 1.0),
        storm=StormConfig.from_dict(storm) if storm else None,
        verify=data.get("verify", False),
        corruption=data.get("corruption"),
    )


def _clone(spec, **overrides):
    """A runnable copy of ``spec`` with declarative fields overridden."""
    data = spec_to_dict(spec)
    data.update(overrides)
    clone = spec_from_dict(data)
    clone.config = spec.config
    clone.tep_config = spec.tep_config
    return clone


def _probe(spec):
    """Run ``spec``; its failure signature, or None when it passes."""
    from repro.harness.runner import run_one
    from repro.uarch.pipeline import SimulationHangError
    from repro.verify.lockstep import DivergenceError

    try:
        run_one(spec)
    except (DivergenceError, SimulationHangError) as exc:
        return failure_signature(exc)
    return None


# ----------------------------------------------------------------------
# delta-debug minimization
# ----------------------------------------------------------------------
def minimize_failure(spec, kind, detail=None, max_trials=MAX_TRIALS):
    """Shrink ``spec`` while it still fails with the same ``kind``.

    Strategy, in order of payoff: drop warmup entirely; binary-search
    the smallest failing ``n_instructions``; zero storm knobs one at a
    time. Divergence failures seed the search at the recorded commit
    index when available, so most bundles converge in a handful of
    probes.

    Returns ``(min_spec, (kind, detail), trials)`` where the signature
    is the one observed on the *minimized* spec (identical to what a
    replay of the bundle must reproduce).
    """
    trials = []
    best = _clone(spec)
    best_sig = None

    def attempt(candidate):
        nonlocal best, best_sig
        sig = _probe(candidate)
        ok = sig is not None and sig[0] == kind
        trials.append({
            "n_instructions": candidate.n_instructions,
            "warmup": candidate.warmup,
            "storm": spec_to_dict(candidate)["storm"],
            "reproduced": ok,
        })
        if ok:
            best, best_sig = candidate, sig
        return ok

    if spec.warmup:
        attempt(_clone(best, warmup=0, n_instructions=(
            spec.n_instructions + spec.warmup
        )))
    if detail is not None:
        # a divergence at commit #i needs only ~i+1 commits to re-fire
        hint = detail.get("commit_index")
        if isinstance(hint, int) and 1 <= hint + 2 < best.n_instructions:
            attempt(_clone(best, n_instructions=hint + 2))
    lo, hi = 1, best.n_instructions
    while lo < hi and len(trials) < max_trials:
        mid = (lo + hi) // 2
        if attempt(_clone(best, n_instructions=mid)):
            hi = best.n_instructions
        else:
            lo = mid + 1
    storm = getattr(best, "storm", None)
    if storm is not None:
        for knob in ("sensor_flap", "tep_drop", "tep_fabricate",
                     "wild_frac"):
            if len(trials) >= max_trials:
                break
            if not getattr(storm, knob):
                continue
            reduced = storm.to_dict()
            reduced[knob] = 0.0
            if attempt(_clone(best, storm=reduced)):
                storm = best.storm
    if best_sig is None:
        # nothing shrank (or no probe reproduced): certify the original
        sig = _probe(best)
        if sig is not None and sig[0] == kind:
            best_sig = sig
    return best, best_sig, trials


# ----------------------------------------------------------------------
# capture + replay
# ----------------------------------------------------------------------
def _bundle_dir(repro_dir):
    if repro_dir:
        return str(repro_dir)
    return os.environ.get("REPRO_BUNDLE_DIR") or os.path.join(
        os.getcwd(), "repro_bundles"
    )


def write_bundle(bundle, repro_dir, spec):
    """Write ``bundle`` as JSON; return its path."""
    directory = _bundle_dir(repro_dir)
    os.makedirs(directory, exist_ok=True)
    name = f"bundle-{spec.key()[:16]}.json"
    path = os.path.join(directory, name)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def capture_failure(spec, exc, repro_dir=None, minimize=True):
    """Turn a verification failure into a RunFailure with a repro bundle.

    Bundle capture is best-effort: if minimization or the write itself
    blows up, the failure is still reported (with ``bundle_path=None``)
    rather than masking the original problem with a capture crash.
    """
    from repro.harness.parallel import model_version

    kind, detail = failure_signature(exc)
    failure = RunFailure(spec, kind, detail)
    try:
        if minimize and spec.config is None and spec.tep_config is None:
            min_spec, min_sig, trials = minimize_failure(spec, kind, detail)
        else:
            min_spec, min_sig, trials = spec, None, []
        if min_sig is None:
            min_spec, min_sig = spec, (kind, detail)
        bundle = {
            "format": BUNDLE_FORMAT,
            "model_version": model_version(),
            "failure": {"kind": kind, "detail": detail},
            "spec": spec_to_dict(spec),
            "minimized": {
                "spec": spec_to_dict(min_spec),
                "failure": {"kind": min_sig[0], "detail": min_sig[1]},
            },
            "trials": trials,
        }
        failure.bundle_path = write_bundle(bundle, repro_dir, spec)
    except Exception as capture_exc:  # noqa: BLE001 — never mask the failure
        print(
            f"[verify] bundle capture failed for {spec!r}: {capture_exc!r}",
            file=sys.stderr,
        )
    return failure


def replay_bundle(path, minimized=True):
    """Re-run a bundle's spec and diff the observed failure vs recorded.

    Returns a report dict: ``reproduced`` (same failure kind) and
    ``identical`` (the full structured detail matches field for field —
    the byte-identical replay guarantee, valid while the bundle's
    ``model_version`` matches the current sources).
    """
    from repro.harness.parallel import model_version

    with open(path) as fh:
        bundle = json.load(fh)
    section = (
        bundle["minimized"] if minimized and bundle.get("minimized")
        else {"spec": bundle["spec"], "failure": bundle["failure"]}
    )
    spec = spec_from_dict(section["spec"])
    sig = _probe(spec)
    recorded = section["failure"]
    reproduced = sig is not None and sig[0] == recorded["kind"]
    identical = bool(reproduced and sig[1] == recorded["detail"])
    return {
        "bundle": str(path),
        "model_version": {
            "recorded": bundle.get("model_version"),
            "current": model_version(),
        },
        "spec": section["spec"],
        "recorded": recorded,
        "observed": (
            {"kind": sig[0], "detail": sig[1]} if sig is not None else None
        ),
        "reproduced": reproduced,
        "identical": identical,
    }
