"""Test-only silent-corruption hook on the DUT commit path.

The lockstep checker's reason to exist is catching silent architectural
corruption — but a correct simulator never produces any, so the checker
(and the minimization/replay machinery downstream of it) would otherwise
be dead code that nothing proves works. :class:`CorruptionHook` closes
that loop: it perturbs the *pipeline-side* commit stream in one of a few
physically-motivated ways, exactly once, at (or after) a chosen sequence
number:

* ``value_xor`` — the committed destination value is bit-flipped, as an
  untolerated timing fault latching a wrong result would;
* ``store_addr_xor`` — a store retires to the wrong 8-byte word;
* ``drop`` — a retirement is lost (the instruction vanishes
  architecturally);
* ``dup`` — a retirement is applied twice (a replay that also committed
  its first pass).

The hook is serializable, so a repro bundle that needed it to fail can
replay the identical corruption byte for byte.
"""

from repro.verify.semantics import execute

KINDS = ("value_xor", "store_addr_xor", "drop", "dup")

_DEFAULT_MASK = 0xDEAD_BEEF_0BAD_F00D


class CorruptionHook:
    """Perturb the first eligible commit at or after ``seq`` (one-shot)."""

    def __init__(self, kind, seq, mask=_DEFAULT_MASK):
        if kind not in KINDS:
            raise ValueError(f"unknown corruption kind {kind!r}; "
                             f"known: {KINDS}")
        self.kind = kind
        self.seq = int(seq)
        self.mask = int(mask)
        #: seq actually corrupted (None until the hook fires)
        self.fired_seq = None

    # ------------------------------------------------------------------
    def _eligible(self, inst):
        if self.kind == "value_xor":
            return inst.static.dest is not None and not inst.is_store
        if self.kind == "store_addr_xor":
            return inst.is_store
        return True  # drop / dup corrupt any retirement

    def apply(self, state, inst):
        """DUT-side commit records for ``inst`` (0, 1 or 2 of them)."""
        if self.fired_seq is not None or inst.seq < self.seq \
                or not self._eligible(inst):
            return (execute(state, inst),)
        self.fired_seq = inst.seq
        if self.kind == "drop":
            return ()
        if self.kind == "dup":
            record = execute(state, inst)
            return (record, record)
        if self.kind == "store_addr_xor":
            record = execute(state, inst)
            # the data lands in the wrong word: move it architecturally
            state.mem.pop(record.mem_addr >> 3, None)
            record.mem_addr ^= self.mask & ~0x7
            state.store(record.mem_addr, record.store_data)
            return (record,)
        # value_xor: corrupt the latched result *and* the machine state,
        # so dependents consume the corrupt value too
        record = execute(state, inst)
        record.value ^= self.mask
        state.regs[record.dest] = record.value
        return (record,)

    # ------------------------------------------------------------------
    def to_dict(self):
        return {"kind": self.kind, "seq": self.seq, "mask": self.mask}

    @classmethod
    def from_dict(cls, data):
        return cls(data["kind"], data["seq"], data.get("mask", _DEFAULT_MASK))

    def __repr__(self):
        return (
            f"CorruptionHook({self.kind!r}, seq>={self.seq}, "
            f"mask={self.mask:#x})"
        )
