"""Per-benchmark statistical profiles.

Each :class:`BenchmarkProfile` captures the program statistics that drive
the scheduling study: instruction mix, dependency structure (the ILP/slack
lever), memory working sets (the stall lever), branch bias (the front-end
lever), dependence fan-out (the criticality lever for CDS), and the
Table 1 fault-rate targets used by the fault injector.

The parameters were calibrated so that fault-free IPC on the Core-1
configuration approximates Table 1 of the paper; see
``tests/harness/test_calibration.py``.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark workload.

    Attributes
    ----------
    name:
        Benchmark name (SPEC CPU2006 short name).
    n_blocks:
        Static code size in basic blocks.
    block_len:
        Mean instructions per basic block (incl. the terminating branch).
    mix:
        Relative weights of non-branch op classes:
        keys ``ialu``, ``imul``, ``idiv``, ``fpu``, ``load``, ``store``.
    imm_frac:
        Probability that a source operand is an immediate (no register
        dependency) — the main instruction-level-parallelism lever.
    dep_geom_p:
        Geometric-distribution parameter for register dependency distance:
        high values chain instructions tightly (low ILP).
    fanout_frac:
        Fraction of blocks restructured as one producer feeding the rest of
        the block — creates the high-dependent-count instructions that the
        CDS policy targets.
    l1_ws / l2_ws / mem_ws:
        Probability that a static memory instruction's region is
        L1-resident / L2-resident / beyond L2 (streaming or huge).
    branch_bias:
        How biased conditional branches are (close to 1.0 = predictable).
    loop_trip_p:
        Probability a loop back-edge is taken (mean trip count lever).
    fr_low / fr_high:
        Target dynamic fault rates at 1.04V / 0.97V (Table 1).
    ipc_paper:
        Fault-free IPC reported by the paper (calibration target).
    """

    name: str
    n_blocks: int = 64
    block_len: float = 6.0
    mix: dict = field(
        default_factory=lambda: {
            "ialu": 0.55,
            "imul": 0.03,
            "idiv": 0.005,
            "fpu": 0.0,
            "load": 0.28,
            "store": 0.135,
        }
    )
    imm_frac: float = 0.4
    dep_geom_p: float = 0.5
    fanout_frac: float = 0.1
    l1_ws: float = 0.9
    l2_ws: float = 0.08
    mem_ws: float = 0.02
    branch_bias: float = 0.9
    loop_trip_p: float = 0.9
    fr_low: float = 0.02
    fr_high: float = 0.08
    ipc_paper: float = 1.0

    def __post_init__(self):
        total = sum(self.mix.values())
        if total <= 0:
            raise ValueError("mix weights must be positive")
        ws = self.l1_ws + self.l2_ws + self.mem_ws
        if abs(ws - 1.0) > 1e-6:
            raise ValueError(f"working-set fractions sum to {ws}, not 1")
        if not 0 < self.fr_low <= self.fr_high < 0.5:
            raise ValueError("fault-rate targets out of range")

    @property
    def normalized_mix(self):
        """Mix weights normalized to sum to 1."""
        total = sum(self.mix.values())
        return {k: v / total for k, v in self.mix.items()}


def _p(name, **kw):
    return BenchmarkProfile(name=name, **kw)


#: SPEC CPU2006 profiles, calibrated to the paper's Table 1.
SPEC2006_PROFILES = {
    p.name: p
    for p in [
        _p(
            "astar",
            n_blocks=72,
            block_len=5.0,
            mix={"ialu": 0.5, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.34, "store": 0.15},
            imm_frac=0.37,
            dep_geom_p=0.5,
            fanout_frac=0.08,
            l1_ws=0.76, l2_ws=0.23, mem_ws=0.01,
            branch_bias=0.86,
            fr_low=0.0201, fr_high=0.0674, ipc_paper=0.69,
        ),
        _p(
            "bzip2",
            n_blocks=56,
            block_len=6.5,
            mix={"ialu": 0.62, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.25, "store": 0.12},
            imm_frac=0.35,
            dep_geom_p=0.46,
            fanout_frac=0.12,
            l1_ws=0.9, l2_ws=0.09, mem_ws=0.01,
            branch_bias=0.9,
            fr_low=0.0224, fr_high=0.0892, ipc_paper=1.48,
        ),
        _p(
            "gcc",
            n_blocks=160,
            block_len=5.5,
            mix={"ialu": 0.58, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.27, "store": 0.14},
            imm_frac=0.5,
            dep_geom_p=0.42,
            fanout_frac=0.1,
            l1_ws=0.92, l2_ws=0.08, mem_ws=0.0,
            branch_bias=0.93,
            fr_low=0.015, fr_high=0.0843, ipc_paper=1.34,
        ),
        _p(
            "gobmk",
            n_blocks=120,
            block_len=6.0,
            mix={"ialu": 0.63, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.24, "store": 0.12},
            imm_frac=0.82,
            dep_geom_p=0.22,
            fanout_frac=0.08,
            l1_ws=0.952, l2_ws=0.048, mem_ws=0.0,
            branch_bias=0.96,
            fr_low=0.0216, fr_high=0.0864, ipc_paper=1.68,
        ),
        _p(
            "libquantum",
            n_blocks=24,
            block_len=12.0,
            mix={"ialu": 0.52, "imul": 0.02, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.3, "store": 0.16},
            imm_frac=0.36,
            dep_geom_p=0.66,
            fanout_frac=0.55,
            l1_ws=0.64, l2_ws=0.35, mem_ws=0.01,
            branch_bias=0.97,
            loop_trip_p=0.97,
            fr_low=0.021, fr_high=0.1054, ipc_paper=0.51,
        ),
        _p(
            "mcf",
            n_blocks=40,
            block_len=5.0,
            mix={"ialu": 0.45, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.38, "store": 0.16},
            imm_frac=0.33,
            dep_geom_p=0.62,
            fanout_frac=0.06,
            l1_ws=0.595, l2_ws=0.38, mem_ws=0.025,
            branch_bias=0.85,
            fr_low=0.0173, fr_high=0.0645, ipc_paper=0.34,
        ),
        _p(
            "perlbench",
            n_blocks=140,
            block_len=5.5,
            mix={"ialu": 0.57, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.28, "store": 0.14},
            imm_frac=0.55,
            dep_geom_p=0.4,
            fanout_frac=0.1,
            l1_ws=0.93, l2_ws=0.065, mem_ws=0.005,
            branch_bias=0.92,
            fr_low=0.018, fr_high=0.0721, ipc_paper=1.31,
        ),
        _p(
            "povray",
            n_blocks=80,
            block_len=7.5,
            mix={"ialu": 0.47, "imul": 0.03, "idiv": 0.003, "fpu": 0.14,
                 "load": 0.24, "store": 0.117},
            imm_frac=0.55,
            dep_geom_p=0.32,
            fanout_frac=0.08,
            l1_ws=0.955, l2_ws=0.045, mem_ws=0.0,
            branch_bias=0.98,
            fr_low=0.0157, fr_high=0.0631, ipc_paper=1.94,
        ),
        _p(
            "sjeng",
            n_blocks=96,
            block_len=7.0,
            mix={"ialu": 0.64, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.23, "store": 0.12},
            imm_frac=0.85,
            dep_geom_p=0.15,
            fanout_frac=0.08,
            l1_ws=0.945, l2_ws=0.055, mem_ws=0.0,
            branch_bias=0.98,
            fr_low=0.0229, fr_high=0.0919, ipc_paper=1.93,
        ),
        _p(
            "sphinx3",
            n_blocks=72,
            block_len=6.0,
            mix={"ialu": 0.45, "imul": 0.02, "idiv": 0.0, "fpu": 0.12,
                 "load": 0.28, "store": 0.13},
            imm_frac=0.31,
            dep_geom_p=0.52,
            fanout_frac=0.1,
            l1_ws=0.935, l2_ws=0.065, mem_ws=0.0,
            branch_bias=0.95,
            fr_low=0.0173, fr_high=0.0695, ipc_paper=1.30,
        ),
        _p(
            "tonto",
            n_blocks=88,
            block_len=6.5,
            mix={"ialu": 0.4, "imul": 0.02, "idiv": 0.002, "fpu": 0.2,
                 "load": 0.25, "store": 0.128},
            imm_frac=0.41,
            dep_geom_p=0.46,
            fanout_frac=0.1,
            l1_ws=0.94, l2_ws=0.06, mem_ws=0.0,
            branch_bias=0.95,
            fr_low=0.0139, fr_high=0.0559, ipc_paper=1.41,
        ),
        _p(
            "xalancbmk",
            n_blocks=150,
            block_len=5.0,
            mix={"ialu": 0.47, "imul": 0.01, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.36, "store": 0.16},
            imm_frac=0.38,
            dep_geom_p=0.6,
            fanout_frac=0.06,
            l1_ws=0.62, l2_ws=0.38, mem_ws=0.0,
            branch_bias=0.84,
            fr_low=0.0199, fr_high=0.0795, ipc_paper=0.51,
        ),
    ]
}


def profile_names(suite="spec2006"):
    """Return benchmark names of a suite in the paper's presentation order."""
    if suite != "spec2006":
        raise KeyError(f"unknown suite {suite!r}")
    return list(SPEC2006_PROFILES)


def get_profile(name):
    """Look up a benchmark profile by name.

    Resolves SPEC CPU2006 profiles first, then the synthetic
    microbenchmark kernels of :mod:`repro.workloads.microbench`.
    """
    if name in SPEC2006_PROFILES:
        return SPEC2006_PROFILES[name]
    from repro.workloads.microbench import MICROBENCH_PROFILES

    if name in MICROBENCH_PROFILES:
        return MICROBENCH_PROFILES[name]
    known = sorted(SPEC2006_PROFILES) + sorted(MICROBENCH_PROFILES)
    raise KeyError(f"unknown benchmark {name!r}; known: {known}")
