"""Dynamic instruction trace generation.

A :class:`TraceGenerator` walks a program's CFG and emits
:class:`~repro.isa.instruction.DynInst` objects in fetch order. The
generator is an infinite iterator (programs loop); the pipeline decides
when to stop (committed-instruction budget).
"""

import random

from repro.isa.instruction import DynInst


class TraceGenerator:
    """Iterator of dynamic instructions over a program's CFG walk."""

    def __init__(self, program, seed=0):
        self.program = program
        self._rng = random.Random(seed)
        self._seq = 0
        self._block = program.blocks[program.entry]
        self._pos = 0
        self._exec_counts = {}  # per-trace instance counters (determinism)
        self.emitted = 0

    def _choose_successor(self, block):
        if not block.successors:
            return None
        r = self._rng.random()
        cumulative = 0.0
        chosen = block.successors[-1][0]
        for succ, prob in block.successors:
            cumulative += prob
            if r < cumulative:
                chosen = succ
                break
        return chosen

    def __iter__(self):
        return self

    def __next__(self):
        block = self._block
        if block is None:
            raise StopIteration
        insts = block.insts
        pos = self._pos
        static = insts[pos]
        taken = False
        if pos + 1 != len(insts):
            self._pos = pos + 1
        else:
            # block terminator: pick the successor now so the branch
            # outcome is part of the dynamic instance
            succ = self._choose_successor(block)
            if succ is None:
                self._block = None
            else:
                target = self.program.blocks[succ]
                # taken iff control does not fall through to the next PC
                taken = target.insts[0].pc != static.pc + 4
                self._block = target
            self._pos = 0
        # per-instance address computation (inlined address_at): only
        # memory ops need the instance counter, so only they maintain one
        if static.is_mem:
            pc = static.pc
            counts = self._exec_counts
            k = counts.get(pc, 0)
            counts[pc] = k + 1
            region = static.mem_region
            offset = (k * static.mem_stride) % region if region else 0
            mem_addr = static.mem_base + offset
        else:
            mem_addr = 0
        static.exec_count += 1  # aggregate profile statistic only
        inst = DynInst(self._seq, static, mem_addr, taken)
        self._seq += 1
        self.emitted += 1
        return inst
