"""Synthetic program synthesis from a benchmark profile.

``build_program`` turns a :class:`~repro.workloads.profiles.BenchmarkProfile`
into a concrete CFG of basic blocks with static instructions. The generator
is deterministic given (profile, seed).

Program structure: the blocks are partitioned into loops; loop tails take
their back-edge with the profile's ``loop_trip_p`` (PC recurrence for the
TEP), interior blocks fall through or skip (conditional branch behaviour).
Register dataflow uses a rolling recent-producer window with geometric
dependency distances; ``fanout_frac`` blocks are restructured around a
single producer to create high-dependent-count instructions (the CDS
criticality target). Memory instructions get strided address streams over
regions sized for L1-resident, L2-resident or streaming behaviour.
"""

import random

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program

_PC_BASE = 0x1000

_OP_BY_NAME = {
    "ialu": OpClass.IALU,
    "imul": OpClass.IMUL,
    "idiv": OpClass.IDIV,
    "fpu": OpClass.FPU,
    "load": OpClass.LOAD,
    "store": OpClass.STORE,
}

# Address-space layout for the three working-set classes (bytes).
_L1_POOL = (0x0000_0000, 24 * 1024)            # shared, L1-resident
_L2_POOL = (0x0100_0000, 6 * 1024 * 1024)      # spread, L2-resident
_MEM_POOL = (0x4000_0000, 1 << 30)             # streaming, beyond L2

_L1_REGION, _L1_STRIDE = 2048, 8
# L2-resident: ~51 distinct lines per static instruction; a handful of such
# statics exceed L1 capacity together but warm the L2 within a short run.
_L2_REGION, _L2_STRIDE = 16 * 1024, 320
# streaming: never wraps within a run, every access misses L1 and L2
_MEM_REGION, _MEM_STRIDE = 1 << 28, 128


class _Synth:
    """Mutable state shared across one program synthesis.

    Two independent generators keep calibration tractable: ``rng`` drives
    program *structure* (block shapes, op classes, memory placement, CFG
    edges), while ``rng_data`` drives *dataflow* (register choices and
    dependency distances). Tuning a dataflow parameter such as ``imm_frac``
    therefore does not reshuffle the program's structure.
    """

    def __init__(self, profile, seed):
        self.profile = profile
        self.rng = random.Random(seed)
        self.rng_data = random.Random(seed ^ 0x9E3779B9)
        self.next_pc = _PC_BASE
        self.recent_dests = []
        self.op_names = list(profile.normalized_mix)
        self.op_weights = [profile.normalized_mix[n] for n in self.op_names]
        self._l1_cursor = 0
        self._l2_cursor = 0
        self._mem_cursor = 0

    def alloc_pc(self):
        pc = self.next_pc
        self.next_pc += 4
        return pc

    def pick_op(self):
        return _OP_BY_NAME[
            self.rng.choices(self.op_names, weights=self.op_weights)[0]
        ]

    def pick_dest(self):
        dest = self.rng_data.randrange(1, 32)
        self.recent_dests.append(dest)
        if len(self.recent_dests) > 64:
            self.recent_dests.pop(0)
        return dest

    def pick_src(self):
        """One source register via geometric dependency distance, or None."""
        rng = self.rng_data
        if rng.random() < self.profile.imm_frac or not self.recent_dests:
            return None
        p = self.profile.dep_geom_p
        distance = 1
        while rng.random() > p and distance < len(self.recent_dests):
            distance += 1
        return self.recent_dests[-distance]

    def mem_params(self):
        """Assign (base, stride, region) per the working-set split."""
        r = self.rng.random()
        pr = self.profile
        if r < pr.l1_ws:
            base0, span = _L1_POOL
            region, stride = _L1_REGION, _L1_STRIDE
            base = base0 + (self._l1_cursor % max(span - region, 1))
            self._l1_cursor += 1024
        elif r < pr.l1_ws + pr.l2_ws:
            base0, span = _L2_POOL
            region, stride = _L2_REGION, _L2_STRIDE
            base = base0 + (self._l2_cursor % max(span - region, 1))
            self._l2_cursor += 64 * 1024
        else:
            base0, span = _MEM_POOL
            region, stride = _MEM_REGION, _MEM_STRIDE
            base = base0 + (self._mem_cursor % max(span - region, 1))
            self._mem_cursor += 1 << 20
        return base, stride, region


def _make_inst(synth, op, fanout_src=None):
    """Create one non-branch static instruction."""
    n_srcs = 2 if op in (OpClass.IALU, OpClass.IMUL, OpClass.IDIV, OpClass.FPU) else 1
    srcs = []
    if fanout_src is not None:
        srcs.append(fanout_src)
        n_srcs -= 1
    for _ in range(n_srcs):
        s = synth.pick_src()
        if s is not None:
            srcs.append(s)
    if op is OpClass.STORE:
        dest = None
    else:
        dest = synth.pick_dest()
    kwargs = {}
    if op is OpClass.LOAD or op is OpClass.STORE:
        base, stride, region = synth.mem_params()
        kwargs = {"mem_base": base, "mem_stride": stride, "mem_region": region}
    return StaticInst(synth.alloc_pc(), op, dest=dest, srcs=srcs, **kwargs)


def _make_block(synth, index, successors, taken_prob):
    """Create one basic block ending in a branch."""
    profile = synth.profile
    rng = synth.rng
    body_len = max(
        1, round(rng.gauss(profile.block_len - 1.0, profile.block_len * 0.25))
    )
    insts = []
    fanout_src = None
    is_fanout = rng.random() < profile.fanout_frac
    for i in range(body_len):
        op = synth.pick_op()
        if is_fanout and i == 0:
            # the block's producer: everything after consumes its result
            inst = _make_inst(synth, OpClass.IALU if op is OpClass.STORE else op)
            fanout_src = inst.dest
            insts.append(inst)
            continue
        insts.append(_make_inst(synth, op, fanout_src=fanout_src))
    branch_src = synth.pick_src()
    branch = StaticInst(
        synth.alloc_pc(),
        OpClass.BRANCH,
        srcs=[s for s in (branch_src,) if s is not None],
        taken_prob=taken_prob,
    )
    insts.append(branch)
    return BasicBlock(index, insts, successors)


def _loop_partition(n_blocks, rng):
    """Partition block indices into contiguous loops of 3-9 blocks."""
    loops = []
    start = 0
    while start < n_blocks:
        size = min(rng.randint(3, 9), n_blocks - start)
        loops.append((start, start + size - 1))
        start += size
    return loops


def build_program(profile, seed=0):
    """Synthesize a :class:`~repro.isa.program.Program` from a profile."""
    synth = _Synth(profile, seed)
    rng = synth.rng
    n = profile.n_blocks
    loops = _loop_partition(n, rng)
    blocks = []
    for lo, hi in loops:
        # a minority of loops are hot (high trip count): these dominate
        # the dynamic PC mix, as inner loops do in real programs
        if rng.random() < 0.25:
            p_back = min(0.995, profile.loop_trip_p + 0.06)
        else:
            p_back = rng.uniform(0.55, profile.loop_trip_p)
        for i in range(lo, hi + 1):
            if i == hi:
                # loop tail: back-edge vs exit to the next loop (wrap at end)
                exit_to = (hi + 1) % n
                succ = [(exit_to, 1.0 - p_back), (lo, p_back)]
                taken_prob = p_back
            else:
                # interior: fall through, sometimes skip one block
                bias = profile.branch_bias
                p_fall = bias if rng.random() < 0.5 else 1.0 - bias
                skip_to = min(i + 2, hi)
                if skip_to == i + 1:
                    succ = [(i + 1, 1.0)]
                    taken_prob = 0.0
                else:
                    succ = [(i + 1, p_fall), (skip_to, 1.0 - p_fall)]
                    taken_prob = 1.0 - p_fall
            blocks.append(_make_block(synth, i, succ, taken_prob))
    return Program(blocks, entry=0, name=profile.name)


def estimate_pc_freq(program, seed=1, n_instructions=20000, skip=0):
    """Estimate dynamic PC frequencies by a CFG walk.

    Returns a dict PC -> fraction of dynamic instructions (sums to ~1)
    over the window ``[skip, skip + n_instructions)`` of the walk. The
    injector uses these weights to hit dynamic fault-rate targets; with
    the same seed as the run's trace and ``skip`` set to the warmup
    length, the weights describe exactly the measured window (synthetic
    programs can have long loop phases, so window alignment matters).
    """
    rng = random.Random(seed)
    # count whole-block visits and expand to per-PC counts at the end:
    # one dict update per visited block instead of one per instruction
    block_visits = {}
    partial = {}  # per-PC counts of the (at most one) block straddling skip
    emitted = 0
    limit = skip + n_instructions
    for block in program.walk(rng):
        n = len(block.insts)
        if emitted >= skip:
            idx = block.index
            block_visits[idx] = block_visits.get(idx, 0) + 1
        elif emitted + n > skip:
            for inst in block.insts[skip - emitted:]:
                partial[inst.pc] = partial.get(inst.pc, 0) + 1
        emitted += n
        if emitted >= limit:
            break
    counts = partial
    blocks = program.blocks
    for idx, visits in block_visits.items():
        for inst in blocks[idx].insts:
            pc = inst.pc
            counts[pc] = counts.get(pc, 0) + visits
    total = float(sum(counts.values()))
    if not total:
        raise ValueError("empty estimation window")
    return {pc: c / total for pc, c in counts.items()}
