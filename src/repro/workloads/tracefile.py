"""External instruction-trace import/export (JSON-lines format).

Users with real program traces (from a binary-instrumentation tool, an
architectural simulator, or hand-written kernels) can feed them to the
pipeline instead of the synthetic generator. The format is one JSON object
per line::

    {"pc": 4096, "op": "LOAD", "dest": 3, "srcs": [1], "addr": 256}
    {"pc": 4100, "op": "IALU", "dest": 4, "srcs": [3]}
    {"pc": 4104, "op": "BRANCH", "srcs": [4], "taken": true}

Fields: ``pc`` (int), ``op`` (an :class:`~repro.isa.opcodes.OpClass`
name), optional ``dest`` (int or null), ``srcs`` (list of ints), ``addr``
(loads/stores), ``taken`` (branches). Static instructions are deduplicated
by PC — all dynamic records of a PC must agree on op/dest/srcs.

``save_trace`` writes any iterable of DynInst back to the same format, so
synthetic traces can be exported, edited, and replayed.
"""

import json

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass


class TraceFormatError(ValueError):
    """Raised for malformed trace records."""


def _static_from_record(record, line_no):
    try:
        op = OpClass[record["op"]]
    except KeyError:
        raise TraceFormatError(
            f"line {line_no}: unknown op {record.get('op')!r}"
        ) from None
    dest = record.get("dest")
    srcs = tuple(record.get("srcs", ()))
    taken_prob = 0.5 if op is OpClass.BRANCH else 0.0
    return StaticInst(
        record["pc"], op, dest=dest, srcs=srcs, taken_prob=taken_prob
    )


class FileTrace:
    """An iterator of DynInst parsed from a JSON-lines trace file.

    The whole file is parsed eagerly (traces at our simulation scales are
    small); ``statics`` exposes the deduplicated static instructions so
    fault injectors can assign per-PC timing properties.
    """

    def __init__(self, path_or_lines):
        if isinstance(path_or_lines, (str, bytes)) or hasattr(
            path_or_lines, "__fspath__"
        ):
            with open(path_or_lines) as handle:
                lines = handle.readlines()
        else:
            lines = list(path_or_lines)
        self._statics = {}
        self._records = []
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"line {line_no}: {exc}") from None
            if "pc" not in record or "op" not in record:
                raise TraceFormatError(
                    f"line {line_no}: records need 'pc' and 'op'"
                )
            pc = record["pc"]
            static = self._statics.get(pc)
            if static is None:
                static = _static_from_record(record, line_no)
                self._statics[pc] = static
            else:
                if (static.op.name != record["op"]
                        or static.dest != record.get("dest")
                        or static.srcs != tuple(record.get("srcs", ()))):
                    raise TraceFormatError(
                        f"line {line_no}: PC {pc:#x} disagrees with an "
                        "earlier record of the same static instruction"
                    )
            self._records.append(record)
        self._pos = 0
        self._seq = 0

    @property
    def statics(self):
        """Deduplicated static instructions, in PC order."""
        return [self._statics[pc] for pc in sorted(self._statics)]

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return self

    def __next__(self):
        if self._pos >= len(self._records):
            raise StopIteration
        record = self._records[self._pos]
        self._pos += 1
        static = self._statics[record["pc"]]
        inst = DynInst(
            self._seq,
            static,
            mem_addr=record.get("addr", 0),
            taken=bool(record.get("taken", False)),
        )
        self._seq += 1
        static.exec_count += 1
        return inst

    def rewind(self):
        """Restart iteration from the first record (fresh seq numbers)."""
        self._pos = 0
        self._seq = 0


def load_trace(path):
    """Parse a trace file; returns a :class:`FileTrace`."""
    return FileTrace(path)


def save_trace(insts, path):
    """Write dynamic instructions to a JSON-lines trace file."""
    with open(path, "w") as handle:
        for inst in insts:
            record = {"pc": inst.pc, "op": inst.op.name}
            if inst.static.dest is not None:
                record["dest"] = inst.static.dest
            if inst.static.srcs:
                record["srcs"] = list(inst.static.srcs)
            if inst.is_mem:
                record["addr"] = inst.mem_addr
            if inst.is_branch:
                record["taken"] = bool(inst.taken)
            handle.write(json.dumps(record) + "\n")
    return path
