"""Synthetic microbenchmark kernels.

Beyond the SPEC-calibrated profiles, these idealized kernels isolate one
behaviour each — useful for studying how a scheduling scheme responds to a
*single* pressure source, and as clean inputs for new experiments:

* ``pointer_chase`` — serial loads, every load feeds the next address;
* ``streaming`` — high-bandwidth loads/stores over huge regions;
* ``dense_alu`` — wide independent integer work, no memory;
* ``branchy`` — short blocks, weakly biased branches;
* ``reduction`` — serial dependence chains spanning whole loop laps
  (independent laps overlap in the window, so IPC reflects the ratio of
  window size to chain length);
* ``fanout_kernel`` — single producers feeding many consumers (the CDS
  criticality pattern in its purest form).

They are ordinary :class:`~repro.workloads.profiles.BenchmarkProfile`
instances and work everywhere a SPEC profile does::

    run_one(RunSpec("pointer_chase", SchemeKind.ABS, vdd=0.97))
"""

from repro.workloads.profiles import BenchmarkProfile


def _m(name, **kw):
    defaults = dict(fr_low=0.02, fr_high=0.08, ipc_paper=1.0)
    defaults.update(kw)
    return BenchmarkProfile(name=name, **defaults)


#: Microbenchmark kernel registry.
MICROBENCH_PROFILES = {
    p.name: p
    for p in [
        _m(
            "pointer_chase",
            n_blocks=8,
            block_len=4.0,
            mix={"ialu": 0.25, "imul": 0.0, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.7, "store": 0.05},
            imm_frac=0.05,
            dep_geom_p=0.9,
            fanout_frac=0.0,
            l1_ws=0.3, l2_ws=0.5, mem_ws=0.2,
            branch_bias=0.98,
            ipc_paper=0.15,
        ),
        _m(
            "streaming",
            n_blocks=6,
            block_len=8.0,
            mix={"ialu": 0.3, "imul": 0.0, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.45, "store": 0.25},
            imm_frac=0.6,
            dep_geom_p=0.3,
            fanout_frac=0.0,
            l1_ws=0.1, l2_ws=0.2, mem_ws=0.7,
            branch_bias=0.99,
            loop_trip_p=0.97,
            ipc_paper=0.2,
        ),
        _m(
            "dense_alu",
            n_blocks=10,
            block_len=10.0,
            mix={"ialu": 0.95, "imul": 0.05, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.0, "store": 0.0},
            imm_frac=0.8,
            dep_geom_p=0.15,
            fanout_frac=0.0,
            l1_ws=1.0, l2_ws=0.0, mem_ws=0.0,
            branch_bias=0.99,
            ipc_paper=2.5,
        ),
        _m(
            "branchy",
            n_blocks=64,
            block_len=3.0,
            mix={"ialu": 0.8, "imul": 0.0, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.15, "store": 0.05},
            imm_frac=0.6,
            dep_geom_p=0.4,
            fanout_frac=0.0,
            l1_ws=1.0, l2_ws=0.0, mem_ws=0.0,
            branch_bias=0.65,
            ipc_paper=0.8,
        ),
        _m(
            "reduction",
            n_blocks=4,
            block_len=8.0,
            mix={"ialu": 0.9, "imul": 0.1, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.0, "store": 0.0},
            imm_frac=0.1,
            dep_geom_p=0.95,
            fanout_frac=0.0,
            l1_ws=1.0, l2_ws=0.0, mem_ws=0.0,
            branch_bias=0.99,
            ipc_paper=2.0,
        ),
        _m(
            "fanout_kernel",
            n_blocks=8,
            block_len=14.0,
            mix={"ialu": 0.85, "imul": 0.05, "idiv": 0.0, "fpu": 0.0,
                 "load": 0.05, "store": 0.05},
            imm_frac=0.5,
            dep_geom_p=0.5,
            fanout_frac=1.0,
            l1_ws=1.0, l2_ws=0.0, mem_ws=0.0,
            branch_bias=0.99,
            ipc_paper=1.5,
        ),
    ]
}


def microbench_names():
    """Kernel names in registry order."""
    return list(MICROBENCH_PROFILES)
