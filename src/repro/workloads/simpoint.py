"""SimPoint-style representative phase selection (Sherwood et al., PACT'01).

The paper simulates 1M-instruction SPEC phases selected by the SimPoint
toolset (Section 4.2). This module implements the same pipeline over our
synthetic programs: collect Basic Block Vectors (BBVs) per fixed-length
interval, reduce dimensionality with a random projection, cluster with
k-means, and pick the interval closest to each centroid as the phase
representative, weighted by cluster population.
"""

import random

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on bare installs
    np = None

from repro.workloads.trace import TraceGenerator


def _require_numpy():
    # phase selection is offline analysis, not simulation: on a bare
    # install it raises at use, never at import
    if np is None:
        raise ImportError(
            "SimPoint phase selection requires numpy; "
            "install the 'repro[numpy]' extra"
        )


class BBVCollector:
    """Collects per-interval basic-block vectors from a program walk."""

    def __init__(self, program, interval=1000, seed=0):
        _require_numpy()
        self.program = program
        self.interval = interval
        self._block_index = {
            id(b): i for i, b in enumerate(program.blocks)
        }
        self._trace = TraceGenerator(program, seed=seed)

    def collect(self, n_instructions):
        """Walk ``n_instructions`` and return the BBV matrix.

        Returns an (n_intervals, n_blocks) float array; each row counts
        instructions executed per basic block in that interval, normalized
        to sum to 1.
        """
        n_blocks = len(self.program.blocks)
        rows = []
        current = np.zeros(n_blocks)
        filled = 0
        pc_to_block = {}
        for bi, block in enumerate(self.program.blocks):
            for inst in block.insts:
                pc_to_block[inst.pc] = bi
        for _ in range(n_instructions):
            inst = next(self._trace)
            current[pc_to_block[inst.pc]] += 1
            filled += 1
            if filled == self.interval:
                total = current.sum()
                rows.append(current / total if total else current)
                current = np.zeros(n_blocks)
                filled = 0
        if not rows:
            raise ValueError("n_instructions smaller than one interval")
        return np.array(rows)


def random_projection(bbvs, n_dims=15, seed=0):
    """Project BBVs to ``n_dims`` dimensions (SimPoint uses 15)."""
    _require_numpy()
    bbvs = np.asarray(bbvs, dtype=float)
    if bbvs.shape[1] <= n_dims:
        return bbvs
    rng = np.random.default_rng(seed)
    projection = rng.uniform(-1.0, 1.0, size=(bbvs.shape[1], n_dims))
    return bbvs @ projection


def kmeans(points, k, seed=0, max_iters=100):
    """Plain k-means with k-means++ seeding.

    Returns (labels, centroids, inertia).
    """
    _require_numpy()
    points = np.asarray(points, dtype=float)
    n = len(points)
    if k <= 0 or k > n:
        raise ValueError(f"k={k} out of range for {n} points")
    rng = np.random.default_rng(seed)
    # k-means++ initialization
    centroids = [points[rng.integers(n)]]
    for _ in range(1, k):
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(points[rng.integers(n)])
            continue
        probs = d2 / total
        centroids.append(points[rng.choice(n, p=probs)])
    centroids = np.array(centroids)
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iters):
        dists = np.linalg.norm(points[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    inertia = float(
        np.sum((points - centroids[labels]) ** 2)
    )
    return labels, centroids, inertia


def choose_simpoints(bbvs, max_k=6, seed=0):
    """Pick representative intervals and weights from a BBV matrix.

    Runs k-means for k in 1..max_k, keeps the best k by the BIC-like
    score SimPoint uses (penalized inertia), and returns a list of
    (interval_index, weight) pairs, weights summing to 1.
    """
    projected = random_projection(bbvs, seed=seed)
    n = len(projected)
    best = None
    for k in range(1, min(max_k, n) + 1):
        labels, centroids, inertia = kmeans(projected, k, seed=seed)
        # BIC-like criterion: an extra cluster must buy a substantial
        # *relative* inertia drop, or the split is fitting noise
        score = inertia * (1.0 + 0.3 * (k - 1))
        if best is None or score < best[0]:
            best = (score, k, labels, centroids)
    _, k, labels, centroids = best
    simpoints = []
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if not len(members):
            continue
        dists = np.linalg.norm(projected[members] - centroids[j], axis=1)
        representative = int(members[np.argmin(dists)])
        simpoints.append((representative, len(members) / n))
    return simpoints
