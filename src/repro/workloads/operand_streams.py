"""Per-benchmark operand streams for the gate-level commonality study.

Section S1 drives four synthesized components with inputs extracted from
SPEC2000 integer benchmarks (bzip, gap, gzip, mcf, parser, vortex). The
paper's measurement is transition-based: for every dynamic instance of a
static PC, the *preceding instruction's* inputs set the circuit state, then
the instance's own inputs are applied, and the gates that change state form
the sensitized set.

We model each benchmark as a set of static PCs per component; a PC has a
base input pattern and a base predecessor pattern, and successive dynamic
instances perturb a benchmark-dependent number of low-order bits of both.
The ``locality`` parameter captures the paper's observation that e.g.
vortex "operates on a smaller range of input values" (hence its 96%
issue-queue commonality) while pointer-heavy codes perturb more bits.

Streams are lists of ``(pc, prev_vector, vector)`` triples consumed by
:func:`repro.circuits.sensitization.toggle_sets_per_pc`.
"""

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class OperandProfile:
    """Input-locality description of one SPEC2000int benchmark.

    ``locality`` in [0, 1]: the fraction of operand bits that stay fixed
    across dynamic instances of the same static instruction.
    """

    name: str
    locality: float
    n_pcs: int = 12
    instances_per_pc: int = 10

    def __post_init__(self):
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")


#: The six SPEC2000int benchmarks of Figure 7.
SPEC2000INT_PROFILES = {
    p.name: p
    for p in [
        OperandProfile("bzip", locality=0.87),
        OperandProfile("gap", locality=0.89),
        OperandProfile("gzip", locality=0.88),
        OperandProfile("mcf", locality=0.83),
        OperandProfile("parser", locality=0.85),
        OperandProfile("vortex", locality=0.96),
    ]
}


def spec2000_names():
    """Benchmark names in the paper's Figure 7 order."""
    return list(SPEC2000INT_PROFILES)


def _to_bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


class _PatternFamily:
    """A base bit pattern with occasional low-bit deviations.

    With probability ``locality`` a dynamic instance reuses the base value
    exactly (the recurring code path recomputes the same transition);
    otherwise it flips one to three low-order bits (the array-index /
    loop-counter drift the paper identifies as the residual variation).
    ``static=True`` fields (opcodes, valid masks) never vary.
    """

    def __init__(self, rng, width, locality, static=False, vary_span=2):
        self.rng = rng
        self.width = width
        self.locality = locality
        self.static = static
        self.vary_span = min(vary_span, width)
        self.base = rng.randrange(1 << width)

    def instance(self, deviate=False):
        """One dynamic-instance value (perturbed when ``deviate``)."""
        if self.static or not deviate:
            return self.base
        return self.base ^ (1 << self.rng.randrange(self.vary_span))


class StreamBuilder:
    """Builds interleaved (pc, prev_vector, vector) streams."""

    def __init__(self, profile, seed=0):
        self.profile = profile
        self.rng = random.Random(seed)

    def _interleave(self, per_pc):
        """Round-robin the per-PC instance lists into one stream."""
        stream = []
        for round_idx in range(self.profile.instances_per_pc):
            for pc, triples in per_pc.items():
                stream.append(triples[round_idx])
        return stream

    def _families(self, fields):
        """One pattern family per field, plus predecessor families.

        ``fields`` is a list of (width, static) pairs.
        """
        loc = self.profile.locality
        cur = [
            _PatternFamily(self.rng, w, loc, static=s, vary_span=span)
            for w, s, span in fields
        ]
        prev = [
            _PatternFamily(self.rng, w, loc, static=s, vary_span=span)
            for w, s, span in fields
        ]
        return cur, prev

    def _build(self, fields, encode):
        """Generic per-PC triple generation over field families.

        Deviation is decided once per dynamic instance: with probability
        ``locality`` the instance repeats the PC's base transition exactly;
        otherwise a single input field of the current vector (and, half the
        time, of the predecessor vector) is perturbed in its low bits.
        """
        rng = self.rng
        loc = self.profile.locality
        per_pc = {}
        for pc in range(self.profile.n_pcs):
            cur_fams, prev_fams = self._families(fields)
            variable = [i for i, (_, static, _) in enumerate(fields) if not static]
            triples = []
            for _ in range(self.profile.instances_per_pc):
                deviant = rng.random() >= loc
                dev_cur = rng.choice(variable) if deviant else -1
                dev_prev = (
                    rng.choice(variable)
                    if deviant and rng.random() < 0.5
                    else -1
                )
                prev_vec = encode(
                    [f.instance(i == dev_prev) for i, f in enumerate(prev_fams)]
                )
                cur_vec = encode(
                    [f.instance(i == dev_cur) for i, f in enumerate(cur_fams)]
                )
                triples.append((pc, prev_vec, cur_vec))
            per_pc[pc] = triples
        return self._interleave(per_pc)

    # -- per-component streams -----------------------------------------
    def alu_stream(self, width=32):
        """(a, b, op) vectors; the opcode is fixed per PC."""
        def encode(values):
            a, b, op = values
            return _to_bits(a, width) + _to_bits(b, width) + _to_bits(op, 3)

        # a is the walking operand; b (stride/constant) and op are static
        return self._build(
            [(width, False, 2), (width, True, 2), (3, True, 2)], encode
        )

    def agen_stream(self, width=32):
        """(base, offset): array-walk offsets vary in low bits only."""
        def encode(values):
            base, offset = values
            return _to_bits(base, width) + _to_bits(offset, width)

        return self._build([(width, True, 2), (width, False, 2)], encode)

    def select_stream(self, n_requests=32):
        """Request vectors: recurring patterns with sparse flips."""
        def encode(values):
            return _to_bits(values[0], n_requests)

        # a deviation can appear on any entry's request line
        return self._build([(n_requests, False, n_requests)], encode)

    def fwdcheck_stream(self, width=4, n_srcs=2, tag_bits=7):
        """Producer/consumer tags from recurring schedules."""
        n_tags = width + width * n_srcs

        def encode(values):
            tags, valids = values[:n_tags], values[n_tags]
            vec = []
            for t in tags[:width]:
                vec.extend(_to_bits(t, tag_bits))
            vec.extend(_to_bits(valids, width))
            for t in tags[width:]:
                vec.extend(_to_bits(t, tag_bits))
            return vec

        fields = [(tag_bits, False, 2)] * n_tags + [(width, True, 2)]
        return self._build(fields, encode)

    def stream_for(self, component):
        """Dispatch by component name used in Figure 7."""
        if component == "IssueQSelect":
            return self.select_stream()
        if component == "AGen":
            return self.agen_stream()
        if component == "ForwardCheck":
            return self.fwdcheck_stream()
        if component == "ALU":
            return self.alu_stream()
        raise KeyError(f"unknown component {component!r}")


#: Component presentation order of Figure 7.
FIG7_COMPONENTS = ("IssueQSelect", "AGen", "ForwardCheck", "ALU")
