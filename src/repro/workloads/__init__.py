"""Synthetic SPEC-like workloads.

The paper evaluates SPEC CPU2006 phases (selected with SimPoint) on a
full-system simulator, and SPEC2000int operand streams at the gate level.
Neither binary suite is redistributable, so this package generates
CFG-structured synthetic programs whose *statistics* — instruction mix,
dependency distances, working-set behaviour, branch bias, PC recurrence and
timing-fault rates — are calibrated per benchmark to the paper's Table 1.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC2006_PROFILES,
    get_profile,
    profile_names,
)
from repro.workloads.generator import build_program, estimate_pc_freq
from repro.workloads.trace import TraceGenerator
from repro.workloads.simpoint import (
    BBVCollector,
    choose_simpoints,
    kmeans,
    random_projection,
)

__all__ = [
    "BenchmarkProfile",
    "SPEC2006_PROFILES",
    "get_profile",
    "profile_names",
    "build_program",
    "estimate_pc_freq",
    "TraceGenerator",
    "BBVCollector",
    "kmeans",
    "random_projection",
    "choose_simpoints",
]
