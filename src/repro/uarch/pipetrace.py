"""Pipeline timeline visualization (gem5-O3-pipeview style, in ASCII).

Records retired instructions flowing through a core and renders a
per-instruction cycle timeline::

    seq  pc      op      |f....d.i.ec              |
    seq  pc      op      |f....d..i.ec             |

with ``f`` fetch, ``d`` dispatch, ``i`` issue (select), ``c`` complete
(writeback) and ``r`` retire. Useful for debugging scheduling behaviour
and for demonstrating the VTE mechanisms instruction by instruction.

:class:`PipeTracer` is a subscriber of the telemetry event bus
(:class:`~repro.telemetry.events.EventBus`): the pipeline emits one
``retire`` event per committed instruction and the tracer snapshots its
stage cycles from the payload. Attaching a tracer to a core without a
bus installs one, so the same recording feeds the ASCII renderer here
and the Perfetto/JSONL exporters in :mod:`repro.telemetry`.
"""


class PipeTraceRecord:
    """Stage cycles of one dynamic instruction."""

    __slots__ = ("seq", "pc", "op", "fetch", "dispatch", "issue",
                 "complete", "commit", "faulty", "predicted")

    def __init__(self, inst):
        self.seq = inst.seq
        self.pc = inst.pc
        self.op = inst.op.name
        self.fetch = inst.fetch_cycle
        self.dispatch = inst.dispatch_cycle
        self.issue = inst.issue_cycle
        self.complete = inst.complete_cycle
        self.commit = inst.commit_cycle
        self.faulty = inst.replayed or bool(inst.fault_stages)
        self.predicted = inst.pred_fault_stage is not None

    @classmethod
    def from_retire_event(cls, cycle, payload):
        """Build a record from a bus ``retire`` event payload."""
        record = cls.__new__(cls)
        record.seq = payload["seq"]
        record.pc = payload["pc"]
        record.op = payload["op"]
        record.fetch = payload["fetch"]
        record.dispatch = payload["dispatch"]
        record.issue = payload["issue"]
        record.complete = payload["complete"]
        record.commit = cycle
        record.faulty = payload["faulty"]
        record.predicted = payload["predicted"]
        return record


class PipeTracer:
    """Subscribes to a core's event bus and records every retirement.

    Usage::

        core = build_core(spec)
        tracer = PipeTracer(core)
        core.run(200)
        print(tracer.render())

    At most ``max_records`` instructions are kept; further retirements
    are *counted* (``dropped``) and the :meth:`render` header reports
    them, so a truncated trace never masquerades as a complete one.
    """

    def __init__(self, core, max_records=10_000, bus=None):
        self.max_records = max_records
        self.dropped = 0
        self._records = []
        if bus is None:
            bus = core.ebus
            if bus is None:
                from repro.telemetry.events import EventBus

                bus = EventBus()
                core.ebus = bus
        self.bus = bus
        bus.subscribe("retire", self._on_retire)

    def _on_retire(self, cycle, _name, payload):
        if len(self._records) >= self.max_records:
            self.dropped += 1
            return
        self._records.append(PipeTraceRecord.from_retire_event(cycle, payload))

    def records(self):
        """Snapshot of the recorded trace records, in commit order."""
        return list(self._records)

    def render(self, first_seq=0, count=32, width=80):
        """Render a timeline for ``count`` instructions from ``first_seq``."""
        records = [
            r for r in self._records
            if first_seq <= r.seq < first_seq + count and r.fetch >= 0
        ]
        return render_records(records, width=width, dropped=self.dropped)


_STAGES = (
    ("fetch", "f"),
    ("dispatch", "d"),
    ("issue", "i"),
    ("complete", "c"),
    ("commit", "r"),
)


def render_records(records, width=80, dropped=0):
    """Render timeline rows for a list of :class:`PipeTraceRecord`."""
    if not records:
        if dropped:
            return f"(no instructions recorded; {dropped} records dropped)"
        return "(no instructions recorded)"
    t0 = min(r.fetch for r in records if r.fetch >= 0)
    t_end = max(
        max(getattr(r, name) for name, _ in _STAGES) for r in records
    )
    span = min(t_end - t0 + 1, width)
    header = (
        f"cycles {t0}..{t0 + span - 1} "
        f"(f=fetch d=dispatch i=issue c=complete r=retire, * = faulty)"
    )
    if dropped:
        header += f" [{dropped} records dropped past the cap]"
    lines = [header]
    for r in records:
        row = ["."] * span
        for name, letter in _STAGES:
            cycle = getattr(r, name)
            if cycle >= 0 and 0 <= cycle - t0 < span:
                row[cycle - t0] = letter
        marker = "*" if r.faulty else (":" if r.predicted else " ")
        lines.append(
            f"{r.seq:>5} {r.pc:#08x} {r.op:<7}{marker}|{''.join(row)}|"
        )
    return "\n".join(lines)
