"""Pipeline timeline visualization (gem5-O3-pipeview style, in ASCII).

Records every dynamic instruction flowing through a core and renders a
per-instruction cycle timeline::

    seq  pc      op      |f....d.i.ec              |
    seq  pc      op      |f....d..i.ec             |

with ``f`` fetch, ``d`` dispatch, ``i`` issue (select), ``c`` complete
(writeback) and ``r`` retire. Useful for debugging scheduling behaviour
and for demonstrating the VTE mechanisms instruction by instruction.
"""


class PipeTraceRecord:
    """Stage cycles of one dynamic instruction."""

    __slots__ = ("seq", "pc", "op", "fetch", "dispatch", "issue",
                 "complete", "commit", "faulty", "predicted")

    def __init__(self, inst):
        self.seq = inst.seq
        self.pc = inst.pc
        self.op = inst.op.name
        self.fetch = inst.fetch_cycle
        self.dispatch = inst.dispatch_cycle
        self.issue = inst.issue_cycle
        self.complete = inst.complete_cycle
        self.commit = inst.commit_cycle
        self.faulty = bool(inst.fault_stages)
        self.predicted = inst.pred_fault_stage is not None


class PipeTracer:
    """Wraps a core's trace iterator and records every instruction.

    Usage::

        core = build_core(spec)
        tracer = PipeTracer(core)
        core.run(200)
        print(tracer.render())
    """

    def __init__(self, core, max_records=10_000):
        self.core = core
        self.max_records = max_records
        self._insts = []
        self._inner = core.trace
        core.trace = self

    def __iter__(self):
        return self

    def __next__(self):
        inst = next(self._inner)
        if len(self._insts) < self.max_records:
            self._insts.append(inst)
        return inst

    def records(self):
        """Snapshot the recorded instructions as trace records."""
        return [PipeTraceRecord(i) for i in self._insts]

    def render(self, first_seq=0, count=32, width=80):
        """Render a timeline for ``count`` instructions from ``first_seq``."""
        records = [
            r for r in self.records()
            if first_seq <= r.seq < first_seq + count and r.fetch >= 0
        ]
        return render_records(records, width=width)


_STAGES = (
    ("fetch", "f"),
    ("dispatch", "d"),
    ("issue", "i"),
    ("complete", "c"),
    ("commit", "r"),
)


def render_records(records, width=80):
    """Render timeline rows for a list of :class:`PipeTraceRecord`."""
    if not records:
        return "(no instructions recorded)"
    t0 = min(r.fetch for r in records if r.fetch >= 0)
    t_end = max(
        max(getattr(r, name) for name, _ in _STAGES) for r in records
    )
    span = min(t_end - t0 + 1, width)
    lines = [
        f"cycles {t0}..{t0 + span - 1} "
        f"(f=fetch d=dispatch i=issue c=complete r=retire, * = faulty)"
    ]
    for r in records:
        row = ["."] * span
        for name, letter in _STAGES:
            cycle = getattr(r, name)
            if cycle >= 0 and 0 <= cycle - t0 < span:
                row[cycle - t0] = letter
        marker = "*" if r.faulty else (":" if r.predicted else " ")
        lines.append(
            f"{r.seq:>5} {r.pc:#08x} {r.op:<7}{marker}|{''.join(row)}|"
        )
    return "\n".join(lines)
