"""Load/store queue with address CAM behaviour.

The LSQ provides the memory-stage semantics the paper's Section 3.3.4
builds on: loads and stores perform a CAM search over older entries, loads
forward from address-matching older stores, and loads are held until every
older store address is resolved (conservative disambiguation). Matching is
at 8-byte granularity.
"""

_MATCH_SHIFT = 3  # 8-byte match granularity


class _LsqEntry:
    __slots__ = ("inst", "resolve_cycle")

    def __init__(self, inst):
        self.inst = inst
        self.resolve_cycle = None  # cycle the address becomes known


class LoadStoreQueue:
    """A unified, program-ordered load/store queue."""

    def __init__(self, size):
        if size <= 0:
            raise ValueError("LSQ size must be positive")
        self.size = size
        self._entries = []  # program order (ascending seq)
        self._stores = []   # store entries only, same order (hot scans)
        self.cam_searches = 0
        self.forwards = 0

    def __len__(self):
        return len(self._entries)

    @property
    def full(self):
        """True when no entry can be allocated."""
        return len(self._entries) >= self.size

    def allocate(self, inst):
        """Allocate an entry at dispatch (program order maintained)."""
        if self.full:
            raise RuntimeError("LSQ overflow")
        entry = _LsqEntry(inst)
        self._entries.append(entry)
        if inst.is_store:
            self._stores.append(entry)

    def resolve_address(self, inst, cycle):
        """Record that ``inst``'s address generation completes at ``cycle``."""
        for entry in self._entries:
            if entry.inst is inst:
                entry.resolve_cycle = cycle
                return
        raise KeyError(f"instruction seq={inst.seq} not in LSQ")

    def older_stores_resolved(self, seq, cycle):
        """True when all stores older than ``seq`` have known addresses."""
        for entry in self._stores:
            if entry.inst.seq >= seq:
                break
            rc = entry.resolve_cycle
            if rc is None or rc > cycle:
                return False
        return True

    def older_stores_gate(self, seq):
        """Latest resolve cycle over stores older than ``seq``.

        Returns ``None`` while any older store address is unknown.
        Once every older store has a resolve cycle, their max is stable
        for the rest of the load's residence — stores allocate in program
        order (nothing older can arrive behind an in-queue load), a
        squash that removes an older store removes the load too, and a
        store retires only after its resolve cycle has passed — so the
        scheduler caches it per load (``DynInst.mem_gate``) and the
        steady-state disambiguation check is one integer compare.
        """
        gate = 0
        for entry in self._stores:
            if entry.inst.seq >= seq:
                break
            rc = entry.resolve_cycle
            if rc is None:
                return None
            if rc > gate:
                gate = rc
        return gate

    def search_forward(self, load_inst, cycle):
        """CAM search: youngest older store matching the load's address.

        Returns True when the load can forward from the store queue
        (counts as a forward); the search itself is always counted.
        """
        self.cam_searches += 1
        if not self._stores:
            return False
        target = load_inst.mem_addr >> _MATCH_SHIFT
        match = False
        for entry in self._stores:
            if entry.inst.seq >= load_inst.seq:
                break
            if (
                entry.resolve_cycle is not None
                and entry.resolve_cycle <= cycle
                and (entry.inst.mem_addr >> _MATCH_SHIFT) == target
            ):
                match = True  # keep scanning: youngest older match wins
        if match:
            self.forwards += 1
        return match

    def unresolved(self, seq, cycle):
        """True when the store with ``seq`` is in flight and unresolved."""
        for entry in self._entries:
            if entry.inst.seq == seq:
                return (
                    entry.resolve_cycle is None or entry.resolve_cycle > cycle
                )
        return False

    def issued_younger_loads_matching(self, store_inst, cycle):
        """Loads younger than ``store_inst`` that already performed their
        access to the same (8-byte) address — memory ordering violations
        when the load speculated past the store."""
        target = store_inst.mem_addr >> _MATCH_SHIFT
        hits = []
        for entry in self._entries:
            if entry.inst.seq <= store_inst.seq or not entry.inst.is_load:
                continue
            if (
                entry.resolve_cycle is not None
                and entry.resolve_cycle <= cycle
                and (entry.inst.mem_addr >> _MATCH_SHIFT) == target
            ):
                hits.append(entry.inst)
        return hits

    def retire(self, inst):
        """Remove a committing load/store."""
        for i, entry in enumerate(self._entries):
            if entry.inst is inst:
                del self._entries[i]
                if inst.is_store:
                    self._stores.remove(entry)
                return
        raise KeyError(f"instruction seq={inst.seq} not in LSQ")

    def squash_from(self, seq):
        """Drop all entries with sequence number >= ``seq``."""
        self._entries = [e for e in self._entries if e.inst.seq < seq]
        self._stores = [e for e in self._stores if e.inst.seq < seq]
