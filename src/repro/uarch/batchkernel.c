/* Compiled per-lane kernel for the batched lockstep engine.
 *
 * This is a transliteration of repro.uarch.batchcore.BatchEngine's
 * per-cycle semantics (itself a transliteration of OoOCore.run under the
 * campaign invariants).  It operates IN PLACE on the engine's own
 * structure-of-arrays numpy state: python builds the plan, tapes and
 * (N,)-shaped state arrays exactly as for the pure-numpy path, then
 * hands raw pointers here; results are read back from the same arrays
 * by BatchEngine._export, so the two paths share everything except the
 * inner loop.  Bit-identity against the scalar core is asserted by the
 * same tests that cover the numpy path.
 *
 * Lanes are advanced independently (the virtual-time/burn excision
 * makes each lane's trajectory self-contained); an evicted lane stops
 * immediately and is re-run by the caller on the scalar path.
 *
 * Compiled on demand by repro.uarch.batchkernel with the system C
 * compiler; when that fails the engine silently keeps the numpy loop.
 */

#include <stdint.h>
#include <string.h>

#define K_INF (((int64_t)1) << 60)
#define K_RING 4096
#define K_RMASK (K_RING - 1)

/* eviction codes, mapped to reason strings in python */
#define EV_WILD_MEM 1
#define EV_UNPADDED 2
#define EV_STREAM_END 3
#define EV_WATCHDOG 4
#define EV_FORCED 5

#define FRZ_NONE 0
#define FRZ_SLOT 1
#define FRZ_UNTIL 2
#define FRZ_BUSY 3
#define FRZ_WB 4

#define OP_IDIV 3
#define SEL_AGE 0
#define SEL_FFS 1
#define SEL_EXACT 2
#define TS_MASK 63

typedef struct {
    /* ---- plan (lane-invariant, read-only) ---- */
    const int64_t *op, *lat, *fu, *nsrcs, *has_dest;
    const uint8_t *is_load, *is_store, *is_mem, *cond_mispred;
    const int64_t *ts, *SM, *M, *HD;
    const int64_t *srank, *st_addr8, *addr8, *mem_addr;
    const int64_t *ws0, *ws1;
    const int64_t *g_start, *g_len, *g_branches;
    const uint8_t *g_mispred, *g_has_miss;
    const int64_t *g_miss_off, *miss_pcs;
    const int64_t *tepi, *tept;
    const int64_t *T_RR, *T_EX, *T_MEM, *T_WB, *T_HAS;
    const int8_t *T_FRZ;
    /* ---- per-lane rows (set up per lane before lane_run) ---- */
    const int16_t *tape;
    int8_t *pred;
    int64_t *cec, *wake, *iq_slot;
    int64_t *conv_start, *conv_len, *fu_ni;
    int16_t *wbring;
    int32_t *epring;
    int64_t *store_resolve, *premax;
    int64_t *tep_tag, *tep_cnt, *tep_stage;
    int64_t *l1d_tags, *l1d_cnt, *l2_tags, *l2_cnt;
    /* ---- per-lane scalars (copied in/out around lane_run) ---- */
    int64_t iq_len, frontier, pm_run, lsq_occ, free_cnt, cp, dp;
    int64_t blk_resolve_v, blk_fetch_abs, resume_v, g_ptr, burned;
    int64_t last_commit_real, force_at;
    int blk_active;
    /* stats */
    int64_t committed, fetched, dispatched, issued, replays;
    int64_t branch_mispredicts, branches, false_predictions, ep_stalls;
    int64_t slot_freezes, padded, wrong_path, regreads, regwrites;
    int64_t broadcasts, broadcast_occ, iq_occ, cam_searches, forwards;
    int64_t faults_total, faults_predicted, faults_unpredicted;
    int64_t *stage_faults, *fu_op_counts;
    int64_t l1d_hits, l1d_misses, l2_hits, l2_misses, mem_accesses;
    /* outputs */
    int64_t v_end;
    int evict_code;
    /* ---- params ---- */
    int64_t N, NS, NW, n_stores, width, depth, iq_size, rob_size;
    int64_t lsq_size, target, redirect_penalty, replay_recovery;
    int64_t recovery_bubbles, model_wrong_path, tep_probe, uses_vte;
    int64_t uses_ep_stall, tolerates, sel_mode, max_cycles, hang_cycles;
    int64_t NG, tep_n, tep_cmax;
    int64_t d_shift, d_mask, d_assoc, l2_shift, l2_mask, l2_assoc;
    int64_t lat_l1, lat_l2, lat_mem;
} Ctx;

/* ---- cache model: LRU list semantics on flat tag arrays ------------- */

static int64_t cache_probe(int64_t *tags, int64_t *cntp, int64_t assoc,
                           int64_t tag) {
    /* returns 1 on hit (with MRU update), 0 on miss (with fill) */
    int64_t cnt = *cntp;
    for (int64_t i = 0; i < cnt; i++) {
        if (tags[i] == tag) {
            if (i != cnt - 1) {
                memmove(tags + i, tags + i + 1,
                        (size_t)(cnt - 1 - i) * sizeof(int64_t));
                tags[cnt - 1] = tag;
            }
            return 1;
        }
    }
    if (cnt >= assoc) {
        memmove(tags, tags + 1, (size_t)(cnt - 1) * sizeof(int64_t));
        cnt--;
    }
    tags[cnt] = tag;
    *cntp = cnt + 1;
    return 0;
}

static int64_t access_l2(Ctx *c, int64_t addr) {
    int64_t tag = addr >> c->l2_shift;
    int64_t si = tag & c->l2_mask;
    if (cache_probe(c->l2_tags + si * c->l2_assoc, c->l2_cnt + si,
                    c->l2_assoc, tag)) {
        c->l2_hits++;
        return c->lat_l2;
    }
    c->l2_misses++;
    c->mem_accesses++;
    return c->lat_mem;
}

static int64_t access_data(Ctx *c, int64_t addr) {
    int64_t tag = addr >> c->d_shift;
    int64_t si = tag & c->d_mask;
    if (cache_probe(c->l1d_tags + si * c->d_assoc, c->l1d_cnt + si,
                    c->d_assoc, tag)) {
        c->l1d_hits++;
        return c->lat_l1;
    }
    c->l1d_misses++;
    return access_l2(c, addr);
}

/* ---- TEP commit-time training --------------------------------------- */

static void train_tep(Ctx *c, int64_t slot, int64_t fmask, int64_t pr) {
    int64_t ti = c->tepi[slot];
    int64_t tg = c->tept[slot];
    if (fmask) {
        int64_t stage = 0;
        while (!(fmask & (1 << stage)))
            stage++;
        if (c->tep_tag[ti] == tg) {
            if (c->tep_cnt[ti] < c->tep_cmax)
                c->tep_cnt[ti]++;
            c->tep_stage[ti] = stage;
        } else {
            c->tep_tag[ti] = tg;
            c->tep_cnt[ti] = 1;
            c->tep_stage[ti] = stage;
        }
    } else if (pr >= 0) {
        c->false_predictions++;
        if (c->tep_tag[ti] == tg && c->tep_cnt[ti] > 0)
            c->tep_cnt[ti]--;
    }
}

/* ---- issue-time helpers --------------------------------------------- */

static void count_fault(Ctx *c, int64_t stage, int predicted) {
    c->faults_total++;
    c->stage_faults[stage]++;
    if (predicted)
        c->faults_predicted++;
    else
        c->faults_unpredicted++;
}

static int64_t stage_cycle(int64_t stage, int64_t v, int64_t agen_end,
                           int64_t exec_end, int64_t wb_c, int is_mem) {
    /* returns -1 for "no stall point" (pipeline._stage_cycle -> None) */
    if (stage == 4)
        return v;
    if (stage == 5)
        return v + 1;
    if (stage == 6)
        return exec_end;
    if (stage == 7)
        return is_mem ? agen_end : -1;
    if (stage == 8)
        return wb_c;
    return -1;
}

static int64_t load_data_lat(Ctx *c, int64_t slot, int64_t cam_real) {
    int64_t lo = c->SM[c->cp];
    int64_t hi = c->SM[slot];
    if (hi > lo) {
        int64_t a8 = c->addr8[slot];
        for (int64_t r = lo; r < hi; r++) {
            if (c->st_addr8[r] == a8 && c->store_resolve[r] <= cam_real) {
                c->forwards++;
                return 1;
            }
        }
    }
    return access_data(c, c->mem_addr[slot]);
}

/* issue one selected instruction; returns 0 on eviction */
static int issue_one(Ctx *c, int64_t v, int64_t slot, int64_t jj,
                     int64_t ucol, int64_t iq_len0) {
    int64_t o = c->op[slot];
    c->issued++;
    c->regreads += c->nsrcs[slot];
    c->fu_op_counts[o]++;
    int64_t pr = c->pred[slot];
    int64_t rr_e = 0, ex_e = 0, mem_e = 0, wb_e = 0;
    int frz = FRZ_NONE;
    if (c->uses_vte) {
        int64_t pi = (pr + 1) * 8 + o;
        rr_e = c->T_RR[pi];
        ex_e = c->T_EX[pi];
        mem_e = c->T_MEM[pi];
        wb_e = c->T_WB[pi];
        frz = c->T_FRZ[pi];
        c->padded += c->T_HAS[pi];
    }
    int64_t f = c->tape[slot];
    int64_t bubble_stage[5];
    int nb = 0;
    if (f) {
        int im = c->is_mem[slot];
        int64_t pen = c->replay_recovery;
        for (int64_t stage = 4; stage <= 8; stage++) {
            if (!(f & (1 << stage)))
                continue;
            if (stage == 7 && !im) {
                count_fault(c, stage, 0);
                c->evict_code = EV_WILD_MEM;
                return 0;
            }
            int tol = (stage == pr) && c->tolerates;
            if (tol && c->uses_vte && !c->T_HAS[(pr + 1) * 8 + o]) {
                c->evict_code = EV_UNPADDED;
                return 0;
            }
            count_fault(c, stage, tol);
            if (tol)
                continue;
            c->replays++;
            if (stage <= 5)
                rr_e += pen;
            else if (stage == 6)
                ex_e += pen;
            else if (stage == 7)
                mem_e += pen;
            else
                wb_e += pen;
            bubble_stage[nb++] = stage;
        }
    }
    int64_t exec_lat = c->lat[slot] + ex_e;
    int64_t agen_end = v + 2 + rr_e;
    int64_t exec_end = v + 1 + rr_e + exec_lat;
    int64_t wakeup, wbreq;
    int im = c->is_mem[slot];
    if (!im) {
        wakeup = v + c->lat[slot] + rr_e + ex_e;
        wbreq = v + 2 + rr_e + exec_lat;
    } else if (c->is_load[slot]) {
        c->cam_searches++;
        /* the CAM compares store resolve times, which the scalar core
         * keeps in unshifted REAL cycles -- probe in real time */
        int64_t dlat = load_data_lat(c, slot, agen_end + c->burned);
        wakeup = agen_end + mem_e + dlat;
        wbreq = wakeup + 1;
    } else { /* store: resolve in REAL cycles, WB request stays virtual */
        c->cam_searches++;
        int64_t r = c->srank[slot];
        c->store_resolve[r] = agen_end + c->burned;
        int64_t fr = c->frontier, pm = c->pm_run;
        while (fr < c->n_stores && c->store_resolve[fr] < K_INF) {
            if (c->store_resolve[fr] > pm)
                pm = c->store_resolve[fr];
            c->premax[fr] = pm;
            fr++;
        }
        c->frontier = fr;
        c->pm_run = pm;
        wakeup = K_INF;
        wbreq = agen_end + mem_e + 1;
    }
    /* writeback arbitration: first cycle with a free port */
    int64_t cc = wbreq;
    while (c->wbring[cc & K_RMASK] >= c->width)
        cc++;
    c->wbring[cc & K_RMASK]++;
    if (wb_e)
        c->wbring[(cc + 1) & K_RMASK]++;
    c->cec[slot] = cc + wb_e;
    /* result broadcast (set_ready): consumers read next cycle */
    if (c->has_dest[slot] && !c->is_store[slot]) {
        c->wake[slot] = wakeup;
        c->broadcasts++;
        c->broadcast_occ += iq_len0 - (jj + 1);
    }
    /* functional-unit reservation + VTE freezing */
    int64_t ni = v + (o == OP_IDIV ? exec_lat : 1);
    if (c->uses_vte) {
        if (frz != FRZ_NONE)
            c->slot_freezes++;
        if (frz == FRZ_SLOT) {
            if (ni < v + 2)
                ni = v + 2;
        } else if (frz == FRZ_UNTIL) {
            if (ni < exec_end)
                ni = exec_end;
        } else if (frz == FRZ_BUSY) {
            ni++;
        }
    }
    c->fu_ni[ucol] = ni;
    if (c->cond_mispred[slot])
        c->blk_resolve_v = exec_end;
    if (c->uses_ep_stall && pr >= 0) {
        int64_t sc = stage_cycle(pr, v, agen_end, exec_end, cc, im);
        if (sc >= 0) {
            c->padded++;
            int64_t at = sc > v + 1 ? sc : v + 1;
            c->epring[at & K_RMASK]++;
        }
    }
    for (int b = 0; b < nb; b++) {
        int64_t sc =
            stage_cycle(bubble_stage[b], v, agen_end, exec_end, cc, im);
        if (sc >= 0) {
            int64_t at = sc > v + 1 ? sc : v + 1;
            c->epring[at & K_RMASK] += (int32_t)c->recovery_bubbles;
        }
    }
    return 1;
}

/* ---- one cycle's stages --------------------------------------------- */

static void commit_cycle(Ctx *c, int64_t v) {
    for (int64_t w = 0; w < c->width; w++) {
        if (c->cp >= c->dp)
            return;
        int64_t s = c->cp;
        if (c->cec[s] > v)
            return;
        c->committed++;
        int64_t hd = c->has_dest[s];
        c->regwrites += hd;
        c->free_cnt += hd;
        c->lsq_occ -= c->is_mem[s];
        c->last_commit_real = v + c->burned;
        if (c->is_store[s])
            access_data(c, c->mem_addr[s]);
        if (c->tep_probe) {
            int64_t f = c->tape[s];
            int64_t pr = c->pred[s];
            if (f || pr >= 0)
                train_tep(c, s, f, pr);
        }
        c->cp++;
    }
}

/* returns 0 on eviction */
static int select_issue_cycle(Ctx *c, int64_t v) {
    int64_t n = c->iq_len;
    if (!n)
        return 1;
    int64_t ready_pos[64], ready_key[64];
    int nr = 0;
    int64_t head_ts = c->ts[c->iq_slot[0]];
    int64_t real = v + c->burned;
    for (int64_t pos = 0; pos < n; pos++) {
        int64_t slot = c->iq_slot[pos];
        int64_t w0 = c->wake[c->ws0[slot]];
        int64_t w1 = c->wake[c->ws1[slot]];
        if ((w0 > w1 ? w0 : w1) > v)
            continue;
        if (c->is_load[slot] && c->n_stores) {
            int64_t oc = c->SM[slot];
            if (oc) {
                /* premax holds REAL resolve cycles (scalar's LSQ is
                 * never shifted by EP stalls) -- gate in real time */
                if (c->frontier < oc || c->premax[oc - 1] > real)
                    continue;
            }
        }
        int64_t key;
        if (c->sel_mode == SEL_EXACT) {
            key = pos;
        } else {
            key = ((c->ts[slot] - head_ts) & TS_MASK) * c->iq_size + pos;
            if (c->sel_mode == SEL_FFS && c->pred[slot] < 0)
                key += (TS_MASK + 1) * c->iq_size;
        }
        /* insertion into key-sorted order (keys are unique) */
        int i = nr++;
        while (i > 0 && ready_key[i - 1] > key) {
            ready_key[i] = ready_key[i - 1];
            ready_pos[i] = ready_pos[i - 1];
            i--;
        }
        ready_key[i] = key;
        ready_pos[i] = pos;
    }
    if (!nr)
        return 1;
    int64_t cap_s = (c->fu_ni[0] <= v) + (c->fu_ni[1] <= v);
    int64_t cap_c = c->fu_ni[2] <= v;
    int64_t cap_m = c->fu_ni[3] <= v;
    int c0 = c->fu_ni[0] <= v;
    int64_t cum_s = 0, cum_c = 0, cum_m = 0;
    int64_t sel_pos[8], sel_ucol[8];
    int nsel = 0;
    for (int i = 0; i < nr && nsel < c->width; i++) {
        int64_t slot = c->iq_slot[ready_pos[i]];
        int64_t kind = c->fu[slot];
        int64_t ucol;
        if (kind == 0) {
            cum_s++;
            if (cum_s > cap_s)
                continue;
            ucol = cum_s - 1 + (c0 ? 0 : 1);
        } else if (kind == 1) {
            cum_c++;
            if (cum_c > cap_c)
                continue;
            ucol = 2;
        } else {
            cum_m++;
            if (cum_m > cap_m)
                continue;
            ucol = 3;
        }
        sel_pos[nsel] = ready_pos[i];
        sel_ucol[nsel] = ucol;
        nsel++;
    }
    if (!nsel)
        return 1;
    int64_t iq_len0 = n;
    for (int j = 0; j < nsel; j++) {
        if (!issue_one(c, v, c->iq_slot[sel_pos[j]], j, sel_ucol[j],
                       iq_len0))
            return 0;
    }
    /* compact the IQ, preserving age order (sel_pos ascends in j only
     * per FU class; sort removals by position first) */
    int64_t rm[8];
    for (int j = 0; j < nsel; j++)
        rm[j] = sel_pos[j];
    for (int a = 1; a < nsel; a++) {
        int64_t x = rm[a];
        int b = a;
        while (b > 0 && rm[b - 1] > x) {
            rm[b] = rm[b - 1];
            b--;
        }
        rm[b] = x;
    }
    int64_t out = rm[0];
    int next = 1;
    for (int64_t pos = rm[0] + 1; pos < n; pos++) {
        if (next < nsel && pos == rm[next]) {
            next++;
            continue;
        }
        c->iq_slot[out++] = c->iq_slot[pos];
    }
    c->iq_len = n - nsel;
    return 1;
}

static void dispatch_cycle(Ctx *c) {
    int64_t d = c->depth - 1;
    int64_t cnt = c->conv_len[d];
    if (!cnt)
        return;
    int64_t s = c->conv_start[d];
    int64_t k = 0;
    for (int64_t i = 0; i < cnt; i++) {
        int64_t si = s + i;
        if (c->dp - c->cp + i >= c->rob_size)
            break;
        if (c->iq_len + i >= c->iq_size)
            break;
        if (c->is_mem[si] &&
            c->lsq_occ + (c->M[si] - c->M[s]) >= c->lsq_size)
            break;
        if (c->has_dest[si] &&
            c->free_cnt - (c->HD[si] - c->HD[s]) < 1)
            break;
        k++;
    }
    if (!k)
        return;
    for (int64_t i = 0; i < k; i++)
        c->iq_slot[c->iq_len + i] = s + i;
    c->dp += k;
    c->lsq_occ += c->M[s + k] - c->M[s];
    c->free_cnt -= c->HD[s + k] - c->HD[s];
    c->dispatched += k;
    c->iq_len += k;
    c->conv_start[d] += k;
    c->conv_len[d] -= k;
}

/* returns 0 on eviction */
static int fetch_cycle(Ctx *c, int64_t v) {
    if (c->conv_len[0] || c->blk_active || c->resume_v > v)
        return 1;
    int64_t g = c->g_ptr;
    if (g >= c->NG) {
        c->evict_code = EV_STREAM_END;
        return 0;
    }
    int64_t gs = c->g_start[g];
    int64_t gl = c->g_len[g];
    c->conv_start[0] = gs;
    c->conv_len[0] = gl;
    c->fetched += gl;
    c->branches += c->g_branches[g];
    if (c->g_mispred[g]) {
        c->branch_mispredicts++;
        c->blk_active = 1;
        c->blk_fetch_abs = v + c->burned;
    }
    if (c->tep_probe) {
        for (int64_t j = 0; j < gl; j++) {
            int64_t sl = gs + j;
            int64_t ti = c->tepi[sl];
            if (c->tep_tag[ti] == c->tept[sl] && c->tep_cnt[ti] > 0)
                c->pred[sl] = (int8_t)c->tep_stage[ti];
            else
                c->pred[sl] = -1;
        }
    }
    if (c->g_has_miss[g]) {
        int64_t stall = 0;
        for (int64_t m = c->g_miss_off[g]; m < c->g_miss_off[g + 1]; m++) {
            int64_t lat2 = access_l2(c, c->miss_pcs[m]) - 1;
            if (lat2 > stall)
                stall = lat2;
        }
        if (stall && v + 1 + stall > c->resume_v)
            c->resume_v = v + 1 + stall;
    }
    c->g_ptr++;
    return 1;
}

/* ---- per-lane virtual-time loop ------------------------------------- */

static void lane_run(Ctx *c) {
    int64_t v = 0;
    for (;;) {
        if (c->committed >= c->target) {
            c->v_end = v;
            return;
        }
        if (c->force_at >= 0 && v >= c->force_at) {
            c->evict_code = EV_FORCED;
            return;
        }
        if (!(v & 255)) {
            int64_t real = v + c->burned;
            if (real > c->max_cycles ||
                real - c->last_commit_real >= c->hang_cycles) {
                c->evict_code = EV_WATCHDOG;
                return;
            }
        }
        int64_t vm = v & K_RMASK;
        /* whole-pipeline stalls burn in bulk (virtual-time excision) */
        int64_t k = c->epring[vm];
        if (k) {
            c->burned += k;
            c->ep_stalls += k;
            c->epring[vm] = 0;
        }
        if (c->blk_resolve_v == v) {
            c->blk_active = 0;
            c->blk_resolve_v = K_INF;
            int64_t res = v + c->redirect_penalty;
            if (res > c->resume_v)
                c->resume_v = res;
            if (c->model_wrong_path) {
                int64_t wasted = (v + c->burned) - c->blk_fetch_abs - 1;
                if (wasted > 0)
                    c->wrong_path += wasted * c->width;
            }
        }
        commit_cycle(c, v);
        if (!select_issue_cycle(c, v))
            return;
        dispatch_cycle(c);
        for (int64_t i = c->depth - 1; i > 0; i--) {
            if (!c->conv_len[i]) {
                c->conv_len[i] = c->conv_len[i - 1];
                c->conv_start[i] = c->conv_start[i - 1];
                c->conv_len[i - 1] = 0;
            }
        }
        if (!fetch_cycle(c, v))
            return;
        c->iq_occ += c->iq_len;
        c->wbring[vm] = 0;
        v++;
    }
}

/* ---- entry point ----------------------------------------------------- */

#define I64(i) ((int64_t *)A[i])
#define U8(i) ((uint8_t *)A[i])

void repro_batch_run(void **A, const int64_t *p) {
    Ctx base;
    memset(&base, 0, sizeof(base));
    base.op = I64(0);
    base.lat = I64(1);
    base.fu = I64(2);
    base.nsrcs = I64(3);
    base.has_dest = I64(4);
    base.is_load = U8(5);
    base.is_store = U8(6);
    base.is_mem = U8(7);
    base.cond_mispred = U8(8);
    base.ts = I64(9);
    base.SM = I64(10);
    base.M = I64(11);
    base.HD = I64(12);
    base.srank = I64(13);
    base.st_addr8 = I64(14);
    base.addr8 = I64(15);
    base.mem_addr = I64(16);
    base.ws0 = I64(17);
    base.ws1 = I64(18);
    base.g_start = I64(19);
    base.g_len = I64(20);
    base.g_branches = I64(21);
    base.g_mispred = U8(22);
    base.g_has_miss = U8(23);
    base.g_miss_off = I64(24);
    base.miss_pcs = I64(25);
    base.tepi = I64(26);
    base.tept = I64(27);
    base.T_RR = I64(28);
    base.T_EX = I64(29);
    base.T_MEM = I64(30);
    base.T_WB = I64(31);
    base.T_FRZ = (int8_t *)A[32];
    base.T_HAS = I64(33);
    base.N = p[0];
    base.NS = p[1];
    base.NW = p[2];
    base.n_stores = p[3];
    /* p[4] = allocated store row stride (max(n_stores, 1)) */
    base.width = p[5];
    base.depth = p[6];
    base.iq_size = p[7];
    base.rob_size = p[8];
    base.lsq_size = p[9];
    base.target = p[10];
    base.redirect_penalty = p[11];
    base.replay_recovery = p[12];
    base.recovery_bubbles = p[13];
    base.model_wrong_path = p[14];
    base.tep_probe = p[15];
    base.uses_vte = p[16];
    base.uses_ep_stall = p[17];
    base.tolerates = p[18];
    base.sel_mode = p[19];
    base.max_cycles = p[20];
    base.hang_cycles = p[21];
    base.NG = p[22];
    base.tep_n = p[23];
    base.tep_cmax = p[24];
    base.d_shift = p[25];
    base.d_mask = p[26];
    base.d_assoc = p[27];
    /* p[28] = d_nsets */
    base.l2_shift = p[29];
    base.l2_mask = p[30];
    base.l2_assoc = p[31];
    /* p[32] = l2_nsets */
    base.lat_l1 = p[33];
    base.lat_l2 = p[34];
    base.lat_mem = p[35];
    int64_t nst_alloc = p[4];
    int64_t d_nsets = p[28];
    int64_t l2_nsets = p[32];

    const int16_t *tape = (const int16_t *)A[34];
    int8_t *pred = (int8_t *)A[35];
    uint8_t *active = U8(61);
    int64_t *evict_code = I64(62);
    const int64_t *force_at = I64(63);

    for (int64_t lane = 0; lane < base.N; lane++) {
        if (!active[lane])
            continue;
        Ctx c = base;
        c.tape = tape + lane * base.NS;
        c.pred = pred + lane * base.NS;
        c.cec = I64(36) + lane * base.NS;
        c.wake = I64(37) + lane * base.NW;
        c.iq_slot = I64(38) + lane * base.iq_size;
        c.conv_start = I64(40) + lane * base.depth;
        c.conv_len = I64(41) + lane * base.depth;
        c.fu_ni = I64(42) + lane * 4;
        c.wbring = (int16_t *)A[43] + lane * K_RING;
        c.epring = (int32_t *)A[44] + lane * K_RING;
        c.store_resolve = I64(45) + lane * nst_alloc;
        c.premax = I64(46) + lane * nst_alloc;
        if (base.tep_probe) {
            c.tep_tag = I64(88) + lane * base.tep_n;
            c.tep_cnt = I64(89) + lane * base.tep_n;
            c.tep_stage = I64(90) + lane * base.tep_n;
        }
        c.l1d_tags = I64(91) + lane * d_nsets * base.d_assoc;
        c.l1d_cnt = I64(92) + lane * d_nsets;
        c.l2_tags = I64(93) + lane * l2_nsets * base.l2_assoc;
        c.l2_cnt = I64(94) + lane * l2_nsets;
        c.iq_len = I64(39)[lane];
        c.frontier = I64(47)[lane];
        c.pm_run = I64(48)[lane];
        c.lsq_occ = I64(49)[lane];
        c.free_cnt = I64(50)[lane];
        c.cp = I64(51)[lane];
        c.dp = I64(52)[lane];
        c.blk_active = U8(53)[lane];
        c.blk_resolve_v = I64(54)[lane];
        c.blk_fetch_abs = I64(55)[lane];
        c.resume_v = I64(56)[lane];
        c.g_ptr = I64(57)[lane];
        c.burned = I64(58)[lane];
        c.last_commit_real = I64(60)[lane];
        c.force_at = force_at[lane];
        c.committed = I64(64)[lane];
        c.stage_faults = I64(86) + lane * 10;
        c.fu_op_counts = I64(87) + lane * 8;
        c.evict_code = 0;

        lane_run(&c);

        I64(39)[lane] = c.iq_len;
        I64(47)[lane] = c.frontier;
        I64(48)[lane] = c.pm_run;
        I64(49)[lane] = c.lsq_occ;
        I64(50)[lane] = c.free_cnt;
        I64(51)[lane] = c.cp;
        I64(52)[lane] = c.dp;
        U8(53)[lane] = (uint8_t)c.blk_active;
        I64(54)[lane] = c.blk_resolve_v;
        I64(55)[lane] = c.blk_fetch_abs;
        I64(56)[lane] = c.resume_v;
        I64(57)[lane] = c.g_ptr;
        I64(58)[lane] = c.burned;
        I64(59)[lane] = c.v_end;
        I64(60)[lane] = c.last_commit_real;
        I64(64)[lane] = c.committed;
        I64(65)[lane] += c.fetched;
        I64(66)[lane] += c.dispatched;
        I64(67)[lane] += c.issued;
        I64(68)[lane] += c.replays;
        I64(69)[lane] += c.branch_mispredicts;
        I64(70)[lane] += c.branches;
        I64(71)[lane] += c.false_predictions;
        I64(72)[lane] += c.ep_stalls;
        I64(73)[lane] += c.slot_freezes;
        I64(74)[lane] += c.padded;
        I64(75)[lane] += c.wrong_path;
        I64(76)[lane] += c.regreads;
        I64(77)[lane] += c.regwrites;
        I64(78)[lane] += c.broadcasts;
        I64(79)[lane] += c.broadcast_occ;
        I64(80)[lane] += c.iq_occ;
        I64(81)[lane] += c.cam_searches;
        I64(82)[lane] += c.forwards;
        I64(83)[lane] += c.faults_total;
        I64(84)[lane] += c.faults_predicted;
        I64(85)[lane] += c.faults_unpredicted;
        I64(95)[lane] += c.l1d_hits;
        I64(96)[lane] += c.l1d_misses;
        I64(97)[lane] += c.l2_hits;
        I64(98)[lane] += c.l2_misses;
        I64(99)[lane] += c.mem_accesses;
        if (c.evict_code) {
            evict_code[lane] = c.evict_code;
            active[lane] = 0;
        }
    }
}
