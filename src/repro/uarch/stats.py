"""Simulation statistics.

Counters are plain attributes incremented by the pipeline; the energy model
turns them into joules after the run (see ``repro.power.energy_model``).
"""


class SimStats:
    """All counters collected during one simulation run."""

    def __init__(self):
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.dispatched = 0
        self.issued = 0
        self.squashed = 0
        self.replays = 0
        self.branch_mispredicts = 0
        self.branches = 0
        # fault accounting
        self.faults_total = 0
        self.faults_predicted = 0
        self.faults_unpredicted = 0
        self.false_predictions = 0
        self.stage_faults = {}
        # scheme mechanics
        self.ep_stalls = 0
        self.slot_freezes = 0
        self.padded_instructions = 0
        self.inorder_stalls = 0
        self.memdep_violations = 0
        self.wrong_path_fetched = 0
        # robustness safety net (storm-mode wild faults, unpadded
        # predictions — see pipeline._issue) and storm bookkeeping
        self.safety_net_replays = 0
        self.storm_faults = 0
        # telemetry events evicted from the EventBus ring (set by
        # TelemetryCollector.finalize; 0 when tracing was off or the
        # ring never overflowed) — silent trace truncation, made loud
        self.dropped_events = 0
        # activity for the energy model
        self.fu_ops = {}
        self.regreads = 0
        self.regwrites = 0
        self.broadcasts = 0
        self.broadcast_occupancy = 0
        self.lsq_searches = 0
        self.store_forwards = 0
        self.iq_occupancy_accum = 0
        self.wb_writes = 0

    # ------------------------------------------------------------------
    def count_fault(self, stage, predicted):
        """Record one actual timing violation in ``stage``."""
        self.faults_total += 1
        self.stage_faults[stage] = self.stage_faults.get(stage, 0) + 1
        if predicted:
            self.faults_predicted += 1
        else:
            self.faults_unpredicted += 1

    def count_fu_op(self, op):
        """Record one executed operation of class ``op``."""
        self.fu_ops[op] = self.fu_ops.get(op, 0) + 1

    # ------------------------------------------------------------------
    @property
    def ipc(self):
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def fault_rate(self):
        """Faulting instructions per committed instruction."""
        return self.faults_total / self.committed if self.committed else 0.0

    @property
    def mispredict_rate(self):
        """Branch misprediction rate."""
        return self.branch_mispredicts / self.branches if self.branches else 0.0

    @property
    def avg_iq_occupancy(self):
        """Mean issue-queue occupancy per cycle."""
        return self.iq_occupancy_accum / self.cycles if self.cycles else 0.0

    def as_dict(self):
        """Flat dict of every counter the run collected (JSON-safe keys).

        Enum-keyed maps (``stage_faults``, ``fu_ops``) are flattened to
        name-keyed dicts in enum order, so two equal runs produce equal
        dicts and exports never carry enum objects.
        """
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "fetched": self.fetched,
            "dispatched": self.dispatched,
            "issued": self.issued,
            "ipc": self.ipc,
            "fault_rate": self.fault_rate,
            "faults_total": self.faults_total,
            "faults_predicted": self.faults_predicted,
            "faults_unpredicted": self.faults_unpredicted,
            "false_predictions": self.false_predictions,
            "stage_faults": {
                stage.name: count
                for stage, count in sorted(
                    self.stage_faults.items(), key=lambda kv: int(kv[0])
                )
            },
            "replays": self.replays,
            "safety_net_replays": self.safety_net_replays,
            "storm_faults": self.storm_faults,
            "dropped_events": self.dropped_events,
            "ep_stalls": self.ep_stalls,
            "slot_freezes": self.slot_freezes,
            "padded_instructions": self.padded_instructions,
            "inorder_stalls": self.inorder_stalls,
            "memdep_violations": self.memdep_violations,
            "wrong_path_fetched": self.wrong_path_fetched,
            "squashed": self.squashed,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "mispredict_rate": self.mispredict_rate,
            "avg_iq_occupancy": self.avg_iq_occupancy,
            "fu_ops": {
                op.name: count
                for op, count in sorted(
                    self.fu_ops.items(), key=lambda kv: int(kv[0])
                )
            },
            "regreads": self.regreads,
            "regwrites": self.regwrites,
            "broadcasts": self.broadcasts,
            "broadcast_occupancy": self.broadcast_occupancy,
            "lsq_searches": self.lsq_searches,
            "store_forwards": self.store_forwards,
            "wb_writes": self.wb_writes,
        }
