"""Memory dependence prediction (store sets, Chrysos & Emer, ISCA'98).

The baseline scheduler disambiguates conservatively: a load waits until
every older store in the LSQ has resolved its address. Real OoO cores
speculate: a load issues past unresolved stores unless a predictor says it
has conflicted before. This module implements the classic store-set
scheme:

* **SSIT** (store-set ID table), indexed by PC: maps loads and stores that
  have violated ordering to a common store-set ID;
* **LFST** (fetched-store table), indexed by store-set ID: the in-flight
  stores of the set; a load of the same set must wait for the youngest
  such store older than itself. (Tracking all in-flight stores of a set,
  rather than only the last one, avoids losing a dependency when a newer
  same-set store enters the window.)

A mispredicted speculation (a load that issued before a conflicting older
store resolved) is repaired with the pipeline's replay machinery and
trains the tables.

This is an optional refinement of the Core-1 model (the paper's baseline
is the conservative scheduler); ``CoreConfig(mem_dependence="store_sets")``
enables it, and ``benchmarks/test_ablations.py`` quantifies the gap.
"""


class StoreSetPredictor:
    """SSIT + LFST memory-dependence predictor."""

    def __init__(self, n_ssit=1024, n_lfst=128):
        if n_ssit <= 0 or n_ssit & (n_ssit - 1):
            raise ValueError("n_ssit must be a positive power of two")
        if n_lfst <= 0:
            raise ValueError("n_lfst must be positive")
        self.n_ssit = n_ssit
        self.n_lfst = n_lfst
        self._ssit = [None] * n_ssit       # pc index -> store-set id
        self._lfst = [[] for _ in range(n_lfst)]  # set id -> in-flight seqs
        self._next_set = 0
        self.violations = 0
        self.predictions = 0

    def _index(self, pc):
        return (pc >> 2) & (self.n_ssit - 1)

    def set_of(self, pc):
        """Store-set ID of ``pc`` or None."""
        return self._ssit[self._index(pc)]

    # ------------------------------------------------------------------
    def must_wait_for(self, load_pc, load_seq=None):
        """Youngest in-flight same-set store older than the load, or None."""
        self.predictions += 1
        set_id = self.set_of(load_pc)
        if set_id is None:
            return None
        candidates = self._lfst[set_id]
        if load_seq is not None:
            candidates = [s for s in candidates if s < load_seq]
        return max(candidates, default=None)

    def store_fetched(self, store_pc, seq):
        """A store of a known set entered the window: record it."""
        set_id = self.set_of(store_pc)
        if set_id is not None:
            inflight = self._lfst[set_id]
            inflight.append(seq)
            if len(inflight) > 16:  # bound staleness from squashed stores
                del inflight[0]

    def store_resolved(self, store_pc, seq):
        """The store's address resolved: remove it from the in-flight set."""
        set_id = self.set_of(store_pc)
        if set_id is not None:
            try:
                self._lfst[set_id].remove(seq)
            except ValueError:
                pass

    def train_violation(self, load_pc, store_pc):
        """A load bypassed a conflicting older store: merge their sets."""
        self.violations += 1
        load_idx = self._index(load_pc)
        store_idx = self._index(store_pc)
        load_set = self._ssit[load_idx]
        store_set = self._ssit[store_idx]
        if load_set is None and store_set is None:
            set_id = self._next_set
            self._next_set = (self._next_set + 1) % self.n_lfst
            self._lfst[set_id] = []
            self._ssit[load_idx] = set_id
            self._ssit[store_idx] = set_id
        elif load_set is None:
            self._ssit[load_idx] = store_set
        elif store_set is None:
            self._ssit[store_idx] = load_set
        else:
            # merge: convention — both adopt the smaller ID
            winner = min(load_set, store_set)
            self._ssit[load_idx] = winner
            self._ssit[store_idx] = winner

    def reset(self):
        """Clear both tables."""
        self._ssit = [None] * self.n_ssit
        self._lfst = [[] for _ in range(self.n_lfst)]
        self._next_set = 0
        self.violations = 0
        self.predictions = 0
