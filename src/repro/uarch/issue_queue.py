"""Issue queue with the paper's VTE metadata (Section 3.2.1).

Each entry carries the single-bit fault prediction, the faulty-stage field
(together the 4-bit field of Section 3.2.1 — both live on the
:class:`~repro.isa.instruction.DynInst`), and a 6-bit modulo-64 timestamp
assigned at dispatch (Section 3.5). Wakeup is evaluated against the
ready-cycle scoreboard, which encodes (possibly fault-delayed) tag
broadcast times.
"""

from repro.uarch.regfile import INFINITE as _WAKE_UNKNOWN

TIMESTAMP_BITS = 6
TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1


class IssueQueue:
    """Bounded out-of-order scheduling window."""

    def __init__(self, size):
        if size <= 0:
            raise ValueError("issue queue size must be positive")
        self.size = size
        self.entries = []
        self._dispatch_counter = 0

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def full(self):
        """True when no entry can be inserted."""
        return len(self.entries) >= self.size

    def insert(self, inst):
        """Insert a dispatched instruction and stamp its 6-bit timestamp."""
        if self.full:
            raise RuntimeError("issue queue overflow")
        counter = self._dispatch_counter
        inst.timestamp = counter & TIMESTAMP_MASK
        # unmasked dispatch order: lets the selection policies prove the
        # live window is narrower than the timestamp period (no wraparound)
        # and skip the modulo-age sort entirely
        inst.dispatch_order = counter
        self._dispatch_counter = counter + 1
        inst.in_iq = True
        self.entries.append(inst)

    def remove(self, inst):
        """Remove an issued or squashed instruction."""
        self.entries.remove(inst)
        inst.in_iq = False

    def squash_from(self, seq):
        """Drop all entries with sequence number >= ``seq``."""
        kept = []
        dropped = []
        for inst in self.entries:
            if inst.seq >= seq:
                inst.in_iq = False
                dropped.append(inst)
            else:
                kept.append(inst)
        self.entries = kept
        return dropped

    def head_timestamp(self):
        """Timestamp of the oldest entry (reference point for mod-64 age).

        ``entries`` is maintained in ascending sequence order (inserts
        happen in dispatch order, squash and remove preserve relative
        order, and replayed instructions re-dispatch before anything
        younger), so the oldest entry is always the first one.
        """
        if not self.entries:
            return 0
        return self.entries[0].timestamp

    def ready_entries(self, cycle, rename, lsq=None, load_gate=None):
        """Entries whose operands are ready in ``cycle``.

        Loads are additionally gated by memory disambiguation: by default
        they wait until every older store in the LSQ has resolved its
        address (conservative); a ``load_gate(inst)`` callable (e.g. a
        store-set predictor check) replaces that rule when provided.

        This scan runs once per cycle over the whole window and dominates
        the scheduler's cost, so each entry caches its wake cycle: while
        any source is unissued (scoreboard ``INFINITE``) the entry
        re-probes the scoreboard every cycle exactly as before, but once
        every source has a finite ready cycle their max can never change
        while the entry stays live — a source register of a live entry
        cannot be re-renamed (its free happens at the overwriter's commit,
        which is younger), and squashing a producer squashes every younger
        consumer out of the queue. The cached max turns the steady-state
        per-entry check into one integer compare. The two invalidation
        points are :meth:`DynInst.reset_for_refetch` (squash) and the EP
        whole-pipeline stall shift, which rewrites the scoreboard's
        absolute cycles (``OoOCore._shift_in_flight``).
        """
        ready = []
        append = ready.append
        ready_cycle = rename.ready_cycle
        for inst in self.entries:
            wake = inst.wake
            if wake > cycle:
                if wake != _WAKE_UNKNOWN:
                    continue
                # probe, unrolled for the dominant 2/1/0-operand shapes,
                # preserving the early exit on the first waiting source
                # (an unissued producer reads INFINITE and can't latch)
                srcs = inst.phys_srcs
                n = len(srcs)
                if n == 2:
                    a = ready_cycle[srcs[0]]
                    if a > cycle:
                        if a != _WAKE_UNKNOWN:
                            b = ready_cycle[srcs[1]]
                            if b != _WAKE_UNKNOWN:
                                inst.wake = a if a > b else b
                        continue
                    b = ready_cycle[srcs[1]]
                    if b > cycle:
                        if b != _WAKE_UNKNOWN:
                            inst.wake = b  # b > cycle >= a: b is the max
                        continue
                    inst.wake = a if a > b else b
                elif n == 1:
                    wake = ready_cycle[srcs[0]]
                    if wake > cycle:
                        if wake != _WAKE_UNKNOWN:
                            inst.wake = wake
                        continue
                    inst.wake = wake
                elif n:
                    wake = max(ready_cycle[p] for p in srcs)
                    if wake < _WAKE_UNKNOWN:
                        inst.wake = wake
                    if wake > cycle:
                        continue
                else:
                    inst.wake = 0
            if inst.is_load:
                if load_gate is not None:
                    if not load_gate(inst):
                        continue
                elif lsq is not None:
                    # conservative disambiguation, with the same caching
                    # trick as ``wake``: while any older store address is
                    # unknown the LSQ is re-scanned every cycle, but once
                    # all are known their max resolve cycle can never
                    # change for a live load (older_stores_gate documents
                    # the invariant; reset_for_refetch invalidates)
                    gate = inst.mem_gate
                    if gate == _WAKE_UNKNOWN:
                        gate = lsq.older_stores_gate(inst.seq)
                        if gate is None:
                            continue
                        inst.mem_gate = gate
                    if gate > cycle:
                        continue
            append(inst)
        return ready

    def count_dependents(self, phys_reg):
        """Number of waiting entries that source ``phys_reg``.

        This is the tag-match count the Criticality Detection Logic feeds
        to its encoder (Section 3.5.2).
        """
        if phys_reg < 0:
            return 0
        return sum(1 for inst in self.entries if phys_reg in inst.phys_srcs)
