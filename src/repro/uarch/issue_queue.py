"""Issue queue with the paper's VTE metadata (Section 3.2.1).

Each entry carries the single-bit fault prediction, the faulty-stage field
(together the 4-bit field of Section 3.2.1 — both live on the
:class:`~repro.isa.instruction.DynInst`), and a 6-bit modulo-64 timestamp
assigned at dispatch (Section 3.5). Wakeup is evaluated against the
ready-cycle scoreboard, which encodes (possibly fault-delayed) tag
broadcast times.
"""

TIMESTAMP_BITS = 6
TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1


class IssueQueue:
    """Bounded out-of-order scheduling window."""

    def __init__(self, size):
        if size <= 0:
            raise ValueError("issue queue size must be positive")
        self.size = size
        self.entries = []
        self._dispatch_counter = 0

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def full(self):
        """True when no entry can be inserted."""
        return len(self.entries) >= self.size

    def insert(self, inst):
        """Insert a dispatched instruction and stamp its 6-bit timestamp."""
        if self.full:
            raise RuntimeError("issue queue overflow")
        inst.timestamp = self._dispatch_counter & TIMESTAMP_MASK
        self._dispatch_counter += 1
        inst.in_iq = True
        self.entries.append(inst)

    def remove(self, inst):
        """Remove an issued or squashed instruction."""
        self.entries.remove(inst)
        inst.in_iq = False

    def squash_from(self, seq):
        """Drop all entries with sequence number >= ``seq``."""
        kept = []
        dropped = []
        for inst in self.entries:
            if inst.seq >= seq:
                inst.in_iq = False
                dropped.append(inst)
            else:
                kept.append(inst)
        self.entries = kept
        return dropped

    def head_timestamp(self):
        """Timestamp of the oldest entry (reference point for mod-64 age)."""
        if not self.entries:
            return 0
        oldest = min(self.entries, key=lambda e: e.seq)
        return oldest.timestamp

    def ready_entries(self, cycle, rename, lsq=None, load_gate=None):
        """Entries whose operands are ready in ``cycle``.

        Loads are additionally gated by memory disambiguation: by default
        they wait until every older store in the LSQ has resolved its
        address (conservative); a ``load_gate(inst)`` callable (e.g. a
        store-set predictor check) replaces that rule when provided.
        """
        ready = []
        for inst in self.entries:
            if not rename.srcs_ready(inst, cycle):
                continue
            if inst.is_load:
                if load_gate is not None:
                    if not load_gate(inst):
                        continue
                elif lsq is not None and not lsq.older_stores_resolved(
                    inst.seq, cycle
                ):
                    continue
            ready.append(inst)
        return ready

    def count_dependents(self, phys_reg):
        """Number of waiting entries that source ``phys_reg``.

        This is the tag-match count the Criticality Detection Logic feeds
        to its encoder (Section 3.5.2).
        """
        if phys_reg < 0:
            return 0
        return sum(1 for inst in self.entries if phys_reg in inst.phys_srcs)
