"""Specialized cycle loop for the dominant clean-run configurations.

:func:`run_fast` is a drop-in replacement for the while-loop inside
:meth:`~repro.uarch.pipeline.OoOCore.run`, valid only when every
per-cycle conditional it deletes is statically inert for the whole run:

* no interval sampler and no event bus attached (telemetry off),
* no commit listener (lockstep checking off),
* no thermal model on the sensor (no 128-cycle temperature advance),
* the injector is not storm-wrapped (chaos modes keep the pure loop).

Those conditions cover the throughput-critical campaign configurations
(fault-free baselines and the ABS/TEP measurement runs); everything else
— verification, storms, telemetry — falls back to the pure loop, whose
behavior is the reference. Whole-pipeline stalls (EP padding, selective
recovery bubbles) are NOT an exclusion: the stall branch is mirrored
exactly, and because :meth:`_consume_ep_stall` is the only caller of
``_shift_in_flight`` (which rebinds the event dictionaries wholesale),
the loop re-hoists its ``_events``/``_wb_count`` handles right after
every consumed stall. The fast loop must remain *bit-identical* to the
pure loop for eligible runs: it deletes only checks proven inert above
and accumulates ``cycles``/``iq_occupancy_accum`` in locals (flushed on
every exit path). ``REPRO_PURE_LOOP=1`` forces the pure loop everywhere,
which is how the equivalence test pins the two paths against each other.

Eligibility is *not* a one-shot check: an observer attached mid-window
(a telemetry sampler on a forked snapshot, a lockstep commit listener,
a thermal model hot-plugged by event-processing code) would silently
never fire if the fast loop kept running. :func:`run_fast` therefore
re-checks :func:`fast_eligible` at every 1024-cycle watchdog boundary
and, on loss, flushes its locals and returns ``None`` — the caller
(:meth:`OoOCore.run`) finishes the window on the reference loop, which
honors the newly attached observer from its next cycle.
"""

import os


def fast_eligible(core):
    """True when ``core``'s next ``run`` may use :func:`run_fast`."""
    if os.environ.get("REPRO_PURE_LOOP"):
        return False
    if core.telemetry_sampler is not None or core.ebus is not None:
        return False
    if core.commit_listener is not None:
        return False
    if getattr(core.sensor, "thermal", None) is not None:
        return False
    # storm-wrapped injectors (chaos mode) keep the reference loop
    if getattr(core.injector, "storm_faults", None) is not None:
        return False
    return True


def run_fast(core, max_committed, max_cycles, hang_cycles):
    """Run ``core`` until ``max_committed`` retires, on the fast loop.

    Mirrors the pure loop of :meth:`OoOCore.run` line for line, minus
    the telemetry/thermal checks that :func:`fast_eligible` proved
    inert; see the module docstring for the exact deletions. Returns
    the run's :class:`SimStats`, or ``None`` if an observer attached
    mid-window (eligibility re-checked every 1024 cycles) — the caller
    must then finish the window on the reference loop.
    """
    stats = core.stats
    progress_committed = stats.committed
    progress_cycle = core.cycle
    consume_ep_stall = core._consume_ep_stall
    process_events = core._process_events
    commit = core._commit
    select = core._select
    dispatch = core._dispatch
    fetch = core._fetch
    iq = core.iq
    rob_entries = core.rob._entries  # deque, mutated in place only
    refetch = core._refetch
    conveyor = core._conveyor
    depth = len(conveyor)
    # hoisted handles; re-bound after every consumed stall, the only
    # point where _shift_in_flight can rebind the dicts wholesale
    events_pop = core._events.pop
    wb_pop = core._wb_count.pop
    cycles = 0
    iq_occ = 0
    cycle = core.cycle
    try:
        while stats.committed < max_committed:
            if cycle > max_cycles:
                raise core._hang_error(
                    "cycle budget exhausted", max_committed,
                    cycle - progress_cycle,
                )
            if not cycle & 1023:
                if not fast_eligible(core):
                    # an observer attached mid-window; bail at this
                    # cycle boundary so the reference loop (which
                    # honors it) can finish the window seamlessly
                    return None
                committed = stats.committed
                if committed != progress_committed:
                    progress_committed = committed
                    progress_cycle = cycle
                elif cycle - progress_cycle >= hang_cycles:
                    raise core._hang_error(
                        "commit watchdog", max_committed,
                        cycle - progress_cycle,
                    )
            if core._ep_stalls and consume_ep_stall():
                events_pop = core._events.pop
                wb_pop = core._wb_count.pop
                cycles += 1
                cycle += 1
                core.cycle = cycle
                continue
            events = events_pop(cycle, None)
            if events:
                process_events(events)
            if rob_entries and rob_entries[0].completed:
                commit()
            if iq.entries:
                select()
            if conveyor[-1]:
                dispatch()
            for i in range(depth - 1, 0, -1):
                if not conveyor[i]:
                    conveyor[i], conveyor[i - 1] = conveyor[i - 1], conveyor[i]
            if (
                not conveyor[0]
                and core._blocking_branch is None
                and cycle >= core._fetch_resume_at
            ):
                fetch(conveyor[0])
            iq_occ += len(iq.entries)
            wb_pop(cycle, None)
            cycles += 1
            cycle += 1
            core.cycle = cycle
            if (
                core._done_fetching
                and not refetch
                and not rob_entries
                and not any(conveyor)
            ):
                break
    finally:
        # locals flush on every exit path so a watchdog raise (or a
        # caller catching it) still observes a consistent SimStats
        stats.cycles += cycles
        stats.iq_occupancy_accum += iq_occ
    stats.lsq_searches = core.lsq.cam_searches
    stats.store_forwards = core.lsq.forwards
    return stats
