"""The cycle-level out-of-order core (Figure 1 of the paper).

Model summary
-------------
Trace-driven, event-assisted, one loop iteration per cycle:

1. **EP stall check** — under the Error Padding scheme, a pending stall
   freezes the entire pipeline for the cycle (every in-flight event shifts
   by one).
2. **Events** — completions (ROB complete + writeback), branch resolutions
   (front-end redirect), and replays (Razor-style recovery for violations
   the active scheme does not tolerate).
3. **Commit** — up to ``width`` completed head instructions retire; stores
   drain to the data cache; the TEP trains on observed outcomes.
4. **Select/issue** — operand-ready issue-queue entries are ordered by the
   scheme's selection policy and issued against FU availability (the FUSR).
   The full timing chain of the instruction (register read, execute, memory,
   writeback) is computed here; VTE effects insert the per-stage extra cycle
   and freeze the resource behind a predicted-faulty instruction.
5. **Front end** — a ``frontend_depth``-stage conveyor from fetch to
   dispatch; fetch follows the trace with a gshare predictor (no wrong-path
   execution: a mispredicted branch blocks fetch until it resolves).

Timing chain (select at cycle ``c``, clean instruction):
register read at ``c+1``; execute ``c+2 .. c+1+lat``; dependents wake at
``c+lat`` (bypass: back-to-back for single-cycle ops); writeback/complete
at ``c+2+lat`` through a ``width``-lane writeback arbiter. Loads insert the
memory stage: address generation at ``c+2``, LSQ CAM search and cache
access after, dependents wake when data returns (non-speculative wakeup).
"""

from collections import deque
from operator import itemgetter

from repro.isa.opcodes import OpClass, PipeStage, UNPIPELINED_OPS
from repro.core.criticality import CriticalityDetector
from repro.core.vte import FreezeKind, vte_effects
from repro.uarch.branch_predictor import GShare
from repro.uarch.config import CoreConfig
from repro.uarch.functional_units import FuPool
from repro.uarch.issue_queue import IssueQueue, TIMESTAMP_MASK
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.memdep import StoreSetPredictor
from repro.uarch.regfile import INFINITE as _WAKE_UNKNOWN
from repro.uarch.regfile import RenameState
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import SimStats

# event kinds, processed in this order within a cycle
_EV_COMPLETE = 0
_EV_RESOLVE = 1
_EV_REPLAY = 2

_EV_KIND = itemgetter(0)

_INORDER_STALL_STAGES = (PipeStage.RENAME, PipeStage.DISPATCH, PipeStage.RETIRE)
_REPLAY_ONLY_STAGES = (PipeStage.FETCH, PipeStage.DECODE)

# (stage, mask bit) pairs checked at issue, in pipeline order
_ISSUE_FAULT_STAGES = tuple(
    (stage, 1 << int(stage))
    for stage in (PipeStage.ISSUE, PipeStage.REGREAD, PipeStage.EXECUTE,
                  PipeStage.MEM, PipeStage.WRITEBACK)
)
_INORDER_FAULT_STAGES = tuple(
    (stage, 1 << int(stage))
    for stage in _REPLAY_ONLY_STAGES + _INORDER_STALL_STAGES
)


class DeadlockError(RuntimeError):
    """Raised when the pipeline makes no progress for too long."""


class SimulationHangError(DeadlockError):
    """No-commit-progress watchdog fired (deadlock/livelock).

    Carries everything needed to diagnose the hang without re-running:
    the cycle it fired, commit progress against the budget, how long the
    commit stream had been silent, and the occupancy of every queueing
    structure (ROB/IQ/LSQ/FUs/front end) at that moment.
    """

    def __init__(self, message, cycle=None, committed=None, target=None,
                 stalled_cycles=None, occupancy=None):
        super().__init__(message)
        self.cycle = cycle
        self.committed = committed
        self.target = target
        self.stalled_cycles = stalled_cycles
        self.occupancy = occupancy or {}

    def detail(self):
        """Deterministic JSON-safe description (bundle ``failure.detail``)."""
        return {
            "cycle": self.cycle,
            "committed": self.committed,
            "target": self.target,
            "stalled_cycles": self.stalled_cycles,
            "occupancy": self.occupancy,
            "message": str(self),
        }

    def __reduce__(self):
        # keep structured fields across multiprocessing pickling
        return (_rebuild_hang, (str(self), self.cycle, self.committed,
                                self.target, self.stalled_cycles,
                                self.occupancy))


def _rebuild_hang(message, cycle, committed, target, stalled_cycles,
                  occupancy):
    return SimulationHangError(message, cycle, committed, target,
                               stalled_cycles, occupancy)


class OoOCore:
    """A 4-wide out-of-order core with violation-aware scheduling hooks.

    Parameters
    ----------
    config:
        A :class:`~repro.uarch.config.CoreConfig`.
    trace:
        Iterator of :class:`~repro.isa.instruction.DynInst` in fetch order.
    hierarchy:
        A :class:`~repro.mem.hierarchy.MemoryHierarchy`.
    scheme:
        A :class:`~repro.core.schemes.Scheme` (fault handling + policy).
    injector:
        A :class:`~repro.faults.injector.FaultInjector` or ``None`` for
        fault-free runs.
    tep:
        A :class:`~repro.core.tep.TimingErrorPredictor`; required when the
        scheme uses prediction.
    sensor:
        A :class:`~repro.faults.sensors.VoltageSensor` gating predictions.
    vdd:
        Operating supply voltage (passed to the injector).
    """

    def __init__(self, config, trace, hierarchy, scheme, injector=None,
                 tep=None, sensor=None, vdd=1.10):
        if scheme.uses_tep and tep is None:
            raise ValueError(f"scheme {scheme.name} requires a TEP instance")
        self.config = config
        self.trace = iter(trace)
        self.hierarchy = hierarchy
        self.scheme = scheme
        self.injector = injector
        self.tep = tep
        self.sensor = sensor
        self.vdd = vdd
        self.stats = SimStats()
        #: optional hook called with each retired DynInst, in commit
        #: order (used by the lockstep checker and the pipetrace viewer)
        self.commit_listener = None
        #: opt-in telemetry (repro.telemetry): a structured EventBus and
        #: a cycle-windowed IntervalSampler. Disabled (None) they cost
        #: one attribute check at each rare hook site and one integer
        #: compare per cycle in the run loop.
        self.ebus = None
        self.telemetry_sampler = None

        self.rename = RenameState(config.n_arch_regs, config.n_phys_regs)
        self.rob = ReorderBuffer(config.rob_size)
        self.iq = IssueQueue(config.iq_size)
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.fus = FuPool(config.fu_counts)
        self.bp = GShare(config.bp_table_bits, config.bp_history_bits)
        self.cdl = (
            CriticalityDetector(tep, config.criticality_threshold)
            if scheme.detects_criticality
            else None
        )
        self.memdep = (
            StoreSetPredictor()
            if config.mem_dependence == "store_sets"
            else None
        )

        self.cycle = 0
        # per-run constants hoisted off the per-cycle/per-instruction paths
        self._width = config.width
        self._uses_tep = scheme.uses_tep
        self._uses_vte = scheme.uses_vte
        self._uses_ep_stall = scheme.uses_ep_stall
        self._tolerates_pred = scheme.tolerates_predicted_faults
        self._selective_mode = config.replay_mode == "selective"
        self._replay_recovery = config.replay_recovery
        self._order_ready = scheme.policy.order_ready
        self._load_gate_fn = self._load_gate if self.memdep is not None else None
        self.rebind_mechanisms()
        self._events = {}           # cycle -> [(kind, inst), ...]
        self._wb_count = {}         # cycle -> reserved writeback lanes
        self._ep_stalls = {}        # cycle -> pending whole-pipeline stalls
        self._conveyor = [[] for _ in range(config.frontend_depth)]
        self._refetch = deque()
        self._fetch_resume_at = 0
        self._blocking_branch = None   # seq of unresolved mispredicted branch
        self._dispatch_hold_until = 0  # in-order fault stall (Section 2.2)
        self._done_fetching = False
        self._last_fetch_line = -1

    def rebind_mechanisms(self):
        """Re-latch the per-run bindings derived from ``tep``/``sensor``.

        ``__init__`` computes the TEP gate and the fused-lookup binding
        once so the fetch path never re-derives them. Measurement-boundary
        wrapping (storm chaos around the injector/sensor/TEP — see
        :func:`repro.harness.runner.begin_measurement`) swaps those
        objects *after* construction, so it calls this to recompute the
        latches — and the criticality detector's TEP reference — against
        the wrapped instances.
        """
        tep = self.tep
        sensor = self.sensor
        scheme = self.scheme
        # fused predict+key probe when the predictor implementation has one
        self._tep_lookup = getattr(tep, "predict_or_key", None)
        if not scheme.uses_tep:
            self._tep_gate = 1      # never armed
        elif sensor is None:
            self._tep_gate = 0      # unconditionally armed
        elif getattr(sensor, "dynamic", False):
            self._tep_gate = 2      # flaky/storm sensor: ask per fetch
        elif sensor.overclocked or sensor.vdd <= sensor.v_threshold:
            self._tep_gate = 0      # statically armed for the whole run
        elif sensor.thermal is None:
            self._tep_gate = 1      # statically unfavorable
        else:
            self._tep_gate = 2      # thermal-dependent: ask per fetch
        if self.cdl is not None:
            self.cdl.tep = tep

    # ==================================================================
    # public API
    # ==================================================================
    def run(self, max_committed, max_cycles=None, hang_cycles=20000):
        """Simulate until ``max_committed`` instructions retire.

        Returns the :class:`~repro.uarch.stats.SimStats` of the run.
        Two watchdogs guard against a wedged machine: ``hang_cycles``
        without a single commit (deadlock/livelock — the common failure
        shape) and ``max_cycles`` total (default: a generous multiple of
        the budget; backstop for pathological-but-progressing runs).
        Both raise :class:`SimulationHangError` with a full occupancy
        snapshot of the queueing structures.
        """
        if max_committed <= 0:
            raise ValueError("max_committed must be positive")
        if max_cycles is None:
            max_cycles = 400 * max_committed + 20000
        from repro.uarch.fastloop import fast_eligible, run_fast

        if fast_eligible(self):
            result = run_fast(self, max_committed, max_cycles, hang_cycles)
            if result is not None:
                return result
            # an observer attached mid-window and the fast loop bailed
            # at a cycle boundary; the reference loop below picks the
            # window up with the observer live from its next cycle
        stats = self.stats
        progress_committed = stats.committed
        progress_cycle = self.cycle
        thermal = getattr(self.sensor, "thermal", None)
        # interval-metrics sampling: one int-vs-inf compare per cycle
        # when no sampler is attached (see repro.telemetry.metrics)
        sampler = self.telemetry_sampler
        sample_due = (
            sampler.next_cycle if sampler is not None else float("inf")
        )
        # bind bound methods and stable sub-objects once: the loop below
        # runs once per simulated cycle. Dict-valued state
        # (``_events``/``_ep_stalls``/``_wb_count``) is rebound wholesale
        # by ``_shift_in_flight`` and must be read through ``self``.
        consume_ep_stall = self._consume_ep_stall
        process_events = self._process_events
        commit = self._commit
        select = self._select
        dispatch = self._dispatch
        fetch = self._fetch
        iq = self.iq
        rob_entries = self.rob._entries  # deque, mutated in place only
        refetch = self._refetch
        conveyor = self._conveyor
        depth = len(conveyor)
        while stats.committed < max_committed:
            cycle = self.cycle
            if cycle >= sample_due:
                sample_due = sampler.sample(self, cycle)
            if thermal is not None and not cycle & 127:
                thermal.advance(128)
            if cycle > max_cycles:
                raise self._hang_error(
                    "cycle budget exhausted", max_committed,
                    cycle - progress_cycle,
                )
            # commit watchdog, sampled every 1024 cycles to stay off the
            # hot path (a real hang is detected within hang_cycles + 1023)
            if not cycle & 1023:
                committed = stats.committed
                if committed != progress_committed:
                    progress_committed = committed
                    progress_cycle = cycle
                elif cycle - progress_cycle >= hang_cycles:
                    raise self._hang_error(
                        "commit watchdog", max_committed,
                        cycle - progress_cycle,
                    )
            if self._ep_stalls and consume_ep_stall():
                stats.cycles += 1
                self.cycle = cycle + 1
                continue
            events = self._events.pop(cycle, None)
            if events:
                process_events(events)
            if rob_entries and rob_entries[0].completed:
                commit()
            if iq.entries:
                select()
            # front end, inlined from _frontend: dispatch from the tail
            # latch, advance the conveyor, fetch into a free head latch
            # (conveyor slots are swapped in place, so index every cycle)
            if conveyor[-1]:
                dispatch()
            for i in range(depth - 1, 0, -1):
                if not conveyor[i]:
                    conveyor[i], conveyor[i - 1] = conveyor[i - 1], conveyor[i]
            if (
                not conveyor[0]
                and self._blocking_branch is None
                and cycle >= self._fetch_resume_at
            ):
                fetch(conveyor[0])
            stats.iq_occupancy_accum += len(iq.entries)
            self._wb_count.pop(cycle, None)
            stats.cycles += 1
            self.cycle = cycle + 1
            if (
                self._done_fetching
                and not refetch
                and not rob_entries
                and not any(conveyor)
            ):
                break
        stats.lsq_searches = self.lsq.cam_searches
        stats.store_forwards = self.lsq.forwards
        return stats

    def occupancy(self):
        """Occupancy of every queueing structure (hang diagnostics)."""
        cycle = self.cycle
        fus_busy = {
            kind.name: sum(1 for u in units if u.next_issue > cycle)
            for kind, units in self.fus.units.items()
        }
        return {
            "cycle": cycle,
            "rob": len(self.rob),
            "iq": len(self.iq.entries),
            "lsq": len(self.lsq),
            "fus_busy": fus_busy,
            "conveyor": sum(len(latch) for latch in self._conveyor),
            "refetch": len(self._refetch),
            "pending_events": sum(len(e) for e in self._events.values()),
            "pending_ep_stalls": sum(self._ep_stalls.values()),
            "blocking_branch": self._blocking_branch,
            "fetch_resume_at": self._fetch_resume_at,
            "dispatch_hold_until": self._dispatch_hold_until,
            "done_fetching": self._done_fetching,
        }

    def _hang_error(self, reason, max_committed, stalled_cycles):
        committed = self.stats.committed
        occupancy = self.occupancy()
        if self.ebus is not None:
            self.ebus.emit(
                self.cycle, "watchdog", reason=reason, committed=committed,
                target=max_committed, stalled_cycles=stalled_cycles,
            )
        return SimulationHangError(
            f"{reason}: no commit for {stalled_cycles} cycles at "
            f"cycle={self.cycle}, committed={committed}/{max_committed}, "
            f"rob={occupancy['rob']}, iq={occupancy['iq']}, "
            f"lsq={occupancy['lsq']}",
            cycle=self.cycle,
            committed=committed,
            target=max_committed,
            stalled_cycles=stalled_cycles,
            occupancy=occupancy,
        )

    # ==================================================================
    # EP global stall (Error Padding baseline)
    # ==================================================================
    def _consume_ep_stall(self):
        pending = self._ep_stalls.get(self.cycle)
        if not pending:
            return False
        if pending == 1:
            del self._ep_stalls[self.cycle]
        else:
            self._ep_stalls[self.cycle] = pending - 1
        self._shift_in_flight()
        self.stats.ep_stalls += 1
        return True

    def _shift_in_flight(self):
        """Delay everything in flight by one cycle (whole-pipeline stall)."""
        now = self.cycle
        self._events = {
            (c + 1 if c >= now else c): evs for c, evs in self._events.items()
        }
        self._ep_stalls = {
            (c + 1 if c >= now else c): n for c, n in self._ep_stalls.items()
        }
        self._wb_count = {
            (c + 1 if c >= now else c): n for c, n in self._wb_count.items()
        }
        self.rename.shift_pending(now - 1)
        self.fus.shift_pending(now)
        # wake-cycle probe caches (issue_queue.ready_entries) latch absolute
        # cycles; the shifted scoreboard invalidates every cached value
        for inst in self.iq.entries:
            inst.wake = _WAKE_UNKNOWN
        if self._fetch_resume_at > now:
            self._fetch_resume_at += 1
        if self._dispatch_hold_until > now:
            self._dispatch_hold_until += 1

    # ==================================================================
    # events
    # ==================================================================
    def _schedule(self, cycle, kind, inst):
        events = self._events
        lst = events.get(cycle)
        if lst is None:
            events[cycle] = [(kind, inst, inst.version)]
        else:
            lst.append((kind, inst, inst.version))

    def _process_events(self, events=None):
        if events is None:
            events = self._events.pop(self.cycle, None)
            if not events:
                return
        if len(events) > 1:
            events.sort(key=_EV_KIND)
        stats = self.stats
        cycle = self.cycle
        for kind, inst, version in events:
            if inst.squashed or inst.version != version:
                continue  # stale: the instruction was squashed/re-injected
            if kind == _EV_COMPLETE:
                inst.completed = True
                inst.complete_cycle = cycle
                stats.wb_writes += 1
            elif kind == _EV_RESOLVE:
                if self._blocking_branch == inst.seq:
                    self._blocking_branch = None
                    self._fetch_resume_at = max(
                        self._fetch_resume_at,
                        self.cycle + self.config.redirect_penalty,
                    )
                    if self.config.model_wrong_path:
                        # the front end fetched down the wrong path from
                        # the cycle after the branch until the redirect
                        wasted_cycles = max(
                            0, self.cycle - inst.fetch_cycle - 1
                        )
                        self.stats.wrong_path_fetched += (
                            wasted_cycles * self.config.width
                        )
            elif kind == _EV_REPLAY:
                if inst.commit_cycle < 0:
                    self._replay(inst)

    # ==================================================================
    # commit
    # ==================================================================
    def _commit(self):
        stats = self.stats
        cycle = self.cycle
        rename_commit = self.rename.commit
        lsq_retire = self.lsq.retire
        store_access = self.hierarchy.access_data_latency
        train_tep = self._train_tep
        listener = self.commit_listener
        ebus = self.ebus
        for inst in self.rob.commit_ready(self._width):
            rename_commit(inst)
            if inst.is_mem:
                lsq_retire(inst)
                if inst.is_store:
                    store_access(inst.mem_addr)
            if inst.phys_dest >= 0:
                stats.regwrites += 1
            inst.commit_cycle = cycle
            stats.committed += 1
            train_tep(inst)
            if listener is not None:
                listener(inst)
            if ebus is not None:
                ebus.emit(
                    cycle, "retire", seq=inst.seq, pc=inst.pc,
                    op=inst.op.name, fetch=inst.fetch_cycle,
                    dispatch=inst.dispatch_cycle, issue=inst.issue_cycle,
                    complete=inst.complete_cycle,
                    faulty=inst.replayed or bool(inst.fault_stages),
                    predicted=inst.pred_fault_stage is not None,
                )

    def _train_tep(self, inst):
        """Train the predictor on the instruction's observed outcome."""
        if not self._uses_tep or inst.replayed:
            # replayed instances trained at detection time (Section 2.1.2)
            return
        key = inst.tep_key
        if key is None:
            if self.tep is None:
                return
            key = self.tep.key_for(inst.pc, self.bp.ghr)
        faulted_stage = self._earliest_fault_stage(inst)
        if faulted_stage is not None:
            self.tep.train(key, faulted_stage, True)
        elif inst.pred_fault_stage is not None:
            self.stats.false_predictions += 1
            self.tep.train(key, None, False)
        else:
            return
        ebus = self.ebus
        if ebus is not None:
            ebus.emit(
                self.cycle, "tep_train", seq=inst.seq, pc=inst.pc,
                stage=(
                    faulted_stage.name if faulted_stage is not None else None
                ),
                positive=faulted_stage is not None,
            )

    @staticmethod
    def _earliest_fault_stage(inst):
        if not inst.fault_stages:
            return None
        mask = inst.fault_stages
        for stage in PipeStage:
            if mask & (1 << int(stage)):
                return stage
        return None

    # ==================================================================
    # select / issue (the OoO engine)
    # ==================================================================
    def _load_gate(self, inst):
        """Store-set gate: wait only for a predicted-conflicting store."""
        wait_seq = self.memdep.must_wait_for(inst.pc, inst.seq)
        if wait_seq is None:
            return True
        return not self.lsq.unresolved(wait_seq, self.cycle)

    def _select(self):
        iq = self.iq
        if not iq.entries:
            return
        cycle = self.cycle
        ready = iq.ready_entries(cycle, self.rename, self.lsq, self._load_gate_fn)
        if not ready:
            return
        # order_ready exploits that the ready list is already age-ordered
        # (see SelectionPolicy.order_ready) and avoids the full sort
        ordered = self._order_ready(ready, iq)
        width = self._width
        units = self.fus.units
        issue = self._issue
        issued = 0
        for inst in ordered:
            for unit in units[inst.fu_kind]:
                if unit.next_issue <= cycle:
                    issue(inst, unit)
                    issued += 1
                    break
            if issued >= width:
                break

    def _issue(self, inst, unit):
        """Issue one instruction: timing chain, VTE effects, fault events."""
        cycle = self.cycle
        stats = self.stats
        inst.issue_cycle = cycle
        # iq.remove, inlined
        self.iq.entries.remove(inst)
        inst.in_iq = False
        stats.issued += 1
        stats.regreads += len(inst.phys_srcs)
        op = inst.op
        fu_ops = stats.fu_ops  # count_fu_op, inlined
        fu_ops[op] = fu_ops.get(op, 0) + 1
        ebus = self.ebus

        # -- prediction handling ---------------------------------------
        pred_stage = inst.pred_fault_stage
        effects = None
        if pred_stage is not None and self._uses_vte:
            effects = vte_effects(pred_stage, op)
            if effects.stage is not None:
                stats.padded_instructions += 1
                if ebus is not None:
                    ebus.emit(
                        cycle, "vte_pad", seq=inst.seq, pc=inst.pc,
                        stage=pred_stage.name,
                    )
            rr_extra = effects.rr_extra
            ex_extra = effects.ex_extra
            mem_extra = effects.mem_extra
            wb_extra = effects.wb_extra
        else:
            rr_extra = ex_extra = mem_extra = wb_extra = 0

        # -- actual violations: classify tolerated vs recovery ----------
        selective_stages = ()
        flush_stage = None
        mask = inst.fault_stages
        if mask:
            is_mem = inst.is_mem
            tolerates = self._tolerates_pred
            selective_mode = self._selective_mode
            count_fault = stats.count_fault
            selective_stages = []
            safety_replay = False
            for stage, bit in _ISSUE_FAULT_STAGES:
                if not mask & bit:
                    continue
                if stage is PipeStage.MEM and not is_mem:
                    # a violation latched in a stage this instruction never
                    # occupies in the datapath model — only storm-mode
                    # "wild" faults produce this, and the TEP cannot see
                    # them. Safety net: degrade to a full stall-and-replay
                    # instead of letting the corrupt latch go live (there
                    # is no MEM timing anchor to hang a repair on).
                    count_fault(stage, False)
                    stats.safety_net_replays += 1
                    safety_replay = True
                    if ebus is not None:
                        ebus.emit(cycle, "fault", seq=inst.seq, pc=inst.pc,
                                  stage=stage.name, tolerated=False)
                        ebus.emit(cycle, "safety_net", seq=inst.seq,
                                  pc=inst.pc, reason="wild_mem")
                    continue
                tolerated = stage == pred_stage and tolerates
                if (tolerated and effects is not None
                        and effects.stage is None):
                    # predicted and nominally tolerated, but the VTE issued
                    # no padding for this stage/op pair: the extra cycle
                    # never happened. Safety net: recover as unpredicted.
                    stats.safety_net_replays += 1
                    tolerated = False
                    if ebus is not None:
                        ebus.emit(cycle, "safety_net", seq=inst.seq,
                                  pc=inst.pc, reason="unpadded")
                count_fault(stage, tolerated)
                if ebus is not None:
                    ebus.emit(cycle, "fault", seq=inst.seq, pc=inst.pc,
                              stage=stage.name, tolerated=tolerated)
                if tolerated:
                    continue
                if selective_mode:
                    selective_stages.append(stage)
                elif flush_stage is None:
                    flush_stage = stage
            if safety_replay and flush_stage is None:
                self._schedule(cycle + 1, _EV_REPLAY, inst)
            # selective (Razor-I) recovery: the faulty instruction
            # re-executes in place with the recovery penalty; its
            # dependents simply wait
            penalty = self._replay_recovery
            for stage in selective_stages:
                stats.replays += 1
                if ebus is not None:
                    ebus.emit(cycle, "selective", seq=inst.seq, pc=inst.pc,
                              stage=stage.name, penalty=penalty)
                if stage in (PipeStage.ISSUE, PipeStage.REGREAD):
                    rr_extra += penalty
                elif stage is PipeStage.EXECUTE:
                    ex_extra += penalty
                elif stage is PipeStage.MEM:
                    mem_extra += penalty
                else:
                    wb_extra += penalty

        exec_lat = inst.latency + ex_extra
        agen_end = cycle + 2 + rr_extra  # address generation for mem ops

        # -- per-class timing ------------------------------------------
        if inst.is_load:
            lsq = self.lsq
            lsq.resolve_address(inst, agen_end)
            cam_cycle = agen_end
            if lsq.search_forward(inst, cam_cycle):
                data_lat = 1
            else:
                data_lat = self.hierarchy.access_data_latency(inst.mem_addr)
            wakeup = agen_end + mem_extra + data_lat
            wb_request = wakeup + 1
        elif inst.is_store:
            lsq = self.lsq
            lsq.resolve_address(inst, agen_end)
            cam_cycle = agen_end
            lsq.cam_searches += 1
            wakeup = None
            wb_request = agen_end + mem_extra + 1
            if self.memdep is not None:
                self.memdep.store_resolved(inst.pc, inst.seq)
                self._check_ordering_violations(inst, agen_end)
        else:
            cam_cycle = None
            wakeup = cycle + inst.latency + rr_extra + ex_extra
            wb_request = cycle + 2 + rr_extra + exec_lat
        exec_end = cycle + 1 + rr_extra + exec_lat

        # -- writeback arbitration (_reserve_writeback, inlined) ---------
        width = self._width
        wb = self._wb_count
        get = wb.get
        wb_cycle = wb_request
        while get(wb_cycle, 0) >= width:
            wb_cycle += 1
        wb[wb_cycle] = get(wb_cycle, 0) + 1
        if wb_extra:
            wb[wb_cycle + 1] = get(wb_cycle + 1, 0) + 1
        complete_cycle = wb_cycle + wb_extra
        phys_dest = inst.phys_dest
        if wakeup is not None and phys_dest >= 0:
            self.rename.ready_cycle[phys_dest] = wakeup  # set_ready, inlined
            stats.broadcasts += 1
            stats.broadcast_occupancy += len(self.iq.entries)
            if self.cdl is not None:
                n_dep = self.iq.count_dependents(phys_dest)
                self.cdl.observe_broadcast(inst, n_dep)
        self._schedule(complete_cycle, _EV_COMPLETE, inst)

        # -- functional unit reservation + VTE freezing -------------------
        unit.next_issue = cycle + (exec_lat if op in UNPIPELINED_OPS else 1)
        self.fus.issued[unit.kind] += 1
        if effects is not None and effects.freeze is not FreezeKind.NONE:
            stats.slot_freezes += 1
            if ebus is not None:
                ebus.emit(cycle, "slot_freeze", seq=inst.seq, pc=inst.pc,
                          fu=unit.kind.name, kind=effects.freeze.name)
            if effects.freeze is FreezeKind.SLOT_ONE_CYCLE:
                unit.next_issue = max(unit.next_issue, cycle + 2)
            elif effects.freeze is FreezeKind.UNTIL_COMPLETE:
                unit.next_issue = max(unit.next_issue, exec_end)
            elif effects.freeze is FreezeKind.BUSY_PLUS_ONE:
                unit.freeze_extra(1)
            # WB_SLOT freezing is handled inside the writeback arbiter

        # -- branch resolution -------------------------------------------
        if inst.is_branch and inst.mispredicted:
            self._schedule(exec_end, _EV_RESOLVE, inst)

        # -- Error Padding stalls ------------------------------------------
        if pred_stage is not None and self.scheme.uses_ep_stall:
            stage_cycle = self._stage_cycle(
                pred_stage, cycle, cam_cycle, exec_end, wb_cycle
            )
            if stage_cycle is not None:
                stats.padded_instructions += 1
                # the stall fires when the instruction occupies the faulty
                # stage; issue-stage stalls land in the next cycle (this
                # one's select already happened)
                stall_cycle = max(stage_cycle, cycle + 1)
                self._ep_stalls[stall_cycle] = (
                    self._ep_stalls.get(stall_cycle, 0) + 1
                )
                if ebus is not None:
                    ebus.emit(cycle, "ep_stall", seq=inst.seq, pc=inst.pc,
                              stage=pred_stage.name, at=stall_cycle)

        # -- recovery scheduling ---------------------------------------------
        for stage in selective_stages:
            # recovery bubbles while the errant stage re-latches and the
            # pipeline control restores (Razor recovery sequence)
            stage_cycle = self._stage_cycle(
                stage, cycle, cam_cycle, exec_end, wb_cycle
            )
            if stage_cycle is None:
                continue
            stall_cycle = max(stage_cycle, cycle + 1)
            self._ep_stalls[stall_cycle] = (
                self._ep_stalls.get(stall_cycle, 0)
                + self.config.recovery_bubbles
            )
        if flush_stage is not None:
            stage_cycle = self._stage_cycle(
                flush_stage, cycle, cam_cycle, exec_end, wb_cycle
            )
            # detection happens when the stage executes; recovery can
            # trigger at the earliest in the next cycle
            self._schedule(
                max(stage_cycle, cycle + 1), _EV_REPLAY, inst
            )

    def _stage_cycle(self, stage, select_cycle, cam_cycle, exec_end, wb_cycle):
        """Cycle at which ``stage`` is occupied by this instruction."""
        if stage is PipeStage.ISSUE:
            return select_cycle
        if stage is PipeStage.REGREAD:
            return select_cycle + 1
        if stage is PipeStage.EXECUTE:
            return exec_end
        if stage is PipeStage.MEM:
            return cam_cycle  # None for non-memory instructions
        if stage is PipeStage.WRITEBACK:
            return wb_cycle
        return None

    def _check_ordering_violations(self, store_inst, cycle):
        """Squash loads that speculated past a conflicting older store.

        A correctness repair, so it always uses flush-style replay (the
        load consumed stale data); the store-set predictor is trained so
        the pair synchronizes in the future.
        """
        victims = self.lsq.issued_younger_loads_matching(store_inst, cycle)
        if not victims:
            return
        oldest = min(victims, key=lambda i: i.seq)
        self.memdep.train_violation(oldest.pc, store_inst.pc)
        self.stats.memdep_violations += 1
        if self.ebus is not None:
            self.ebus.emit(
                self.cycle, "memdep", seq=oldest.seq, load_pc=oldest.pc,
                store_pc=store_inst.pc,
            )
        if oldest.commit_cycle < 0 and not oldest.squashed:
            self._schedule(max(cycle, self.cycle + 1), _EV_REPLAY, oldest)

    def _reserve_writeback(self, request_cycle, wb_extra):
        """Find the first cycle with a free writeback lane from ``request``.

        A predicted-faulty-in-writeback instruction also reserves its lane
        in the following cycle (input recirculation, Section 3.3.5).
        """
        width = self._width
        wb = self._wb_count
        get = wb.get
        t = request_cycle
        while get(t, 0) >= width:
            t += 1
        wb[t] = get(t, 0) + 1
        if wb_extra:
            wb[t + 1] = get(t + 1, 0) + 1
        return t

    # ==================================================================
    # replay (Razor-style recovery, Section 2.1.2)
    # ==================================================================
    def _replay(self, inst):
        """Squash ``inst`` and everything younger; refetch from ``inst``."""
        stats = self.stats
        stats.replays += 1
        if self.scheme.uses_tep and inst.tep_key is not None:
            self.tep.train(
                inst.tep_key, self._earliest_fault_stage(inst), True
            )
        squashed = self.rob.squash_from(inst.seq)  # youngest first
        for s in squashed:
            self.rename.squash(s)
            s.squashed = True
            stats.squashed += 1
        self.iq.squash_from(inst.seq)
        self.lsq.squash_from(inst.seq)
        conveyor_insts = []
        for latch in self._conveyor:
            conveyor_insts.extend(latch)
            latch.clear()
        requeue = sorted(squashed + conveyor_insts, key=lambda s: s.seq)
        for s in requeue:
            s.reset_for_refetch()
        inst.replayed = True
        inst.fault_stages = 0  # the recovery re-executes with safe timing
        for s in reversed(requeue):
            self._refetch.appendleft(s)
        self._blocking_branch = None
        self._fetch_resume_at = self.cycle + self.config.replay_recovery
        self._dispatch_hold_until = 0
        if self.ebus is not None:
            self.ebus.emit(
                self.cycle, "replay", seq=inst.seq, pc=inst.pc,
                squashed=len(squashed), refetched=len(requeue),
            )

    # ==================================================================
    # front end
    # ==================================================================
    def _frontend(self):
        self._dispatch()
        conveyor = self._conveyor
        for i in range(len(conveyor) - 1, 0, -1):
            if not conveyor[i]:
                conveyor[i], conveyor[i - 1] = conveyor[i - 1], conveyor[i]
        if not conveyor[0]:
            self._fetch(conveyor[0])

    def _dispatch(self):
        cycle = self.cycle
        if cycle < self._dispatch_hold_until:
            return
        latch = self._conveyor[-1]
        if not latch:
            return
        rob = self.rob
        iq = self.iq
        rob_entries = rob._entries
        iq_entries = iq.entries
        rob_size = rob.size
        iq_size = iq.size
        if len(rob_entries) >= rob_size or len(iq_entries) >= iq_size:
            return  # back-pressure: nothing can dispatch this cycle
        lsq = self.lsq
        rename = self.rename
        memdep = self.memdep
        inorder_checks = self._inorder_fault_checks
        free_list = rename.free_list
        n = min(len(latch), self._width)
        k = 0
        while k < n:
            inst = latch[k]
            if len(rob_entries) >= rob_size or len(iq_entries) >= iq_size:
                break
            is_mem = inst.is_mem
            if is_mem and lsq.full:
                break
            # can_rename, inlined: a dest needs a free physical register
            if inst.static.dest is not None and not free_list:
                break
            rename.rename(inst)
            rob_entries.append(inst)  # rob.allocate (capacity checked above)
            # iq.insert, inlined: stamp mod-64 timestamp + dispatch order
            counter = iq._dispatch_counter
            inst.timestamp = counter & TIMESTAMP_MASK
            inst.dispatch_order = counter
            iq._dispatch_counter = counter + 1
            inst.in_iq = True
            iq_entries.append(inst)
            if is_mem:
                lsq.allocate(inst)
                if memdep is not None and inst.is_store:
                    memdep.store_fetched(inst.pc, inst.seq)
            inst.dispatch_cycle = cycle
            k += 1
            if inst.pred_fault_stage is not None or inst.fault_stages:
                inorder_checks(inst)
        if k:
            del latch[:k]
            self.stats.dispatched += k

    def _inorder_fault_checks(self, inst):
        """Stall/replay handling for faults outside the OoO engine (§2.2)."""
        pred = inst.pred_fault_stage
        uses_tep = self._uses_tep
        ebus = self.ebus
        if pred is not None and uses_tep and pred in _INORDER_STALL_STAGES:
            # the faulty in-order stage takes two cycles behind a stall signal
            self._dispatch_hold_until = self.cycle + 2
            self.stats.inorder_stalls += 1
            if ebus is not None:
                ebus.emit(self.cycle, "inorder_stall", seq=inst.seq,
                          pc=inst.pc, stage=pred.name)
        mask = inst.fault_stages
        if not mask:
            return
        for stage, bit in _INORDER_FAULT_STAGES:
            if mask & bit:
                tolerated = (
                    stage == pred
                    and uses_tep
                    and stage in _INORDER_STALL_STAGES
                )
                self.stats.count_fault(stage, tolerated)
                if ebus is not None:
                    ebus.emit(self.cycle, "fault", seq=inst.seq, pc=inst.pc,
                              stage=stage.name, tolerated=tolerated)
                if not tolerated:
                    self._schedule(self.cycle + 1, _EV_REPLAY, inst)
                    break

    def _next_inst(self):
        if self._refetch:
            return self._refetch.popleft()
        try:
            return next(self.trace)
        except StopIteration:
            self._done_fetching = True
            return None

    def _fetch(self, latch):
        if self._done_fetching and not self._refetch:
            return
        if self._blocking_branch is not None:
            return
        cycle = self.cycle
        if cycle < self._fetch_resume_at:
            return
        stats = self.stats
        injector = self.injector
        vdd = self.vdd
        refetch = self._refetch
        trace_next = self.trace.__next__
        predict_branch = self._predict_branch
        predict_fault = self._predict_fault
        access_inst_latency = self.hierarchy.access_inst_latency
        append = latch.append
        tep_gate = self._tep_gate
        icache_stall = 0
        last_line = self._last_fetch_line
        fetched = 0
        for _ in range(self._width):
            # _next_inst, inlined
            if refetch:
                inst = refetch.popleft()
            else:
                try:
                    inst = trace_next()
                except StopIteration:
                    self._done_fetching = True
                    break
            inst.fetch_cycle = cycle
            fetched += 1
            line = inst.pc >> 6
            if line != last_line:
                last_line = line
                latency = access_inst_latency(inst.pc)
                if latency > 1:
                    icache_stall = max(icache_stall, latency - 1)
            if injector is not None and not inst.refetched:
                injector.resolve(inst, vdd)
            if inst.is_branch:
                predict_branch(inst)
            if tep_gate != 1:
                predict_fault(inst)
            append(inst)
            if inst.mispredicted:
                self._blocking_branch = inst.seq
                break
        self._last_fetch_line = last_line
        stats.fetched += fetched
        if icache_stall:
            self._fetch_resume_at = max(
                self._fetch_resume_at, cycle + 1 + icache_stall
            )

    def _predict_branch(self, inst):
        if not inst.is_branch:
            return
        conditional = 0.0 < inst.static.taken_prob < 1.0
        if inst.refetched:
            return  # outcome/misprediction decided at first fetch
        if conditional:
            self.stats.branches += 1
            wrong = self.bp.predict_and_update(inst.pc, inst.taken)
            if wrong:
                inst.mispredicted = True
                self.stats.branch_mispredicts += 1

    def _predict_fault(self, inst):
        """TEP lookup at decode (Section 2.1.1), gated by the sensors."""
        gate = self._tep_gate
        if gate and (gate == 1 or not self.sensor.favorable()):
            return
        lookup = self._tep_lookup
        if lookup is not None:
            prediction, key = lookup(inst.pc, self.bp.ghr)
            inst.tep_key = key
        else:
            tep = self.tep
            ghr = self.bp.ghr
            prediction = tep.predict(inst.pc, ghr)
            inst.tep_key = (
                prediction.key if prediction is not None
                else tep.key_for(inst.pc, ghr)
            )
        if prediction is not None:
            inst.pred_fault_stage = prediction.stage
            inst.pred_critical = prediction.critical
            if self.ebus is not None:
                self.ebus.emit(
                    self.cycle, "tep_predict", seq=inst.seq, pc=inst.pc,
                    stage=prediction.stage.name,
                    critical=prediction.critical,
                )

    # ==================================================================
    def _drained(self):
        if not self._done_fetching or self._refetch:
            return False
        if len(self.rob) or any(self._conveyor):
            return False
        return True

    @classmethod
    def default(cls, trace, hierarchy, scheme, **kwargs):
        """Convenience constructor with the Core-1 configuration."""
        return cls(CoreConfig.core1(), trace, hierarchy, scheme, **kwargs)
