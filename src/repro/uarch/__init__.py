"""Cycle-level out-of-order core model (Fabscalar Core-1 configuration).

The pipeline follows Figure 1 of the paper: an in-order front end
(fetch/decode/rename/dispatch), an OoO engine (issue/register-read/execute/
memory/writeback) and in-order retire. The model is trace-driven and
event-assisted: instruction completion times are computed at select time
and delivered through a per-cycle event table, which keeps the Python
implementation fast enough for multi-benchmark sweeps.
"""

from repro.uarch.config import CoreConfig
from repro.uarch.branch_predictor import GShare
from repro.uarch.regfile import RenameState
from repro.uarch.rob import ReorderBuffer
from repro.uarch.issue_queue import IssueQueue
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.functional_units import FuPool
from repro.uarch.stats import SimStats
from repro.uarch.pipeline import OoOCore

__all__ = [
    "CoreConfig",
    "GShare",
    "RenameState",
    "ReorderBuffer",
    "IssueQueue",
    "LoadStoreQueue",
    "FuPool",
    "SimStats",
    "OoOCore",
]
