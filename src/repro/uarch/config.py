"""Core configuration (defaults: Fabscalar Core-1, Section 4.1/4.2).

Core-1 is a 4-wide out-of-order pipeline with a 32-entry issue queue,
96 physical registers, single- and multi-cycle functional units, and a
10-stage branch-misprediction loop spanning fetch to execute.
"""

from repro.isa.opcodes import FuKind


class CoreConfig:
    """All sizing/latency parameters of the simulated core."""

    def __init__(
        self,
        width=4,
        iq_size=32,
        rob_size=128,
        lsq_size=32,
        n_arch_regs=32,
        n_phys_regs=96,
        n_simple_alu=2,
        n_complex_alu=1,
        n_mem_ports=1,
        frontend_depth=6,
        redirect_penalty=2,
        replay_recovery=3,
        recovery_bubbles=3,
        replay_mode="selective",
        bp_history_bits=10,
        bp_table_bits=12,
        criticality_threshold=8,
        mem_dependence="conservative",
        model_wrong_path=True,
        model_inorder_faults=False,
    ):
        if width <= 0 or iq_size <= 0 or rob_size <= 0:
            raise ValueError("core dimensions must be positive")
        if n_phys_regs <= n_arch_regs:
            raise ValueError("need more physical than architectural registers")
        self.width = width
        self.iq_size = iq_size
        self.rob_size = rob_size
        self.lsq_size = lsq_size
        self.n_arch_regs = n_arch_regs
        self.n_phys_regs = n_phys_regs
        self.fu_counts = {
            FuKind.SIMPLE: n_simple_alu,
            FuKind.COMPLEX: n_complex_alu,
            FuKind.MEM: n_mem_ports,
        }
        #: stages from fetch to dispatch; the mispredict loop is
        #: frontend_depth + issue-wait + regread + execute ~ 10 stages.
        self.frontend_depth = frontend_depth
        self.redirect_penalty = redirect_penalty
        self.replay_recovery = replay_recovery
        #: dead pipeline cycles per selective recovery (detect, restore
        #: the shadow-latch value, re-fire) — the dominant Razor cost
        self.recovery_bubbles = recovery_bubbles
        if replay_mode not in ("selective", "flush"):
            raise ValueError("replay_mode must be 'selective' or 'flush'")
        #: Razor-style recovery for unpredicted violations:
        #: "selective" re-executes the faulty instruction in place (shadow
        #: latch / counterflow recovery: +replay_recovery cycles on the
        #: instruction plus a one-cycle pipeline bubble, Razor [15]);
        #: "flush" squashes the faulty instruction and everything younger
        #: and refetches (RazorII-style architectural replay).
        self.replay_mode = replay_mode
        self.bp_history_bits = bp_history_bits
        self.bp_table_bits = bp_table_bits
        self.criticality_threshold = criticality_threshold
        if mem_dependence not in ("conservative", "store_sets"):
            raise ValueError(
                "mem_dependence must be 'conservative' or 'store_sets'"
            )
        #: load/store disambiguation: "conservative" holds loads until all
        #: older store addresses resolve; "store_sets" speculates with a
        #: Chrysos/Emer store-set predictor and replays on violations
        self.mem_dependence = mem_dependence
        #: account the energy of wrong-path fetch/decode work while a
        #: mispredicted branch resolves (timing is unaffected: wrong-path
        #: instructions never enter the rename/OoO engine in this model)
        self.model_wrong_path = model_wrong_path
        self.model_inorder_faults = model_inorder_faults

    @classmethod
    def core1(cls, **overrides):
        """The paper's Core-1 configuration, with optional overrides."""
        return cls(**overrides)

    @classmethod
    def core2(cls, **overrides):
        """A narrower 2-wide composition (Fabscalar-style little core).

        Half the width, issue queue, ROB and physical registers of Core-1,
        with a single simple ALU — used by the width-sensitivity ablation.
        """
        params = dict(
            width=2, iq_size=16, rob_size=64, lsq_size=16,
            n_phys_regs=64, n_simple_alu=1, n_complex_alu=1, n_mem_ports=1,
        )
        params.update(overrides)
        return cls(**params)

    def __repr__(self):
        return (
            f"CoreConfig(width={self.width}, iq={self.iq_size}, "
            f"rob={self.rob_size}, phys={self.n_phys_regs}, "
            f"fus={dict(self.fu_counts)})"
        )
