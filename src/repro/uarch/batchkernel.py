"""On-demand builder for the compiled batch-engine kernel.

``batchkernel.c`` holds a per-lane C transliteration of the
:class:`~repro.uarch.batchcore.BatchEngine` cycle loop. This module
compiles it with the system C compiler the first time a batch runs and
binds the entry point via :mod:`ctypes`. Everything is best-effort: no
compiler, a failed compile, a read-only cache dir, or
``REPRO_BATCH_KERNEL=0`` all degrade to returning ``None``, in which
case the engine keeps its pure-numpy loop (same results, slower).

The shared object is cached on disk keyed by a hash of the C source, so
recompiles happen only when the kernel changes. Set
``REPRO_KERNEL_CACHE`` to move the cache out of the default temp dir.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

_N_PTRS = 100
_N_PARAMS = 36

_loaded = False
_fn = None


def kernel_enabled():
    """False when the user opted out via ``REPRO_BATCH_KERNEL=0``."""
    return os.environ.get("REPRO_BATCH_KERNEL", "1") != "0"


def _source_path():
    return os.path.join(os.path.dirname(__file__), "batchkernel.c")


def _compiler():
    cc = os.environ.get("CC")
    if cc:
        return shutil.which(cc)
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


def _cache_dir():
    return os.environ.get("REPRO_KERNEL_CACHE") or tempfile.gettempdir()


def build_kernel():
    """Compile (or reuse) the shared object; returns its path or None."""
    src = _source_path()
    try:
        with open(src, "rb") as f:
            code = f.read()
    except OSError:
        return None
    digest = hashlib.sha256(code).hexdigest()[:16]
    so = os.path.join(_cache_dir(), f"repro-batchkernel-{digest}.so")
    if os.path.exists(so):
        return so
    cc = _compiler()
    if cc is None:
        return None
    tmp = f"{so}.{os.getpid()}.tmp"
    try:
        subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, src],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp, so)
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return so


def load_kernel():
    """ctypes-bound ``repro_batch_run`` or None; result is memoized."""
    global _loaded, _fn
    if _loaded:
        return _fn
    _loaded = True
    if not kernel_enabled():
        return None
    so = build_kernel()
    if so is None:
        return None
    try:
        lib = ctypes.CDLL(so)
        fn = lib.repro_batch_run
    except (OSError, AttributeError):
        return None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_void_p),
        ctypes.POINTER(ctypes.c_int64),
    ]
    fn.restype = None
    _fn = fn
    return _fn


def reset_kernel_cache():
    """Forget the memoized load result (test hook for the env gates)."""
    global _loaded, _fn
    _loaded = False
    _fn = None


def call_kernel(fn, arrays, params):
    """Invoke the kernel on ``arrays`` (numpy, order fixed by the C side)."""
    if len(arrays) != _N_PTRS or len(params) != _N_PARAMS:
        raise ValueError("kernel ABI mismatch")
    ptrs = (ctypes.c_void_p * _N_PTRS)(*[a.ctypes.data for a in arrays])
    prm = (ctypes.c_int64 * _N_PARAMS)(*[int(x) for x in params])
    fn(ptrs, prm)
