"""Functional units and the Functional Unit State Register (Section 3.3.3).

Each unit tracks the next cycle it can accept an instruction
(``next_issue``) — the software analogue of its FUSR bit. Pipelined units
normally accept one instruction per cycle; unpipelined units (integer
divide) are busy for their full latency. The violation-tolerant
enhancements manipulate these fields:

* single-cycle unit with a faulty instruction: FUSR off for one cycle;
* unpipelined multi-cycle unit: busy one extra cycle beyond completion;
* pipelined multi-cycle unit: no new instructions behind a faulty one
  until it completes (stage-agnostic, Section 3.3.3);
* issue/regread/memory-stage faults freeze the corresponding issue slot or
  port for the following cycle (Sections 3.3.1, 3.3.2, 3.3.4).
"""

from repro.isa.opcodes import FuKind, UNPIPELINED_OPS


class FunctionalUnit:
    """One execution resource with FUSR-style availability tracking."""

    __slots__ = ("kind", "index", "next_issue")

    def __init__(self, kind, index):
        self.kind = kind
        self.index = index
        self.next_issue = 0

    def available(self, cycle):
        """True when the FUSR bit allows an issue in ``cycle``."""
        return self.next_issue <= cycle

    def reserve(self, cycle, initiation_interval):
        """Mark the unit busy until ``cycle + initiation_interval``."""
        self.next_issue = cycle + initiation_interval

    def freeze_extra(self, cycles=1):
        """Extend the busy window (slot freezing / FUSR clearing)."""
        self.next_issue += cycles


class FuPool:
    """All functional units of the core, grouped by kind."""

    def __init__(self, fu_counts):
        self.units = {}
        for kind, count in fu_counts.items():
            if count <= 0:
                raise ValueError(f"need at least one {kind.name} unit")
            self.units[kind] = [FunctionalUnit(kind, i) for i in range(count)]
        self.issued = {kind: 0 for kind in self.units}

    def find_available(self, kind, cycle):
        """Return an available unit of ``kind`` or None."""
        for unit in self.units[kind]:
            if unit.next_issue <= cycle:
                return unit
        return None

    def issue(self, unit, inst, cycle, exec_latency):
        """Reserve ``unit`` for ``inst`` issued in ``cycle``.

        ``exec_latency`` is the (possibly fault-extended) execution latency;
        unpipelined ops occupy the unit for the whole duration, pipelined
        ones for a single initiation cycle.
        """
        if inst.op in UNPIPELINED_OPS:
            unit.reserve(cycle, exec_latency)
        else:
            unit.reserve(cycle, 1)
        self.issued[unit.kind] += 1

    def shift_pending(self, now, delta=1):
        """Delay all pending availabilities (EP global stall support)."""
        for units in self.units.values():
            for unit in units:
                if unit.next_issue > now:
                    unit.next_issue += delta

    def reset(self):
        """Clear reservations (used after a pipeline squash)."""
        for units in self.units.values():
            for unit in units:
                unit.next_issue = 0

    def describe(self):
        """Human-readable inventory."""
        return {
            kind.name: len(units) for kind, units in self.units.items()
        }
