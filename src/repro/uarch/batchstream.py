"""Shared-stream extraction for the batched lockstep engine.

Every fork of one warmup snapshot fetches the *identical* dynamic
instruction stream: the trace generator's RNG is warmup-side state and
nothing on the measurement side reseeds it (see ``repro.snapshot.fork``).
The branch predictor, the L1 instruction cache, and the fetch-group
partition are equally lane-invariant — they are driven only by that
stream. This module walks clones of those structures once per batch and
flattens the result into plain arrays (:class:`StreamPlan`) that the
vector engine (:mod:`repro.uarch.batchcore`) indexes per cycle.

What *does* differ per lane is the fault realization: each campaign draw
reseeds the injector's per-instance RNG from its ``measurement_seed``.
:func:`build_tapes` replays that stream per lane — the real
:meth:`~repro.faults.injector.FaultInjector.resolve` for critical PCs, a
short-circuit for SAFE PCs (which consume exactly one background draw) —
producing a dense (lanes x instructions) fault-stage-mask tape.

Anything this module cannot prove lane-invariant raises
:class:`BatchFallback`; callers then run the scalar path, which is always
correct.
"""

import random

try:  # numpy is an optional extra: the batch path gates on it
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-free installs
    _np = None

from repro.isa.instruction import DynInst
from repro.uarch.branch_predictor import GShare
from repro.workloads.trace import TraceGenerator


class BatchFallback(Exception):
    """The batch engine cannot handle this run; use the scalar path."""


def have_numpy():
    """True when the numpy-backed batch engine can run at all."""
    return _np is not None


def _clone_trace(tg):
    """An independent TraceGenerator continuing ``tg``'s exact stream."""
    clone = TraceGenerator.__new__(TraceGenerator)
    clone.program = tg.program
    clone._rng = random.Random()
    clone._rng.setstate(tg._rng.getstate())
    clone._seq = tg._seq
    clone._block = tg._block
    clone._pos = tg._pos
    clone._exec_counts = dict(tg._exec_counts)
    clone.emitted = tg.emitted
    return clone


def _clone_bp(bp):
    clone = GShare(bp.table_bits, bp.history_bits, bp.index_history_bits)
    clone._table = list(bp._table)
    clone.ghr = bp.ghr
    return clone


def _clone_l1i_sets(l1i):
    return [list(ways) for ways in l1i._sets]


class StreamPlan:
    """Lane-invariant stream metadata for one batch window.

    Per-instruction arrays are indexed by *stream position* (0 = first
    instruction fetched after the snapshot boundary); the engine offsets
    them into its global slot space. Fetch groups mirror the scalar
    ``_fetch`` loop: up to ``width`` instructions per cycle, terminated
    early by a mispredicted branch (which blocks fetch until resolve).
    """

    __slots__ = (
        "n", "pc", "op", "mem_addr", "dest", "src0", "src1", "nsrcs",
        "is_cond_branch", "mispredicted", "critical", "tep_index",
        "tep_tag",
        "g_start", "g_len", "g_mispred", "g_branches", "g_l1i_hits",
        "g_l1i_misses", "g_miss_off", "miss_pcs",
    )


def build_stream(core, n_insts, width):
    """Walk ``n_insts`` instructions of ``core``'s future stream.

    Clones the trace generator, branch predictor and L1I so the donor
    core is untouched. Raises :class:`BatchFallback` when the trace ends
    inside the window or an instruction shape falls outside the vector
    engine's model (more than two sources).
    """
    if _np is None:
        raise BatchFallback("numpy unavailable")
    tg = _clone_trace(core.trace)
    bp = _clone_bp(core.bp)
    l1i_sets = _clone_l1i_sets(core.hierarchy.l1i)
    l1i_assoc = core.hierarchy.l1i._assoc
    l1i_shift = core.hierarchy.l1i._line_shift
    l1i_mask = core.hierarchy.l1i._set_mask
    if not core.hierarchy.l1i._pow2_sets:  # pragma: no cover - 512-set L1I
        raise BatchFallback("non-power-of-two L1I set count")
    tep = core.tep
    probe_tep = core._tep_gate == 0
    if probe_tep:
        if type(tep).__name__ != "TimingErrorPredictor":
            raise BatchFallback("non-standard timing predictor")
        if tep.config.history_bits:
            raise BatchFallback("history-indexed TEP keys vary per lane")
        tep_index_mask = tep._index_mask
        tep_tag_mask = tep._tag_mask
    critical_pcs = (
        core.injector._pc_timing if core.injector is not None else {}
    )

    n = int(n_insts)
    pc = _np.zeros(n, dtype=_np.int64)
    op = _np.zeros(n, dtype=_np.int8)
    mem_addr = _np.zeros(n, dtype=_np.int64)
    dest = _np.full(n, -1, dtype=_np.int16)
    src0 = _np.full(n, -1, dtype=_np.int16)
    src1 = _np.full(n, -1, dtype=_np.int16)
    nsrcs = _np.zeros(n, dtype=_np.int8)
    is_cond = _np.zeros(n, dtype=_np.bool_)
    mispred = _np.zeros(n, dtype=_np.bool_)
    critical = _np.zeros(n, dtype=_np.bool_)
    tep_index = _np.zeros(n, dtype=_np.int32)
    tep_tag = _np.zeros(n, dtype=_np.int32)

    g_start, g_len, g_mispred, g_branches = [], [], [], []
    g_l1i_hits, g_l1i_misses, g_miss_off = [], [], []
    miss_pcs = []

    last_line = core._last_fetch_line
    i = 0
    trace_next = tg.__next__
    while i < n:
        start = i
        hits = misses = branches = 0
        wrong = False
        g_miss_off.append(len(miss_pcs))
        for _ in range(width):
            if i >= n:
                break
            try:
                inst = trace_next()
            except StopIteration:
                raise BatchFallback("trace ended inside the batch window")
            static = inst.static
            ipc = static.pc
            pc[i] = ipc
            op[i] = int(static.op)
            mem_addr[i] = inst.mem_addr
            if static.dest is not None:
                dest[i] = static.dest
            srcs = static.srcs
            ns = len(srcs)
            if ns > 2:
                raise BatchFallback("instruction with >2 sources")
            nsrcs[i] = ns
            if ns:
                src0[i] = srcs[0]
                if ns == 2:
                    src1[i] = srcs[1]
            # L1I: one access per line transition (scalar _fetch dedup)
            line = ipc >> 6
            if line != last_line:
                last_line = line
                tag = ipc >> l1i_shift
                ways = l1i_sets[tag & l1i_mask]
                if tag in ways:
                    hits += 1
                    if ways[-1] != tag:
                        ways.remove(tag)
                        ways.append(tag)
                else:
                    misses += 1
                    if len(ways) >= l1i_assoc:
                        del ways[0]
                    ways.append(tag)
                    miss_pcs.append(ipc)
            if static.is_branch and 0.0 < static.taken_prob < 1.0:
                is_cond[i] = True
                branches += 1
                if bp.predict_and_update(ipc, inst.taken):
                    mispred[i] = True
                    wrong = True
            if probe_tep:
                word = ipc >> 2
                tep_index[i] = word & tep_index_mask
                tep_tag[i] = (word >> 10) & tep_tag_mask
            critical[i] = ipc in critical_pcs
            i += 1
            if wrong:
                break
        g_start.append(start)
        g_len.append(i - start)
        g_mispred.append(wrong)
        g_branches.append(branches)
        g_l1i_hits.append(hits)
        g_l1i_misses.append(misses)
    g_miss_off.append(len(miss_pcs))

    plan = StreamPlan()
    plan.n = n
    plan.pc = pc
    plan.op = op
    plan.mem_addr = mem_addr
    plan.dest = dest
    plan.src0 = src0
    plan.src1 = src1
    plan.nsrcs = nsrcs
    plan.is_cond_branch = is_cond
    plan.mispredicted = mispred
    plan.critical = critical
    plan.tep_index = tep_index
    plan.tep_tag = tep_tag
    plan.g_start = _np.asarray(g_start, dtype=_np.int64)
    plan.g_len = _np.asarray(g_len, dtype=_np.int64)
    plan.g_mispred = _np.asarray(g_mispred, dtype=_np.bool_)
    plan.g_branches = _np.asarray(g_branches, dtype=_np.int64)
    plan.g_l1i_hits = _np.asarray(g_l1i_hits, dtype=_np.int64)
    plan.g_l1i_misses = _np.asarray(g_l1i_misses, dtype=_np.int64)
    plan.g_miss_off = _np.asarray(g_miss_off, dtype=_np.int64)
    plan.miss_pcs = _np.asarray(miss_pcs, dtype=_np.int64)
    return plan


def build_tapes(core, plan, measurement_seeds, vdd):
    """Per-lane fault tapes over ``plan``'s stream.

    Returns an ``(n_lanes, plan.n)`` int16 array of fault-stage bitmasks,
    exactly what the scalar run's ``injector.resolve`` would stamp on
    each dynamic instance after ``injector.reseed(measurement_seed + 301)``
    (the ``begin_measurement`` boundary semantics).

    SAFE PCs take a short-circuit that consumes one RNG draw (the
    background-fault check) — bit-exact with ``resolve``, which skips the
    repeatability draw when the PC has no timing assignment. Critical PCs
    go through the real ``resolve`` on a scratch instance so the timing
    model's decision chain is shared, not re-implemented.
    """
    if _np is None:
        raise BatchFallback("numpy unavailable")
    n_lanes = len(measurement_seeds)
    tapes = _np.zeros((n_lanes, plan.n), dtype=_np.int16)
    injector = core.injector
    if injector is None:
        return tapes
    if not injector.enabled:
        return tapes
    if injector.thermal is not None:
        raise BatchFallback("thermal-coupled injector varies per cycle")
    program = core.program
    statics_by_pc = {si.pc: si for si in program.static_insts}
    scratch = DynInst(0, program.static_insts[0])
    bg = injector._background_prob(vdd)
    # one (is_critical, static) pair per stream position, walked per lane
    walk = list(zip(plan.critical.tolist(),
                    (statics_by_pc[p] for p in plan.pc.tolist())))
    saved_rng = injector._rng
    resolve = injector.resolve
    pick_stage = injector._pick_stage
    try:
        for lane, mseed in enumerate(measurement_seeds):
            rng = random.Random(mseed + 301)
            injector._rng = rng
            rnd = rng.random
            row = tapes[lane]
            for i, (is_critical, static) in enumerate(walk):
                if is_critical:
                    scratch.static = static
                    scratch.pc = static.pc
                    scratch.fault_stages = 0
                    resolve(scratch, vdd)
                    if scratch.fault_stages:
                        row[i] = scratch.fault_stages
                elif rnd() < bg:
                    row[i] = 1 << int(pick_stage(static))
    finally:
        injector._rng = saved_rng
    return tapes
