"""Structure-of-arrays lockstep engine: N campaign draws per dispatch.

All draws of one campaign point fork the same warmup snapshot and fetch
the identical instruction stream; only the injected timing faults differ
per measurement seed. This module exploits that: :func:`build_plan`
flattens the forked core's boundary state plus the shared future stream
(:mod:`repro.uarch.batchstream`) into plain arrays, and
:class:`BatchEngine` advances N lanes cycle by cycle with (N,)-shaped
numpy operations — one Python dispatch per array op instead of one per
instruction per lane.

The engine is a transliteration of ``OoOCore.run`` (pipeline.py) under
the invariants the campaign path guarantees (selective replay mode, no
store-set predictor, no telemetry, static TEP gate). Per-lane divergence
that the vector model does not cover — safety-net replays, watchdog
hangs, running past the prepared stream — *evicts* the lane: it is
marked dead and the caller re-runs that seed on the scalar path, so
correctness never depends on the vector engine handling every corner.

EP stalls use a virtual-time trick: a whole-pipeline stall shifts every
in-flight event by one cycle (``_shift_in_flight``), which means the
machine state is *invariant* in stall-excised time. The engine therefore
burns all pending stalls in bulk at the top of each virtual cycle and
tracks them in a per-lane ``burned`` counter; real cycles are
``v + burned``.

Bit-identity with the scalar path is asserted by
``tests/uarch/test_batchcore.py`` over a scheme x vdd x lanes grid.
"""

try:  # pragma: no cover - exercised on numpy-free installs
    import numpy as np
except Exception:  # pragma: no cover
    np = None

from repro.core.vte import FreezeKind, vte_effects
from repro.isa.opcodes import OP_FU_KIND, OP_LATENCY, OpClass, PipeStage
from repro.uarch.batchkernel import call_kernel, load_kernel
from repro.uarch.batchstream import BatchFallback, build_stream
from repro.uarch.issue_queue import TIMESTAMP_MASK
from repro.uarch.regfile import INFINITE as _SCOREBOARD_INF

INF = 1 << 60
_BIG_KEY = 1 << 40
_RING = 4096          # schedulable horizon in cycles (events land < ~300 out)
_RING_MASK = _RING - 1
#: fault-stage bits the OoO issue path handles (ISSUE..WRITEBACK)
_OOO_MASK = 0b111110000
_INORDER_MASK = 0b1000001111

_FRZ_NONE, _FRZ_SLOT, _FRZ_UNTIL, _FRZ_BUSY, _FRZ_WB = range(5)
_FRZ_CODE = {
    FreezeKind.NONE: _FRZ_NONE,
    FreezeKind.SLOT_ONE_CYCLE: _FRZ_SLOT,
    FreezeKind.UNTIL_COMPLETE: _FRZ_UNTIL,
    FreezeKind.BUSY_PLUS_ONE: _FRZ_BUSY,
    FreezeKind.WB_SLOT: _FRZ_WB,
}

_IDIV = int(OpClass.IDIV)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)

# selection-key modes
_SEL_AGE, _SEL_FFS, _SEL_EXACT = range(3)

_VTE_TABLES = None


def _vte_tables():
    """(pred_stage+1, op) -> VTE effect tables, built once."""
    global _VTE_TABLES
    if _VTE_TABLES is None:
        rr = np.zeros((11, 8), dtype=np.int64)
        ex = np.zeros((11, 8), dtype=np.int64)
        mem = np.zeros((11, 8), dtype=np.int64)
        wb = np.zeros((11, 8), dtype=np.int64)
        frz = np.zeros((11, 8), dtype=np.int8)
        has = np.zeros((11, 8), dtype=np.int64)
        for pi in range(11):
            stage = None if pi == 0 else PipeStage(pi - 1)
            for o in range(8):
                eff = vte_effects(stage, OpClass(o))
                rr[pi, o] = eff.rr_extra
                ex[pi, o] = eff.ex_extra
                mem[pi, o] = eff.mem_extra
                wb[pi, o] = eff.wb_extra
                frz[pi, o] = _FRZ_CODE[eff.freeze]
                has[pi, o] = 0 if eff.stage is None else 1
        _VTE_TABLES = (rr, ex, mem, wb, frz, has)
    return _VTE_TABLES


class _LaneMem:
    """Per-lane d-side cache state as a copy-on-write overlay.

    The batch shares one post-warmup hierarchy; each lane's loads and
    store-commits mutate LRU state, so every touched set is lazily
    copied into the lane's overlay dict. The shared base lists are never
    mutated. The i-side L1 is lane-invariant (driven only by the shared
    fetch stream) and lives in the plan; its misses go through
    :meth:`access_l2` because L2 contents *do* diverge via the d-side.
    """

    __slots__ = (
        "d_sets", "d_base", "d_shift", "d_mask", "d_assoc",
        "l2_sets", "l2_base", "l2_shift", "l2_mask", "l2_assoc",
        "lat_l1", "lat_l2", "lat_mem",
        "l1d_hits", "l1d_misses", "l2_hits", "l2_misses", "mem_accesses",
    )

    def __init__(self, plan):
        self.d_sets = {}
        self.l2_sets = {}
        self.d_base = plan.l1d_sets
        self.d_shift = plan.l1d_shift
        self.d_mask = plan.l1d_mask
        self.d_assoc = plan.l1d_assoc
        self.l2_base = plan.l2_sets
        self.l2_shift = plan.l2_shift
        self.l2_mask = plan.l2_mask
        self.l2_assoc = plan.l2_assoc
        self.lat_l1 = plan.lat_l1
        self.lat_l2 = plan.lat_l2
        self.lat_mem = plan.lat_mem
        self.l1d_hits = 0
        self.l1d_misses = 0
        self.l2_hits = 0
        self.l2_misses = 0
        self.mem_accesses = 0

    def access_data(self, addr):
        """L1D -> L2 -> memory; returns total latency (Cache.access exact)."""
        tag = addr >> self.d_shift
        si = tag & self.d_mask
        over = self.d_sets
        ways = over.get(si)
        if ways is None:
            ways = list(self.d_base[si])
            over[si] = ways
        if tag in ways:
            self.l1d_hits += 1
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            return self.lat_l1
        self.l1d_misses += 1
        if len(ways) >= self.d_assoc:
            del ways[0]
        ways.append(tag)
        return self.access_l2(addr)

    def access_l2(self, addr):
        """L2 -> memory leg, also used directly for L1I misses."""
        tag = addr >> self.l2_shift
        si = tag & self.l2_mask
        over = self.l2_sets
        ways = over.get(si)
        if ways is None:
            ways = list(self.l2_base[si])
            over[si] = ways
        if tag in ways:
            self.l2_hits += 1
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            return self.lat_l2
        self.l2_misses += 1
        if len(ways) >= self.l2_assoc:
            del ways[0]
        ways.append(tag)
        self.mem_accesses += 1
        return self.lat_mem


class BatchPlan:
    """Lane-invariant flattening of one forked core + its future stream.

    Slots are the engine's global instruction space: ROB residents first
    (``[0, R)``, ascending age), then conveyor residents (``[R, P)``),
    then the prepared stream (``[P, NS)``). Lanes index every per-slot
    array with their own commit/dispatch pointers.
    """

    # plain attribute bag; built only by build_plan
    pass


def _fallback(cond, why):
    if cond:
        raise BatchFallback(why)


def build_plan(core, target, margin=256):
    """Flatten ``core`` (a forked, measurement-ready OoOCore) for a batch.

    ``target`` is the commit budget of the measured window. Raises
    :class:`~repro.uarch.batchstream.BatchFallback` whenever any piece of
    the boundary state or configuration falls outside the vector model.
    """
    _fallback(np is None, "numpy unavailable")
    cfg = core.config
    scheme = core.scheme
    A0 = core.cycle

    _fallback(bool(core._refetch), "refetch queue not empty at boundary")
    _fallback(core._done_fetching, "trace exhausted at boundary")
    _fallback(core._dispatch_hold_until > A0, "in-order stall at boundary")
    _fallback(core._tep_gate == 2, "dynamic sensor gate")
    _fallback(core.cdl is not None, "criticality detection (CDS)")
    _fallback(core.memdep is not None, "store-set predictor")
    _fallback(not core._selective_mode, "flush-style replay mode")
    _fallback(core.ebus is not None, "telemetry event bus attached")
    _fallback(core.telemetry_sampler is not None, "telemetry sampler")
    _fallback(core.commit_listener is not None, "commit listener attached")
    _fallback(
        getattr(core.sensor, "thermal", None) is not None,
        "thermal-coupled sensor",
    )
    _fallback(
        core.injector is not None
        and type(core.injector).__name__ != "FaultInjector",
        "wrapped/chaos injector",
    )
    _fallback(TIMESTAMP_MASK != 63, "non-default timestamp width")
    from repro.isa.opcodes import FuKind

    fu_counts = {k: len(v) for k, v in core.fus.units.items()}
    _fallback(
        fu_counts != {FuKind.SIMPLE: 2, FuKind.COMPLEX: 1, FuKind.MEM: 1},
        "non-core1 functional unit inventory",
    )
    hier = core.hierarchy
    for cache in (hier.l1i, hier.l1d, hier.l2):
        _fallback(not cache._pow2_sets, "non-power-of-two cache sets")

    policy_name = type(scheme.policy).__name__
    if policy_name == "AgeBasedSelection":
        sel_mode = _SEL_EXACT if scheme.policy.exact else _SEL_AGE
    elif policy_name == "FaultyFirstSelection":
        sel_mode = _SEL_FFS
    else:
        raise BatchFallback(f"unsupported selection policy {policy_name}")

    # ---- slot space: ROB + conveyor + prepared stream -----------------
    rob_list = list(core.rob._entries)
    R = len(rob_list)
    conv_insts = []
    for latch in core._conveyor:
        conv_insts.extend(latch)
    conv_insts.sort(key=lambda i: i.seq)
    P = R + len(conv_insts)
    prelude = rob_list + conv_insts
    for a, b in zip(prelude, prelude[1:]):
        _fallback(a.seq >= b.seq, "non-monotonic prelude sequence")
    seq_slot = {inst.seq: s for s, inst in enumerate(prelude)}

    n_stream = int(target) + int(margin)
    stream = build_stream(core, n_stream, cfg.width)
    NS = P + n_stream

    plan = BatchPlan()
    plan.A0 = A0
    plan.R = R
    plan.P = P
    plan.NS = NS
    plan.target = int(target)
    plan.width = cfg.width
    plan.depth = cfg.frontend_depth
    plan.rob_size = cfg.rob_size
    plan.iq_size = cfg.iq_size
    plan.lsq_size = cfg.lsq_size
    plan.redirect_penalty = cfg.redirect_penalty
    plan.replay_recovery = cfg.replay_recovery
    plan.recovery_bubbles = cfg.recovery_bubbles
    plan.model_wrong_path = cfg.model_wrong_path
    plan.uses_tep = scheme.uses_tep
    plan.uses_vte = scheme.uses_vte
    plan.uses_ep_stall = scheme.uses_ep_stall
    plan.tolerates = scheme.tolerates_predicted_faults
    plan.sel_mode = sel_mode
    plan.tep_gate = core._tep_gate
    plan.max_cycles = 400 * int(target) + 20000
    plan.hang_cycles = 20000

    # ---- per-slot static arrays --------------------------------------
    lat_by_op = np.array([OP_LATENCY[OpClass(i)] for i in range(8)],
                         dtype=np.int64)
    fu_by_op = np.array([int(OP_FU_KIND[OpClass(i)]) for i in range(8)],
                        dtype=np.int64)
    pc = np.zeros(NS, dtype=np.int64)
    op = np.zeros(NS, dtype=np.int64)
    mem_addr = np.zeros(NS, dtype=np.int64)
    nsrcs = np.zeros(NS, dtype=np.int64)
    has_dest = np.zeros(NS, dtype=np.int64)
    cond_mispred = np.zeros(NS, dtype=bool)
    ts = np.zeros(NS, dtype=np.int64)
    pred0 = np.full(NS, -1, dtype=np.int8)
    prelude_tape = np.zeros(P, dtype=np.int16)

    for s, inst in enumerate(prelude):
        pc[s] = inst.pc
        op[s] = int(inst.op)
        mem_addr[s] = inst.mem_addr
        nsrcs[s] = len(inst.static.srcs)
        has_dest[s] = 0 if inst.static.dest is None else 1
        cond_mispred[s] = inst.mispredicted
        if s < R:
            ts[s] = inst.dispatch_order & TIMESTAMP_MASK
        if inst.pred_fault_stage is not None:
            pred0[s] = int(inst.pred_fault_stage)
        prelude_tape[s] = inst.fault_stages
    _fallback(
        bool(prelude_tape[np.asarray(
            [(m & _INORDER_MASK) != 0 for m in prelude_tape.tolist()],
            dtype=bool)].size),
        "in-order-stage fault latched in prelude",
    )
    C0 = core.iq._dispatch_counter
    ts[R:] = (C0 + np.arange(NS - R, dtype=np.int64)) & TIMESTAMP_MASK

    pc[P:] = stream.pc
    op[P:] = stream.op
    mem_addr[P:] = stream.mem_addr
    nsrcs[P:] = stream.nsrcs
    has_dest[P:] = stream.dest >= 0
    cond_mispred[P:] = stream.mispredicted

    lat = lat_by_op[op]
    fu = fu_by_op[op]
    is_load = op == _LOAD
    is_store = op == _STORE
    is_mem = is_load | is_store

    plan.pc = pc
    plan.op = op
    plan.mem_addr = mem_addr
    plan.addr8 = mem_addr >> 3
    plan.nsrcs = nsrcs
    plan.has_dest = has_dest
    plan.cond_mispred = cond_mispred
    plan.ts = ts
    plan.pred0 = pred0
    plan.prelude_tape = prelude_tape
    plan.lat = lat
    plan.fu = fu
    plan.is_load = is_load
    plan.is_store = is_store
    plan.is_mem = is_mem

    # prefix sums over slots: mem count, dest count, store count
    plan.M = np.concatenate(([0], np.cumsum(is_mem)))
    plan.HD = np.concatenate(([0], np.cumsum(has_dest)))
    plan.SM = np.concatenate(([0], np.cumsum(is_store)))

    srank = np.full(NS, -1, dtype=np.int64)
    store_slots = np.nonzero(is_store)[0]
    srank[store_slots] = np.arange(len(store_slots))
    plan.srank = srank
    plan.n_stores = len(store_slots)
    plan.st_addr8 = plan.addr8[store_slots]

    # TEP lookup keys for every slot (pure PC hash: history_bits == 0)
    if core._tep_gate == 0:
        imask = core.tep._index_mask
        tmask = core.tep._tag_mask
        word = pc >> 2
        plan.tepi = word & imask
        plan.tept = (word >> 10) & tmask
        plan.tep_n = core.tep.config.n_entries
        plan.tep_cmax = core.tep.config.counter_max
        tag0 = np.full(plan.tep_n, -1, dtype=np.int64)
        cnt0 = np.zeros(plan.tep_n, dtype=np.int64)
        stage0 = np.full(plan.tep_n, -1, dtype=np.int64)
        for i, e in enumerate(core.tep._entries):
            tag0[i] = e.tag
            cnt0[i] = e.counter
            if e.stage is not None:
                st = int(e.stage)
                _fallback(not 4 <= st <= 8,
                          "TEP entry with in-order stage")
                stage0[i] = st
        plan.tep_tag0 = tag0
        plan.tep_cnt0 = cnt0
        plan.tep_stage0 = stage0
    else:
        plan.tepi = plan.tept = None
        plan.tep_n = 0

    # ---- wake-source indices (producer slots / scoreboard pseudo) ----
    n_phys = cfg.n_phys_regs
    plan.n_phys = n_phys
    NW = NS + n_phys + 1
    ALWAYS = NS + n_phys
    plan.NW = NW
    plan.ALWAYS = ALWAYS
    rename = core.rename
    wake0 = np.full(NW, INF, dtype=np.int64)
    wake0[ALWAYS] = -1
    for p in range(n_phys):
        rc = rename.ready_cycle[p]
        if rc < _SCOREBOARD_INF:
            wake0[NS + p] = rc - A0
    producer_slot = {}
    for s, inst in enumerate(rob_list):
        if inst.phys_dest >= 0:
            producer_slot[inst.phys_dest] = s

    def src_index(p):
        if rename.ready_cycle[p] < _SCOREBOARD_INF:
            return NS + p
        slot = producer_slot.get(p)
        _fallback(slot is None, "unissued source with no in-flight producer")
        return slot

    ws0 = np.full(NS, ALWAYS, dtype=np.int64)
    ws1 = np.full(NS, ALWAYS, dtype=np.int64)
    iq0 = []
    for inst in core.iq.entries:
        s = seq_slot.get(inst.seq)
        _fallback(s is None or s >= R, "IQ entry outside the ROB")
        iq0.append(s)
        srcs = inst.phys_srcs
        if srcs:
            ws0[s] = src_index(srcs[0])
            if len(srcs) == 2:
                ws1[s] = src_index(srcs[1])
    plan.iq0 = np.asarray(iq0, dtype=np.int64)

    last_writer = [src_index(rename.rat[a]) for a in range(cfg.n_arch_regs)]
    for s in range(R, NS):
        if s < P:
            static = prelude[s].static
            srcs = static.srcs
            _fallback(len(srcs) > 2, "conveyor instruction with >2 sources")
            if srcs:
                ws0[s] = last_writer[srcs[0]]
                if len(srcs) == 2:
                    ws1[s] = last_writer[srcs[1]]
            dest = static.dest
        else:
            j = s - P
            a0 = stream.src0[j]
            if a0 >= 0:
                ws0[s] = last_writer[a0]
                a1 = stream.src1[j]
                if a1 >= 0:
                    ws1[s] = last_writer[a1]
            dest = int(stream.dest[j])
            if dest < 0:
                dest = None
        if dest is not None:
            last_writer[dest] = s
    plan.ws0 = ws0
    plan.ws1 = ws1
    plan.ws01 = np.stack([ws0, ws1])
    plan.wake0 = wake0
    plan.fu1hot = np.stack([fu == 0, fu == 1, fu == 2])
    # ts is linear in slot whenever the prelude dispatch orders are
    # consecutive (no commits between head and tail, no squashes) — the
    # selection fast path keys ranking off IQ position in that case
    plan.ts_linear = bool(np.array_equal(
        ts, (ts[0] + np.arange(NS, dtype=np.int64)) & TIMESTAMP_MASK
    ))

    _plan_boundary_state(plan, core, seq_slot, srank)
    _plan_stream_groups(plan, stream)
    _plan_lane_mem(plan, hier)
    plan.stream = stream
    return plan


def _plan_boundary_state(plan, core, seq_slot, srank):
    """Flatten the forked core's in-flight state into plan arrays."""
    from repro.uarch.pipeline import _EV_COMPLETE, _EV_REPLAY, _EV_RESOLVE

    A0 = plan.A0
    NS = plan.NS
    R = plan.R

    cec0 = np.full(NS, INF, dtype=np.int64)
    rob_list = list(core.rob._entries)
    for s, inst in enumerate(rob_list):
        if inst.completed:
            cec0[s] = -1
    blk_resolve0 = INF
    for c, evs in core._events.items():
        vc = c - A0
        _fallback(vc < 0 or vc >= _RING, "event outside schedulable horizon")
        for kind, inst, version in evs:
            if inst.squashed or inst.version != version:
                continue  # stale, a no-op when fired
            if kind == _EV_COMPLETE:
                s = seq_slot.get(inst.seq)
                _fallback(s is None, "completion event for unknown inst")
                cec0[s] = vc
            elif kind == _EV_RESOLVE:
                if core._blocking_branch == inst.seq:
                    blk_resolve0 = vc
            else:
                _fallback(kind == _EV_REPLAY, "replay event in flight")
                raise BatchFallback("unknown event kind")
    plan.cec0 = cec0

    if core._blocking_branch is not None:
        s = seq_slot.get(core._blocking_branch)
        _fallback(s is None, "blocking branch not among slots")
        inst = rob_list[s] if s < R else None
        if inst is None:
            # still in the conveyor: its RESOLVE is scheduled at issue
            for latch in core._conveyor:
                for cand in latch:
                    if cand.seq == core._blocking_branch:
                        inst = cand
        _fallback(inst is None, "blocking branch instruction lost")
        plan.blk_active0 = True
        plan.blk_fetch_abs0 = inst.fetch_cycle - A0
        plan.blk_resolve0 = blk_resolve0
    else:
        plan.blk_active0 = False
        plan.blk_fetch_abs0 = 0
        plan.blk_resolve0 = INF

    ep0 = []
    for c, n in core._ep_stalls.items():
        vc = c - A0
        _fallback(vc < 0 or vc >= _RING, "EP stall outside horizon")
        ep0.append((vc, n))
    plan.ep0 = ep0
    wb0 = []
    for c, n in core._wb_count.items():
        vc = c - A0
        _fallback(vc < 0 or vc >= _RING, "WB reservation outside horizon")
        wb0.append((vc, n))
    plan.wb0 = wb0

    from repro.isa.opcodes import FuKind

    units = core.fus.units
    plan.fu_ni0 = np.array(
        [
            units[FuKind.SIMPLE][0].next_issue - A0,
            units[FuKind.SIMPLE][1].next_issue - A0,
            units[FuKind.COMPLEX][0].next_issue - A0,
            units[FuKind.MEM][0].next_issue - A0,
        ],
        dtype=np.int64,
    )
    plan.free_cnt0 = len(core.rename.free_list)
    plan.resume_v0 = max(0, core._fetch_resume_at - A0)

    n_st = plan.n_stores
    sr0 = np.full(n_st, INF, dtype=np.int64)
    lsq_store_count = 0
    for entry in core.lsq._entries:
        inst = entry.inst
        s = seq_slot.get(inst.seq)
        _fallback(s is None or s >= R, "LSQ entry outside the ROB")
        if inst.is_store:
            lsq_store_count += 1
            if entry.resolve_cycle is not None:
                sr0[srank[s]] = entry.resolve_cycle - A0
    _fallback(
        lsq_store_count != int(plan.SM[R]),
        "ROB stores and LSQ stores disagree",
    )
    premax0 = np.zeros(max(n_st, 1), dtype=np.int64)
    fr = 0
    pm = 0
    while fr < n_st and sr0[fr] < INF:
        pm = max(pm, int(sr0[fr]))
        premax0[fr] = pm
        fr += 1
    plan.store_resolve0 = sr0
    plan.premax0 = premax0[:n_st] if n_st else premax0[:0]
    plan.frontier0 = fr
    plan.pm_run0 = pm
    plan.lsq_occ0 = len(core.lsq._entries)

    conv0 = np.zeros((plan.depth, 2), dtype=np.int64)
    for i, latch in enumerate(core._conveyor):
        if not latch:
            continue
        slots = [seq_slot[inst.seq] for inst in latch]
        start = slots[0]
        _fallback(
            slots != list(range(start, start + len(slots))),
            "conveyor latch is not a contiguous slot run",
        )
        conv0[i, 0] = start
        conv0[i, 1] = len(slots)
    plan.conv0 = conv0


def _plan_stream_groups(plan, stream):
    """Fetch-group metadata, offset into global slot space."""
    P = plan.P
    plan.g_start = P + stream.g_start
    plan.g_len = stream.g_len
    plan.g_mispred = stream.g_mispred
    plan.g_branches = stream.g_branches
    plan.NG = len(stream.g_len)
    plan.cum_l1i_hits = np.concatenate(([0], np.cumsum(stream.g_l1i_hits)))
    plan.cum_l1i_misses = np.concatenate(([0], np.cumsum(stream.g_l1i_misses)))
    plan.g_miss_off = stream.g_miss_off
    plan.miss_pcs = stream.miss_pcs
    # groups with at least one L1I miss (rare) get the scalar fixup
    plan.g_has_miss = (stream.g_miss_off[1:] - stream.g_miss_off[:-1]) > 0


#: compiled-kernel eviction codes -> the scalar-fallback reason strings
_EVICT_REASON = {
    1: "safety-net replay (wild MEM fault)",
    2: "safety-net replay (unpadded)",
    3: "ran past the prepared stream",
    4: "watchdog (hang or cycle budget)",
    5: "forced eviction (test hook)",
}


def _flat_sets(sets, nsets, assoc):
    """Materialize shared LRU set lists into flat (tags, count) arrays.

    Way order is preserved: index 0 is the LRU victim, the last filled
    index the MRU — the compiled kernel keeps the same ordering.
    """
    tags = np.full((nsets, assoc), -1, dtype=np.int64)
    cnt = np.zeros(nsets, dtype=np.int64)
    for i, ways in enumerate(sets):
        k = len(ways)
        if k:
            tags[i, :k] = ways
        cnt[i] = k
    return tags, cnt


def _plan_lane_mem(plan, hier):
    """Shared d-side base state for per-lane copy-on-write overlays."""
    plan.l1d_sets = hier.l1d._sets
    plan.l1d_shift = hier.l1d._line_shift
    plan.l1d_mask = hier.l1d._set_mask
    plan.l1d_assoc = hier.l1d._assoc
    plan.l2_sets = hier.l2._sets
    plan.l2_shift = hier.l2._line_shift
    plan.l2_mask = hier.l2._set_mask
    plan.l2_assoc = hier.l2._assoc
    plan.lat_l1 = hier._lat_l1
    plan.lat_l2 = hier._lat_l2
    plan.lat_mem = hier._lat_mem


class BatchEngine:
    """Advance N fault-tape lanes over one plan in virtual lockstep.

    All lanes share the plan's slot space and fetch-group schedule; only
    fault tapes (and everything downstream of them: timing, TEP state,
    d-side cache contents) differ. A lane leaves the convoy only by
    *eviction* — the caller re-runs that seed on the scalar path.
    """

    def __init__(self, plan, stream_tapes):
        self.plan = plan
        N = self.N = stream_tapes.shape[0]
        NS = plan.NS
        self.NW = plan.NW
        self.tape = np.zeros((N, NS), dtype=np.int16)
        self.tape[:, :plan.P] = plan.prelude_tape[None, :]
        self.tape[:, plan.P:] = stream_tapes
        self.pred = np.repeat(plan.pred0[None, :], N, axis=0)
        self.cec = np.repeat(plan.cec0[None, :], N, axis=0)
        self.cec_flat = self.cec.reshape(-1)
        self.wake = np.repeat(plan.wake0[None, :], N, axis=0)
        self.wake_flat = self.wake.reshape(-1)
        self.iq_slot = np.zeros((N, plan.iq_size), dtype=np.int64)
        n0 = len(plan.iq0)
        if n0:
            self.iq_slot[:, :n0] = plan.iq0[None, :]
        self.iq_len = np.full(N, n0, dtype=np.int64)
        self.conv_start = np.repeat(plan.conv0[None, :, 0], N, axis=0)
        self.conv_len = np.repeat(plan.conv0[None, :, 1], N, axis=0)
        self.fu_ni = np.repeat(plan.fu_ni0[None, :], N, axis=0)
        self.wbring = np.zeros((N, _RING), dtype=np.int16)
        self.epring = np.zeros((N, _RING), dtype=np.int32)
        for vc, n in plan.wb0:
            self.wbring[:, vc] = n
        for vc, n in plan.ep0:
            self.epring[:, vc] = n
        nst = max(plan.n_stores, 1)
        self.store_resolve = np.full((N, nst), INF, dtype=np.int64)
        self.premax = np.zeros((N, nst), dtype=np.int64)
        if plan.n_stores:
            self.store_resolve[:, :] = INF
            self.store_resolve[:, :len(plan.store_resolve0)] = (
                plan.store_resolve0[None, :]
            )
            self.premax[:, :len(plan.premax0)] = plan.premax0[None, :]
        self.frontier = np.full(N, plan.frontier0, dtype=np.int64)
        self.pm_run = np.full(N, plan.pm_run0, dtype=np.int64)
        self.lsq_occ = np.full(N, plan.lsq_occ0, dtype=np.int64)
        self.free_cnt = np.full(N, plan.free_cnt0, dtype=np.int64)
        self.cp = np.zeros(N, dtype=np.int64)
        self.dp = np.full(N, plan.R, dtype=np.int64)
        self.blk_active = np.full(N, plan.blk_active0, dtype=bool)
        self.blk_resolve_v = np.full(N, plan.blk_resolve0, dtype=np.int64)
        self.blk_fetch_abs = np.full(N, plan.blk_fetch_abs0, dtype=np.int64)
        self.resume_v = np.full(N, plan.resume_v0, dtype=np.int64)
        self.g_ptr = np.zeros(N, dtype=np.int64)
        self.burned = np.zeros(N, dtype=np.int64)
        self.v_end = np.zeros(N, dtype=np.int64)
        self.last_commit_real = np.zeros(N, dtype=np.int64)
        self.active = np.ones(N, dtype=bool)
        self.evicted_reason = [None] * N

        z = lambda: np.zeros(N, dtype=np.int64)
        self.committed = z()
        self.fetched = z()
        self.dispatched = z()
        self.issued = z()
        self.replays = z()
        self.branch_mispredicts = z()
        self.branches = z()
        self.false_predictions = z()
        self.ep_stalls_stat = z()
        self.slot_freezes = z()
        self.padded = z()
        self.wrong_path = z()
        self.regreads = z()
        self.regwrites = z()
        self.broadcasts = z()
        self.broadcast_occ = z()
        self.iq_occ = z()
        self.cam_searches = z()
        self.forwards = z()
        self.faults_total = z()
        self.faults_predicted = z()
        self.faults_unpredicted = z()
        self.stage_faults = np.zeros((N, 10), dtype=np.int64)
        self.fu_op_counts = np.zeros((N, 8), dtype=np.int64)

        self.tep_probe = plan.uses_tep and plan.tep_gate == 0
        if self.tep_probe:
            self.tep_tag = np.repeat(plan.tep_tag0[None, :], N, axis=0)
            self.tep_cnt = np.repeat(plan.tep_cnt0[None, :], N, axis=0)
            self.tep_stage = np.repeat(plan.tep_stage0[None, :], N, axis=0)

        self.lanemem = [_LaneMem(plan) for _ in range(N)]
        self._km = None  # compiled-kernel hier counters, set by _run_kernel
        if plan.uses_vte:
            (self.T_RR, self.T_EX, self.T_MEM, self.T_WB,
             self.T_FRZ, self.T_HAS) = _vte_tables()
        self._arangeIQ = np.arange(plan.iq_size, dtype=np.int64)
        self._arangeW = np.arange(plan.width, dtype=np.int64)
        arangeN = np.arange(N, dtype=np.int64)
        self._laneoffW = (arangeN * plan.NW).reshape(1, N, 1)
        self._laneoffNS = (arangeN * NS)[:, None]
        self._laneoffIQ = (arangeN * plan.iq_size)[:, None]
        self._laneoffS0 = arangeN * plan.iq_size
        self._laneoffS = (arangeN * self.premax.shape[1])[:, None]

    # ------------------------------------------------------------------
    def _evict(self, lane, reason):
        if self.evicted_reason[lane] is None:
            self.evicted_reason[lane] = reason
        self.active[lane] = False

    # ------------------------------------------------------------------
    def _commit(self, v):
        p = self.plan
        NS = p.NS
        cecf = self.cec_flat
        for _ in range(p.width):
            el = self.active & (self.cp < self.dp)
            idx = np.nonzero(el)[0]
            if idx.size == 0:
                return
            s = self.cp[idx]
            rdy = cecf[idx * NS + s] <= v
            if not rdy.any():
                return
            idx = idx[rdy]
            s = s[rdy]
            self.committed[idx] += 1
            hd = p.has_dest[s]
            self.regwrites[idx] += hd
            self.free_cnt[idx] += hd
            self.lsq_occ[idx] -= p.is_mem[s]
            self.last_commit_real[idx] = v + self.burned[idx]
            st = p.is_store[s]
            if st.any():
                for lane, slot in zip(idx[st].tolist(), s[st].tolist()):
                    self.lanemem[lane].access_data(int(p.mem_addr[slot]))
            if self.tep_probe:
                f = self.tape[idx, s]
                pr = self.pred[idx, s]
                need = (f != 0) | (pr >= 0)
                if need.any():
                    for lane, slot, fm, pv in zip(
                        idx[need].tolist(), s[need].tolist(),
                        f[need].tolist(), pr[need].tolist(),
                    ):
                        self._train_tep(lane, slot, fm, pv)
            self.cp[idx] += 1

    def _train_tep(self, lane, slot, fmask, pred):
        """Commit-time TEP training (pipeline._train_tep + tep.train)."""
        p = self.plan
        ti = int(p.tepi[slot])
        tg = int(p.tept[slot])
        if fmask:
            stage = (fmask & -fmask).bit_length() - 1
            if self.tep_tag[lane, ti] == tg:
                c = int(self.tep_cnt[lane, ti])
                if c < p.tep_cmax:
                    self.tep_cnt[lane, ti] = c + 1
                self.tep_stage[lane, ti] = stage
            else:
                self.tep_tag[lane, ti] = tg
                self.tep_cnt[lane, ti] = 1
                self.tep_stage[lane, ti] = stage
        elif pred >= 0:
            self.false_predictions[lane] += 1
            if self.tep_tag[lane, ti] == tg and self.tep_cnt[lane, ti] > 0:
                self.tep_cnt[lane, ti] -= 1

    # ------------------------------------------------------------------
    def _load_data_lat(self, lane, slot, cam):
        """search_forward + hierarchy access for one issuing load."""
        p = self.plan
        lo = int(p.SM[self.cp[lane]])
        hi = int(p.SM[slot])
        if hi > lo:
            a8 = int(p.addr8[slot])
            seg = self.store_resolve[lane, lo:hi]
            if bool(((p.st_addr8[lo:hi] == a8) & (seg <= cam)).any()):
                self.forwards[lane] += 1
                return 1
        return self.lanemem[lane].access_data(int(p.mem_addr[slot]))

    def _count_fault(self, lane, stage, predicted):
        self.faults_total[lane] += 1
        self.stage_faults[lane, stage] += 1
        if predicted:
            self.faults_predicted[lane] += 1
        else:
            self.faults_unpredicted[lane] += 1

    def _fault_fixup(self, e, lane, slot, fmask, pr,
                     rr_e, ex_e, mem_e, wb_e, bubbles):
        """Scalar per-instruction violation handling (issue-time)."""
        p = self.plan
        is_mem = bool(p.is_mem[slot])
        pen = p.replay_recovery
        for stage in (4, 5, 6, 7, 8):
            if not fmask & (1 << stage):
                continue
            if stage == 7 and not is_mem:
                # storm-mode wild MEM fault: scalar takes the safety-net
                # stall-and-replay, which the vector model doesn't carry
                self._count_fault(lane, stage, False)
                self._evict(lane, "safety-net replay (wild MEM fault)")
                continue
            tol = stage == pr and p.tolerates
            if (tol and p.uses_vte
                    and not self.T_HAS[pr + 1, int(p.op[slot])]):
                self._evict(lane, "safety-net replay (unpadded)")
                tol = False
            self._count_fault(lane, stage, tol)
            if tol:
                continue
            self.replays[lane] += 1
            if stage == 4 or stage == 5:
                rr_e[e] += pen
            elif stage == 6:
                ex_e[e] += pen
            elif stage == 7:
                mem_e[e] += pen
            else:
                wb_e[e] += pen
            bubbles.append((e, stage))

    @staticmethod
    def _stage_cycle(stage, v, e, agen_end, exec_end, wb_c, is_mem_e):
        """pipeline._stage_cycle on step-local arrays."""
        if stage == 4:
            return v
        if stage == 5:
            return v + 1
        if stage == 6:
            return int(exec_end[e])
        if stage == 7:
            return int(agen_end[e]) if is_mem_e else None
        if stage == 8:
            return int(wb_c[e])
        return None

    # ------------------------------------------------------------------
    def _select_issue(self, v):
        p = self.plan
        iqs = self.iq_slot
        iql = self.iq_len
        valid = self._arangeIQ[None, :] < iql[:, None]
        if not self.active.all():
            valid = valid & self.active[:, None]
        slots = np.where(valid, iqs, 0)
        w01 = p.ws01[:, slots] + self._laneoffW
        wk01 = self.wake_flat.take(w01)
        wk = np.maximum(wk01[0], wk01[1])
        rdy = valid & (wk <= v)
        ld = p.is_load[slots] & valid
        if p.n_stores and ld.any():
            oc = p.SM[slots]
            pmg = self.premax.reshape(-1).take(
                np.maximum(oc - 1, 0) + self._laneoffS
            )
            # premax carries REAL resolve cycles (unshifted by EP stalls,
            # like scalar's LSQ), so gate against real time, not virtual
            real = v + self.burned[:, None]
            gate_ok = (self.frontier[:, None] >= oc) & (
                (oc == 0) | (pmg <= real)
            )
            rdy &= ~ld | gate_ok
        if not rdy.any():
            return
        # Fast path: ranking by IQ position. EXACT keys *are* positions;
        # AGE keys are monotone in position whenever the per-lane slot
        # span fits the timestamp window (ts is linear in slot — asserted
        # by build_plan); FFS degenerates to AGE when nothing ready
        # carries a fault prediction.
        fast = p.sel_mode == _SEL_EXACT
        if not fast and p.ts_linear:
            tail = iqs.ravel().take(
                self._laneoffS0 + np.maximum(iql - 1, 0)
            )
            fast = bool(((tail - iqs[:, 0]) <= TIMESTAMP_MASK).all())
            if fast and p.sel_mode == _SEL_FFS:
                predg = self.pred.reshape(-1).take(
                    slots + self._laneoffNS
                )
                fast = not (rdy & (predg >= 0)).any()
        if fast:
            k3 = p.fu1hot[:, slots] & rdy[None]
            cum3 = k3.cumsum(axis=2)
            le = self.fu_ni <= v
            caps = np.empty((3, self.N, 1), dtype=np.int64)
            caps[0, :, 0] = le[:, 0].astype(np.int64) + le[:, 1]
            caps[1, :, 0] = le[:, 2]
            caps[2, :, 0] = le[:, 3]
            elig3 = k3 & (cum3 <= caps)
            elig = elig3[0] | elig3[1] | elig3[2]
            rank = np.cumsum(elig, 1)
            sel = elig & (rank <= p.width)
            if not sel.any():
                return
            rows, cols = np.nonzero(sel)
            slots_f = slots[rows, cols]
            jj = rank[rows, cols] - 1
            kf = p.fu[slots_f]
            ucol = kf + 1
            sm = kf == 0
            if sm.any():
                ucol[sm] = (
                    cum3[0][rows[sm], cols[sm]] - 1
                    + (1 - le[rows[sm], 0])
                )
            self._issue_all(v, rows, slots_f, jj, ucol, iql)
            keep = valid & ~sel
        else:
            rel = (p.ts[slots] - p.ts[iqs[:, 0]][:, None]) & TIMESTAMP_MASK
            key = rel * p.iq_size + self._arangeIQ[None, :]
            if p.sel_mode == _SEL_FFS:
                key = key + (
                    self.pred.reshape(-1).take(slots + self._laneoffNS) < 0
                ) * ((TIMESTAMP_MASK + 1) * p.iq_size)
            key = np.where(rdy, key, _BIG_KEY)
            order = np.argsort(key, axis=1)
            oflat = order + self._laneoffIQ
            oslots = slots.ravel().take(oflat)
            ordy = rdy.ravel().take(oflat)
            kind = p.fu[oslots]
            fu_ni = self.fu_ni
            c0 = fu_ni[:, 0] <= v
            cap_s = c0.astype(np.int64) + (fu_ni[:, 1] <= v)
            cap_c = (fu_ni[:, 2] <= v).astype(np.int64)
            cap_m = (fu_ni[:, 3] <= v).astype(np.int64)
            ks = ordy & (kind == 0)
            kc = ordy & (kind == 1)
            km = ordy & (kind == 2)
            cum_s = np.cumsum(ks, 1)
            elig = (
                (ks & (cum_s <= cap_s[:, None]))
                | (kc & (np.cumsum(kc, 1) <= cap_c[:, None]))
                | (km & (np.cumsum(km, 1) <= cap_m[:, None]))
            )
            rank = np.cumsum(elig, 1)
            sel = elig & (rank <= p.width)
            if not sel.any():
                return
            rows, cols = np.nonzero(sel)
            slots_f = oslots[rows, cols]
            jj = rank[rows, cols] - 1
            kf = kind[rows, cols]
            ucol = kf + 1
            sm = kf == 0
            if sm.any():
                ucol[sm] = (
                    cum_s[rows[sm], cols[sm]] - 1
                    + (1 - c0[rows[sm]].astype(np.int64))
                )
            self._issue_all(v, rows, slots_f, jj, ucol, iql)
            keep = valid
            keep[rows, order[rows, cols]] = False
        # compact: drop issued entries, preserving age order
        sidx = np.argsort(~keep, axis=1, kind="stable")
        self.iq_slot = iqs.ravel().take(sidx + self._laneoffIQ)
        self.iq_len = iql - np.bincount(rows, minlength=self.N)

    def _issue_all(self, v, lf, sf, jj, uc, iq_len0):
        """Issue all selected instructions in one vector pass.

        ``lf``/``sf``/``jj``/``uc`` are flat (lane, slot, per-lane rank,
        FU unit column) arrays in row-major selection order, i.e. each
        lane's instructions appear in ascending rank. Lanes repeat, so
        per-lane counters accumulate via bincount; per-(lane, slot) and
        per-(lane, unit) scatters are duplicate-free within one cycle.
        """
        p = self.plan
        N = self.N
        n = lf.size
        o = p.op[sf]
        nsel = np.bincount(lf, minlength=N)
        self.issued += nsel
        self.regreads += np.bincount(
            lf, weights=p.nsrcs[sf], minlength=N
        ).astype(np.int64)
        foc = self.fu_op_counts.reshape(-1)
        foc += np.bincount(lf * 8 + o, minlength=N * 8)
        pr = self.pred[lf, sf].astype(np.int64)
        if p.uses_vte:
            pi = pr + 1
            rr_e = self.T_RR[pi, o].copy()
            ex_e = self.T_EX[pi, o].copy()
            mem_e = self.T_MEM[pi, o].copy()
            wb_e = self.T_WB[pi, o].copy()
            frz = self.T_FRZ[pi, o]
            self.padded += np.bincount(
                lf, weights=self.T_HAS[pi, o], minlength=N
            ).astype(np.int64)
        else:
            rr_e = np.zeros(n, dtype=np.int64)
            ex_e = np.zeros(n, dtype=np.int64)
            mem_e = np.zeros(n, dtype=np.int64)
            wb_e = np.zeros(n, dtype=np.int64)
            frz = None
        f = self.tape[lf, sf]
        bubbles = []
        if f.any():
            for e in np.nonzero(f)[0].tolist():
                self._fault_fixup(
                    e, int(lf[e]), int(sf[e]), int(f[e]), int(pr[e]),
                    rr_e, ex_e, mem_e, wb_e, bubbles,
                )
        exec_lat = p.lat[sf] + ex_e
        agen_end = v + 2 + rr_e
        exec_end = v + 1 + rr_e + exec_lat
        wakeup = np.empty(n, dtype=np.int64)
        wbreq = np.empty(n, dtype=np.int64)
        mm = p.is_mem[sf]
        nm = ~mm
        if nm.any():
            wakeup[nm] = v + p.lat[sf][nm] + rr_e[nm] + ex_e[nm]
            wbreq[nm] = v + 2 + rr_e[nm] + exec_lat[nm]
        if mm.any():
            ldm = p.is_load[sf]
            for e in np.nonzero(ldm)[0].tolist():
                lane = int(lf[e])
                cam = int(agen_end[e])
                self.cam_searches[lane] += 1
                # the CAM compares store resolve times, which scalar keeps
                # in unshifted real cycles (see _shift_in_flight) — so the
                # probe time must be real too
                dlat = self._load_data_lat(
                    lane, int(sf[e]), cam + int(self.burned[lane])
                )
                wakeup[e] = cam + int(mem_e[e]) + dlat
                wbreq[e] = wakeup[e] + 1
            stm = mm & ~ldm
            for e in np.nonzero(stm)[0].tolist():
                lane = int(lf[e])
                self.cam_searches[lane] += 1
                r = int(p.srank[int(sf[e])])
                rc = int(agen_end[e])
                # store resolve times live in REAL cycles: scalar's
                # _shift_in_flight never shifts LSQ resolve_cycle, so a
                # whole-pipeline stall moves everything else but leaves
                # the disambiguation gate where it was. The WB request
                # below stays virtual (it rides the shifted event world).
                srow = self.store_resolve[lane]
                srow[r] = rc + int(self.burned[lane])
                fr = int(self.frontier[lane])
                pm = int(self.pm_run[lane])
                prow = self.premax[lane]
                nst = p.n_stores
                while fr < nst and srow[fr] < INF:
                    x = int(srow[fr])
                    if x > pm:
                        pm = x
                    prow[fr] = pm
                    fr += 1
                self.frontier[lane] = fr
                self.pm_run[lane] = pm
                wakeup[e] = INF
                wbreq[e] = rc + int(mem_e[e]) + 1
        else:
            stm = np.zeros(n, dtype=bool)
        # writeback arbitration: first cycle with a free port, claimed
        # sequentially in rank order (same lane's later ranks see the
        # earlier claims — a scalar loop, n is tiny)
        width = p.width
        wb = self.wbring
        lfl = lf.tolist()
        clist = wbreq.tolist()
        wbl = wb_e.tolist()
        for e in range(n):
            row = wb[lfl[e]]
            cc = clist[e]
            while row[cc & _RING_MASK] >= width:
                cc += 1
            row[cc & _RING_MASK] += 1
            if wbl[e]:
                row[(cc + 1) & _RING_MASK] += 1
            clist[e] = cc
        c = np.asarray(clist, dtype=np.int64)
        self.cec_flat[lf * p.NS + sf] = c + wb_e
        # result broadcast (set_ready): consumers read next cycle
        br = (p.has_dest[sf] > 0) & ~stm
        if br.any():
            self.wake_flat[(lf * p.NW + sf)[br]] = wakeup[br]
            lb = lf[br]
            self.broadcasts += np.bincount(lb, minlength=self.N)
            self.broadcast_occ += np.bincount(
                lb, weights=iq_len0[lb] - (jj[br] + 1), minlength=self.N
            ).astype(np.int64)
        # functional-unit reservation + VTE freezing
        ni = v + np.where(o == _IDIV, exec_lat, 1)
        if frz is not None:
            self.slot_freezes += np.bincount(
                lf, weights=(frz != _FRZ_NONE), minlength=self.N
            ).astype(np.int64)
            slm = frz == _FRZ_SLOT
            if slm.any():
                ni[slm] = np.maximum(ni[slm], v + 2)
            unm = frz == _FRZ_UNTIL
            if unm.any():
                ni[unm] = np.maximum(ni[unm], exec_end[unm])
            ni[frz == _FRZ_BUSY] += 1
        self.fu_ni[lf, uc] = ni
        bm = p.cond_mispred[sf]
        if bm.any():
            self.blk_resolve_v[lf[bm]] = exec_end[bm]
        if p.uses_ep_stall:
            for e in np.nonzero(pr >= 0)[0].tolist():
                sc = self._stage_cycle(
                    int(pr[e]), v, e, agen_end, exec_end, c,
                    bool(mm[e]),
                )
                if sc is None:
                    continue
                lane = int(lf[e])
                self.padded[lane] += 1
                self.epring[lane, max(sc, v + 1) & _RING_MASK] += 1
        for e, stage in bubbles:
            sc = self._stage_cycle(
                stage, v, e, agen_end, exec_end, c, bool(mm[e])
            )
            if sc is None:
                continue
            self.epring[int(lf[e]), max(sc, v + 1) & _RING_MASK] += (
                p.recovery_bubbles
            )

    # ------------------------------------------------------------------
    def _dispatch(self, v):
        p = self.plan
        d = p.depth - 1
        D = np.nonzero(self.active & (self.conv_len[:, d] > 0))[0]
        if D.size == 0:
            return
        s = self.conv_start[D, d]
        i_arr = self._arangeW[None, :]
        si = np.minimum(s[:, None] + i_arr, p.NS - 1)
        cond = i_arr < self.conv_len[D, d][:, None]
        cond &= (self.dp[D] - self.cp[D])[:, None] + i_arr < p.rob_size
        cond &= self.iq_len[D][:, None] + i_arr < p.iq_size
        memi = p.is_mem[si]
        if memi.any():
            cond &= ~memi | (
                self.lsq_occ[D][:, None] + (p.M[si] - p.M[s][:, None])
                < p.lsq_size
            )
        hdi = p.has_dest[si] > 0
        cond &= ~hdi | (
            self.free_cnt[D][:, None] - (p.HD[si] - p.HD[s][:, None]) >= 1
        )
        k = np.cumprod(cond, axis=1).sum(axis=1)
        km = k > 0
        if not km.any():
            return
        Dk = D[km]
        sk = s[km]
        kk = k[km]
        pos = self.iq_len[Dk][:, None] + i_arr
        mfill = i_arr < kk[:, None]
        rr, cc = np.nonzero(mfill)
        self.iq_slot[Dk[rr], pos[rr, cc]] = sk[rr] + cc
        self.dp[Dk] += kk
        self.lsq_occ[Dk] += p.M[sk + kk] - p.M[sk]
        self.free_cnt[Dk] -= p.HD[sk + kk] - p.HD[sk]
        self.dispatched[Dk] += kk
        self.iq_len[Dk] += kk
        self.conv_start[Dk, d] += kk
        self.conv_len[Dk, d] -= kk

    # ------------------------------------------------------------------
    def _fetch(self, v):
        p = self.plan
        fl = (
            self.active & (self.conv_len[:, 0] == 0)
            & ~self.blk_active & (self.resume_v <= v)
        )
        if not fl.any():
            return
        idx = np.nonzero(fl)[0]
        g = self.g_ptr[idx]
        ex = g >= p.NG
        if ex.any():
            for lane in idx[ex].tolist():
                self._evict(lane, "ran past the prepared stream")
            keep = ~ex
            idx = idx[keep]
            g = g[keep]
            if idx.size == 0:
                return
        gs = p.g_start[g]
        gl = p.g_len[g]
        self.conv_start[idx, 0] = gs
        self.conv_len[idx, 0] = gl
        self.fetched[idx] += gl
        self.branches[idx] += p.g_branches[g]
        mp = p.g_mispred[g]
        if mp.any():
            lm = idx[mp]
            self.branch_mispredicts[lm] += 1
            self.blk_active[lm] = True
            self.blk_fetch_abs[lm] = v + self.burned[lm]
        if self.tep_probe:
            for jj in range(int(gl.max())):
                sub = gl > jj
                if not sub.any():
                    break
                li = idx[sub]
                sl = gs[sub] + jj
                ti = p.tepi[sl]
                hit = (self.tep_tag[li, ti] == p.tept[sl]) & (
                    self.tep_cnt[li, ti] > 0
                )
                self.pred[li, sl] = np.where(
                    hit, self.tep_stage[li, ti], -1
                ).astype(np.int8)
        hm = p.g_has_miss[g]
        if hm.any():
            for lane, gi in zip(idx[hm].tolist(), g[hm].tolist()):
                lo = int(p.g_miss_off[gi])
                hi = int(p.g_miss_off[gi + 1])
                stall = 0
                mem = self.lanemem[lane]
                for mpc in p.miss_pcs[lo:hi].tolist():
                    lat2 = mem.access_l2(int(mpc)) - 1
                    if lat2 > stall:
                        stall = lat2
                if stall and v + 1 + stall > self.resume_v[lane]:
                    self.resume_v[lane] = v + 1 + stall
        self.g_ptr[idx] += 1

    # ------------------------------------------------------------------
    def _run_kernel(self, fn, force_evict):
        """Advance every lane to completion with one compiled-kernel call.

        The kernel mutates this engine's own arrays in place, so
        :meth:`_export` (and tests poking at engine state) see exactly
        what the numpy loop would have produced. Only the d-side cache
        overlays differ in representation: the kernel needs them
        materialized per lane as flat tag arrays up front.
        """
        p = self.plan
        N = self.N
        d_nsets = p.l1d_mask + 1
        l2_nsets = p.l2_mask + 1
        dt, dc = _flat_sets(p.l1d_sets, d_nsets, p.l1d_assoc)
        lt, lc = _flat_sets(p.l2_sets, l2_nsets, p.l2_assoc)
        l1d_tags = np.repeat(dt.reshape(1, -1), N, axis=0)
        l1d_cnt = np.repeat(dc.reshape(1, -1), N, axis=0)
        l2_tags = np.repeat(lt.reshape(1, -1), N, axis=0)
        l2_cnt = np.repeat(lc.reshape(1, -1), N, axis=0)
        km = {
            k: np.zeros(N, dtype=np.int64)
            for k in ("l1d_hits", "l1d_misses", "l2_hits", "l2_misses",
                      "mem_accesses")
        }
        evict_code = np.zeros(N, dtype=np.int64)
        force_at = np.full(N, -1, dtype=np.int64)
        for lane, at in force_evict.items():
            force_at[lane] = at
        d64 = np.zeros(1, dtype=np.int64)
        d8 = np.zeros(1, dtype=np.int8)
        if self.tep_probe:
            tepi, tept = p.tepi, p.tept
            ttag, tcnt, tstg = self.tep_tag, self.tep_cnt, self.tep_stage
        else:
            tepi = tept = ttag = tcnt = tstg = d64
        if p.uses_vte:
            t_rr, t_ex, t_mem, t_wb = self.T_RR, self.T_EX, self.T_MEM, self.T_WB
            t_frz, t_has = self.T_FRZ, self.T_HAS
        else:
            t_rr = t_ex = t_mem = t_wb = t_has = d64
            t_frz = d8
        arrays = [
            p.op, p.lat, p.fu, p.nsrcs, p.has_dest,
            p.is_load, p.is_store, p.is_mem, p.cond_mispred,
            p.ts, p.SM, p.M, p.HD,
            p.srank, p.st_addr8, p.addr8, p.mem_addr,
            p.ws0, p.ws1,
            p.g_start, p.g_len, p.g_branches, p.g_mispred, p.g_has_miss,
            p.g_miss_off, p.miss_pcs,
            tepi, tept,
            t_rr, t_ex, t_mem, t_wb, t_frz, t_has,
            self.tape, self.pred,
            self.cec, self.wake, self.iq_slot, self.iq_len,
            self.conv_start, self.conv_len, self.fu_ni,
            self.wbring, self.epring,
            self.store_resolve, self.premax, self.frontier, self.pm_run,
            self.lsq_occ, self.free_cnt, self.cp, self.dp,
            self.blk_active, self.blk_resolve_v, self.blk_fetch_abs,
            self.resume_v, self.g_ptr, self.burned, self.v_end,
            self.last_commit_real, self.active, evict_code, force_at,
            self.committed, self.fetched, self.dispatched, self.issued,
            self.replays, self.branch_mispredicts, self.branches,
            self.false_predictions, self.ep_stalls_stat, self.slot_freezes,
            self.padded, self.wrong_path, self.regreads, self.regwrites,
            self.broadcasts, self.broadcast_occ, self.iq_occ,
            self.cam_searches, self.forwards,
            self.faults_total, self.faults_predicted, self.faults_unpredicted,
            self.stage_faults, self.fu_op_counts,
            ttag, tcnt, tstg,
            l1d_tags, l1d_cnt, l2_tags, l2_cnt,
            km["l1d_hits"], km["l1d_misses"], km["l2_hits"],
            km["l2_misses"], km["mem_accesses"],
        ]
        for i, a in enumerate(arrays):
            if not a.flags["C_CONTIGUOUS"]:
                raise BatchFallback(f"non-contiguous kernel array #{i}")
        params = [
            N, p.NS, p.NW, p.n_stores, self.premax.shape[1],
            p.width, p.depth, p.iq_size, p.rob_size, p.lsq_size,
            p.target, p.redirect_penalty, p.replay_recovery,
            p.recovery_bubbles, int(bool(p.model_wrong_path)),
            int(self.tep_probe), int(bool(p.uses_vte)),
            int(bool(p.uses_ep_stall)), int(bool(p.tolerates)),
            p.sel_mode, p.max_cycles, p.hang_cycles,
            p.NG, p.tep_n, getattr(p, "tep_cmax", 0),
            p.l1d_shift, p.l1d_mask, p.l1d_assoc, d_nsets,
            p.l2_shift, p.l2_mask, p.l2_assoc, l2_nsets,
            p.lat_l1, p.lat_l2, p.lat_mem,
        ]
        call_kernel(fn, arrays, params)
        for lane in np.nonzero(evict_code)[0].tolist():
            code = int(evict_code[lane])
            self._evict(lane, _EVICT_REASON.get(code, "kernel eviction"))
        self.active[:] = False  # every lane either finished or evicted
        self._km = km

    # ------------------------------------------------------------------
    def run(self, force_evict=None):
        """Advance all lanes to completion; returns per-lane raw results.

        ``force_evict`` maps lane -> virtual cycle; the lane is evicted
        at the top of that cycle (test hook for the divergence path).
        """
        p = self.plan
        active = self.active
        width = p.width
        # tapes carrying in-order-stage bits would hit the scalar
        # dispatch-side checks the engine doesn't model
        bad = np.nonzero((self.tape & _INORDER_MASK).any(axis=1))[0]
        for lane in bad.tolist():
            self._evict(lane, "in-order-stage fault on tape")
        force_evict = dict(force_evict or {})
        # the compiled kernel sizes its selection scratch statically
        if p.iq_size <= 64 and p.width <= 8:
            fn = load_kernel()
            if fn is not None:
                self._run_kernel(fn, force_evict)
                return self._export()
        v = 0
        cl = self.conv_len
        cs = self.conv_start
        while True:
            fin = active & (self.committed >= p.target)
            if fin.any():
                self.v_end[fin] = v
                active[fin] = False
            if force_evict:
                for lane, at in list(force_evict.items()):
                    if v >= at:
                        if active[lane]:
                            self._evict(lane, "forced eviction (test hook)")
                        del force_evict[lane]
            if not active.any():
                break
            if not v & 255:
                real = v + self.burned
                bad = active & (
                    (real > p.max_cycles)
                    | (real - self.last_commit_real >= p.hang_cycles)
                )
                if bad.any():
                    for lane in np.nonzero(bad)[0].tolist():
                        self._evict(lane, "watchdog (hang or cycle budget)")
                    if not active.any():
                        break
            vm = v & _RING_MASK
            # whole-pipeline stalls burn in bulk (virtual-time excision)
            k = self.epring[:, vm]
            kb = active & (k > 0)
            if kb.any():
                kk = k[kb].astype(np.int64)
                self.burned[kb] += kk
                self.ep_stalls_stat[kb] += kk
                self.epring[kb, vm] = 0
            res = active & (self.blk_resolve_v == v)
            if res.any():
                self.blk_active[res] = False
                self.blk_resolve_v[res] = INF
                np.maximum(
                    self.resume_v, v + p.redirect_penalty,
                    out=self.resume_v, where=res,
                )
                if p.model_wrong_path:
                    wasted = np.maximum(
                        (v + self.burned) - self.blk_fetch_abs - 1, 0
                    )
                    self.wrong_path[res] += wasted[res] * width
            self._commit(v)
            self._select_issue(v)
            self._dispatch(v)
            for i in range(p.depth - 1, 0, -1):
                m = active & (cl[:, i] == 0)
                if m.any():
                    cl[m, i] = cl[m, i - 1]
                    cs[m, i] = cs[m, i - 1]
                    cl[m, i - 1] = 0
            self._fetch(v)
            self.iq_occ[active] += self.iq_len[active]
            self.wbring[:, vm] = 0
            v += 1
        return self._export()

    # ------------------------------------------------------------------
    def _export(self):
        """Raw per-lane results: a counter dict per lane, None if evicted."""
        p = self.plan
        out = []
        for lane in range(self.N):
            if self.evicted_reason[lane] is not None:
                out.append(None)
                continue
            ve = int(self.v_end[lane])
            cec = self.cec[lane]
            km = self._km
            if km is not None:
                dside = {k: int(v_[lane]) for k, v_ in km.items()}
            else:
                mem = self.lanemem[lane]
                dside = {
                    "l1d_hits": mem.l1d_hits,
                    "l1d_misses": mem.l1d_misses,
                    "l2_hits": mem.l2_hits,
                    "l2_misses": mem.l2_misses,
                    "mem_accesses": mem.mem_accesses,
                }
            g = int(self.g_ptr[lane])
            stage_faults = {}
            for st in range(10):
                cnt = int(self.stage_faults[lane, st])
                if cnt:
                    stage_faults[st] = cnt
            fu_ops = {}
            for o in range(8):
                cnt = int(self.fu_op_counts[lane, o])
                if cnt:
                    fu_ops[o] = cnt
            out.append({
                "cycles": ve + int(self.burned[lane]),
                "committed": int(self.committed[lane]),
                "fetched": int(self.fetched[lane]),
                "dispatched": int(self.dispatched[lane]),
                "issued": int(self.issued[lane]),
                "squashed": 0,
                "replays": int(self.replays[lane]),
                "safety_net_replays": 0,
                "storm_faults": 0,
                "branches": int(self.branches[lane]),
                "branch_mispredicts": int(self.branch_mispredicts[lane]),
                "wrong_path_fetched": int(self.wrong_path[lane]),
                "faults_total": int(self.faults_total[lane]),
                "faults_predicted": int(self.faults_predicted[lane]),
                "faults_unpredicted": int(self.faults_unpredicted[lane]),
                "false_predictions": int(self.false_predictions[lane]),
                "stage_faults": stage_faults,
                "ep_stalls": int(self.ep_stalls_stat[lane]),
                "slot_freezes": int(self.slot_freezes[lane]),
                "padded_instructions": int(self.padded[lane]),
                "inorder_stalls": 0,
                "memdep_violations": 0,
                "fu_ops": fu_ops,
                "regreads": int(self.regreads[lane]),
                "regwrites": int(self.regwrites[lane]),
                "broadcasts": int(self.broadcasts[lane]),
                "broadcast_occupancy": int(self.broadcast_occ[lane]),
                "iq_occupancy_accum": int(self.iq_occ[lane]),
                "wb_writes": int(((cec >= 0) & (cec < ve)).sum()),
                "lsq_searches": int(self.cam_searches[lane]),
                "store_forwards": int(self.forwards[lane]),
                "hier": {
                    "l1i_hits": int(p.cum_l1i_hits[g]),
                    "l1i_misses": int(p.cum_l1i_misses[g]),
                    **dside,
                },
            })
        return out
