"""Reorder buffer: in-order window with squash support."""

from collections import deque


class ReorderBuffer:
    """A bounded in-order window of in-flight instructions."""

    def __init__(self, size):
        if size <= 0:
            raise ValueError("ROB size must be positive")
        self.size = size
        self._entries = deque()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self):
        """True when no entry can be allocated."""
        return len(self._entries) >= self.size

    @property
    def head(self):
        """The oldest in-flight instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def allocate(self, inst):
        """Insert a dispatched instruction at the tail."""
        if self.full:
            raise RuntimeError("ROB overflow")
        self._entries.append(inst)

    def commit_ready(self, width):
        """Pop and return up to ``width`` completed head instructions."""
        committed = []
        while self._entries and len(committed) < width:
            head = self._entries[0]
            if not head.completed:
                break
            committed.append(self._entries.popleft())
        return committed

    def squash_from(self, seq):
        """Remove and return all instructions with ``seq`` >= the given one.

        Returned youngest-first, which is the order rename undo requires.
        """
        squashed = []
        while self._entries and self._entries[-1].seq >= seq:
            squashed.append(self._entries.pop())
        return squashed
