"""Register renaming state: RAT, free list, and the ready-cycle scoreboard.

The ready-cycle scoreboard replaces an explicit tag-broadcast CAM in the
software model: ``ready_cycle[p]`` holds the absolute cycle at which
physical register ``p``'s value becomes visible to dependents (set when the
producer is scheduled, per the countdown logic of Section 3.2.2; the
delayed-broadcast rule for faulty producers adds one). An operand is ready
in cycle ``c`` iff ``ready_cycle[p] <= c`` — exactly what a dependent's tag
match against the (possibly delayed) broadcast would conclude.
"""

INFINITE = 1 << 60


class RenameState:
    """RAT + free list + per-physical-register ready cycles."""

    def __init__(self, n_arch_regs, n_phys_regs):
        if n_phys_regs <= n_arch_regs:
            raise ValueError("need more physical than architectural registers")
        self.n_arch_regs = n_arch_regs
        self.n_phys_regs = n_phys_regs
        self.rat = list(range(n_arch_regs))
        self.free_list = list(range(n_arch_regs, n_phys_regs))
        self.ready_cycle = [0] * n_phys_regs
        for p in range(n_arch_regs, n_phys_regs):
            self.ready_cycle[p] = INFINITE

    @property
    def free_regs(self):
        """Number of free physical registers."""
        return len(self.free_list)

    def can_rename(self, needs_dest):
        """True when a destination register (if needed) can be allocated."""
        return not needs_dest or bool(self.free_list)

    def rename(self, inst):
        """Rename one instruction's sources and destination in place."""
        srcs = inst.static.srcs
        rat = self.rat
        n = len(srcs)
        if n == 2:
            inst.phys_srcs = (rat[srcs[0]], rat[srcs[1]])
        elif n == 1:
            inst.phys_srcs = (rat[srcs[0]],)
        elif n == 0:
            inst.phys_srcs = ()
        else:
            inst.phys_srcs = tuple(rat[a] for a in srcs)
        dest = inst.static.dest
        if dest is None:
            inst.phys_dest = -1
            inst.prev_phys_dest = -1
            return
        if not self.free_list:
            raise RuntimeError("rename called with empty free list")
        new_phys = self.free_list.pop()
        inst.prev_phys_dest = self.rat[dest]
        inst.phys_dest = new_phys
        self.rat[dest] = new_phys
        self.ready_cycle[new_phys] = INFINITE

    def commit(self, inst):
        """Free the previous mapping of a committing instruction."""
        if inst.phys_dest >= 0:
            self.free_list.append(inst.prev_phys_dest)

    def squash(self, inst):
        """Undo one instruction's rename (call youngest-first)."""
        if inst.phys_dest >= 0:
            self.rat[inst.static.dest] = inst.prev_phys_dest
            self.free_list.append(inst.phys_dest)
            self.ready_cycle[inst.phys_dest] = INFINITE
            inst.phys_dest = -1
            inst.prev_phys_dest = -1
        inst.phys_srcs = ()

    def set_ready(self, phys_reg, cycle):
        """Record the broadcast cycle of ``phys_reg`` (producer scheduled)."""
        if phys_reg >= 0:
            self.ready_cycle[phys_reg] = cycle

    def srcs_ready(self, inst, cycle):
        """True when all of ``inst``'s sources are ready in ``cycle``."""
        ready = self.ready_cycle
        for p in inst.phys_srcs:
            if ready[p] > cycle:
                return False
        return True

    def ready_by(self, inst):
        """The cycle at which the last source of ``inst`` becomes ready."""
        if not inst.phys_srcs:
            return 0
        return max(self.ready_cycle[p] for p in inst.phys_srcs)

    def shift_pending(self, now, delta=1):
        """Shift not-yet-ready broadcast cycles by ``delta`` (EP stall)."""
        ready = self.ready_cycle
        for p in range(self.n_phys_regs):
            c = ready[p]
            if now < c < INFINITE:
                ready[p] = c + delta
