"""Branch direction predictor (bimodal/gshare family).

A PC-indexed table of 2-bit saturating counters, optionally hashed with
recent global history (gshare). The global history register is maintained
regardless of how many bits the index uses, because the TEP hashes recent
branch outcomes into *its* index (Section 2.1.1).

The synthetic workloads' conditional branches are biased Bernoulli draws
with no inter-branch correlation, so the default configuration indexes the
table by PC only (bimodal): history hashing would only dilute training.
"""


class GShare:
    """Direction predictor with a 2-bit counter table and a GHR.

    Parameters
    ----------
    table_bits:
        log2 of the counter-table size.
    history_bits:
        Width of the maintained global history register (consumed by the
        TEP's index hash).
    index_history_bits:
        How many history bits the *predictor index* XORs in; 0 = bimodal.
    """

    def __init__(self, table_bits=12, history_bits=10, index_history_bits=0):
        if table_bits <= 0 or history_bits < 0 or index_history_bits < 0:
            raise ValueError("bad predictor geometry")
        if index_history_bits > history_bits:
            raise ValueError("index_history_bits cannot exceed history_bits")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self.index_history_bits = index_history_bits
        self._mask = (1 << table_bits) - 1
        self._hist_mask = (1 << history_bits) - 1 if history_bits else 0
        self._index_hist_mask = (
            (1 << index_history_bits) - 1 if index_history_bits else 0
        )
        self._table = [2] * (1 << table_bits)  # weakly taken
        self.ghr = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc):
        return ((pc >> 2) ^ (self.ghr & self._index_hist_mask)) & self._mask

    def predict(self, pc):
        """Return the predicted direction for the branch at ``pc``."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train the counter and shift the global history."""
        idx = self._index(pc)
        counter = self._table[idx]
        if taken:
            self._table[idx] = min(3, counter + 1)
        else:
            self._table[idx] = max(0, counter - 1)
        self.ghr = ((self.ghr << 1) | int(taken)) & self._hist_mask

    def predict_and_update(self, pc, taken):
        """Predict, train, and return True when the prediction was wrong."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        self.predictions += 1
        wrong = prediction != taken
        if wrong:
            self.mispredictions += 1
        return wrong

    @property
    def misprediction_rate(self):
        """Fraction of conditional branches mispredicted."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
