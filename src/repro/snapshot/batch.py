"""Batched measurement: N campaign draws per snapshot fork.

Campaign draws of one point fork the *same* warmup snapshot and fetch the
*identical* instruction stream — they differ only in ``measurement_seed``,
which reseeds the fault injector at the warmup→measurement boundary. The
batch path exploits this: one fork supplies the lane-invariant plan
(:func:`repro.uarch.batchcore.build_plan`), the per-lane fault tapes are
drawn up front (:func:`repro.uarch.batchstream.build_tapes`), and the
vector engine advances all N lanes per Python dispatch.

Correctness never depends on the vector path handling every corner:

* a spec the engine cannot model (storm, telemetry, verify, no
  measurement seed, exotic config) is simply not batch-eligible;
* a *batch* the planner rejects (:class:`~repro.uarch.batchstream.
  BatchFallback`) falls back to per-lane scalar runs, bit-identically;
* a *lane* the engine evicts mid-window (safety-net replay, watchdog)
  re-runs alone on the scalar path, also bit-identically.

:class:`BatchReport` records which of those happened — benchmarks and the
CI ``batch-smoke`` gate use it to detect a silently all-scalar batch.
"""

import os

from repro.core.schemes import make_scheme
from repro.harness.runner import SimResult, measure, run_one
from repro.isa.opcodes import OpClass, PipeStage
from repro.power.energy_model import EnergyModel
from repro.snapshot.fork import ensure_snapshot, snapshot_eligible, warmed_core
from repro.uarch.batchstream import BatchFallback, build_tapes, have_numpy
from repro.uarch.stats import SimStats


class BatchReport:
    """How one :func:`run_batch` call actually executed.

    ``vector_lanes + scalar_lanes == n_lanes`` after the call. A
    whole-batch fallback sets ``fallback_reason``; per-lane evictions land
    in ``evictions`` (lane index → reason string).
    """

    def __init__(self):
        self.n_lanes = 0
        self.vector_lanes = 0
        self.scalar_lanes = 0
        self.fallback_reason = None
        self.evictions = {}

    def __repr__(self):
        return (
            f"BatchReport(vector={self.vector_lanes}, "
            f"scalar={self.scalar_lanes}, "
            f"fallback={self.fallback_reason!r}, "
            f"evictions={len(self.evictions)})"
        )


def resolve_batch_lanes(batch_lanes=None):
    """Effective lane count: the explicit value, else ``REPRO_BATCH_LANES``.

    Returns 0 (batching off) for unset, malformed, or negative values —
    the callers treat anything below 2 as "scalar path only".
    """
    if batch_lanes is None:
        try:
            batch_lanes = int(os.environ.get("REPRO_BATCH_LANES", "0"))
        except ValueError:
            batch_lanes = 0
    return max(0, int(batch_lanes))


def batch_eligible(spec):
    """True when ``spec`` may run as one lane of a batched measurement.

    Requires numpy, a snapshot-eligible warmup, and a measurement-window
    suffix of exactly ``(measurement_seed, None, False, None, None)``:
    storm wrapping mutates the injector per cycle, telemetry attaches
    observers, and without a measurement seed the injector continues the
    warmup RNG stream, whose state the tape builder does not replicate.
    """
    return (
        have_numpy()
        and snapshot_eligible(spec)
        and getattr(spec, "measurement_seed", None) is not None
        and getattr(spec, "storm", None) is None
        and getattr(spec, "telemetry", None) is None
    )


def batch_groups(specs, max_lanes):
    """Partition ``specs`` into (batchable-group, scalar-rest).

    Returns ``(groups, rest)`` where each group is a list of 2..max_lanes
    specs sharing one warmup key (one snapshot, one plan) and ``rest``
    collects everything else — ineligible specs and singleton groups,
    which gain nothing from the batch path. Input order is preserved
    within each list.
    """
    groups = {}
    rest = []
    order = []
    for spec in specs:
        if not batch_eligible(spec):
            rest.append(spec)
            continue
        key = spec.warmup_key()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(spec)
    out = []
    for key in order:
        members = groups[key]
        if len(members) < 2:
            rest.extend(members)
            continue
        for i in range(0, len(members), max_lanes):
            chunk = members[i:i + max_lanes]
            if len(chunk) < 2:
                rest.extend(chunk)
            else:
                out.append(chunk)
    return out, rest


def _scalar_lane(spec, snapshot_dir):
    """One lane the scalar way — the engine's bit-identity reference."""
    if snapshot_dir is not None and snapshot_eligible(spec):
        return measure(warmed_core(spec, snapshot_dir), spec)
    return run_one(spec)


def _lane_result(spec, raw):
    """Package one engine lane export exactly as ``measure`` would."""
    stats = SimStats()
    for key, val in raw.items():
        if key in ("hier", "stage_faults", "fu_ops"):
            continue
        setattr(stats, key, val)
    stats.stage_faults = {
        PipeStage(s): c for s, c in sorted(raw["stage_faults"].items())
    }
    stats.fu_ops = {
        OpClass(o): c for o, c in sorted(raw["fu_ops"].items())
    }
    hier = dict(raw["hier"])
    energy = EnergyModel().evaluate(
        stats, hier, spec.vdd, make_scheme(spec.scheme).uses_tep
    )
    return SimResult(spec, stats, energy, dict(raw["hier"]))


def run_batch(specs, snapshot_dir, report=None, force_evict=None):
    """Run ``specs`` (lanes of one batch) and return their SimResults.

    All specs must share one warmup key and be :func:`batch_eligible`;
    violations raise ``ValueError`` (they indicate a grouping bug, not a
    modeling limit). Engine-level limits (:class:`BatchFallback`) and
    per-lane evictions degrade to the scalar path transparently.

    ``force_evict`` (lane index → virtual cycle) is a test hook forcing
    divergence-path coverage at arbitrary points.
    """
    if report is None:
        report = BatchReport()
    report.n_lanes = len(specs)
    if not specs:
        return []
    for spec in specs:
        if not batch_eligible(spec):
            raise ValueError(f"spec not batch-eligible: {spec!r}")
    ref = specs[0]
    key = ref.warmup_key()
    if any(s.warmup_key() != key for s in specs[1:]):
        raise ValueError("mixed warmup keys in one batch")

    raw = None
    try:
        from repro.uarch.batchcore import BatchEngine, build_plan

        ensure_snapshot(ref, snapshot_dir)
        donor = warmed_core(ref, snapshot_dir)
        plan = build_plan(donor, ref.n_instructions)
        tapes = build_tapes(
            donor, plan.stream,
            [s.measurement_seed for s in specs], ref.vdd,
        )
        engine = BatchEngine(plan, tapes)
        raw = engine.run(force_evict=force_evict)
    except BatchFallback as exc:
        report.fallback_reason = str(exc)
        report.scalar_lanes = len(specs)
        return [_scalar_lane(spec, snapshot_dir) for spec in specs]

    results = []
    for lane, (spec, lane_raw) in enumerate(zip(specs, raw)):
        if lane_raw is None:
            report.evictions[lane] = engine.evicted_reason[lane]
            report.scalar_lanes += 1
            results.append(_scalar_lane(spec, snapshot_dir))
        else:
            report.vector_lanes += 1
            results.append(_lane_result(spec, lane_raw))
    return results
