"""Fork-from-snapshot: the warm-once / measure-many entry points.

Every fork of one snapshot key fetches the *same* dynamic instruction
stream by construction: the trace generator's RNG is warmup-side state,
captured in the blob and restored identically into every fork, and
nothing on the measurement side (``measurement_seed``, storm knobs)
reseeds it. No cross-fork sharing machinery is needed to guarantee it —
an earlier shared fetch-decision tape was measured *slower* than just
re-walking the CFG per fork (the generator emits ~560k inst/s, several
times faster than the pipeline consumes them) and was removed.
"""

import sys

from repro.harness.runner import warm_core
from repro.snapshot.cache import SnapshotCache
from repro.snapshot.state import SnapshotError, capture_core, restore_core


def snapshot_eligible(spec):
    """True when ``spec``'s warmup may be served from a snapshot.

    Three exclusions:

    * no warmup — there is nothing to amortize;
    * ``verify`` — the lockstep golden model spans the warmup too, so a
      verified run cannot start from state it never observed;
    * ``corruption`` — the chaos hook corrupts state *during* warmup by
      design, so the warmup is not a pure function of the warmup prefix.

    ``verify``/``corruption`` live in the measurement suffix of the
    canonical form, which would otherwise alias their warmups onto clean
    snapshots — this gate is what keeps that sound (the partition test
    documents the argument).
    """
    return (
        getattr(spec, "warmup", 0) > 0
        and not getattr(spec, "verify", False)
        and not getattr(spec, "corruption", None)
    )


def _resolve_cache(directory):
    if isinstance(directory, SnapshotCache):
        return directory
    return SnapshotCache(directory)


def ensure_snapshot(spec, directory=None):
    """Make sure ``spec``'s warmup snapshot exists; return its key.

    A no-op when the snapshot is already cached. Used by
    :func:`repro.harness.parallel.run_many`'s pre-pass so each unique
    warmup prefix of a batch is warmed exactly once before the fan-out.
    """
    cache = _resolve_cache(directory)
    key = spec.warmup_key()
    if not cache.has(key):
        cache.put_blob(key, capture_core(warm_core(spec), spec))
    return key


def warmed_core(spec, directory=None):
    """A core at ``spec``'s warmup boundary: forked if cached, else cold.

    Any defect in a cached blob — truncation, corruption, a stale pickle
    that somehow survived version pruning — is logged, evicted, and
    recovered by a cold warmup whose snapshot replaces the bad entry. A
    bad snapshot must cost one recompute, never a failed run.
    """
    cache = _resolve_cache(directory)
    key = spec.warmup_key()
    blob = cache.get_blob(key)
    if blob is not None:
        try:
            return restore_core(blob)
        except SnapshotError as exc:
            print(
                f"[snapshot] discarding corrupt snapshot "
                f"{key + cache.suffix}: {exc}",
                file=sys.stderr,
            )
            cache.invalidate(key)
    core = warm_core(spec)
    cache.put_blob(key, capture_core(core, spec))
    return core
