"""Deep capture/restore of a warmed core.

The capture is a plain pickle of the whole :class:`~repro.uarch.pipeline.
OoOCore`: trace generator position, caches, predictor tables, rename
state, in-flight structures — everything a continued run reads. The
simulator keeps all of that picklable (bound-method latches pickle by
reference; RNGs carry their state), so restore-and-continue is
bit-identical to never having stopped.

One object is externalized: the :class:`~repro.isa.program.Program` is
content-immutable (``build_core`` already shares one cached instance per
``(benchmark, seed)`` across *all* cold runs; the only write to it,
``StaticInst.exec_count``, is an aggregate profile counter nothing
result-bearing reads). Pickling it into every blob would roughly double
blob size and — worse — per-fork unpickle time, so the blob stores a
``("program", benchmark, seed)`` persistent id instead and restore
resolves it through the same program cache cold builds use. A typical
post-warmup blob is ~100 kilobytes.
"""

import io
import pickle

from repro.isa.program import Program


class SnapshotError(RuntimeError):
    """A core cannot be captured, or a blob is not a valid snapshot."""


def capture_core(core, spec=None):
    """Serialize a warmed core to bytes.

    Refuses cores with observers attached (telemetry, lockstep commit
    listener) or a storm-wrapped injector: those are measured-window
    state, and a snapshot taken past the measurement boundary would leak
    one draw's effects into every fork. The warmup paths never attach
    them, so hitting this is a caller bug, not an I/O condition.

    When ``spec`` is given, the program graph is written as a persistent
    id rather than inline (see the module docstring); the blob then
    requires :func:`restore_core` to rebuild it from the program cache.
    """
    if core.ebus is not None or core.telemetry_sampler is not None:
        raise SnapshotError(
            "refusing to snapshot a core with telemetry attached"
        )
    if core.commit_listener is not None:
        raise SnapshotError(
            "refusing to snapshot a core with a commit listener"
        )
    if getattr(core.injector, "storm_faults", None) is not None:
        raise SnapshotError(
            "refusing to snapshot a storm-wrapped core"
        )
    if spec is None:
        return pickle.dumps(core, protocol=pickle.HIGHEST_PROTOCOL)
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)
    benchmark, seed = spec.benchmark, spec.seed

    def persistent_id(obj):
        if isinstance(obj, Program):
            return ("program", benchmark, seed)
        return None

    pickler.persistent_id = persistent_id
    pickler.dump(core)
    return buf.getvalue()


def _resolve_program(pid):
    if not (isinstance(pid, tuple) and len(pid) == 3 and pid[0] == "program"):
        raise SnapshotError(f"unknown persistent id in snapshot: {pid!r}")
    from repro.harness.runner import _cached_program
    from repro.workloads.profiles import get_profile

    _, benchmark, seed = pid
    return _cached_program(get_profile(benchmark), seed)


def restore_core(blob):
    """Deserialize a captured core; raise :class:`SnapshotError` if invalid.

    Corruption surfaces here as whatever ``pickle`` raises (or as a
    wrong-type payload); callers treat any failure as a cache miss and
    fall back to a cold warmup (:func:`repro.snapshot.fork.warmed_core`).
    """
    from repro.uarch.pipeline import OoOCore

    try:
        unpickler = pickle.Unpickler(io.BytesIO(blob))
        unpickler.persistent_load = _resolve_program
        core = unpickler.load()
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"unreadable snapshot blob: {exc!r}") from exc
    if not isinstance(core, OoOCore):
        raise SnapshotError(
            f"snapshot blob decoded to {type(core).__name__}, not OoOCore"
        )
    return core
