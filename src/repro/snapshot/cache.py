"""Content-addressed on-disk store of warmed-core snapshots.

Shares the result cache's :class:`~repro.harness.diskcache.BlobStore`
mechanics — and, by default, the same root and the same
``model_version`` directory — so one ``prune_stale`` sweep retires both
entry kinds together and a source change can never pair a stale snapshot
with fresh results. Entries are ``<warmup_key>.snap`` next to the result
cache's ``<spec_key>.pkl``.

A small in-process memory layer fronts the disk: a batch forking many
draws from one prefix pays the file read once per process, not once per
draw.
"""

from repro.harness.diskcache import BlobStore

#: in-process blob layer, shared across SnapshotCache instances (they are
#: constructed per call site): (root, version, key) -> bytes. Bounded by
#: wholesale clearing, like the program/build caches — a batch touches a
#: handful of prefixes, so eviction order is irrelevant.
_MEM_LIMIT = 32
_MEM = {}


class SnapshotCache(BlobStore):
    """Warmed-core snapshots keyed by ``RunSpec.warmup_key()``."""

    suffix = ".snap"

    def __init__(self, root=None, version=None):
        from repro.harness.parallel import default_cache_root, model_version

        if root is None:
            import os

            root = os.environ.get("REPRO_SNAPSHOT_DIR") or default_cache_root()
        super().__init__(root, version or model_version())

    def _mem_key(self, key):
        return (self.root, self.version, key)

    def has(self, key):
        """True when a snapshot for ``key`` is available without warming."""
        if self._mem_key(key) in _MEM:
            return True
        import os

        return os.path.exists(self.path_for(key))

    def get_blob(self, key):
        """The snapshot bytes for ``key``, or ``None`` on a miss."""
        blob = _MEM.get(self._mem_key(key))
        if blob is not None:
            return blob
        blob = self.read_bytes(key)
        if blob is not None:
            if len(_MEM) >= _MEM_LIMIT:
                _MEM.clear()
            _MEM[self._mem_key(key)] = blob
        return blob

    def put_blob(self, key, blob):
        """Store snapshot bytes under ``key`` (atomic, best-effort)."""
        if len(_MEM) >= _MEM_LIMIT:
            _MEM.clear()
        _MEM[self._mem_key(key)] = blob
        self.write_bytes(key, blob)

    def invalidate(self, key):
        """Drop ``key`` everywhere (corrupt-blob eviction)."""
        _MEM.pop(self._mem_key(key), None)
        self.remove(key)
