"""Warmup snapshot/fork: amortize one warmup across many measurements.

A simulation's warmup phase is a pure function of the *warmup prefix* of
its spec (:meth:`~repro.harness.runner.RunSpec.warmup_canonical`): the
program, machine configuration, supply point, and warmup-phase RNG roots.
Everything that distinguishes measurement draws of a campaign point —
``measurement_seed``, storm stressors, telemetry — first takes effect at
the warmup→measurement boundary (:func:`~repro.harness.runner.
begin_measurement`). So the warmed machine state can be captured once,
content-addressed by :meth:`~repro.harness.runner.RunSpec.warmup_key`,
and every draw forked from it instead of re-simulating the warmup.

Forking is bit-identical to a cold run by construction (the capture is a
full deep snapshot of the core, trace generator included), and pinned so
by the fork-vs-cold digest tests. Snapshots share the result cache's
versioned :class:`~repro.harness.diskcache.BlobStore` mechanics: any
source change retires them wholesale; corrupt blobs cost one cold
recompute, never a crash.
"""

from repro.snapshot.cache import SnapshotCache
from repro.snapshot.fork import ensure_snapshot, snapshot_eligible, warmed_core
from repro.snapshot.state import SnapshotError, capture_core, restore_core

__all__ = [
    "SnapshotCache",
    "SnapshotError",
    "capture_core",
    "ensure_snapshot",
    "restore_core",
    "snapshot_eligible",
    "warmed_core",
]
