"""A set-associative cache model with true-LRU replacement.

The model tracks tags only (no data) — the simulator needs hit/miss timing
and access counts, not values. LRU state is kept as an ordered list per set,
most-recently-used last, which is fast at the associativities used here
(4-way L1, 16-way L2).
"""


class CacheConfig:
    """Geometry of a set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes.
    assoc:
        Associativity (ways per set).
    line_bytes:
        Cache line size in bytes (must be a power of two).
    name:
        Label used in statistics.
    """

    def __init__(self, size_bytes, assoc, line_bytes=64, name="cache"):
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        n_lines = size_bytes // line_bytes
        if n_lines % assoc:
            raise ValueError("size/line_bytes must be a multiple of assoc")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_lines // assoc
        if self.n_sets == 0:
            raise ValueError("cache too small for its associativity")
        self.name = name

    def __repr__(self):
        return (
            f"CacheConfig({self.name}: {self.size_bytes}B, "
            f"{self.assoc}-way, {self.line_bytes}B lines, {self.n_sets} sets)"
        )


class Cache:
    """A tag-only set-associative cache with LRU replacement."""

    def __init__(self, config):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.n_sets - 1
        self._pow2_sets = (config.n_sets & (config.n_sets - 1)) == 0
        self._assoc = config.assoc
        self._n_sets = config.n_sets
        # per-set list of tags, most-recently-used last
        self._sets = [[] for _ in range(config.n_sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, addr):
        line = addr >> self._line_shift
        if self._pow2_sets:
            return line & self._set_mask, line >> 0
        return line % self.config.n_sets, line

    def access(self, addr):
        """Access ``addr``; return True on hit.

        A miss allocates the line (evicting LRU if the set is full); a hit
        promotes the line to most-recently-used. The set lookup is inlined
        (vs :meth:`_index`): this is the hottest method of the memory
        model, called for every load, store and fetched cache line.
        """
        tag = addr >> self._line_shift
        if self._pow2_sets:
            ways = self._sets[tag & self._set_mask]
        else:
            ways = self._sets[tag % self._n_sets]
        if tag in ways:
            self.hits += 1
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            return True
        self.misses += 1
        if len(ways) >= self._assoc:
            del ways[0]
        ways.append(tag)
        return False

    def probe(self, addr):
        """Return True when ``addr`` is resident, without side effects."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    @property
    def accesses(self):
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self):
        """Miss rate over all accesses (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self):
        """Zero the hit/miss counters (contents retained)."""
        self.hits = 0
        self.misses = 0

    def flush(self):
        """Invalidate all lines and zero statistics."""
        self._sets = [[] for _ in range(self.config.n_sets)]
        self.reset_stats()
