"""Two-level cache hierarchy matching the paper's core (Section 4.2).

L1 is a 32KB 4-way split instruction/data cache with single-cycle latency;
the 16-way 8MB L2 takes 25 cycles and main memory 240 cycles.
"""

from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import MemoryHierarchy, HierarchyConfig, AccessResult

__all__ = [
    "Cache",
    "CacheConfig",
    "MemoryHierarchy",
    "HierarchyConfig",
    "AccessResult",
]
