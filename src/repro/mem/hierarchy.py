"""The two-level hierarchy glue: split L1, unified L2, flat main memory.

Latencies follow Section 4.2 of the paper: single-cycle L1, 25-cycle L2,
240-cycle main memory. ``access_data``/``access_inst`` return the total
latency of the access so the pipeline can schedule completion events.
"""

from repro.mem.cache import Cache, CacheConfig


class AccessResult:
    """Outcome of one hierarchy access."""

    __slots__ = ("latency", "level")

    def __init__(self, latency, level):
        self.latency = latency
        self.level = level  # "L1" | "L2" | "MEM"

    def __repr__(self):
        return f"AccessResult(latency={self.latency}, level={self.level!r})"


class HierarchyConfig:
    """Latency and geometry parameters of the memory hierarchy."""

    def __init__(
        self,
        l1_size=32 * 1024,
        l1_assoc=4,
        l2_size=8 * 1024 * 1024,
        l2_assoc=16,
        line_bytes=64,
        l1_latency=1,
        l2_latency=25,
        mem_latency=240,
    ):
        self.l1_size = l1_size
        self.l1_assoc = l1_assoc
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.line_bytes = line_bytes
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.mem_latency = mem_latency


class MemoryHierarchy:
    """Split L1 I/D caches over a unified L2 over flat main memory."""

    def __init__(self, config=None):
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1i = Cache(CacheConfig(c.l1_size, c.l1_assoc, c.line_bytes, "L1I"))
        self.l1d = Cache(CacheConfig(c.l1_size, c.l1_assoc, c.line_bytes, "L1D"))
        self.l2 = Cache(CacheConfig(c.l2_size, c.l2_assoc, c.line_bytes, "L2"))
        self.mem_accesses = 0
        self._lat_l1 = c.l1_latency
        self._lat_l2 = c.l1_latency + c.l2_latency
        self._lat_mem = c.l1_latency + c.l2_latency + c.mem_latency

    def _access(self, l1, addr):
        if l1.access(addr):
            return AccessResult(self._lat_l1, "L1")
        if self.l2.access(addr):
            return AccessResult(self._lat_l2, "L2")
        self.mem_accesses += 1
        return AccessResult(self._lat_mem, "MEM")

    def access_data(self, addr):
        """Access the data side; returns an :class:`AccessResult`."""
        return self._access(self.l1d, addr)

    def access_inst(self, addr):
        """Access the instruction side; returns an :class:`AccessResult`."""
        return self._access(self.l1i, addr)

    def access_data_latency(self, addr):
        """Data-side access returning only the total latency (no result
        object): the pipeline's per-load/per-store fast path."""
        if self.l1d.access(addr):
            return self._lat_l1
        if self.l2.access(addr):
            return self._lat_l2
        self.mem_accesses += 1
        return self._lat_mem

    def access_inst_latency(self, addr):
        """Instruction-side access returning only the total latency."""
        if self.l1i.access(addr):
            return self._lat_l1
        if self.l2.access(addr):
            return self._lat_l2
        self.mem_accesses += 1
        return self._lat_mem

    def stats(self):
        """Return a dict of hit/miss counters for all levels."""
        return {
            "l1i_hits": self.l1i.hits,
            "l1i_misses": self.l1i.misses,
            "l1d_hits": self.l1d.hits,
            "l1d_misses": self.l1d.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "mem_accesses": self.mem_accesses,
        }

    def reset_stats(self):
        """Zero all counters (contents retained)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.mem_accesses = 0
