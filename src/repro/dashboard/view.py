"""In-memory live model of one campaign directory.

:class:`CampaignView` folds the records a
:class:`~repro.dashboard.watcher.JournalWatcher` emits into exactly the
state the offline tools rebuild from scratch — and then answers every
dashboard question from memory. The aggregation code is *shared*, not
mirrored: ``status()`` calls :func:`repro.campaign.status.
status_from_state` and ``report()`` calls :func:`repro.campaign.report.
report_from_state`, so a live view is byte-identical (as sorted-key
JSON) to a cold ``campaign status`` / ``campaign report`` rebuild of
the same journal — pinned by ``tests/dashboard/test_view.py``.

Folding is idempotent where re-emission is possible: draw records are
keyed by ``(point, index)`` (the fleet's exactly-once rule), point
completions first-write-win, and ``done`` is a latch — so a journal
rotation (the coordinator's atomic merge) that makes the watcher re-read
a file from byte zero converges to the same state instead of
double-counting.

The lease ledger feeds a fleet-health side model: open leases, per-worker
grant/complete/revoke tallies, steal and autoscale event logs, and the
coordinator's security audit counters (persisted as ledger ``audit``
records — see :meth:`~repro.fleet.ledger.LeaseLedger.audited`).
"""

import bisect
import os

from repro.campaign.journal import JournalState, read_manifest
from repro.campaign.plan import CampaignSpec
from repro.campaign.report import report_from_state
from repro.campaign.stats import PointAccumulator
from repro.campaign.status import status_from_state
from repro.dashboard.watcher import (
    SOURCE_JOURNAL,
    SOURCE_LEDGER,
    SOURCE_SHARD,
    JournalWatcher,
)

#: how many steal / scale events the fleet side model retains (newest
#: kept; the full history stays in leases.jsonl)
EVENT_LOG_LIMIT = 200


class CampaignView:
    """Incrementally folded view of a campaign directory.

    Construct, then call :meth:`refresh` on whatever cadence the
    consumer ticks at; every query method reads the folded state only.
    ``version`` increments exactly when a refresh changed anything —
    the figure cache and SSE broadcaster key on it.
    """

    def __init__(self, directory, watcher=None):
        self.directory = str(directory)
        manifest = read_manifest(self.directory)
        self.spec = CampaignSpec.from_dict(manifest["spec"])
        self.model_version = manifest.get("model_version")
        self.watcher = watcher or JournalWatcher(self.directory)
        self.state = JournalState()
        self.version = 0
        self._seen = set()  # (point, index) exactly-once gate
        self._indices = {}  # point id -> sorted draw indices (for bisect)
        self._point_ids = {p.id for p in self.spec.points()}
        self.fleet = {
            "workers": {},  # name -> {granted, completed, revoked, stolen_from}
            "open_leases": {},  # lease id -> grant record
            "steals": [],
            "scale_events": [],
            "audit": None,  # last persisted coordinator audit counters
            "leases_granted": 0,
            "leases_completed": 0,
            "leases_revoked": 0,
        }

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def refresh(self):
        """Poll the watcher and fold; returns the number of new records."""
        changed = 0
        for source, shard, record in self.watcher.poll():
            if source in (SOURCE_JOURNAL, SOURCE_SHARD):
                changed += self._fold_journal(record, shard)
            elif source == SOURCE_LEDGER:
                changed += self._fold_ledger(record)
        if changed:
            self.version += 1
        return changed

    def _fold_journal(self, record, shard):
        kind = record.get("event")
        if kind == "run":
            point_id = record.get("point")
            index = record.get("index")
            if point_id not in self._point_ids:
                return 0  # foreign record (corrupt line that decoded?)
            key = (point_id, index)
            if key in self._seen:
                return 0
            self._seen.add(key)
            records = self.state.runs.setdefault(point_id, [])
            indices = self._indices.setdefault(point_id, [])
            # keep index order on insert: shard arrival order interleaves
            # workers, but aggregation must push draws in index order
            at = bisect.bisect_left(indices, index)
            indices.insert(at, index)
            records.insert(at, record)
            if shard is not None and shard != "_coordinator":
                worker = self._worker(shard)
                worker["draws"] = worker.get("draws", 0) + 1
            self.state.n_events += 1
            return 1
        if kind == "point":
            point_id = record.get("point")
            if point_id in self.state.completed:
                return 0
            self.state.completed[point_id] = record
            self.state.n_events += 1
            return 1
        if kind == "done":
            if self.state.done:
                return 0
            self.state.done = True
            self.state.n_events += 1
            return 1
        return 0

    def _worker(self, name):
        return self.fleet["workers"].setdefault(
            name,
            {"draws": 0, "granted": 0, "completed": 0, "revoked": 0,
             "stolen_from": 0},
        )

    def _fold_ledger(self, record):
        fleet = self.fleet
        kind = record.get("event")
        if kind == "lease":
            fleet["open_leases"][record["lease"]] = record
            fleet["leases_granted"] += 1
            self._worker(record.get("worker", "?"))["granted"] += 1
            return 1
        if kind == "complete":
            grant = fleet["open_leases"].pop(record.get("lease"), None)
            fleet["leases_completed"] += 1
            if grant is not None:
                self._worker(grant.get("worker", "?"))["completed"] += 1
            return 1
        if kind == "revoke":
            grant = fleet["open_leases"].pop(record.get("lease"), None)
            fleet["leases_revoked"] += 1
            if grant is not None:
                self._worker(grant.get("worker", "?"))["revoked"] += 1
            return 1
        if kind == "steal":
            fleet["steals"].append(record)
            del fleet["steals"][:-EVENT_LOG_LIMIT]
            self._worker(record.get("victim", "?"))["stolen_from"] += 1
            return 1
        if kind == "scale":
            fleet["scale_events"].append(record)
            del fleet["scale_events"][:-EVENT_LOG_LIMIT]
            return 1
        if kind == "audit":
            fleet["audit"] = dict(record.get("counters") or {})
            return 1
        return 0

    # ------------------------------------------------------------------
    # queries (shared offline aggregation — byte-identical by reuse)
    # ------------------------------------------------------------------
    def status(self):
        """``campaign status`` dict of the folded state."""
        return status_from_state(self.spec, self.state)

    def report(self):
        """``campaign report`` dict of the folded state."""
        return report_from_state(self.spec, self.state)

    def points(self):
        """Per-point progress + headline summaries for ``/api/points``."""
        status = self.status()
        by_id = {
            entry["point"]: entry for entry in self.report()["points"]
        }
        for point in status["points"]:
            entry = by_id.get(point["point"])
            point["metrics"] = entry["metrics"] if entry else None
        return status

    # ------------------------------------------------------------------
    def convergence(self, point_id):
        """CI half-width after each draw, per target metric.

        The sequential-stopping story as a figure: for draw counts
        1..n, the half-width every target metric had at that point of
        the stream (``None`` while still infinite), plus the target
        lines. Deterministic — pure arithmetic over journaled draws.
        """
        records = self.state.runs.get(point_id, [])
        acc = PointAccumulator(z=self.spec.z)
        series = {metric: [] for metric in self.spec.targets}
        for record in records:
            acc.push(record["metrics"], record["counts"])
            for metric in series:
                half = acc.halfwidth(metric)
                series[metric].append(
                    half if half == half and half != float("inf") else None
                )
        return {
            "point": point_id,
            "n": len(records),
            "targets": dict(sorted(self.spec.targets.items())),
            "halfwidths": series,
        }

    def telemetry(self, point_id):
        """Per-draw interval-telemetry summaries for sparklines.

        One row per journaled draw that carried a telemetry summary:
        ``{"index", "windows", <metric>: {min, mean, max}}``. Empty
        ``rows`` when the campaign ran without ``--telemetry-interval``.
        """
        rows = []
        interval = None
        for record in self.state.runs.get(point_id, []):
            summary = record.get("telemetry")
            if not summary:
                continue
            interval = summary.get("interval", interval)
            row = {"index": record["index"],
                   "windows": summary.get("windows")}
            for name, entry in summary.items():
                if isinstance(entry, dict) and "mean" in entry:
                    row[name] = entry
                elif name == "dropped_events":
                    row[name] = entry
            rows.append(row)
        return {"point": point_id, "interval": interval, "rows": rows}

    # ------------------------------------------------------------------
    def point_detail(self, point_id):
        """Drill-down dict for ``/api/point/<id>`` (None if unknown).

        Links every artifact the draw trail left behind: journaled
        snapshot keys (downloadable when the snapshot cache is local),
        repro bundles dropped by failed verified runs, and any Perfetto
        traces exported into the campaign's ``traces/`` directory.
        """
        point = next(
            (p for p in self.spec.points() if p.id == point_id), None
        )
        if point is None:
            return None
        records = self.state.runs.get(point_id, [])
        completion = self.state.completed.get(point_id)
        draws = [
            {
                "index": r["index"],
                "seed": r["seed"],
                "metrics": r["metrics"],
                "counts": r["counts"],
                "snapshot": r.get("snapshot"),
                "telemetry": bool(r.get("telemetry")),
            }
            for r in records
        ]
        snapshots = sorted({
            r["snapshot"] for r in records if r.get("snapshot")
        })
        detail = {
            "point": point_id,
            "benchmark": point.benchmark,
            "scheme": point.scheme.name,
            "vdd": point.vdd,
            "n": len(records),
            "completed": completion is not None,
            "stopped": completion["stopped"] if completion else None,
            "failure": (completion or {}).get("failure"),
            "summary": completion["summary"] if completion else None,
            "draws": draws,
            "convergence": self.convergence(point_id),
            "artifacts": {
                "snapshots": snapshots,
                "bundles": self._artifact_files("bundles"),
                "traces": self._artifact_files("traces"),
            },
            "fork": self.fork_spec(point_id),
        }
        return detail

    def _artifact_files(self, subdir):
        try:
            names = sorted(os.listdir(os.path.join(self.directory, subdir)))
        except OSError:
            return []
        return [n for n in names if not n.startswith(".")]

    # ------------------------------------------------------------------
    def fork_spec(self, point_id):
        """A ready-to-run single-point campaign spec forked from a point.

        Re-emits the point's :class:`RunSpec` knobs as a ``campaign
        plan`` manifest spec (grid collapsed to the one point, every
        statistical knob inherited), plus the draw-0 run spec and the
        CLI line that plans it — the replay/what-if loop: tweak a knob,
        plan, run.
        """
        point = next(
            (p for p in self.spec.points() if p.id == point_id), None
        )
        if point is None:
            return None
        from repro.verify.bundle import spec_to_dict

        campaign = self.spec.to_dict()
        campaign["name"] = f"{self.spec.name}-fork"
        campaign["benchmarks"] = [point.benchmark]
        campaign["schemes"] = [point.scheme.name]
        campaign["vdds"] = [point.vdd]
        run_spec, _base = self.spec.pair_specs(point, 0)
        cli = (
            "repro-timing campaign plan --dir <new-dir>"
            f" --name {campaign['name']}"
            f" --benchmarks {point.benchmark}"
            f" --schemes {point.scheme.name}"
            f" --vdds {point.vdd!r}"
            f" --instructions {self.spec.n_instructions}"
            f" --warmup {self.spec.warmup}"
            f" --seed {self.spec.master_seed}"
            f" --seeds-min {self.spec.min_seeds}"
            f" --seeds-max {self.spec.max_seeds}"
            f" --batch {self.spec.batch_size}"
            f" --predictor {self.spec.predictor}"
        )
        if self.spec.telemetry_interval:
            cli += f" --telemetry-interval {self.spec.telemetry_interval}"
        return {
            "campaign_spec": campaign,
            "run_spec": spec_to_dict(run_spec),
            "cli": cli,
        }

    # ------------------------------------------------------------------
    def fleet_status(self):
        """Fleet-health dict for ``/api/fleet`` (journals + ledger only).

        Built entirely from on-disk artifacts, so it works on a live,
        killed, or finished fleet without touching the coordinator —
        the multi-viewer answer to ``fleet status``.
        """
        fleet = self.fleet
        return {
            "workers": {
                name: dict(info)
                for name, info in sorted(fleet["workers"].items())
            },
            "open_leases": [
                fleet["open_leases"][k]
                for k in sorted(fleet["open_leases"])
            ],
            "leases_granted": fleet["leases_granted"],
            "leases_completed": fleet["leases_completed"],
            "leases_revoked": fleet["leases_revoked"],
            "steals": list(fleet["steals"]),
            "scale_events": list(fleet["scale_events"]),
            "audit": (
                dict(fleet["audit"]) if fleet["audit"] is not None else None
            ),
            "endpoint": self._endpoint(),
        }

    def _endpoint(self):
        try:
            from repro.fleet.coordinator import read_endpoint

            return read_endpoint(self.directory)
        except (OSError, ValueError):
            return None
