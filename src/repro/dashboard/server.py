"""Stdlib-asyncio HTTP server: the campaign dashboard service.

``repro-timing dashboard serve --dir <campaign>`` turns a campaign
directory — live, killed, or finished — into a multi-viewer web service.
No third-party dependency (matching the optional-numpy policy): HTTP/1.1
parsing, routing, and Server-Sent-Events are a few hundred lines over
``asyncio.start_server``, the same substrate as the fleet protocol.

Endpoints (JSON unless noted; full contract in docs/observability.md):

========================  =============================================
``/``                     static HTML/JS page (no build step)
``/api/status``           ``campaign status`` dict (shared aggregation)
``/api/points``           status + per-point headline metric summaries
``/api/point/<id>``       drill-down: draws, convergence, artifacts, fork
``/api/telemetry/<id>``   per-draw interval-metric summaries
``/api/fleet``            worker/lease health, steals, scales, audit
``/api/figures``          cached deterministic figure catalog
``/api/fork/<id>``        ready-to-run single-point campaign-plan spec
``/events``               SSE stream: ``snapshot`` then ``update`` events
``/artifact/<kind>/<f>``  download bundles/traces/snapshots (safe names)
``/healthz``              liveness: viewers, version, torn-line count
========================  =============================================

Point ids contain slashes (``astar/ABS/0.97``), so the point routes
consume the rest of the path. One background task polls the
:class:`~repro.dashboard.watcher.JournalWatcher` (default every 0.5 s —
well inside the 2 s freshness bound the smoke test enforces) and fans
each change out to every connected SSE client; figure JSON is memoized
on the view's version counter so viewer count never multiplies
aggregation work.
"""

import asyncio
import json
import os
from urllib.parse import unquote

from repro.dashboard.figures import FigureCache
from repro.dashboard.page import render_page
from repro.dashboard.view import CampaignView

#: where a serving dashboard advertises its bound endpoint (mirrors the
#: fleet coordinator's coordinator.json)
ENDPOINT_NAME = "dashboard.json"

#: artifact kinds the download route may touch, mapped to the campaign
#: subdirectory they live in — nothing outside these is reachable
ARTIFACT_DIRS = {
    "bundles": "bundles",
    "traces": "traces",
    "snapshots": "snapshots",
}

_MAX_REQUEST = 16384  # request line + headers; we serve GETs only
_KEEPALIVE_S = 15.0  # SSE comment cadence while idle


def _safe_name(name):
    """True for a plain filename (no separators, no dot-escapes)."""
    return (
        0 < len(name) <= 255
        and "/" not in name
        and "\\" not in name
        and not name.startswith(".")
    )


class DashboardServer:
    """One campaign directory served as a live dashboard."""

    def __init__(self, directory, host="127.0.0.1", port=0,
                 poll_interval=0.5, view=None):
        self.directory = str(directory)
        self.view = view or CampaignView(self.directory)
        self.figures = FigureCache(self.view)
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)
        self._server = None
        self._refresher = None
        self._clients = set()  # asyncio.Queue per connected SSE viewer
        self.events_sent = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self):
        """Bind, fold the journal's current state, start the poll task."""
        self.view.refresh()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._write_endpoint()
        self._refresher = asyncio.ensure_future(self._refresh_loop())
        return self

    async def serve_forever(self):
        await self._server.serve_forever()

    async def stop(self):
        if self._refresher is not None:
            self._refresher.cancel()
            try:
                await self._refresher
            except asyncio.CancelledError:
                pass
            self._refresher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for queue in list(self._clients):
            queue.put_nowait(None)  # unblock and end every SSE stream
        try:
            os.unlink(os.path.join(self.directory, ENDPOINT_NAME))
        except OSError:
            pass

    def _write_endpoint(self):
        path = os.path.join(self.directory, ENDPOINT_NAME)
        tmp = path + ".tmp.%d" % os.getpid()
        with open(tmp, "w") as fh:
            json.dump(
                {"host": self.host, "port": self.port, "pid": os.getpid()},
                fh, sort_keys=True,
            )
            fh.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    async def _refresh_loop(self):
        while True:
            if self.view.refresh():
                self._broadcast("update", self._update_payload())
            await asyncio.sleep(self.poll_interval)

    def _update_payload(self):
        status = self.view.status()
        return {
            "version": self.view.version,
            "complete": status["complete"],
            "points_done": status["points_done"],
            "runs_total": status["runs_total"],
            "points": status["points"],
        }

    def _broadcast(self, event, payload):
        data = json.dumps(payload, sort_keys=True)
        for queue in list(self._clients):
            queue.put_nowait((event, data))

    @property
    def n_clients(self):
        return len(self._clients)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError):
            writer.close()
            return
        if len(head) > _MAX_REQUEST:
            await self._error(writer, 431, "headers too large")
            return
        try:
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await self._error(writer, 400, "malformed request line")
            return
        if method not in ("GET", "HEAD"):
            await self._error(writer, 405, "GET only")
            return
        path = unquote(target.partition("?")[0])
        try:
            await self._route(writer, path, head=method == "HEAD")
        except (ConnectionError, asyncio.CancelledError):
            writer.close()
            raise

    async def _route(self, writer, path, head=False):
        if path in ("/", "/index.html"):
            await self._respond(
                writer, 200, render_page(self.view.spec.name).encode(),
                "text/html; charset=utf-8", head=head,
            )
            return
        if path == "/events":
            await self._serve_events(writer, head=head)
            return
        if path == "/healthz":
            await self._json(writer, {
                "ok": True,
                "campaign": self.view.spec.name,
                "version": self.view.version,
                "viewers": self.n_clients,
                "events_sent": self.events_sent,
                "bad_lines": self.view.watcher.n_bad,
                "figure_rebuilds": self.figures.rebuilds,
            }, head=head)
            return
        if path == "/api/status":
            await self._json(writer, self.view.status(), head=head)
            return
        if path == "/api/points":
            await self._json(writer, self.view.points(), head=head)
            return
        if path == "/api/fleet":
            await self._json(writer, self.view.fleet_status(), head=head)
            return
        if path == "/api/figures":
            await self._json(writer, self.figures.get(), head=head)
            return
        for prefix, fn in (
            ("/api/point/", self.view.point_detail),
            ("/api/telemetry/", self.view.telemetry),
            ("/api/fork/", self.view.fork_spec),
        ):
            if path.startswith(prefix):
                point_id = path[len(prefix):]
                if fn is self.view.telemetry and \
                        point_id not in {p.id for p in self.view.spec.points()}:
                    payload = None
                else:
                    payload = fn(point_id)
                if payload is None:
                    await self._error(
                        writer, 404, f"unknown point {point_id!r}"
                    )
                else:
                    await self._json(writer, payload, head=head)
                return
        if path.startswith("/artifact/"):
            await self._serve_artifact(writer, path[len("/artifact/"):],
                                       head=head)
            return
        await self._error(writer, 404, f"no route for {path!r}")

    async def _serve_artifact(self, writer, rest, head=False):
        kind, _, name = rest.partition("/")
        subdir = ARTIFACT_DIRS.get(kind)
        if subdir is None or not _safe_name(name):
            await self._error(writer, 404, "unknown artifact")
            return
        path = os.path.join(self.directory, subdir, name)
        try:
            with open(path, "rb") as fh:
                body = fh.read()
        except OSError:
            await self._error(writer, 404, f"no such {kind} artifact")
            return
        ctype = (
            "application/json" if name.endswith(".json")
            else "application/octet-stream"
        )
        await self._respond(writer, 200, body, ctype, head=head, extra=[
            f'Content-Disposition: attachment; filename="{name}"',
        ])

    # ------------------------------------------------------------------
    async def _serve_events(self, writer, head=False):
        """One SSE viewer: snapshot, then pushed updates + keepalives."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        if head:
            writer.close()
            return
        queue = asyncio.Queue()
        self._clients.add(queue)
        try:
            await self._send_event(
                writer, "snapshot",
                json.dumps(self._update_payload(), sort_keys=True),
            )
            while True:
                try:
                    item = await asyncio.wait_for(
                        queue.get(), timeout=_KEEPALIVE_S
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\r\n\r\n")
                    await writer.drain()
                    continue
                if item is None:  # server stopping
                    break
                event, data = item
                await self._send_event(writer, event, data)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._clients.discard(queue)
            writer.close()

    async def _send_event(self, writer, event, data):
        lines = "".join(f"data: {line}\n" for line in data.split("\n"))
        writer.write(f"event: {event}\n{lines}\n".encode())
        await writer.drain()
        self.events_sent += 1

    # ------------------------------------------------------------------
    async def _json(self, writer, payload, status=200, head=False):
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        await self._respond(writer, status, body + b"\n",
                            "application/json", head=head)

    async def _error(self, writer, status, message):
        await self._json(writer, {"error": message}, status=status)

    async def _respond(self, writer, status, body, ctype, head=False,
                       extra=()):
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  431: "Request Header Fields Too Large"}.get(status, "?")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            "Cache-Control: no-store",
            "Connection: close",
            *extra,
        ]
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode())
        if not head:
            writer.write(body)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()


def serve_dashboard(directory, host="127.0.0.1", port=0,
                    poll_interval=0.5):
    """Blocking entry point of ``repro-timing dashboard serve``.

    Serves until interrupted; returns 0 on a clean Ctrl-C.
    """
    async def _main():
        server = await DashboardServer(
            directory, host=host, port=port, poll_interval=poll_interval
        ).start()
        print(
            f"dashboard for {directory} on "
            f"http://{server.host}:{server.port} "
            f"(endpoint in {os.path.join(directory, ENDPOINT_NAME)})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
