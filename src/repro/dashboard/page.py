"""The dashboard's single static page: inline HTML + JS, no build step.

The page is a template string rendered once per request — no bundler, no
framework, no external assets (it must work on an air-gapped lab box).
All data arrives from the JSON endpoints; all figures are drawn as
inline SVG by the small renderer below. ``EventSource('/events')``
re-fetches the cached figure catalog whenever the server pushes an
``update``, so an open tab tracks a running campaign with no reload.
"""

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro-timing · __CAMPAIGN__</title>
<style>
  body { font: 14px/1.4 system-ui, sans-serif; margin: 1.5rem;
         background: #111; color: #ddd; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  #state { color: #8c8; } .stale { color: #c88 !important; }
  svg { background: #181818; border: 1px solid #333; margin: .3rem 0; }
  .bar { fill: #4a90d9; } .bar.base { fill: #666; }
  .ci { stroke: #e6b450; stroke-width: 1.5; }
  .axis { stroke: #444; } text { fill: #aaa; font-size: 10px; }
  .spark { fill: none; stroke: #4a90d9; stroke-width: 1; }
  .env { fill: #4a90d933; stroke: none; }
  .target { stroke: #c66; stroke-dasharray: 4 3; }
  .conv { fill: none; stroke: #8c8; stroke-width: 1.2; }
  table { border-collapse: collapse; }
  td, th { border: 1px solid #333; padding: .2rem .5rem; text-align: left; }
  a { color: #4a90d9; }
  code { background: #222; padding: 0 .25rem; }
</style>
</head>
<body>
<h1>campaign <code>__CAMPAIGN__</code>
    <span id="state">connecting…</span></h1>
<div id="summary"></div>
<h2>CI half-width convergence</h2><div id="convergence"></div>
<h2>paired cycle overhead</h2><div id="overhead"></div>
<h2>fault / replay rates</h2><div id="rates"></div>
<h2>interval telemetry</h2><div id="telemetry"></div>
<h2>fleet</h2><div id="fleet"></div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const esc = (s) => String(s).replace(/[&<>"]/g,
  (c) => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

function svgOpen(w, h) {
  return `<svg width="${w}" height="${h}" viewBox="0 0 ${w} ${h}">`;
}

function barFigure(bars, key, fmt) {
  if (!bars.length) return "<p>no data yet</p>";
  const w = Math.max(320, bars.length * 64 + 60), h = 180, pad = 40;
  const vals = bars.map((b) => key(b).mean ?? key(b));
  const tops = bars.map((b, i) => {
    const k = key(b);
    return (k.mean ?? k) + (k.halfwidth || 0);
  });
  const max = Math.max(1e-9, ...tops.map(Math.abs));
  const y = (v) => h - pad - (Math.abs(v) / max) * (h - 2 * pad);
  let out = svgOpen(w, h);
  out += `<line class="axis" x1="${pad}" y1="${h - pad}"` +
         ` x2="${w - 10}" y2="${h - pad}"/>`;
  bars.forEach((b, i) => {
    const k = key(b), v = k.mean ?? k, x = pad + 8 + i * 60;
    out += `<rect class="bar" x="${x}" width="34" y="${y(v)}"` +
           ` height="${h - pad - y(v)}"><title>${esc(b.point)}: ` +
           `${fmt(v)}</title></rect>`;
    if (k.halfwidth != null) {
      out += `<line class="ci" x1="${x + 17}" x2="${x + 17}"` +
             ` y1="${y(v - k.halfwidth)}" y2="${y(v + k.halfwidth)}"/>`;
    }
    out += `<text x="${x}" y="${h - pad + 12}"` +
           ` transform="rotate(30 ${x} ${h - pad + 12})">` +
           `${esc(b.benchmark)}/${esc(b.scheme)}</text>`;
  });
  return out + "</svg>";
}

function convFigure(p) {
  const metrics = Object.keys(p.halfwidths).sort();
  const n = p.n, w = 260, h = 120, pad = 24;
  let vals = [];
  metrics.forEach((m) => p.halfwidths[m].forEach(
    (v) => { if (v != null) vals.push(v); }));
  Object.values(p.targets).forEach((t) => vals.push(t));
  if (!vals.length) return "";
  const max = Math.max(...vals) * 1.1;
  const x = (i) => pad + (n < 2 ? 0 : (i / (n - 1)) * (w - pad - 8));
  const y = (v) => h - pad - (v / max) * (h - 2 * pad);
  let out = `<div><b>${esc(p.point)}</b> (n=${n})<br>` + svgOpen(w, h);
  metrics.forEach((m) => {
    const pts = p.halfwidths[m]
      .map((v, i) => v == null ? null : `${x(i)},${y(v)}`)
      .filter(Boolean).join(" ");
    if (pts) out += `<polyline class="conv" points="${pts}">` +
                    `<title>${esc(m)}</title></polyline>`;
    const t = p.targets[m];
    if (t != null && t <= max)
      out += `<line class="target" x1="${pad}" x2="${w - 8}"` +
             ` y1="${y(t)}" y2="${y(t)}"/>`;
  });
  return out + `<line class="axis" x1="${pad}" y1="${h - pad}"` +
         ` x2="${w - 8}" y2="${h - pad}"/></svg></div>`;
}

function sparkline(entry) {
  const w = 200, h = 36;
  return `<span title="mean ${entry.mean.toFixed(4)} ` +
    `[${entry.min.toFixed(4)}..${entry.max.toFixed(4)}]">` +
    svgOpen(w, h) +
    `<rect class="env" x="0" y="8" width="${w}" height="${h - 16}"/>` +
    `<line class="spark" x1="0" x2="${w}" y1="${h / 2}" y2="${h / 2}"/>` +
    `</svg></span>`;
}

function render(f) {
  $("convergence").innerHTML =
    f.convergence.points.map(convFigure).join("") || "<p>no draws yet</p>";
  $("overhead").innerHTML = barFigure(
    f.overhead.bars,
    (b) => ({mean: b.mean, halfwidth: b.halfwidth}),
    (v) => (v * 100).toFixed(2) + "%");
  $("rates").innerHTML =
    "<h3>fault rate</h3>" +
    barFigure(f.rates.bars, (b) => b.fault_rate, (v) => v.toFixed(4)) +
    "<h3>replay rate</h3>" +
    barFigure(f.rates.bars, (b) => b.replay_rate, (v) => v.toFixed(4));
  $("telemetry").innerHTML = f.telemetry.points.length
    ? "<table><tr><th>point</th><th>windows</th><th>ipc</th>" +
      "<th>fault_rate</th><th>replay_rate</th></tr>" +
      f.telemetry.points.map((p) => {
        const t = p.pooled;
        const cell = (m) => t[m]
          ? sparkline(t[m]) + ` ${t[m].mean.toFixed(4)}` : "—";
        return `<tr><td><a href="/api/point/${p.point}">` +
          `${esc(p.point)}</a></td><td>${t.windows.toFixed(1)}</td>` +
          `<td>${cell("ipc")}</td><td>${cell("fault_rate")}</td>` +
          `<td>${cell("replay_rate")}</td></tr>`;
      }).join("") + "</table>"
    : "<p>campaign ran without --telemetry-interval</p>";
  const fl = f.fleet;
  const audit = fl.audit
    ? Object.entries(fl.audit).map(([k, v]) => `${esc(k)}=${v}`).join(" ")
    : "no audit records";
  $("fleet").innerHTML =
    `<p>leases: ${fl.leases_granted} granted, ` +
    `${fl.leases_completed} completed, ${fl.leases_revoked} revoked; ` +
    `steals: ${fl.steals.length}; scale events: ` +
    `${fl.scale_events.length}</p><p>audit: ${audit}</p>` +
    (Object.keys(fl.workers).length
      ? "<table><tr><th>worker</th><th>draws</th><th>granted</th>" +
        "<th>completed</th><th>revoked</th><th>stolen from</th></tr>" +
        Object.entries(fl.workers).map(([name, i]) =>
          `<tr><td>${esc(name)}</td><td>${i.draws}</td>` +
          `<td>${i.granted}</td><td>${i.completed}</td>` +
          `<td>${i.revoked}</td><td>${i.stolen_from}</td></tr>`
        ).join("") + "</table>"
      : "<p>single-pool campaign (no shards)</p>");
}

async function refresh() {
  const f = await (await fetch("/api/figures")).json();
  render(f);
  return f;
}

function summary(s) {
  $("summary").innerHTML =
    `<p>${s.points_done} points done, ${s.runs_total} draws journaled, ` +
    `complete=${s.complete} (state version ${s.version})</p>`;
}

refresh().then((f) => summary({...f.fleet, version: f.version,
  complete: false, points_done: "?", runs_total: "?"})).catch(() => {});
const es = new EventSource("/events");
es.onopen = () => { $("state").textContent = "live"; };
es.onerror = () => {
  $("state").textContent = "disconnected";
  $("state").classList.add("stale");
};
es.addEventListener("snapshot", (e) => {
  summary(JSON.parse(e.data)); refresh();
});
es.addEventListener("update", (e) => {
  summary(JSON.parse(e.data)); refresh();
});
</script>
</body>
</html>
"""


def render_page(campaign_name):
    """The dashboard page with the campaign name substituted in."""
    safe = (
        str(campaign_name)
        .replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return _PAGE.replace("__CAMPAIGN__", safe)
