"""Live results service: a dashboard over everything the repro writes.

The campaign engine journals draws, the fleet streams shard journals and
a lease ledger, runs summarize interval telemetry, failures drop repro
bundles — and this package is the first subsystem that *reads* all of
it. A stdlib-only asyncio HTTP server (``repro-timing dashboard serve``)
tails the journals incrementally and serves JSON endpoints, a
Server-Sent-Events stream, deterministic figure JSON, and one static
HTML page; the same watcher/view substrate drives ``campaign status
--follow`` and ``fleet status --follow`` in a terminal.

Layers
------
:mod:`repro.dashboard.watcher`
    Incremental JSONL tailing with torn-tail, rotation, and late-file
    tolerance.
:mod:`repro.dashboard.view`
    :class:`CampaignView`: the folded in-memory model, reusing the
    offline ``status``/``report`` aggregation for byte-identity.
:mod:`repro.dashboard.figures`
    Deterministic figure JSON catalog, memoized per state version.
:mod:`repro.dashboard.server`
    The asyncio HTTP + SSE server and its blocking CLI entry point.
:mod:`repro.dashboard.page`
    The single static HTML/JS page (no build step).
:mod:`repro.dashboard.follow`
    Terminal live-refresh mode on the same substrate.

See ``docs/observability.md`` ("Live dashboard") for the endpoint and
SSE contracts.
"""

from repro.dashboard.figures import FigureCache, build_figures
from repro.dashboard.follow import follow_status
from repro.dashboard.server import DashboardServer, serve_dashboard
from repro.dashboard.view import CampaignView
from repro.dashboard.watcher import JournalWatcher, TailedFile

__all__ = [
    "CampaignView",
    "DashboardServer",
    "FigureCache",
    "JournalWatcher",
    "TailedFile",
    "build_figures",
    "follow_status",
    "serve_dashboard",
]
