"""Live-refresh terminal status: ``campaign/fleet status --follow``.

The same :class:`~repro.dashboard.view.CampaignView` the HTTP server
polls, driven from a plain loop and rendered with the existing
``render_status`` — so the watcher substrate is exercised outside the
server too, and a terminal follower shows byte-for-byte the aggregates
the dashboard serves. Redraws only when a poll actually folded new
records; exits on campaign completion or Ctrl-C.
"""

import sys
import time

from repro.campaign.status import render_status
from repro.dashboard.view import CampaignView

#: move cursor home + clear to end of screen (not full clear: no flicker)
_REDRAW = "\x1b[H\x1b[J"


def render_fleet_lines(fleet):
    """Terminal lines for the ledger-derived fleet health dict."""
    lines = [
        f"leases: {fleet['leases_granted']} granted, "
        f"{fleet['leases_completed']} completed, "
        f"{fleet['leases_revoked']} revoked, "
        f"{len(fleet['open_leases'])} open; "
        f"steals: {len(fleet['steals'])}; "
        f"scale events: {len(fleet['scale_events'])}"
    ]
    for name, info in sorted(fleet["workers"].items()):
        lines.append(
            f"  worker {name}: {info['draws']} draws, "
            f"{info['granted']} leased, {info['completed']} completed, "
            f"{info['revoked']} revoked, "
            f"stolen from {info['stolen_from']}x"
        )
    audit = fleet.get("audit")
    if audit:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(audit.items()))
        lines.append(f"  audit: {shown}")
    return lines


def follow_status(directory, fleet=False, interval=0.5, max_updates=None,
                  stream=None, ansi=None):
    """Follow a campaign directory until it completes (or Ctrl-C).

    ``max_updates`` bounds the number of redraws (None = until done) —
    the testability hook the CLI leaves unset. ``ansi`` forces the
    cursor-home redraw on or off (default: only when ``stream`` is a
    tty). Returns 0 on completion, 130 on Ctrl-C (the shell convention).
    """
    stream = stream or sys.stdout
    view = CampaignView(directory)
    if ansi is None:
        ansi = bool(getattr(stream, "isatty", lambda: False)())
    updates = 0
    try:
        while True:
            changed = view.refresh()
            if changed or updates == 0:
                updates += 1
                text = render_status(view.status())
                if fleet:
                    extra = render_fleet_lines(view.fleet_status())
                    text += "\n" + "\n".join(extra)
                prefix = _REDRAW if ansi else ("\n" if updates > 1 else "")
                stream.write(prefix + text + "\n")
                stream.flush()
            if view.state.done:
                return 0
            if max_updates is not None and updates >= max_updates:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        stream.write("\n")
        return 130
