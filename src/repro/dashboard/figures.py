"""Deterministic figure JSON for the dashboard page.

Each figure is a plain data dict — the server serializes it with sorted
keys, the static page renders it as inline SVG. No plotting library, no
timestamps, no randomness: the same folded journal state always yields
byte-identical figure JSON, so figures are cached by the view's version
counter and the CI smoke test can assert on exact shapes.

Catalog (also documented in ``docs/observability.md``):

``convergence``
    CI half-width after each draw, per point and target metric, with the
    stopping target — the sequential-sampling story as a curve.
``overhead``
    Paired cycle-overhead bars (mean ± half-width) per point, grouped by
    scheme — the dashboard's Figure-4 analogue.
``rates``
    Pooled fault/replay-rate bars with Wilson half-widths per point.
``telemetry``
    Interval-metric sparklines (per-draw mean lines, min/max envelope)
    for points journaled with telemetry summaries.
``fleet``
    Worker/lease health from the ledger: per-worker draw/lease tallies,
    open leases, steal + autoscale event logs, and the coordinator's
    security audit counters.
"""


def build_figures(view):
    """The full figure catalog for one :class:`CampaignView` state."""
    report = view.report()
    status = view.status()
    return {
        "version": view.version,
        "campaign": view.spec.name,
        "convergence": _convergence(view, status),
        "overhead": _overhead(report),
        "rates": _rates(report),
        "telemetry": _telemetry(report),
        "fleet": view.fleet_status(),
    }


def _convergence(view, status):
    series = []
    for entry in status["points"]:
        if entry["n"] == 0:
            continue
        series.append(view.convergence(entry["point"]))
    return {"points": series}


def _overhead(report):
    bars = []
    for entry in report["points"]:
        metrics = entry["metrics"]
        if not metrics:
            continue
        cell = metrics["perf_overhead"]
        bars.append({
            "point": entry["point"],
            "benchmark": entry["benchmark"],
            "scheme": entry["scheme"],
            "vdd": entry["vdd"],
            "mean": cell["mean"],
            "halfwidth": cell["halfwidth"],
            "n": cell["n"],
        })
    return {"metric": "perf_overhead", "bars": bars,
            "by_scheme": report["by_scheme"]}


def _rates(report):
    bars = []
    for entry in report["points"]:
        metrics = entry["metrics"]
        if not metrics:
            continue
        bars.append({
            "point": entry["point"],
            "benchmark": entry["benchmark"],
            "scheme": entry["scheme"],
            "vdd": entry["vdd"],
            "fault_rate": metrics["fault_rate"],
            "replay_rate": metrics["replay_rate"],
        })
    return {"bars": bars}


def _telemetry(report):
    rows = []
    for entry in report["points"]:
        pooled = entry.get("telemetry")
        if not pooled:
            continue
        rows.append({"point": entry["point"], "pooled": pooled})
    return {"points": rows}


class FigureCache:
    """Figure JSON memo keyed on the view's version counter.

    ``get()`` rebuilds only when a refresh actually folded new records —
    with many SSE viewers polling figures, each journal append costs one
    aggregation regardless of audience size.
    """

    def __init__(self, view):
        self.view = view
        self._version = None
        self._figures = None
        self.rebuilds = 0

    def get(self):
        if self._version != self.view.version:
            self._figures = build_figures(self.view)
            self._version = self.view.version
            self.rebuilds += 1
        return self._figures
