"""Incremental journal tailing: the input side of every live view.

A campaign directory's progress lives in append-only JSONL files — the
canonical ``journal.jsonl``, per-worker shard journals under ``shards/``,
and the fleet's ``leases.jsonl`` ledger. :class:`JournalWatcher` tails
all of them with one ``poll()`` call, emitting each *complete* decoded
record exactly once, in file append order, tagged with its source. It is
the shared substrate of the dashboard server, ``campaign status
--follow``, and ``fleet status --follow`` — anything that wants to react
to a campaign as it runs without re-replaying the world every tick.

Durability edge cases are first-class, not best-effort:

* **Torn tails** — a writer crash (or a poll racing an in-flight
  ``append``) can leave a partial final line with no terminator. The
  tail bytes are buffered, never parsed, and re-examined on the next
  poll; once the newline lands the record is emitted whole. A torn line
  is therefore *delayed*, never dropped or double-emitted.
* **Rotation/truncation** — ``merge_journals`` atomically replaces
  ``journal.jsonl``; ``Journal.repair`` truncates torn bytes in place.
  A shrunken size or a changed inode resets that file's cursor to zero
  and re-emits its records; consumers that fold records idempotently
  (:class:`~repro.dashboard.view.CampaignView` keys draws by
  ``(point, index)``) converge to the same state regardless.
* **Late files** — shard journals appear only when their worker first
  reports, and ``leases.jsonl`` only when a coordinator runs. Every
  poll re-globs the directory, so files born after the watch started
  are picked up from byte zero.
"""

import json
import os

from repro.campaign.journal import JOURNAL_NAME
from repro.fleet.ledger import LEDGER_NAME
from repro.fleet.merge import shard_dir

#: source tags carried on every emitted record
SOURCE_JOURNAL = "journal"
SOURCE_SHARD = "shard"
SOURCE_LEDGER = "ledger"


class TailedFile:
    """Cursor + torn-tail buffer over one append-only JSONL file."""

    def __init__(self, path, source, shard=None):
        self.path = path
        self.source = source
        self.shard = shard  # worker name for shard journals, else None
        self.offset = 0  # bytes read off the file (incl. buffered tail)
        self.inode = None
        self._tail = b""  # unterminated final-line bytes (torn tail)
        #: decode failures on *terminated* lines (corrupt, not torn)
        self.n_bad = 0

    def _reset(self):
        self.offset = 0
        self._tail = b""

    def poll(self):
        """Newly completed records since the last poll (may be empty)."""
        try:
            stat = os.stat(self.path)
        except OSError:
            if self.inode is not None:
                # the file vanished (rotation midway); start over when
                # (if) it reappears
                self.inode = None
                self._reset()
            return []
        if stat.st_ino != self.inode or stat.st_size < self.offset:
            # replaced (new inode) or truncated in place: re-read. The
            # consumer's idempotent fold absorbs the re-emission.
            self.inode = stat.st_ino
            self._reset()
        if stat.st_size == self.offset:
            return []
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self.offset)
                data = fh.read()
        except OSError:
            return []
        self.offset += len(data)
        data = self._tail + data
        cut = data.rfind(b"\n") + 1
        # bytes past the last newline are a torn tail: buffer, do not
        # parse — the writer is mid-append and the rest is coming.
        # (offset already covers them, so they are never re-read.)
        self._tail = data[cut:]
        records = []
        for line in data[:cut].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line.decode()))
            except (UnicodeDecodeError, ValueError):
                self.n_bad += 1
        return records


class JournalWatcher:
    """Tail every journal artifact of one campaign directory.

    ``poll()`` returns ``[(source, shard_or_None, record), ...]`` in a
    deterministic order: the canonical journal first, then shards sorted
    by name, then the lease ledger. Call it on whatever cadence suits
    the consumer — each call does one ``os.stat`` per known file plus
    one directory listing, so a sub-second poll is cheap even on large
    campaigns.
    """

    def __init__(self, directory, ledger=True, shards=True):
        self.directory = str(directory)
        self.with_ledger = bool(ledger)
        self.with_shards = bool(shards)
        self._journal = TailedFile(
            os.path.join(self.directory, JOURNAL_NAME), SOURCE_JOURNAL
        )
        self._ledger = TailedFile(
            os.path.join(self.directory, LEDGER_NAME), SOURCE_LEDGER
        )
        self._shards = {}  # shard name -> TailedFile

    def _discover_shards(self):
        try:
            names = sorted(os.listdir(shard_dir(self.directory)))
        except OSError:
            return
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            shard = name[: -len(".jsonl")]
            if shard not in self._shards:
                self._shards[shard] = TailedFile(
                    os.path.join(shard_dir(self.directory), name),
                    SOURCE_SHARD, shard=shard,
                )

    def poll(self):
        """Every record appended (to any watched file) since last poll."""
        out = []
        for record in self._journal.poll():
            out.append((SOURCE_JOURNAL, None, record))
        if self.with_shards:
            self._discover_shards()
            for shard in sorted(self._shards):
                tail = self._shards[shard]
                for record in tail.poll():
                    out.append((SOURCE_SHARD, shard, record))
        if self.with_ledger:
            for record in self._ledger.poll():
                out.append((SOURCE_LEDGER, None, record))
        return out

    @property
    def n_bad(self):
        """Corrupt (terminated but undecodable) lines seen across files."""
        return (
            self._journal.n_bad
            + self._ledger.n_bad
            + sum(t.n_bad for t in self._shards.values())
        )
