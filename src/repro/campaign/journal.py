"""Crash-safe campaign state: manifest plus append-only JSONL journal.

A campaign directory holds::

    <dir>/manifest.json    # the CampaignSpec + model version (written once)
    <dir>/journal.jsonl    # append-only event log, one JSON object per line
    <dir>/report.json      # aggregate report (rewritten on completion)
    <dir>/report.md        # human-readable rendering of the same

The journal is the single source of truth for progress. Every completed
seed draw appends a ``run`` event carrying its extracted metrics, every
finished grid point appends a ``point`` event with the stopping summary,
and campaign completion appends ``done``. Appends are flushed and
fsynced line-by-line, so a kill can lose at most the line being written;
:meth:`Journal.replay` tolerates a torn trailing line by ignoring any
undecodable tail. Resume = replay the journal, skip completed points,
and continue partial points from their recorded draw count.
"""

import json
import os
import sys

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: manifest/journal format version; bump on incompatible layout changes.
FORMAT = 1


def run_event(point_id, index, seed, values, counts, telemetry=None,
              snapshot=None):
    """The journal ``run`` event of one completed seed draw.

    Single source of truth for the event shape: the single-pool executor
    journals these directly and fleet workers stream the *same* dicts
    over the wire, so a merged fleet journal is byte-identical to a
    single-pool one (both serialize with ``json.dumps(sort_keys=True)``).
    """
    event = {
        "event": "run", "point": point_id, "index": index,
        "seed": seed, "metrics": values, "counts": counts,
    }
    if telemetry is not None:
        event["telemetry"] = telemetry
    if snapshot is not None:
        event["snapshot"] = snapshot
    return event


def point_event(point_id, n, stopped, summary, failure=None):
    """The journal ``point`` completion event of one grid point."""
    event = {
        "event": "point", "point": point_id, "n": n,
        "stopped": stopped, "summary": summary,
    }
    if failure is not None:
        event["failure"] = failure
    return event


def write_manifest(directory, spec, extra=None):
    """Create ``<directory>/manifest.json`` for ``spec`` (atomically).

    Refuses to overwrite a manifest describing a *different* spec —
    a campaign directory is single-use by design.
    """
    from repro.harness.parallel import model_version

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    manifest = {
        "format": FORMAT,
        "model_version": model_version(),
        "spec": spec.to_dict(),
    }
    if extra:
        manifest.update(extra)
    if os.path.exists(path):
        existing = read_manifest(directory)
        if existing.get("spec") != manifest["spec"]:
            raise ValueError(
                f"{path} already describes a different campaign; "
                "use a fresh directory"
            )
        return existing
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return manifest


def read_manifest(directory):
    """Load ``<directory>/manifest.json`` (FileNotFoundError if absent)."""
    with open(os.path.join(directory, MANIFEST_NAME)) as fh:
        return json.load(fh)


class JournalState:
    """Replayed view of a journal: what already happened."""

    def __init__(self):
        #: point id -> list of run records (in append order)
        self.runs = {}
        #: point id -> its ``point`` completion event
        self.completed = {}
        self.done = False
        self.n_events = 0
        self.n_torn = 0

    @property
    def total_runs(self):
        """Seed draws recorded across all points."""
        return sum(len(records) for records in self.runs.values())


class Journal:
    """Append-only JSONL event log of one campaign directory.

    ``name`` overrides the journal filename — fleet coordinators keep one
    journal per shard (``shards/<worker>.jsonl``) with the same mechanics.
    """

    def __init__(self, directory, name=JOURNAL_NAME):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, name)
        self._fh = None

    def append(self, event):
        """Append one event (a JSON-safe dict) durably."""
        if self._fh is None:
            os.makedirs(self.directory, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def repair(self):
        """Truncate a torn trailing record (a crash mid-append) in place.

        A kill during :meth:`append` can leave a partial final line with
        no newline. :meth:`replay` already tolerates it, but *appending*
        after one would concatenate the next event onto the torn bytes,
        silently losing that event on the next replay. Resume paths call
        this first: a complete-but-unterminated final record gets its
        newline (it parsed, so it is safe to keep); an undecodable tail
        is logged and truncated — the draw it described re-executes
        deterministically from its journaled-elsewhere seed stream.

        Returns the number of bytes dropped (0 when the tail is clean).
        """
        try:
            fh = open(self.path, "rb+")
        except FileNotFoundError:
            return 0
        with fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return 0
            cut = data.rfind(b"\n") + 1  # 0 when the whole file is one tail
            tail = data[cut:]
            try:
                json.loads(tail.decode())
            except (UnicodeDecodeError, ValueError):
                fh.truncate(cut)
                print(
                    f"[journal] truncated torn trailing record "
                    f"({len(tail)} bytes) in {self.path}",
                    file=sys.stderr,
                )
                return len(tail)
            # the record survived the crash intact — just never got its
            # line terminator; complete it rather than re-executing
            fh.write(b"\n")
            return 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def replay(self):
        """Fold the journal into a :class:`JournalState`.

        Undecodable lines (a torn tail from a kill mid-append) are
        counted in ``n_torn`` and otherwise ignored — the corresponding
        run simply re-executes, served from the result cache if one is
        shared with the killed process.
        """
        state = JournalState()
        try:
            fh = open(self.path)
        except FileNotFoundError:
            return state
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    state.n_torn += 1
                    continue
                state.n_events += 1
                kind = event.get("event")
                if kind == "run":
                    state.runs.setdefault(event["point"], []).append(event)
                elif kind == "point":
                    state.completed[event["point"]] = event
                elif kind == "done":
                    state.done = True
        return state
