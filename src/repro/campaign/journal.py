"""Crash-safe campaign state: manifest plus append-only JSONL journal.

A campaign directory holds::

    <dir>/manifest.json    # the CampaignSpec + model version (written once)
    <dir>/journal.jsonl    # append-only event log, one JSON object per line
    <dir>/report.json      # aggregate report (rewritten on completion)
    <dir>/report.md        # human-readable rendering of the same

The journal is the single source of truth for progress. Every completed
seed draw appends a ``run`` event carrying its extracted metrics, every
finished grid point appends a ``point`` event with the stopping summary,
and campaign completion appends ``done``. Appends are flushed and
fsynced line-by-line, so a kill can lose at most the line being written;
:meth:`Journal.replay` tolerates a torn trailing line by ignoring any
undecodable tail. Resume = replay the journal, skip completed points,
and continue partial points from their recorded draw count.
"""

import json
import os

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: manifest/journal format version; bump on incompatible layout changes.
FORMAT = 1


def write_manifest(directory, spec, extra=None):
    """Create ``<directory>/manifest.json`` for ``spec`` (atomically).

    Refuses to overwrite a manifest describing a *different* spec —
    a campaign directory is single-use by design.
    """
    from repro.harness.parallel import model_version

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    manifest = {
        "format": FORMAT,
        "model_version": model_version(),
        "spec": spec.to_dict(),
    }
    if extra:
        manifest.update(extra)
    if os.path.exists(path):
        existing = read_manifest(directory)
        if existing.get("spec") != manifest["spec"]:
            raise ValueError(
                f"{path} already describes a different campaign; "
                "use a fresh directory"
            )
        return existing
    tmp = path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return manifest


def read_manifest(directory):
    """Load ``<directory>/manifest.json`` (FileNotFoundError if absent)."""
    with open(os.path.join(directory, MANIFEST_NAME)) as fh:
        return json.load(fh)


class JournalState:
    """Replayed view of a journal: what already happened."""

    def __init__(self):
        #: point id -> list of run records (in append order)
        self.runs = {}
        #: point id -> its ``point`` completion event
        self.completed = {}
        self.done = False
        self.n_events = 0
        self.n_torn = 0

    @property
    def total_runs(self):
        """Seed draws recorded across all points."""
        return sum(len(records) for records in self.runs.values())


class Journal:
    """Append-only JSONL event log of one campaign directory."""

    def __init__(self, directory):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, JOURNAL_NAME)
        self._fh = None

    def append(self, event):
        """Append one event (a JSON-safe dict) durably."""
        if self._fh is None:
            os.makedirs(self.directory, exist_ok=True)
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def replay(self):
        """Fold the journal into a :class:`JournalState`.

        Undecodable lines (a torn tail from a kill mid-append) are
        counted in ``n_torn`` and otherwise ignored — the corresponding
        run simply re-executes, served from the result cache if one is
        shared with the killed process.
        """
        state = JournalState()
        try:
            fh = open(self.path)
        except FileNotFoundError:
            return state
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    state.n_torn += 1
                    continue
                state.n_events += 1
                kind = event.get("event")
                if kind == "run":
                    state.runs.setdefault(event["point"], []).append(event)
                elif kind == "point":
                    state.completed[event["point"]] = event
                elif kind == "done":
                    state.done = True
        return state
