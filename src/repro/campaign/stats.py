"""Interval math and the per-point accumulator of the campaign engine.

Two interval families cover the two metric shapes:

* **normal** — continuous per-seed metrics (cycle overhead, ED overhead,
  IPC): sample mean with a normal-approximation CI over the seed draws.
* **Wilson** — proportion metrics (fault rate, replay rate): event
  counts pooled over all seeds' committed instructions, interval by
  Wilson's score method, which stays honest at the small proportions the
  paper's Table 1 reports (a normal interval on p=0.02 with few events
  is wildly optimistic).
"""

import math

from repro.campaign.plan import MEAN_METRICS, RATE_METRICS


def mean_std(values):
    """(sample mean, sample standard deviation) of a value list."""
    n = len(values)
    if n == 0:
        raise ValueError("need at least one value")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def normal_halfwidth(std, n, z=1.96):
    """Half-width of the normal-approximation CI of a sample mean."""
    if n < 2:
        return math.inf
    return z * std / math.sqrt(n)


def wilson_interval(successes, trials, z=1.96):
    """(center, half-width) of the Wilson score interval for a proportion."""
    if trials <= 0:
        return 0.0, math.inf
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (
        z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return center, half


class PointAccumulator:
    """Running statistics of one grid point across its seed draws.

    Feed it each paired run's ``(values, counts)`` from
    :func:`repro.campaign.plan.extract_metrics`; it answers the stopping
    question (:meth:`converged`) and renders the report row
    (:meth:`summary`).
    """

    def __init__(self, z=1.96):
        self.z = z
        #: per-seed values of every metric (rate metrics keep them too,
        #: for callers that want the raw draws; intervals on rates use
        #: the pooled counts below)
        self.values = {
            metric: [] for metric in MEAN_METRICS + tuple(RATE_METRICS)
        }
        self.counts = {key: 0 for key in RATE_METRICS.values()}
        self.committed = 0
        self.n = 0

    def push(self, values, counts):
        """Absorb one seed draw (live or replayed from the journal)."""
        for metric, series in self.values.items():
            series.append(values[metric])
        for key in self.counts:
            self.counts[key] += counts[key]
        self.committed += counts["committed"]
        self.n += 1

    # ------------------------------------------------------------------
    def halfwidth(self, metric):
        """Current CI half-width of ``metric`` (inf before 2 draws)."""
        if metric in MEAN_METRICS:
            _, std = mean_std(self.values[metric])
            return normal_halfwidth(std, self.n, self.z)
        _, half = wilson_interval(
            self.counts[RATE_METRICS[metric]], self.committed, self.z
        )
        return half

    def mean(self, metric):
        """Current point estimate of ``metric``.

        Rate metrics pool event counts over all draws' committed
        instructions (not a mean of per-seed ratios), matching the
        Wilson interval's center of mass.
        """
        if metric in MEAN_METRICS:
            return mean_std(self.values[metric])[0]
        if self.committed <= 0:
            return 0.0
        return self.counts[RATE_METRICS[metric]] / self.committed

    def converged(self, targets):
        """True once every target metric's half-width meets its target."""
        if self.n == 0:
            return False
        return all(
            self.halfwidth(metric) <= target
            for metric, target in targets.items()
        )

    def summary(self):
        """{metric: {mean, halfwidth, n, kind}} for the journal/report."""
        out = {}
        for metric in MEAN_METRICS:
            mean, std = mean_std(self.values[metric])
            half = normal_halfwidth(std, self.n, self.z)
            out[metric] = {
                "mean": mean,
                "halfwidth": half if math.isfinite(half) else None,
                "n": self.n,
                "kind": "normal",
            }
        for metric, key in RATE_METRICS.items():
            _, half = wilson_interval(self.counts[key], self.committed, self.z)
            out[metric] = {
                "mean": self.mean(metric),
                "halfwidth": half if math.isfinite(half) else None,
                "n": self.n,
                "kind": "wilson",
            }
        return out
