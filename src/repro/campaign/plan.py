"""Faultload and grid planning for fault-injection campaigns.

A :class:`CampaignSpec` declares *what* to study — the benchmark x scheme
x vdd grid, the simulated window, and the statistical stopping rule — and
expands it into :class:`GridPoint` objects whose per-seed
:class:`~repro.harness.runner.RunSpec` pairs (scheme run + fault-free
baseline of the same seed) feed the batch engine.

Seeds are not enumerated by hand: each (point, index) draws from a
deterministic seed stream derived by hashing the campaign's master seed
with the point identity (:func:`derive_seed`), so a campaign is fully
reproducible from its manifest and two campaigns with different master
seeds are statistically independent.
"""

import hashlib

from repro.core.schemes import SchemeKind, make_scheme
from repro.harness.runner import RunSpec
from repro.workloads.profiles import get_profile


def derive_seed(master_seed, *parts):
    """Deterministic positive 31-bit seed for a (master, *parts) identity.

    Hash-based so streams for different grid points (or different
    indices within one point) are independent, and stable across
    processes and interpreter versions.
    """
    text = ":".join([str(master_seed)] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1) + 1


class GridPoint:
    """One (benchmark, scheme, vdd) cell of the campaign grid."""

    def __init__(self, benchmark, scheme, vdd):
        self.benchmark = benchmark
        self.scheme = scheme if isinstance(scheme, SchemeKind) else (
            make_scheme(scheme).kind
        )
        self.vdd = float(vdd)

    @property
    def id(self):
        """Stable string identity used by the journal and the report."""
        return f"{self.benchmark}/{self.scheme.name}/{self.vdd!r}"

    def __repr__(self):
        return f"GridPoint({self.id})"

    def __eq__(self, other):
        return isinstance(other, GridPoint) and self.id == other.id

    def __hash__(self):
        return hash(self.id)


#: Continuous headline metrics: value per seed, normal CI over seeds.
MEAN_METRICS = ("perf_overhead", "ed_overhead", "ipc")
#: Proportion metrics: pooled event counts over committed instructions,
#: Wilson CI on the pooled proportion. Maps metric -> counts key.
RATE_METRICS = {"fault_rate": "faults", "replay_rate": "replays"}
#: All headline metrics, in report order.
METRICS = MEAN_METRICS + tuple(RATE_METRICS)


def extract_metrics(result, baseline):
    """Per-run headline metrics and event counts from a paired run.

    ``result`` is the scheme run, ``baseline`` the fault-free run of the
    *same seed* (same program realization), so overheads are paired and
    seed-to-seed program variation cancels.

    Returns ``(values, counts)``: ``values`` holds one float per metric
    in :data:`METRICS`; ``counts`` holds the raw event totals that the
    Wilson intervals pool across seeds.
    """
    stats = result.stats
    values = {
        "perf_overhead": result.cycles / baseline.cycles - 1.0,
        "ed_overhead": result.edp / baseline.edp - 1.0,
        "ipc": result.ipc,
        "fault_rate": result.fault_rate,
        "replay_rate": (
            stats.replays / stats.committed if stats.committed else 0.0
        ),
    }
    counts = {
        "faults": stats.faults_total,
        "replays": stats.replays,
        "committed": stats.committed,
    }
    return values, counts


#: Default stopping targets: CI half-widths on the paper's headline
#: numbers (2% cycles overhead, half a percentage point of fault rate).
DEFAULT_TARGETS = {"perf_overhead": 0.02, "fault_rate": 0.005}


class CampaignSpec:
    """Declarative description of one fault-injection campaign.

    Parameters
    ----------
    name:
        Campaign name (report header; no filesystem meaning).
    benchmarks / schemes / vdds:
        Axes of the grid. Schemes may be :class:`SchemeKind` members or
        their names; ``FAULT_FREE`` is implicit (every seed's baseline).
    n_instructions / warmup:
        Simulated window per run, as in :class:`RunSpec`.
    master_seed:
        Root of the per-point seed streams (:func:`derive_seed`).
    seeds:
        Optional explicit seed list. When given it overrides stream
        derivation *and* the stopping rule: every point runs exactly
        these seeds (``min_seeds = max_seeds = len(seeds)``).
    min_seeds / max_seeds / batch_size:
        Sequential sampling bounds: at least ``min_seeds`` per point,
        then batches of ``batch_size`` until the targets are met or
        ``max_seeds`` is reached.
    targets:
        ``{metric: half_width}`` stopping rule — a point stops once
        every listed metric's CI half-width is <= its target.
    z:
        Critical value of the intervals (1.96 = 95%).
    predictor / overclock:
        Forwarded to every :class:`RunSpec`.
    verify:
        Run every simulation (scheme and baseline) under the lockstep
        golden-model checker; a divergence marks the point failed with
        a repro bundle instead of producing numbers silently built on a
        corrupted machine.
    storm:
        Optional :class:`~repro.faults.storm.StormConfig` (or its dict
        form) applied to the scheme runs — fault-storm robustness
        campaigns. Baselines stay storm-free so overheads remain
        meaningful.
    telemetry_interval:
        When positive, every *scheme* run collects cycle-windowed
        interval metrics at this window size (see
        :class:`~repro.telemetry.config.TelemetryConfig`); each draw's
        series summary is journaled and the report aggregates them per
        point. ``0`` (default) keeps runs telemetry-free. Baselines stay
        untouched either way so their cache entries are shared with
        non-telemetry campaigns.
    draw_mode:
        What varies between a point's draws. ``"fault"`` (default): every
        draw shares one per-point warmup seed (:meth:`warmup_seed_for`)
        and varies only ``measurement_seed`` — the draws sample fault
        realizations over one program/machine realization, so all of them
        fork from a single warmup snapshot and the fault-free baseline
        collapses to one run per point. ``"program"`` (legacy): each draw
        re-seeds everything (program, trace, warmup), sampling program
        variation too. Explicit ``seeds`` force ``"program"`` — a seed
        list enumerates whole-run seeds by definition.
    """

    def __init__(self, name, benchmarks, schemes, vdds=(0.97,),
                 n_instructions=6000, warmup=3000, master_seed=1,
                 seeds=None, min_seeds=3, max_seeds=12, batch_size=3,
                 targets=None, z=1.96, predictor="tep", overclock=1.0,
                 verify=False, storm=None, telemetry_interval=0,
                 draw_mode="fault"):
        self.name = name
        self.benchmarks = list(benchmarks)
        self.schemes = [
            s if isinstance(s, SchemeKind) else make_scheme(s).kind
            for s in schemes
        ]
        self.vdds = [float(v) for v in vdds]
        self.n_instructions = int(n_instructions)
        self.warmup = int(warmup)
        self.master_seed = int(master_seed)
        self.seeds = list(seeds) if seeds is not None else None
        if self.seeds is not None:
            min_seeds = max_seeds = batch_size = len(self.seeds)
        self.min_seeds = max(1, int(min_seeds))
        self.max_seeds = max(self.min_seeds, int(max_seeds))
        self.batch_size = max(1, int(batch_size))
        self.targets = dict(DEFAULT_TARGETS if targets is None else targets)
        self.z = float(z)
        self.predictor = predictor
        self.overclock = float(overclock)
        self.verify = bool(verify)
        if storm is not None and not hasattr(storm, "canonical"):
            from repro.faults.storm import StormConfig

            storm = StormConfig.from_dict(storm)
        self.storm = storm
        self.telemetry_interval = max(0, int(telemetry_interval))
        if draw_mode not in ("fault", "program"):
            raise ValueError(
                f"draw_mode must be 'fault' or 'program', got {draw_mode!r}"
            )
        #: explicit seed lists enumerate whole-run seeds: force legacy mode
        self.draw_mode = "program" if self.seeds is not None else draw_mode
        #: where failed runs drop their repro bundles — execution detail
        #: set by the executor, not part of the manifest
        self.repro_dir = None
        #: warmup snapshot cache directory (``None`` disables forking) —
        #: execution detail set by the executor, not part of the manifest
        self.snapshot_dir = None

    # ------------------------------------------------------------------
    def validate(self):
        """Raise ``ValueError`` naming any unknown benchmark or metric.

        (Schemes are validated on construction by :func:`make_scheme`.)
        """
        for benchmark in self.benchmarks:
            try:
                get_profile(benchmark)
            except KeyError as exc:
                raise ValueError(str(exc)) from None
        for metric in self.targets:
            if metric not in METRICS:
                raise ValueError(
                    f"unknown target metric {metric!r}; "
                    f"known: {sorted(METRICS)}"
                )
        return self

    def points(self):
        """The grid in deterministic (benchmark, scheme, vdd) order."""
        return [
            GridPoint(benchmark, scheme, vdd)
            for benchmark in self.benchmarks
            for scheme in self.schemes
            for vdd in self.vdds
        ]

    def seed_for(self, point, index):
        """Seed of draw ``index`` of ``point``'s stream."""
        if self.seeds is not None:
            return self.seeds[index]
        return derive_seed(self.master_seed, point.id, index)

    def warmup_seed_for(self, point):
        """The per-point warmup seed shared by all ``"fault"``-mode draws."""
        return derive_seed(self.master_seed, point.id, "warmup")

    def pair_specs(self, point, index):
        """(scheme RunSpec, fault-free baseline RunSpec) for one draw.

        In ``"fault"`` draw mode every draw of a point carries the same
        ``seed`` (so program, trace, and warmup are one shared
        realization — one snapshot) and a per-draw ``measurement_seed``
        (independent fault realizations over the measured window). The
        baseline's measured window is deterministic given the trace, so
        it carries no measurement seed at all: all indices produce the
        *same* baseline spec, which the batch engine and result cache
        collapse to a single simulation per point.
        """
        if self.draw_mode == "fault":
            seed = self.warmup_seed_for(point)
            measurement_seed = self.seed_for(point, index)
        else:
            seed = self.seed_for(point, index)
            measurement_seed = None
        common = dict(
            vdd=point.vdd, n_instructions=self.n_instructions,
            warmup=self.warmup, seed=seed, predictor=self.predictor,
            overclock=self.overclock, verify=self.verify,
        )
        telemetry = None
        if self.telemetry_interval:
            from repro.telemetry import TelemetryConfig

            telemetry = TelemetryConfig(
                metrics=True, interval=self.telemetry_interval, events=False
            )
        run_spec = RunSpec(
            point.benchmark, point.scheme, storm=self.storm,
            telemetry=telemetry, measurement_seed=measurement_seed, **common
        )
        base_spec = RunSpec(point.benchmark, SchemeKind.FAULT_FREE, **common)
        run_spec.repro_dir = base_spec.repro_dir = self.repro_dir
        run_spec.snapshot_dir = base_spec.snapshot_dir = self.snapshot_dir
        return (run_spec, base_spec)

    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-safe manifest form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "schemes": [s.name for s in self.schemes],
            "vdds": list(self.vdds),
            "n_instructions": self.n_instructions,
            "warmup": self.warmup,
            "master_seed": self.master_seed,
            "seeds": self.seeds,
            "min_seeds": self.min_seeds,
            "max_seeds": self.max_seeds,
            "batch_size": self.batch_size,
            "targets": dict(self.targets),
            "z": self.z,
            "predictor": self.predictor,
            "overclock": self.overclock,
            "verify": self.verify,
            "storm": self.storm.to_dict() if self.storm is not None else None,
            "telemetry_interval": self.telemetry_interval,
            "draw_mode": self.draw_mode,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from its manifest form.

        Manifests written before ``draw_mode`` existed enumerate whole-run
        seeds, so a missing key means the legacy ``"program"`` semantics —
        resuming an old campaign must reproduce its original draws.
        """
        data = dict(data)
        data.setdefault("draw_mode", "program")
        explicit = data.pop("seeds", None)
        spec = cls(**data)
        if explicit is not None:
            spec.seeds = list(explicit)
            spec.min_seeds = spec.max_seeds = spec.batch_size = len(explicit)
        return spec

    def __repr__(self):
        return (
            f"CampaignSpec({self.name!r}, {len(self.points())} points, "
            f"seeds {self.min_seeds}..{self.max_seeds})"
        )
