"""Sequential Monte Carlo executor with confidence-driven stopping.

For each grid point the executor runs *batches* of seed draws (each draw
is a paired scheme + fault-free simulation of the same seed) through the
batch engine, updates the point's :class:`~repro.campaign.stats.
PointAccumulator`, and stops as soon as every target metric's confidence
interval is tighter than its target half-width — or at ``max_seeds``.
Points with low seed-to-seed variance therefore cost a fraction of a
fixed-N design at the same statistical quality (pinned by
``tests/campaign/test_executor.py``).

Progress is journaled draw-by-draw (:mod:`repro.campaign.journal`), so
an interrupted campaign resumes exactly: completed points are skipped
outright, partial points replay their recorded draws into the
accumulator and continue from the next index, and the shared result
cache makes any re-executed in-flight run nearly free.

Worker failures are bounded: a batch that raises (worker crash) or
exceeds the per-run timeout is retried up to ``retries`` times before
the campaign aborts with :class:`CampaignError`; the journal keeps every
draw that finished, so an abort is always resumable.
"""

import math
import os
import time

from repro.campaign.journal import (
    Journal,
    read_manifest,
    run_event,
    write_manifest,
)
from repro.campaign.plan import CampaignSpec, extract_metrics
from repro.campaign.scheduler import PointScheduler, failure_record
from repro.campaign.stats import PointAccumulator
from repro.harness.parallel import ResultCache, prewarm_snapshots, run_many


class CampaignError(RuntimeError):
    """A campaign could not proceed (exhausted retries, bad state...)."""


class CampaignTimeout(CampaignError):
    """A batch exceeded its per-run timeout budget."""


def _pool_run(specs, jobs, store, timeout):
    """Run ``specs`` on a pool, enforcing a wall-clock budget.

    The budget is ``timeout`` per run over the pool's effective depth
    (``ceil(n / jobs)`` waves), i.e. a per-run timeout enforced at batch
    granularity: one hung worker trips it within a bounded multiple of
    ``timeout``. On breach the pool is terminated (killing hung workers)
    and :class:`CampaignTimeout` is raised; finished results are already
    in the cache, so a retry only re-runs the stragglers.
    """
    import multiprocessing

    results = [store.load(spec) if store else None for spec in specs]
    todo = [i for i, r in enumerate(results) if r is None]
    if not todo:
        return results
    n_jobs = max(1, min(jobs or os.cpu_count() or 1, len(todo)))
    # warm missing snapshot prefixes before dispatch: each single-spec
    # apply_async below would otherwise re-warm the shared prefix in its
    # own worker (the prewarm itself is outside the timeout budget)
    prewarm_snapshots([specs[i] for i in todo], n_jobs)
    budget = timeout * math.ceil(len(todo) / n_jobs)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = multiprocessing.get_context()
    pool = ctx.Pool(n_jobs)
    try:
        handles = [
            (i, pool.apply_async(run_many, ([specs[i]],))) for i in todo
        ]
        deadline = time.monotonic() + budget
        for i, handle in handles:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise multiprocessing.TimeoutError
            results[i] = handle.get(remaining)[0]
            if store and not getattr(results[i], "is_failure", False):
                store.store(specs[i], results[i])
    except multiprocessing.TimeoutError:
        pool.terminate()
        raise CampaignTimeout(
            f"batch of {len(todo)} runs missed its "
            f"{budget:.0f}s budget ({timeout}s/run)"
        ) from None
    finally:
        pool.close()
        pool.join()
    return results


def make_run_fn(jobs=1, cache=True, cache_dir=None, timeout=None, retries=2,
                batch_lanes=None):
    """Build the batch-execution callable used by :func:`run_campaign`.

    The returned function maps ``specs -> results`` with bounded retry:
    exceptions from workers (and timeout breaches) are retried up to
    ``retries`` times; completed runs persist in the result cache across
    attempts, so retries only re-execute the failures.

    ``batch_lanes >= 2`` routes draws sharing a warmup snapshot through
    the lockstep batch engine (bit-identical, several times faster per
    draw). The timeout path keeps per-run granularity and therefore runs
    scalar: its budget accounting and straggler-kill semantics are per
    simulation, which a many-lane engine call would coarsen.
    """
    if isinstance(cache, ResultCache):
        store = cache
    elif cache:
        store = ResultCache(cache_dir)
    else:
        store = None

    def run_fn(specs):
        last_error = None
        for _attempt in range(retries + 1):
            try:
                if timeout is None:
                    return run_many(specs, jobs=jobs, cache=store or False,
                                    batch_lanes=batch_lanes)
                return _pool_run(specs, jobs, store, timeout)
            except Exception as exc:  # noqa: BLE001 — worker crash/timeout
                last_error = exc
        raise CampaignError(
            f"batch failed after {retries + 1} attempts: {last_error!r}"
        )

    return run_fn


def draw_metadata(run_spec, result):
    """``(telemetry_summary, snapshot_key)`` journaled with one draw.

    ``telemetry_summary`` is the scheme run's interval-metrics summary
    dict (``None`` unless the campaign set a telemetry interval);
    ``snapshot_key`` is the warmup snapshot key the run forked from
    (``None`` when the draw ran cold). Shared by the single-pool journal
    hook and fleet workers so both journal identical ``run`` events.
    """
    telem = getattr(result, "telemetry", None)
    summary = telem.summary() if telem is not None else None
    snapshot_key = None
    if getattr(run_spec, "snapshot_dir", None) is not None:
        from repro.snapshot import snapshot_eligible

        if snapshot_eligible(run_spec):
            snapshot_key = run_spec.warmup_key()
    return summary, snapshot_key


def measure_point(spec, point, run_fn, acc=None, on_run=None):
    """Measure one grid point until its stopping rule fires.

    ``acc`` may carry replayed draws (resume); sampling continues from
    index ``acc.n``. ``on_run(point, index, seed, values, counts,
    telemetry, snapshot_key=...)`` is called once per completed draw, in
    index order — the journal hook (see :func:`draw_metadata` for the
    last two arguments).

    The batching and stopping decisions live in
    :class:`~repro.campaign.scheduler.PointScheduler` — the same object
    the fleet coordinator leases draws from, so a distributed campaign
    stops every point after exactly the draws a single-pool one runs.

    Returns ``(acc, reason, failure)``: ``reason`` is ``"ci"`` (targets
    met), ``"max_seeds"``, or ``"failed"`` when a verified run came back
    as a :class:`~repro.verify.bundle.RunFailure` — the failure object
    (with its repro-bundle path) rides along and draws already pushed
    stay in ``acc``; ``failure`` is ``None`` otherwise.
    """
    scheduler = PointScheduler(spec, point, acc)
    while True:
        indices = scheduler.next_batch()
        if indices is None:
            return scheduler.acc, scheduler.stopped, scheduler.failure
        pairs = [spec.pair_specs(point, i) for i in indices]
        flat = [run_spec for pair in pairs for run_spec in pair]
        results = run_fn(flat)
        for offset, index in enumerate(indices):
            result, baseline = results[2 * offset], results[2 * offset + 1]
            failed = next(
                (c for c in (result, baseline)
                 if getattr(c, "is_failure", False)),
                None,
            )
            if failed is not None:
                scheduler.fail(failed)
                return scheduler.acc, "failed", failed
            values, counts = extract_metrics(result, baseline)
            scheduler.record(index, values, counts)
            if on_run is not None:
                summary, snapshot_key = draw_metadata(pairs[offset][0], result)
                on_run(point, index, spec.seed_for(point, index),
                       values, counts, summary, snapshot_key=snapshot_key)


def run_campaign(directory, spec=None, jobs=1, cache=True, cache_dir=None,
                 resume=False, timeout=None, retries=2, run_fn=None,
                 snapshots=True, snapshot_dir=None, batch_lanes=None):
    """Execute (or resume) the campaign rooted at ``directory``.

    With ``spec`` given and no manifest present, the campaign is planned
    implicitly (manifest written). A directory whose journal already has
    events requires ``resume=True`` — refusing by default keeps a verb
    typo from silently double-counting a finished study.

    ``run_fn`` overrides batch execution entirely (tests inject
    counters/fakes); by default :func:`make_run_fn` wires the batch
    engine with ``jobs``/``cache``/``timeout``/``retries``.

    ``snapshots`` (default on) forks eligible runs from the warmup
    snapshot cache at ``snapshot_dir`` — defaulting to the result cache's
    root (``cache_dir``, ``REPRO_CACHE_DIR``, or ``./.sim_cache``) so one
    prune covers both. The cache location is an execution detail: results
    are bit-identical with snapshots on, off, or pointed elsewhere, and a
    campaign resumes correctly across a snapshot-cache wipe.

    ``batch_lanes`` (default: ``REPRO_BATCH_LANES``, else off) enables
    the lockstep batch engine for draws sharing a warmup snapshot — see
    :func:`make_run_fn`; journals and reports are bit-identical with
    batching on or off.

    Returns the final report dict (also written to ``report.json`` /
    ``report.md``).
    """
    from repro.campaign.report import write_reports

    directory = str(directory)
    if spec is not None:
        spec.validate()
        write_manifest(directory, spec)
    manifest = read_manifest(directory)
    spec = CampaignSpec.from_dict(manifest["spec"])
    journal = Journal(directory)
    if resume:
        # a kill mid-append leaves a torn trailing record; truncate it
        # before appending or the next event would concatenate onto it
        journal.repair()
    state = journal.replay()
    if state.done:
        return write_reports(directory)
    if state.n_events and not resume:
        raise CampaignError(
            f"{directory} already has journaled progress; "
            "pass resume=True (CLI: `campaign resume`) to continue it"
        )
    if run_fn is None:
        run_fn = make_run_fn(jobs, cache, cache_dir, timeout, retries,
                             batch_lanes)
    # verified/storm runs drop their repro bundles inside the campaign
    spec.repro_dir = os.path.join(directory, "bundles")
    if snapshots:
        from repro.harness.parallel import default_cache_root

        # share the result cache's root when caching (one prune covers
        # both stores); an uncached campaign keeps its snapshots inside
        # its own directory so nothing leaks outside it
        default_root = (
            (cache_dir or default_cache_root()) if cache
            else os.path.join(directory, "snapshots")
        )
        spec.snapshot_dir = str(
            snapshot_dir or os.environ.get("REPRO_SNAPSHOT_DIR")
            or default_root
        )

    def on_run(point, index, seed, values, counts, telemetry=None,
               snapshot_key=None):
        journal.append(run_event(
            point.id, index, seed, values, counts, telemetry, snapshot_key
        ))

    with journal:
        for point in spec.points():
            if point.id in state.completed:
                continue
            acc = PointAccumulator(z=spec.z)
            for record in state.runs.get(point.id, []):
                acc.push(record["metrics"], record["counts"])
            acc, reason, failure = measure_point(
                spec, point, run_fn, acc, on_run
            )
            event = {
                "event": "point", "point": point.id, "n": acc.n,
                "stopped": reason,
                "summary": acc.summary() if acc.n else None,
            }
            if failure is not None:
                # the point is journaled as completed-but-failed (resume
                # skips it; the campaign continues past it) with enough
                # to find and replay the repro bundle
                event["failure"] = failure_record(failure)
            journal.append(event)
        journal.append({"event": "done"})
    return write_reports(directory)
