"""Statistical fault-injection campaign engine.

A *campaign* turns the batch engine (:func:`repro.harness.parallel.
run_many`) into a statistical study: a declarative :class:`CampaignSpec`
expands a (benchmark x scheme x vdd) grid, each grid point is measured
over a derived stream of seeds until its confidence intervals are tight
enough (sequential Monte Carlo), every completed run is journaled to an
append-only log so a killed campaign resumes exactly where it stopped,
and the report builder aggregates (mean, CI, n) tuples the way the
paper's Table 1 / Figure 4 present point estimates.

Layers
------
:mod:`repro.campaign.plan`
    Grid planning, seed-stream derivation, metric extraction.
:mod:`repro.campaign.stats`
    Normal and Wilson interval math plus the per-point accumulator.
:mod:`repro.campaign.journal`
    Crash-safe campaign directory: manifest + append-only JSONL journal.
:mod:`repro.campaign.scheduler`
    The draw-level batch iterator + stopping rule one grid point is
    measured through — driven synchronously by the executor and leased
    from by the fleet coordinator (:mod:`repro.fleet`).
:mod:`repro.campaign.executor`
    The sequential executor with confidence-driven stopping, per-run
    timeout, and bounded retry.
:mod:`repro.campaign.report`
    JSON + Markdown report builder.
:mod:`repro.campaign.status`
    Per-point progress/CI status of a live or killed campaign.

See ``docs/campaigns.md`` for the on-disk layout and a worked resume
example.
"""

from repro.campaign.executor import CampaignError, measure_point, run_campaign
from repro.campaign.journal import Journal, read_manifest, write_manifest
from repro.campaign.plan import CampaignSpec, GridPoint, derive_seed
from repro.campaign.report import build_report, report_from_state, write_reports
from repro.campaign.scheduler import PointScheduler
from repro.campaign.stats import PointAccumulator
from repro.campaign.status import build_status, render_status, status_from_state

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "GridPoint",
    "Journal",
    "PointAccumulator",
    "PointScheduler",
    "build_report",
    "build_status",
    "derive_seed",
    "measure_point",
    "read_manifest",
    "render_status",
    "report_from_state",
    "run_campaign",
    "status_from_state",
    "write_manifest",
    "write_reports",
]
