"""In-progress campaign introspection: per-point draw counts and CIs.

``campaign status`` (and ``fleet status`` on a merged or sharded fleet
directory) answers "how far along is this study?" without touching the
executor: replay the journal, rebuild each point's accumulator, and
report its draw count, every target metric's current CI half-width
against its target, and the stopping-rule state. Works on a live,
killed, or finished campaign — the journal is the single source of
truth.
"""

from repro.campaign.journal import Journal, read_manifest
from repro.campaign.plan import CampaignSpec
from repro.campaign.stats import PointAccumulator


def build_status(directory):
    """Status dict for the campaign rooted at ``directory``.

    Reads ``manifest.json`` (:class:`FileNotFoundError` if absent) and
    replays ``journal.jsonl``. See :func:`status_from_state` for the
    shape.
    """
    manifest = read_manifest(directory)
    spec = CampaignSpec.from_dict(manifest["spec"])
    state = Journal(directory).replay()
    return status_from_state(spec, state)


def status_from_state(spec, state):
    """Fold a replayed :class:`~repro.campaign.journal.JournalState`.

    Returns::

        {"campaign": name, "complete": bool, "points_total": int,
         "points_done": int, "runs_total": int,
         "points": [{"point": id, "n": draws, "state": ...,
                     "stopped": reason-or-None,
                     "targets": {metric: {"halfwidth": h-or-None,
                                          "target": t, "met": bool}}}]}

    ``state`` per point is ``"pending"`` (no draws yet), ``"sampling"``
    (draws recorded, stopping rule not yet satisfied), or the recorded
    stopping reason (``"ci"``, ``"max_seeds"``, ``"failed"``).

    Shared by the offline CLI path and the fleet coordinator's live
    status endpoint (which folds its in-memory schedulers into the same
    shape), so both render identically.
    """
    points = []
    for point in spec.points():
        completion = state.completed.get(point.id)
        records = state.runs.get(point.id, [])
        acc = PointAccumulator(z=spec.z)
        for record in sorted(records, key=lambda r: r["index"]):
            acc.push(record["metrics"], record["counts"])
        if completion is not None:
            point_state = completion["stopped"]
            stopped = completion["stopped"]
            n = completion["n"]
        else:
            point_state = "sampling" if acc.n else "pending"
            stopped = None
            n = acc.n
        targets = {}
        for metric, target in sorted(spec.targets.items()):
            half = acc.halfwidth(metric) if acc.n else None
            if half is not None and half == float("inf"):
                half = None
            targets[metric] = {
                "halfwidth": half,
                "target": target,
                "met": half is not None and half <= target,
            }
        points.append({
            "point": point.id,
            "n": n,
            "state": point_state,
            "stopped": stopped,
            "targets": targets,
        })
    return {
        "campaign": spec.name,
        "complete": state.done,
        "points_total": len(points),
        "points_done": len(state.completed),
        "runs_total": state.total_runs,
        "points": points,
    }


def render_status(status):
    """Human-readable rendering of :func:`build_status`'s dict."""
    lines = [
        f"campaign {status['campaign']!r}: "
        f"{status['points_done']}/{status['points_total']} points done, "
        f"{status['runs_total']} draws journaled, "
        f"complete={str(status['complete']).lower()}",
    ]
    width = max((len(p["point"]) for p in status["points"]), default=5)
    for point in status["points"]:
        cells = []
        for metric, entry in point["targets"].items():
            half = entry["halfwidth"]
            shown = "inf" if half is None else f"{half:.4f}"
            mark = "<=" if entry["met"] else ">"
            cells.append(f"{metric} {shown} {mark} {entry['target']}")
        lines.append(
            f"  {point['point']:<{width}}  n={point['n']:<3} "
            f"{point['state']:<9} " + "  ".join(cells)
        )
    return "\n".join(lines)
