"""Campaign report builder: JSON + Markdown aggregates.

Rebuilds everything from the campaign directory (manifest + journal), so
it can run standalone (``campaign report``) on a live, killed, or
finished campaign. Every reported metric carries the ``(mean,
halfwidth, n)`` triple — the statistical qualification the paper's
point-estimate tables lack — and the Markdown rendering mirrors the
Table 1 / Figure 4 presentation: benchmarks as rows, schemes as
columns, one block per supply voltage.

Output is deterministic: no timestamps, sorted keys, stable point
order — an interrupted-then-resumed campaign produces a byte-identical
``report.json`` to an uninterrupted one (pinned by
``tests/campaign/test_executor.py``).
"""

import json
import os

from repro.campaign.journal import Journal, read_manifest
from repro.campaign.plan import METRICS, CampaignSpec
from repro.campaign.stats import PointAccumulator

REPORT_JSON = "report.json"
REPORT_MD = "report.md"


def build_report(directory):
    """Aggregate the campaign directory into the report dict."""
    manifest = read_manifest(directory)
    spec = CampaignSpec.from_dict(manifest["spec"])
    state = Journal(directory).replay()
    return report_from_state(spec, state)


def report_from_state(spec, state):
    """Fold a replayed :class:`~repro.campaign.journal.JournalState`.

    The aggregation core of :func:`build_report`, factored out so live
    views (the dashboard's ``CampaignView``, ``--follow`` mode) produce
    byte-identical aggregates to an offline ``campaign report`` rebuild
    of the same journal.
    """
    points = []
    for point in spec.points():
        completion = state.completed.get(point.id)
        records = state.runs.get(point.id, [])
        if completion is not None:
            summary = completion["summary"]
            n = completion["n"]
            stopped = completion["stopped"]
        elif records:
            acc = PointAccumulator(z=spec.z)
            for record in records:
                acc.push(record["metrics"], record["counts"])
            summary, n, stopped = acc.summary(), acc.n, "incomplete"
        else:
            continue
        entry = {
            "point": point.id,
            "benchmark": point.benchmark,
            "scheme": point.scheme.name,
            "vdd": point.vdd,
            "n": n,
            "stopped": stopped,
            "metrics": summary,
        }
        if completion is not None and completion.get("failure"):
            entry["failure"] = completion["failure"]
        summaries = [r["telemetry"] for r in records if r.get("telemetry")]
        if summaries:
            entry["telemetry"] = _pool_telemetry(summaries)
        points.append(entry)

    by_scheme = {}
    for entry in points:
        if not entry["metrics"]:
            continue  # failed before any complete draw: nothing to pool
        scheme = by_scheme.setdefault(entry["scheme"], {})
        vdd = scheme.setdefault(repr(entry["vdd"]), {})
        for metric in METRICS:
            vdd.setdefault(metric, []).append(entry["metrics"][metric]["mean"])
    for scheme in by_scheme.values():
        for vdd in scheme.values():
            for metric, means in vdd.items():
                vdd[metric] = sum(means) / len(means)

    return {
        "campaign": spec.name,
        "spec": spec.to_dict(),
        "complete": state.done,
        "points_total": len(spec.points()),
        "points_done": len(state.completed),
        "runs_total": state.total_runs,
        "sims_total": 2 * state.total_runs,  # each draw pairs a baseline
        "points": points,
        "by_scheme": by_scheme,
    }


def _pool_telemetry(summaries):
    """Average per-draw interval-metrics summaries into one per-point view.

    Means average over draws; mins/maxes take the envelope, so the
    pooled ``min``/``max`` still bound every window of every draw (the
    dip a single storm burst caused stays visible after pooling).
    """
    n = len(summaries)
    pooled = {
        "draws": n,
        "interval": summaries[0]["interval"],
        "windows": sum(s["windows"] for s in summaries) / n,
    }
    for name in summaries[0]:
        if name in ("draws", "interval", "windows", "dropped_events"):
            continue
        pooled[name] = {
            "min": min(s[name]["min"] for s in summaries),
            "mean": sum(s[name]["mean"] for s in summaries) / n,
            "max": max(s[name]["max"] for s in summaries),
        }
    if "dropped_events" in summaries[0]:
        # a scalar tally, not a {min, mean, max} envelope: total trace
        # truncation across the point's draws
        pooled["dropped_events"] = sum(
            s.get("dropped_events", 0) for s in summaries
        )
    return pooled


def _cell(metrics, metric):
    if not metrics:
        return "FAILED"  # point aborted before its first complete draw
    entry = metrics[metric]
    half = entry["halfwidth"]
    if half is None:
        return f"{entry['mean']:.4f} (n={entry['n']})"
    return f"{entry['mean']:.4f} ±{half:.4f} (n={entry['n']})"


def render_markdown(report):
    """Human-readable rendering of :func:`build_report`'s dict."""
    spec = report["spec"]
    lines = [
        f"# Campaign report: {report['campaign']}",
        "",
        f"- grid: {len(spec['benchmarks'])} benchmarks x "
        f"{len(spec['schemes'])} schemes x {len(spec['vdds'])} vdds "
        f"({report['points_done']}/{report['points_total']} points done, "
        f"complete={str(report['complete']).lower()})",
        f"- draws: {report['runs_total']} seed draws "
        f"({report['sims_total']} simulations incl. paired baselines)",
        f"- stopping: targets {json.dumps(spec['targets'], sort_keys=True)} "
        f"at z={spec['z']}, seeds {spec['min_seeds']}..{spec['max_seeds']} "
        f"in batches of {spec['batch_size']}",
        "",
    ]
    schemes = spec["schemes"]
    for vdd in spec["vdds"]:
        rows = [p for p in report["points"] if p["vdd"] == vdd]
        if not rows:
            continue
        lines.append(f"## vdd = {vdd!r} — cycle overhead vs fault-free")
        lines.append("")
        lines.append("| benchmark | " + " | ".join(schemes) + " |")
        lines.append("|---" * (len(schemes) + 1) + "|")
        for benchmark in spec["benchmarks"]:
            cells = []
            for scheme in schemes:
                match = [
                    p for p in rows
                    if p["benchmark"] == benchmark and p["scheme"] == scheme
                ]
                cells.append(
                    _cell(match[0]["metrics"], "perf_overhead")
                    if match else "—"
                )
            lines.append(f"| {benchmark} | " + " | ".join(cells) + " |")
        lines.append("")
        lines.append(f"## vdd = {vdd!r} — fault rate (Wilson 95% CI)")
        lines.append("")
        lines.append("| benchmark | " + " | ".join(schemes) + " |")
        lines.append("|---" * (len(schemes) + 1) + "|")
        for benchmark in spec["benchmarks"]:
            cells = []
            for scheme in schemes:
                match = [
                    p for p in rows
                    if p["benchmark"] == benchmark and p["scheme"] == scheme
                ]
                cells.append(
                    _cell(match[0]["metrics"], "fault_rate")
                    if match else "—"
                )
            lines.append(f"| {benchmark} | " + " | ".join(cells) + " |")
        lines.append("")
    telem_points = [p for p in report["points"] if p.get("telemetry")]
    if telem_points:
        lines.append(
            "## Interval telemetry — per-window mean [min..max], "
            "pooled over draws"
        )
        lines.append("")
        lines.append(
            "| point | interval | windows | ipc | fault_rate "
            "| replay_rate |"
        )
        lines.append("|---" * 6 + "|")
        for p in telem_points:
            t = p["telemetry"]
            cells = [p["point"], str(t["interval"]), f"{t['windows']:.1f}"]
            for name in ("ipc", "fault_rate", "replay_rate"):
                entry = t.get(name)
                cells.append(
                    f"{entry['mean']:.4f} "
                    f"[{entry['min']:.4f}..{entry['max']:.4f}]"
                    if entry else "—"
                )
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines)


def write_reports(directory):
    """Build and persist ``report.json`` + ``report.md``; return the dict."""
    report = build_report(directory)
    json_path = os.path.join(directory, REPORT_JSON)
    tmp = json_path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, json_path)
    md_path = os.path.join(directory, REPORT_MD)
    tmp = md_path + ".tmp.%d" % os.getpid()
    with open(tmp, "w") as fh:
        fh.write(render_markdown(report) + "\n")
    os.replace(tmp, md_path)
    return report
