"""Draw-level scheduling of one grid point: the leasable stopping rule.

:class:`PointScheduler` factors the sequential-Monte-Carlo control flow
out of the executor loop into an object that *issues* batches of draw
indices and *absorbs* their results — without caring who runs them. The
single-pool executor (:func:`repro.campaign.executor.measure_point`)
drives one scheduler synchronously; the fleet coordinator
(:mod:`repro.fleet.coordinator`) leases each scheduler's batches to
remote workers and feeds entries back as they stream in.

Because both paths share this one object, they make *identical* stopping
decisions: convergence is only ever evaluated at batch boundaries, draws
are pushed into the accumulator in index order (float summation order
matters for byte-identical reports), and a draw index is accepted at
most once (exactly-once accounting under lease reassignment — a
re-executed draw is deterministic, so the duplicate is simply dropped).
"""

from repro.campaign.stats import PointAccumulator


class PointScheduler:
    """Batch iterator + stopping rule for one grid point.

    Protocol::

        while (batch := scheduler.next_batch()) is not None:
            for index in scheduler.pending():   # lease these draws
                ... run the draw ...
                scheduler.record(index, values, counts)
        reason = scheduler.stopped              # "ci" | "max_seeds" | "failed"

    ``record`` buffers out-of-order arrivals and pushes the whole batch
    into the accumulator in index order once complete; ``next_batch``
    returns the in-flight batch until then, so callers may re-lease the
    still-:meth:`pending` indices after a worker death.
    """

    def __init__(self, spec, point, acc=None):
        self.spec = spec
        self.point = point
        self.acc = acc if acc is not None else PointAccumulator(z=spec.z)
        #: stopping reason once decided ("ci", "max_seeds", "failed")
        self.stopped = None
        #: the failure that stopped the point (dict or RunFailure-like)
        self.failure = None
        self._batch = None  # in-flight range of draw indices
        self._buffer = {}  # index -> (values, counts) awaiting batch close

    @property
    def done(self):
        return self.stopped is not None

    def next_batch(self):
        """The in-flight (or next) batch of draw indices; None when done.

        A new batch is only opened once the previous one is fully
        recorded — the stopping rule is evaluated exactly at batch
        boundaries, mirroring the pre-refactor executor loop.
        """
        if self.stopped is not None:
            return None
        if self._batch is not None:
            return self._batch
        spec, acc = self.spec, self.acc
        if acc.n >= spec.min_seeds and acc.converged(spec.targets):
            self.stopped = "ci"
            return None
        if acc.n >= spec.max_seeds:
            self.stopped = "max_seeds"
            return None
        self._batch = range(
            acc.n, min(acc.n + spec.batch_size, spec.max_seeds)
        )
        return self._batch

    def pending(self):
        """Unrecorded indices of the in-flight batch (lease these)."""
        if self._batch is None:
            return []
        return [i for i in self._batch if i not in self._buffer]

    def record(self, index, values, counts):
        """Absorb one completed draw; True if it was new and accepted.

        Indices outside the in-flight batch (already pushed, or from a
        stale revoked lease) are rejected — this is the exactly-once
        gate: every draw index enters the accumulator at most once no
        matter how many workers re-executed it.
        """
        if (
            self.stopped is not None
            or self._batch is None
            or index not in self._batch
            or index in self._buffer
        ):
            return False
        self._buffer[index] = (values, counts)
        if len(self._buffer) == len(self._batch):
            for i in self._batch:
                v, c = self._buffer.pop(i)
                self.acc.push(v, c)
            self._batch = None
        return True

    def fail(self, failure):
        """Stop the point on a run failure.

        Draws of the in-flight batch that completed *before* the failing
        index stay (pushed in index order), matching the single-pool
        executor, which processes a batch sequentially and aborts at the
        first :class:`~repro.verify.bundle.RunFailure`.
        """
        if self._batch is not None:
            for i in self._batch:
                if i not in self._buffer:
                    break
                v, c = self._buffer.pop(i)
                self.acc.push(v, c)
        self._buffer.clear()
        self._batch = None
        self.stopped = "failed"
        self.failure = failure

    def completion_event(self):
        """The journal ``point`` event for this (stopped) point."""
        from repro.campaign.journal import point_event

        failure = self.failure
        if failure is not None and not isinstance(failure, dict):
            failure = failure_record(failure)
        return point_event(
            self.point.id, self.acc.n, self.stopped,
            self.acc.summary() if self.acc.n else None, failure,
        )


def failure_record(failure):
    """Journal/wire form of a :class:`~repro.verify.bundle.RunFailure`."""
    return {
        "kind": failure.kind,
        "spec": repr(failure.spec),
        "bundle": failure.bundle_path,
    }
