"""Event-based core energy model.

Energy is computed after a run from the pipeline's activity counters:
every microarchitectural event carries a characteristic dynamic energy
(values in picojoules, loosely calibrated to 45nm-class published numbers
for the relevant structures), and the whole core leaks a fixed power per
cycle. Dynamic energy scales with VDD squared, leakage roughly linearly in
the narrow 0.97-1.1V band the paper studies.

The paper's overhead tuples compare a faulty run against fault-free
execution; we evaluate both at the same supply so the overhead isolates the
cost of fault tolerance (extra cycles of leakage, replayed work, stall
cycles) — this matches the paper's positive ED overheads, which always
exceed the performance overheads.
"""

from repro.isa.opcodes import OpClass
from repro.faults.timing import VDD_NOMINAL

#: Dynamic energy per event, picojoules at nominal VDD.
DEFAULT_EVENT_ENERGY = {
    "fetch": 4.0,          # I-cache way access + predictor share, per inst
    "decode": 1.5,
    "rename": 2.0,
    "dispatch": 1.5,       # IQ + ROB + LSQ writes
    "select": 1.2,         # per issued instruction
    "broadcast_per_entry": 0.12,   # wakeup CAM compare, per IQ entry
    "regread_per_operand": 1.6,
    "regwrite": 1.8,
    "wb": 1.0,
    "commit": 1.0,
    "lsq_search": 2.2,
    "l1d": 6.0,
    "l1i": 6.0,
    "l2": 36.0,
    "mem": 350.0,
    "tep_lookup": 0.05,    # the predictor is tiny (Section S3: ~0.1% core)
}

#: Dynamic energy per executed op, picojoules at nominal VDD.
DEFAULT_OP_ENERGY = {
    OpClass.IALU: 3.0,
    OpClass.IMUL: 11.0,
    OpClass.IDIV: 28.0,
    OpClass.FPU: 14.0,
    OpClass.LOAD: 2.5,     # AGEN only; cache energy counted separately
    OpClass.STORE: 2.5,
    OpClass.BRANCH: 2.2,
    OpClass.NOP: 0.5,
}

#: Core leakage power expressed as picojoules per cycle at nominal VDD.
DEFAULT_LEAKAGE_PER_CYCLE = 24.0


class EnergyBreakdown:
    """Energy of one run, split into components (picojoules)."""

    def __init__(self, dynamic, leakage, cycles, vdd):
        self.dynamic = dynamic
        self.leakage = leakage
        self.cycles = cycles
        self.vdd = vdd

    @property
    def total(self):
        """Total energy in picojoules."""
        return self.dynamic + self.leakage

    @property
    def edp(self):
        """Energy-delay product (pJ * cycles) — the paper's ED metric."""
        return self.total * self.cycles

    def __repr__(self):
        return (
            f"EnergyBreakdown(total={self.total:.1f}pJ, "
            f"dyn={self.dynamic:.1f}, leak={self.leakage:.1f}, "
            f"cycles={self.cycles})"
        )


class EnergyModel:
    """Computes run energy from pipeline statistics and cache counters."""

    def __init__(self, event_energy=None, op_energy=None,
                 leakage_per_cycle=DEFAULT_LEAKAGE_PER_CYCLE):
        self.event_energy = dict(DEFAULT_EVENT_ENERGY)
        if event_energy:
            self.event_energy.update(event_energy)
        self.op_energy = dict(DEFAULT_OP_ENERGY)
        if op_energy:
            self.op_energy.update(op_energy)
        self.leakage_per_cycle = leakage_per_cycle

    # ------------------------------------------------------------------
    @staticmethod
    def dynamic_scale(vdd):
        """Dynamic-energy scale factor at ``vdd`` (CV^2 law)."""
        return (vdd / VDD_NOMINAL) ** 2

    @staticmethod
    def leakage_scale(vdd):
        """Leakage scale factor at ``vdd`` (linearized over 0.97-1.1V)."""
        return vdd / VDD_NOMINAL

    # ------------------------------------------------------------------
    def evaluate(self, stats, cache_stats, vdd=VDD_NOMINAL, uses_tep=False):
        """Return the :class:`EnergyBreakdown` of a finished run.

        Parameters
        ----------
        stats:
            The run's :class:`~repro.uarch.stats.SimStats`.
        cache_stats:
            ``MemoryHierarchy.stats()`` dict of the same run.
        vdd:
            Supply voltage of the run.
        uses_tep:
            Whether the scheme performed TEP lookups (adds their energy).
        """
        e = self.event_energy
        dyn = 0.0
        dyn += stats.fetched * (e["fetch"] + e["decode"])
        dyn += stats.wrong_path_fetched * (e["fetch"] + e["decode"])
        dyn += stats.dispatched * (e["rename"] + e["dispatch"])
        dyn += stats.issued * e["select"]
        dyn += stats.broadcast_occupancy * e["broadcast_per_entry"]
        dyn += stats.regreads * e["regread_per_operand"]
        dyn += stats.regwrites * e["regwrite"]
        dyn += stats.wb_writes * e["wb"]
        dyn += stats.committed * e["commit"]
        dyn += stats.lsq_searches * e["lsq_search"]
        if uses_tep:
            dyn += stats.fetched * e["tep_lookup"]
        for op, count in stats.fu_ops.items():
            dyn += count * self.op_energy[op]
        dyn += (cache_stats["l1d_hits"] + cache_stats["l1d_misses"]) * e["l1d"]
        dyn += (cache_stats["l1i_hits"] + cache_stats["l1i_misses"]) * e["l1i"]
        dyn += (cache_stats["l2_hits"] + cache_stats["l2_misses"]) * e["l2"]
        dyn += cache_stats["mem_accesses"] * e["mem"]
        dyn *= self.dynamic_scale(vdd)
        leak = stats.cycles * self.leakage_per_cycle * self.leakage_scale(vdd)
        return EnergyBreakdown(dyn, leak, stats.cycles, vdd)
