"""Area/power overhead of the VTE scheduler enhancements (Table 2).

The baseline is the scheduler of the Error-Padding machine: the wakeup CAM
(one tag comparator per source per entry against each of the W result-tag
broadcast buses), the W-grant select tree, the per-entry timestamp counters
(the EP baseline already selects age-based, Section 4.2), and the entry
payload storage.

On top of that baseline,

* **ABS/FFS** add the 4-bit fault-prediction field per entry
  (Section 3.2.1), the FUSR, the completion-countdown extension of the tag
  broadcast logic, and the slot-freeze control — identical logic for both
  policies (Table 2 lists them together);
* **CDS** additionally needs the Criticality Detection Logic: the
  tag-match population counter, the threshold comparator, and a
  criticality bit per entry.

Dynamic power overhead weights each structure's switched capacitance (cell
switching energy) by an activity factor; leakage overhead follows cell
leakage. Core-level numbers scale the scheduler-level ones by the
scheduler's share of the core, for which we use the paper's measured
fractions (3.9% area, 8.9% dynamic power, 1.2% leakage — Section S3).
"""

from repro.circuits.builders import (
    build_incrementer,
    build_issue_select,
    build_match_counter,
    build_threshold_compare,
    equality_comparator,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.library import default_library

#: The paper's measured scheduler share of the whole core (Section S3).
SCHEDULER_CORE_AREA_FRACTION = 0.039
SCHEDULER_CORE_DYNAMIC_FRACTION = 0.089
SCHEDULER_CORE_LEAKAGE_FRACTION = 0.012


class _Structure:
    """One scheduler structure: area, leakage, switching energy, activity."""

    def __init__(self, name, area, leakage, energy, activity):
        self.name = name
        self.area = area
        self.leakage = leakage
        self.energy = energy
        self.activity = activity

    @property
    def dynamic(self):
        """Activity-weighted switching energy (per-cycle average)."""
        return self.energy * self.activity


class OverheadReport:
    """Relative overheads of one scheme vs the baseline scheduler."""

    def __init__(self, scheme, area, dynamic, leakage):
        self.scheme = scheme
        self.area = area
        self.dynamic = dynamic
        self.leakage = leakage

    def core_level(self):
        """Scale scheduler-level overheads to the whole core."""
        return OverheadReport(
            self.scheme,
            self.area * SCHEDULER_CORE_AREA_FRACTION,
            self.dynamic * SCHEDULER_CORE_DYNAMIC_FRACTION,
            self.leakage * SCHEDULER_CORE_LEAKAGE_FRACTION,
        )

    def __repr__(self):
        return (
            f"OverheadReport({self.scheme}: area={self.area:.2%}, "
            f"dyn={self.dynamic:.2%}, leak={self.leakage:.2%})"
        )


def _netlist_structure(name, netlist, library, activity, storage_bits=0,
                       storage_activity=0.1, ram=False):
    """Wrap a netlist (+ optional storage bits) as a _Structure."""
    area = library.netlist_area(netlist) + library.storage_area(
        storage_bits, ram=ram
    )
    leak = library.netlist_leakage(netlist) + library.storage_leakage(
        storage_bits, ram=ram
    )
    cell = library.ram_bit if ram else library.dff
    energy = sum(library.spec(g.gtype).energy for g in netlist.gates)
    energy += storage_bits * cell.energy * storage_activity
    return _Structure(name, area, leak, energy, activity)


def _storage_structure(name, bits, library, activity, ram=False):
    cell = library.ram_bit if ram else library.dff
    return _Structure(
        name,
        library.storage_area(bits, ram=ram),
        library.storage_leakage(bits, ram=ram),
        bits * cell.energy,
        activity,
    )


class SchedulerOverheadModel:
    """Builds the scheduler structures and computes Table 2.

    Parameters mirror the Core-1 issue queue: 32 entries, 2 source tags of
    7 bits (96 physical registers), width-4 broadcast, 160-bit payload per
    entry (opcode, immediate, ROB/LSQ ids, branch mask), CT = 8.
    """

    def __init__(self, iq_entries=32, n_srcs=2, tag_bits=7, width=4,
                 payload_bits=160, criticality_threshold=8, library=None,
                 fu_count=4):
        self.library = library or default_library()
        self.iq_entries = iq_entries
        self.n_srcs = n_srcs
        self.tag_bits = tag_bits
        self.width = width
        self.payload_bits = payload_bits
        self.criticality_threshold = criticality_threshold
        self.fu_count = fu_count

    # -- structure inventories -------------------------------------------
    def _cam_netlist(self):
        """The wakeup CAM: entries x srcs x width tag comparators."""
        nl = Netlist("wakeup_cam")
        broadcast = [nl.add_inputs(self.tag_bits) for _ in range(self.width)]
        for _ in range(self.iq_entries * self.n_srcs):
            src = nl.add_inputs(self.tag_bits)
            for bus in broadcast:
                nl.mark_output(equality_comparator(nl, src, bus))
        return nl

    def baseline_structures(self):
        """Structures of the EP baseline scheduler."""
        lib = self.library
        cam = _netlist_structure(
            "wakeup_cam", self._cam_netlist(), lib, activity=0.5,
            storage_bits=self.iq_entries * self.n_srcs * self.tag_bits,
            ram=True,
        )
        # one select tree per issue lane, as in a synthesized scheduler
        select, _ = build_issue_select(self.iq_entries, self.width)
        select_s = _netlist_structure(
            "select_trees", select, lib, activity=1.0
        )
        select_s.area *= self.fu_count / self.width or 1
        inc, _ = build_incrementer(6)
        ts_area = lib.netlist_area(inc) + lib.storage_area(
            6 * self.iq_entries, ram=True
        )
        ts_leak = lib.netlist_leakage(inc) + lib.storage_leakage(
            6 * self.iq_entries, ram=True
        )
        ts_energy = sum(lib.spec(g.gtype).energy for g in inc.gates)
        timestamps = _Structure("timestamps", ts_area, ts_leak, ts_energy, 0.3)
        payload = _storage_structure(
            "payload", self.iq_entries * self.payload_bits, lib,
            activity=0.25, ram=True,
        )
        return [cam, select_s, timestamps, payload]

    def abs_ffs_extra_structures(self):
        """Logic/storage added by ABS and FFS (identical for both)."""
        lib = self.library
        fault_field = _storage_structure(
            "fault_field", 4 * self.iq_entries, lib, activity=0.05, ram=True
        )
        fusr = _storage_structure("fusr", self.fu_count, lib, activity=0.1)
        # completion-countdown extension: a small incrementer per issue lane
        inc, _ = build_incrementer(3)
        countdown = _netlist_structure(
            "broadcast_countdown", inc, lib, activity=0.2,
            storage_bits=3 * self.width,
        )
        # slot-freeze control: a few gates per FU
        freeze = Netlist("freeze_ctl")
        for _ in range(self.fu_count):
            a = freeze.add_input()
            b = freeze.add_input()
            freeze.mark_output(freeze.add_gate(GateType.AND2, [a, b]))
        freeze_s = _netlist_structure("freeze_ctl", freeze, lib, activity=0.1)
        return [fault_field, fusr, countdown, freeze_s]

    def cds_extra_structures(self):
        """Everything ABS/FFS add, plus the CDL (Section 3.5.2)."""
        lib = self.library
        extras = self.abs_ffs_extra_structures()
        counter, _ = build_match_counter(self.iq_entries)
        compare, _ = build_threshold_compare(6, self.criticality_threshold)
        cdl_counter = _netlist_structure(
            "cdl_match_counter", counter, lib, activity=0.3
        )
        cdl_compare = _netlist_structure(
            "cdl_threshold", compare, lib, activity=0.3
        )
        crit_bits = _storage_structure(
            "criticality_bits", self.iq_entries, lib, activity=0.05
        )
        return extras + [cdl_counter, cdl_compare, crit_bits]

    # -- report -------------------------------------------------------------
    @staticmethod
    def _totals(structures):
        area = sum(s.area for s in structures)
        dynamic = sum(s.dynamic for s in structures)
        leakage = sum(s.leakage for s in structures)
        return area, dynamic, leakage

    def report(self, scheme):
        """Scheduler-level :class:`OverheadReport` for ABS/FFS/CDS."""
        base_area, base_dyn, base_leak = self._totals(
            self.baseline_structures()
        )
        scheme = scheme.upper()
        if scheme in ("ABS", "FFS"):
            extras = self.abs_ffs_extra_structures()
        elif scheme == "CDS":
            extras = self.cds_extra_structures()
        else:
            raise ValueError(f"no overhead defined for scheme {scheme!r}")
        area, dyn, leak = self._totals(extras)
        return OverheadReport(
            scheme, area / base_area, dyn / base_dyn, leak / base_leak
        )

    def table2(self):
        """All rows of Table 2: scheduler-level and core-level."""
        rows = []
        for scheme in ("ABS", "FFS", "CDS"):
            sched = self.report(scheme)
            rows.append((scheme, sched, sched.core_level()))
        return rows
