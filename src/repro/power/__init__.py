"""Energy accounting and VTE area/power overheads.

* :mod:`repro.power.energy_model` — event-based core energy from the run's
  activity counters, with supply-voltage scaling and energy-delay product
  (the paper's energy-efficiency metric, Section 5.1).
* :mod:`repro.power.overhead` — area/power overhead of the proposed
  scheduler enhancements relative to the baseline scheduler (Table 2),
  computed from gate-level netlists of the added logic.
"""

from repro.power.energy_model import EnergyModel, EnergyBreakdown

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "SchedulerOverheadModel",
    "OverheadReport",
]


def __getattr__(name):
    # overhead depends on the circuits package; import it lazily so that
    # energy-only users do not pay for netlist construction imports
    if name in ("SchedulerOverheadModel", "OverheadReport"):
        from repro.power import overhead

        return getattr(overhead, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
