"""repro — reproduction of "Efficiently Tolerating Timing Violations in
Pipelined Microprocessors" (Chakraborty, Cozzens, Roy, Ancajas — DAC 2013).

The package implements the paper's violation-aware instruction scheduling
framework (TEP + VTE + ABS/FFS/CDS policies), the Razor and Error Padding
baselines, the cycle-level out-of-order core and memory hierarchy they run
on, the statistical timing-fault substrate, a gate-level path-sensitization
study, and the experiment harness regenerating every table and figure of
the paper's evaluation.

Quickstart::

    from repro import RunSpec, SchemeKind, run_one

    result = run_one(RunSpec("astar", SchemeKind.ABS, vdd=1.04))
    print(result.ipc, result.fault_rate)
"""

from repro.campaign import CampaignSpec, run_campaign
from repro.core.predictors import make_predictor
from repro.core.schemes import Scheme, SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.harness.export import write_json
from repro.harness.multiseed import run_seeds
from repro.harness.runner import RunSpec, SimResult, run_one, run_pair
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.uarch.pipetrace import PipeTracer
from repro.workloads.profiles import get_profile, profile_names
from repro.workloads.tracefile import load_trace, save_trace

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec",
    "run_campaign",
    "Scheme",
    "make_predictor",
    "write_json",
    "run_seeds",
    "PipeTracer",
    "load_trace",
    "save_trace",
    "SchemeKind",
    "make_scheme",
    "TimingErrorPredictor",
    "RunSpec",
    "SimResult",
    "run_one",
    "run_pair",
    "CoreConfig",
    "OoOCore",
    "get_profile",
    "profile_names",
    "__version__",
]
