#!/usr/bin/env python3
"""Why the TEP combines two prior predictor designs (Section 2.1.1).

The paper's Timing Error Predictor merges the Most Recent Entry predictor
(Xin & Joseph, MICRO'11) with the Timing Violation Predictor (Roy &
Chakraborty, DAC'12). This example runs the violation-aware scheduler with
each of the three designs and reports prediction coverage, replays, and
the resulting overhead — plus the Razor-circuit cost of the detection
substrate they all rely on.

Usage::

    python examples/predictor_comparison.py [benchmark]
"""

import sys

from repro import RunSpec, SchemeKind, run_one
from repro.circuits.builders import build_agen
from repro.circuits.library import default_library
from repro.circuits.razor import razor_overhead


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gobmk"
    n_instructions = 6000
    vdd = 0.97

    baseline = run_one(
        RunSpec(benchmark, SchemeKind.FAULT_FREE, vdd, n_instructions)
    )
    print(f"benchmark={benchmark}, VDD={vdd}V, ABS scheduling\n")
    print(f"{'predictor':<10} {'coverage':>9} {'replays':>8} "
          f"{'perf overhead':>14}")
    for kind, label in (("tep", "TEP"), ("mre", "MRE"), ("tvp", "TVP")):
        result = run_one(
            RunSpec(benchmark, SchemeKind.ABS, vdd, n_instructions,
                    predictor=kind)
        )
        stats = result.stats
        coverage = (
            stats.faults_predicted / stats.faults_total
            if stats.faults_total else 1.0
        )
        print(f"{label:<10} {coverage:>8.1%} {stats.replays:>8d} "
              f"{result.perf_overhead(baseline):>13.2%}")

    print()
    print("Every scheme needs Razor-style detectors for the violations no")
    print("predictor catches. Their circuit-level cost on the AGEN stage:")
    netlist, _ = build_agen()
    report = razor_overhead(netlist, default_library())
    print(f"  {report.n_flops} protected flip-flops: "
          f"area +{report.area_overhead:.1%}, "
          f"energy +{report.energy_overhead:.1%}, "
          f"{report.n_buffers} hold buffers")
    print()
    print("High prediction coverage keeps replays — and therefore the")
    print("detector's dynamic activity — rare; the TEP's tags avoid the")
    print("TVP's aliasing while its counters avoid the MRE's thrash.")


if __name__ == "__main__":
    main()
