#!/usr/bin/env python3
"""Tighter frequency through violation tolerance (the paper's Section 1).

"Enabled by our violation aware scheduling techniques, microprocessors can
operate at a tighter frequency, where predictable errors frequently occur
and are tolerated with minimal performance loss."

This example overclocks the core at nominal supply: the cycle time shrinks
by a factor f, predictable timing violations appear once the guardband is
consumed, and each scheme pays its own tolerance cost. Net throughput is
IPC x f (instructions per wall-clock second, normalized to the nominal
point) — the scheme that tolerates violations cheapest sustains the
highest usable frequency.

Usage::

    python examples/overclocking.py [benchmark]
"""

import sys

from repro import RunSpec, SchemeKind, run_one


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    n_instructions = 6000
    factors = [1.00, 1.02, 1.04, 1.06, 1.08, 1.10]
    schemes = (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS)

    nominal = run_one(
        RunSpec(benchmark, SchemeKind.FAULT_FREE, 1.10, n_instructions)
    )
    print(f"benchmark={benchmark}; throughput = IPC x f, normalized to the")
    print("fault-free nominal-frequency point\n")
    header = f"{'f':>5} {'fault rate':>11}"
    for scheme in schemes:
        header += f" {scheme.name:>8}"
    print(header)

    best = {scheme: (1.0, 1.0) for scheme in schemes}
    for f in factors:
        row = f"{f:>5.2f}"
        fr_printed = False
        for scheme in schemes:
            result = run_one(
                RunSpec(benchmark, scheme, 1.10, n_instructions, overclock=f)
            )
            if not fr_printed:
                row += f" {result.fault_rate:>10.2%}"
                fr_printed = True
            throughput = result.ipc * f / nominal.ipc
            if throughput > best[scheme][1]:
                best[scheme] = (f, throughput)
            row += f" {throughput:>8.3f}"
        print(row)

    print()
    for scheme in schemes:
        f, throughput = best[scheme]
        print(f"{scheme.name}: best operating point f={f:.2f} "
              f"({throughput - 1:+.1%} net throughput)")
    print()
    print("Violation-aware scheduling keeps violations cheap, so its usable")
    print("frequency — and net speedup — is the highest of the three.")


if __name__ == "__main__":
    main()
