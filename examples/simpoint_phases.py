#!/usr/bin/env python3
"""Phase selection with SimPoint (the paper's Section 4.2 methodology).

The paper simulates representative 1M-instruction phases selected by
SimPoint rather than whole programs. This example runs the same pipeline
over a synthetic workload: collect Basic Block Vectors per interval,
cluster them, pick representatives, and compare the weighted-phase IPC
estimate against a long reference simulation.
"""

import sys

from repro import RunSpec, SchemeKind, run_one
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile
from repro.workloads.simpoint import BBVCollector, choose_simpoints


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    interval = 2000
    program = build_program(get_profile(benchmark), seed=1)

    print(f"collecting BBVs for {benchmark} "
          f"({interval}-instruction intervals)...")
    bbvs = BBVCollector(program, interval=interval, seed=2).collect(40_000)
    simpoints = choose_simpoints(bbvs, max_k=6, seed=0)
    print(f"{len(bbvs)} intervals -> {len(simpoints)} phase(s):")
    for index, weight in simpoints:
        print(f"  interval {index:>3}  weight {weight:.2f}")
    print()

    # reference: one long measurement
    reference = run_one(
        RunSpec(benchmark, SchemeKind.FAULT_FREE, 1.10,
                n_instructions=20_000, warmup=4000)
    )
    # phase estimate: short measurements at each representative, weighted.
    # (we emulate "starting at interval k" by skipping k*interval
    # instructions of warmup before measuring.)
    estimate = 0.0
    for index, weight in simpoints:
        result = run_one(
            RunSpec(benchmark, SchemeKind.FAULT_FREE, 1.10,
                    n_instructions=interval,
                    warmup=2000 + index * interval)
        )
        estimate += weight * result.ipc
    print(f"reference IPC (20k instructions): {reference.ipc:.3f}")
    print(f"SimPoint-weighted estimate:       {estimate:.3f}")
    error = abs(estimate - reference.ipc) / reference.ipc
    print(f"estimation error:                 {error:.1%}")


if __name__ == "__main__":
    main()
