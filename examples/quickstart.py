#!/usr/bin/env python3
"""Quickstart: tolerate timing violations on one benchmark.

Runs the astar workload at the paper's low-fault supply (1.04V) under
every fault-handling scheme and prints the cost of each, normalized to
fault-free execution — a miniature of the paper's Figure 4 for one
benchmark.

Usage::

    python examples/quickstart.py [benchmark] [vdd]
"""

import sys

from repro import RunSpec, SchemeKind, run_one


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "astar"
    vdd = float(sys.argv[2]) if len(sys.argv) > 2 else 1.04
    n_instructions = 8000

    print(f"benchmark={benchmark}, VDD={vdd}V, {n_instructions} instructions")
    print()

    baseline = run_one(
        RunSpec(benchmark, SchemeKind.FAULT_FREE, vdd, n_instructions)
    )
    print(f"fault-free baseline: IPC={baseline.ipc:.3f}, "
          f"{baseline.cycles} cycles")
    print()
    print(f"{'scheme':<10} {'IPC':>6} {'fault rate':>11} {'replays':>8} "
          f"{'perf overhead':>14} {'ED overhead':>12}")
    for kind in (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS,
                 SchemeKind.FFS, SchemeKind.CDS):
        result = run_one(RunSpec(benchmark, kind, vdd, n_instructions))
        print(
            f"{kind.name:<10} {result.ipc:>6.3f} "
            f"{result.fault_rate:>10.2%} "
            f"{result.stats.replays:>8d} "
            f"{result.perf_overhead(baseline):>13.2%} "
            f"{result.ed_overhead(baseline):>11.2%}"
        )
    print()
    print("Razor replays every violation; Error Padding (EP) stalls the")
    print("whole pipeline per predicted violation; the paper's ABS/FFS/CDS")
    print("confine the penalty to the faulty instruction and its dependents.")


if __name__ == "__main__":
    main()
