#!/usr/bin/env python3
"""Operating-point exploration: how low can the supply go?

The motivation of the paper's Section 1: with cheap tolerance of
predictable timing violations, a core can run at a tighter
voltage/frequency point. This example sweeps the supply from the nominal
1.10V down to 0.96V and reports, per scheme, the fault rate and the
energy-delay product relative to nominal fault-free execution — showing
where each scheme's break-even point lies.

Usage::

    python examples/voltage_sweep.py [benchmark]
"""

import sys

from repro import RunSpec, SchemeKind, run_one
from repro.faults.timing import VDD_NOMINAL


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    n_instructions = 6000
    voltages = [1.10, 1.07, 1.04, 1.00, 0.97, 0.96]
    schemes = (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS)

    nominal = run_one(
        RunSpec(benchmark, SchemeKind.FAULT_FREE, VDD_NOMINAL, n_instructions)
    )
    print(f"benchmark={benchmark}; energy-delay relative to fault-free @1.10V")
    print()
    header = f"{'VDD':>5} {'fault rate':>11}"
    for scheme in schemes:
        header += f" {scheme.name + ' EDP':>11}"
    print(header)

    for vdd in voltages:
        row = f"{vdd:>5.2f}"
        fr_printed = False
        for scheme in schemes:
            result = run_one(RunSpec(benchmark, scheme, vdd, n_instructions))
            if not fr_printed:
                row += f" {result.fault_rate:>10.2%}"
                fr_printed = True
            row += f" {result.edp / nominal.edp:>11.3f}"
        print(row)

    print()
    print("Reading the table: below ~1.04V violations appear; Razor's replay")
    print("cost erases the voltage saving quickly, EP keeps part of it, and")
    print("violation-aware scheduling (ABS) keeps the EDP lowest the deepest")
    print("into the faulty region — the paper's energy-efficiency argument.")


if __name__ == "__main__":
    main()
