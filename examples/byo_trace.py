#!/usr/bin/env python3
"""Bring your own trace: run the pipeline on an external instruction trace.

Demonstrates the JSON-lines trace interchange: a tiny daxpy-like kernel is
written by hand (as a tracing tool would emit it), loaded, and executed
under fault-free and violation-aware configurations. Any trace with the
same schema — e.g. produced by a Pin tool or another simulator — works the
same way.
"""

import tempfile

from repro.core.schemes import SchemeKind, make_scheme
from repro.mem.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.workloads.tracefile import load_trace


def daxpy_trace(iterations=400, base_x=0x1000, base_y=0x8000):
    """Hand-written trace of y[i] += a * x[i] (as JSON lines)."""
    lines = ["# daxpy kernel, one JSON record per dynamic instruction"]
    for i in range(iterations):
        xa, ya = base_x + 8 * i, base_y + 8 * i
        lines.extend([
            f'{{"pc": 4096, "op": "LOAD", "dest": 2, "srcs": [1], '
            f'"addr": {xa}}}',
            '{"pc": 4100, "op": "IMUL", "dest": 3, "srcs": [2, 4]}',
            f'{{"pc": 4104, "op": "LOAD", "dest": 5, "srcs": [6], '
            f'"addr": {ya}}}',
            '{"pc": 4108, "op": "IALU", "dest": 5, "srcs": [3, 5]}',
            f'{{"pc": 4112, "op": "STORE", "srcs": [5, 6], "addr": {ya}}}',
            '{"pc": 4116, "op": "IALU", "dest": 1, "srcs": [1]}',
            '{"pc": 4120, "op": "IALU", "dest": 6, "srcs": [6]}',
            f'{{"pc": 4124, "op": "BRANCH", "srcs": [1], '
            f'"taken": {"true" if i + 1 < iterations else "false"}}}',
        ])
    return "\n".join(lines) + "\n"


def run_trace(path):
    core = OoOCore(
        CoreConfig.core1(),
        load_trace(path),
        MemoryHierarchy(),
        make_scheme(SchemeKind.FAULT_FREE),
    )
    return core.run(1_000_000)  # drains at trace end


def main():
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                     delete=False) as handle:
        handle.write(daxpy_trace())
        path = handle.name
    trace = load_trace(path)
    print(f"loaded {len(trace)} dynamic instructions, "
          f"{len(trace.statics)} static PCs from {path}")

    stats = run_trace(path)
    print(f"daxpy on Core-1: {stats.committed} committed in "
          f"{stats.cycles} cycles (IPC {stats.ipc:.2f})")
    print(f"store-to-load forwards: {stats.store_forwards}, "
          f"LSQ CAM searches: {stats.lsq_searches}")
    print()
    print("The same schema works for traces produced by binary")
    print("instrumentation or other simulators; see")
    print("repro.workloads.tracefile for the format definition.")


if __name__ == "__main__":
    main()
