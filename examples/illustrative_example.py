#!/usr/bin/env python3
"""The paper's Figure 2, executed: scheduling around a faulty instruction.

Four instructions run on a core with a single one-cycle ALU. I2 is
predicted to violate timing in the execute stage; I3 depends on it, I1 and
I4 are independent. The example prints the per-instruction schedule with
and without the fault and shows the three VTE mechanisms at work:

1. I2 occupies its stage one extra cycle (delayed tag broadcast),
2. the FUSR keeps the ALU's issue slot empty in the following cycle,
3. only the dependent I3 is held back — by exactly one cycle.
"""

from repro.core.schemes import SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.faults.sensors import VoltageSensor
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass, PipeStage
from repro.isa.program import BasicBlock, Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.workloads.trace import TraceGenerator

NAMES = {0x1000: "I1", 0x1004: "I2", 0x1008: "I3", 0x100C: "I4"}


class _Fig2Injector:
    """Forces an execute-stage violation on I2's every instance."""

    enabled = True

    def resolve(self, inst, vdd):
        if inst.pc == 0x1004 and not inst.replayed:
            inst.add_fault(PipeStage.EXECUTE)
        return inst


class _Recorder:
    def __init__(self, trace):
        self.trace = iter(trace)
        self.insts = {}

    def __iter__(self):
        return self

    def __next__(self):
        inst = next(self.trace)
        if inst.pc in NAMES:
            self.insts[NAMES[inst.pc]] = inst
        return inst


def _program():
    insts = [
        StaticInst(0x1000, OpClass.IALU, dest=1, srcs=()),
        StaticInst(0x1004, OpClass.IALU, dest=2, srcs=()),
        StaticInst(0x1008, OpClass.IALU, dest=3, srcs=(2,)),
        StaticInst(0x100C, OpClass.IALU, dest=4, srcs=()),
        StaticInst(0x1010, OpClass.BRANCH, srcs=(), taken_prob=0.0),
    ]
    return Program([BasicBlock(0, insts, [])], name="figure2")


def _run(faulty):
    config = CoreConfig.core1(n_simple_alu=1)
    tep = TimingErrorPredictor()
    if faulty:
        key = tep.key_for(0x1004, 0)
        for _ in range(3):
            tep.train(key, PipeStage.EXECUTE, True)
    core = OoOCore(
        config,
        _Recorder(TraceGenerator(_program())),
        MemoryHierarchy(),
        make_scheme(SchemeKind.ABS),
        injector=_Fig2Injector() if faulty else None,
        tep=tep,
        sensor=VoltageSensor(1.04),
        vdd=1.04,
    )
    core.run(5)
    return core.trace.insts


def _show(title, insts, t0):
    print(title)
    print(f"  {'inst':<5} {'select':>7} {'complete':>9} {'commit':>7}")
    for name in ("I1", "I2", "I3", "I4"):
        inst = insts[name]
        print(
            f"  {name:<5} {inst.issue_cycle - t0:>7} "
            f"{inst.complete_cycle - t0:>9} {inst.commit_cycle - t0:>7}"
        )
    print()


def main():
    clean = _run(faulty=False)
    faulty = _run(faulty=True)
    t0 = clean["I1"].issue_cycle
    t1 = faulty["I1"].issue_cycle
    _show("fault-free schedule (cycles relative to I1's select):", clean, t0)
    _show("I2 predicted faulty in EXECUTE (VTE active):", faulty, t1)

    slip = (faulty["I3"].issue_cycle - t1) - (clean["I3"].issue_cycle - t0)
    print(f"I3 (dependent on I2) selected {slip} cycle(s) later — the")
    print("delayed tag broadcast of Section 3.2.2.")
    print("No replay occurred; the violation was absorbed by scheduling.")


if __name__ == "__main__":
    main()
