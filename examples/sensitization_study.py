#!/usr/bin/env python3
"""Why are timing violations predictable? (the paper's Section S1)

Builds the four gate-level components, drives each with SPEC2000int-like
operand streams, and measures the commonality of the sensitized paths
across dynamic instances of the same static instruction — the property the
Timing Error Predictor exploits. Also demonstrates the inverse: a stream
with no input locality destroys the commonality, and with it the
predictability.
"""

from repro.circuits.builders import (
    build_agen,
    build_alu,
    build_forward_check,
    build_issue_select,
)
from repro.circuits.sensitization import (
    toggle_sets_per_pc,
    weighted_commonality,
)
from repro.circuits.synthesis import synthesize
from repro.workloads.operand_streams import (
    FIG7_COMPONENTS,
    OperandProfile,
    SPEC2000INT_PROFILES,
    StreamBuilder,
)

BUILDERS = {
    "IssueQSelect": build_issue_select,
    "AGen": build_agen,
    "ForwardCheck": build_forward_check,
    "ALU": build_alu,
}


def main():
    print("component characteristics (NAND-mapped, cf. paper Table 3):")
    netlists = {}
    for name in FIG7_COMPONENTS:
        nl, _ = BUILDERS[name]()
        netlists[name] = nl
        report = synthesize(nl)
        print(f"  {name:<13} {report.n_gates:>5} gates, depth {report.depth}")
    print()

    print("sensitized-path commonality per benchmark (cf. paper Figure 7):")
    header = f"  {'component':<13}" + "".join(
        f"{b:>8}" for b in SPEC2000INT_PROFILES
    )
    print(header)
    for name in FIG7_COMPONENTS:
        row = f"  {name:<13}"
        for bench, profile in SPEC2000INT_PROFILES.items():
            stream = StreamBuilder(profile, seed=7).stream_for(name)
            sets = toggle_sets_per_pc(netlists[name], stream)
            row += f"{weighted_commonality(sets):>8.2f}"
        print(row)
    print()

    print("what happens without input locality (locality = 0.1):")
    chaotic = OperandProfile("chaotic", locality=0.10)
    for name in ("AGen", "ALU"):
        stream = StreamBuilder(chaotic, seed=7).stream_for(name)
        sets = toggle_sets_per_pc(netlists[name], stream)
        value = weighted_commonality(sets)
        print(f"  {name:<13} commonality drops to {value:.2f}")
    print()
    print("High commonality means a PC that once violated timing will")
    print("sensitize nearly the same critical path again — the basis of")
    print("PC-indexed violation prediction.")


if __name__ == "__main__":
    main()
