"""Ablations of the design choices called out in DESIGN.md.

* TEP geometry: a starved predictor table aliases and mispredicts,
  forcing replays the full-size table avoids.
* Criticality threshold: the paper finds CT = 8 works best; the CDS
  datapath cost grows as the threshold logic changes but scheduling
  stays safe at any CT.
* Razor replay-penalty sensitivity: deeper recovery costs more.
* mod-64 timestamps vs exact age: the 6-bit counter is an adequate
  proxy for true age.
"""

import pytest

from repro.core.policies import AgeBasedSelection
from repro.core.schemes import SchemeKind
from repro.core.tep import TEPConfig
from repro.faults.timing import VDD_HIGH_FAULT
from repro.harness.runner import RunSpec, run_one
from repro.uarch.config import CoreConfig

from conftest import N_INSTRUCTIONS, SEED, WARMUP

_BENCH = "sjeng"


def _spec(**kwargs):
    return RunSpec(
        _BENCH, kwargs.pop("scheme", SchemeKind.ABS), VDD_HIGH_FAULT,
        N_INSTRUCTIONS, WARMUP, SEED, **kwargs,
    )


def test_ablation_predictor_designs(benchmark, capsys):
    """TEP (the paper's combined design) vs its constituents (MRE, TVP).

    The TEP combines the MRE's fast reaction with the TVP's confidence
    counters and adds tags; prediction coverage (and hence replay count)
    should order TEP >= MRE > TVP.
    """
    def run():
        results = {}
        for kind in ("tep", "mre", "tvp"):
            results[kind] = run_one(_spec(predictor=kind))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(f"\npredictor ablation ({_BENCH}@0.97V, ABS):")
        for kind, r in results.items():
            s = r.stats
            coverage = (
                s.faults_predicted / s.faults_total if s.faults_total else 1
            )
            print(f"  {kind}: coverage={coverage:.1%} replays={s.replays}")
    cov = {
        k: (r.stats.faults_predicted / r.stats.faults_total)
        for k, r in results.items()
    }
    assert cov["tep"] >= cov["mre"] - 0.05
    assert cov["mre"] > cov["tvp"]


def test_ablation_tep_geometry(benchmark, capsys):
    """A tiny TEP table must cost replays vs the full-size one."""
    def run():
        tiny = run_one(_spec(tep_config=TEPConfig(n_entries=16)))
        full = run_one(_spec(tep_config=TEPConfig(n_entries=1024)))
        return tiny, full

    tiny, full = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\nTEP ablation ({_BENCH}@0.97V): "
            f"16 entries -> {tiny.stats.replays} replays, "
            f"1024 entries -> {full.stats.replays} replays"
        )
    assert tiny.stats.replays >= full.stats.replays
    assert full.stats.faults_predicted > full.stats.faults_unpredicted


def test_ablation_criticality_threshold(benchmark, capsys):
    """CDS remains correct and effective across CT settings."""
    def run():
        results = {}
        for ct in (2, 8, 24):
            config = CoreConfig.core1(criticality_threshold=ct)
            results[ct] = run_one(_spec(scheme=SchemeKind.CDS, config=config))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    base = run_one(
        RunSpec(_BENCH, SchemeKind.FAULT_FREE, VDD_HIGH_FAULT,
                N_INSTRUCTIONS, WARMUP, SEED)
    )
    with capsys.disabled():
        print(f"\nCT ablation ({_BENCH}@0.97V):")
        for ct, result in results.items():
            print(f"  CT={ct:2d}: overhead={result.perf_overhead(base):.3%}")
    for result in results.values():
        assert result.stats.committed >= N_INSTRUCTIONS
        assert result.perf_overhead(base) < 0.5


def test_ablation_replay_penalty(benchmark, capsys):
    """Razor's overhead grows with the recovery depth."""
    def run():
        fast = run_one(_spec(
            scheme=SchemeKind.RAZOR, config=CoreConfig.core1(replay_recovery=1)
        ))
        slow = run_one(_spec(
            scheme=SchemeKind.RAZOR,
            config=CoreConfig.core1(replay_recovery=12),
        ))
        return fast, slow

    fast, slow = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\nreplay-penalty ablation: recovery=1 -> {fast.cycles} cycles, "
            f"recovery=12 -> {slow.cycles} cycles"
        )
    assert slow.cycles > fast.cycles


def test_ablation_memory_disambiguation(benchmark, capsys):
    """Conservative vs store-set speculative load scheduling.

    The paper's baseline scheduler is conservative; the store-set
    refinement (Chrysos/Emer) lifts IPC on memory-heavy codes without
    changing the violation-tolerance story.
    """
    def run():
        results = {}
        for mode in ("conservative", "store_sets"):
            config = CoreConfig.core1(mem_dependence=mode)
            results[mode] = run_one(RunSpec(
                "xalancbmk", SchemeKind.ABS, VDD_HIGH_FAULT,
                N_INSTRUCTIONS, WARMUP, SEED, config=config,
            ))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print("\ndisambiguation ablation (xalancbmk@0.97V, ABS):")
        for mode, r in results.items():
            print(f"  {mode}: ipc={r.ipc:.3f} "
                  f"memdep_violations={r.stats.memdep_violations}")
    assert results["store_sets"].ipc >= results["conservative"].ipc


def test_ablation_mod64_timestamps(benchmark, capsys):
    """The 6-bit modulo timestamp tracks true fetch order closely."""
    from repro.harness.runner import build_core, prime_caches

    def run(exact):
        spec = _spec()
        core = build_core(spec)
        core.scheme.policy = AgeBasedSelection(exact=exact)
        prime_caches(core.program, core.hierarchy)
        core.run(spec.warmup)
        from repro.uarch.stats import SimStats

        core.stats = SimStats()
        core.hierarchy.reset_stats()
        return core.run(spec.n_instructions)

    def both():
        return run(exact=False), run(exact=True)

    mod64, exact = benchmark.pedantic(both, iterations=1, rounds=1)
    with capsys.disabled():
        print(
            f"\ntimestamp ablation: mod-64 -> {mod64.cycles} cycles, "
            f"exact age -> {exact.cycles} cycles"
        )
    assert mod64.cycles == pytest.approx(exact.cycles, rel=0.02)


def test_ablation_core_width(benchmark, capsys):
    """Scheme effectiveness vs machine width (Core-1 vs a 2-wide core).

    The issue-slot freeze costs relatively more on a narrow machine (one
    ALU frozen = the whole simple-issue bandwidth), but violation-aware
    scheduling must still beat Error Padding at both widths.
    """
    def run():
        results = {}
        for label, config in (
            ("core1", CoreConfig.core1()),
            ("core2", CoreConfig.core2()),
        ):
            base = run_one(RunSpec(
                _BENCH, SchemeKind.FAULT_FREE, VDD_HIGH_FAULT,
                N_INSTRUCTIONS, WARMUP, SEED, config=config,
            ))
            ep = run_one(RunSpec(
                _BENCH, SchemeKind.EP, VDD_HIGH_FAULT,
                N_INSTRUCTIONS, WARMUP, SEED, config=config,
            ))
            abs_run = run_one(RunSpec(
                _BENCH, SchemeKind.ABS, VDD_HIGH_FAULT,
                N_INSTRUCTIONS, WARMUP, SEED, config=config,
            ))
            results[label] = (
                base.ipc,
                ep.perf_overhead(base),
                abs_run.perf_overhead(base),
            )
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    with capsys.disabled():
        print(f"\nwidth ablation ({_BENCH}@0.97V):")
        for label, (ipc, ep_ov, abs_ov) in results.items():
            print(f"  {label}: ipc={ipc:.2f} EP={ep_ov:.2%} ABS={abs_ov:.2%}")
    for label, (ipc, ep_ov, abs_ov) in results.items():
        assert abs_ov < ep_ov, label
    assert results["core1"][0] > results["core2"][0]  # wider is faster
