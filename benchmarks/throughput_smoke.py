"""Standalone throughput smoke: write BENCH_throughput.json.

Runs the same workload as ``test_throughput.py::test_pipeline_throughput``
(bzip2 under ABS at 1.04V, 3000 committed instructions) without needing
pytest-benchmark, and records the best observed rate. CI runs this after
the test suite so every build leaves a machine-readable throughput record.

Usage::

    PYTHONPATH=src python benchmarks/throughput_smoke.py [output.json]
"""

import json
import platform
import sys
import time

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, build_core, prime_caches

#: measured before the cycle-loop optimization campaign (same box class);
#: kept as the fixed reference so speedups are comparable across builds
BASELINE_INST_PER_S = 26994

N_INSTRUCTIONS = 3000
ROUNDS = 7


def run_once():
    core = build_core(RunSpec("bzip2", SchemeKind.ABS, 1.04, seed=2))
    prime_caches(core.program, core.hierarchy)
    return core.run(N_INSTRUCTIONS).committed


def measure(rounds=ROUNDS):
    run_once()  # warm the program/profile caches
    best = 0.0
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        committed = run_once()
        dt = time.perf_counter() - t0
        rate = committed / dt
        samples.append(round(rate))
        best = max(best, rate)
    return best, samples


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "BENCH_throughput.json"
    best, samples = measure()
    record = {
        "benchmark": "pipeline_throughput",
        "workload": "bzip2/ABS/vdd=1.04, 3000 committed instructions",
        "inst_per_s": round(best),
        "samples_inst_per_s": samples,
        "baseline_inst_per_s": BASELINE_INST_PER_S,
        "speedup_vs_baseline": round(best / BASELINE_INST_PER_S, 2),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
