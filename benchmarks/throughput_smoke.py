"""Standalone throughput smoke: write BENCH_throughput.json.

Runs the same workload as ``test_throughput.py::test_pipeline_throughput``
(bzip2 under ABS at 1.04V, 3000 committed instructions) without needing
pytest-benchmark, and records the best observed rate. It then measures
campaign draw throughput on the standard statistical-campaign point
(gcc/ABS at 0.97V, 6000 measured instructions after a 3000-instruction
warmup, each draw a scheme-run/fault-free-baseline pair) three ways:
per-seed cold pairs on the reference cycle loop (the pre-optimization
campaign), the same cold pairs on the fast kernel, and fault-draw mode
forking every draw from one warmup snapshot with the collapsed
baseline amortized over the batch. Finally it measures the lockstep
batch engine (N draws per dispatch from one snapshot,
``repro.snapshot.batch.run_batch``) over a small lane-count sweep and
records the N=16 rate plus its speedup over the marginal scalar rate.
CI runs this after the test suite so every build leaves a
machine-readable throughput record.

Usage::

    PYTHONPATH=src python benchmarks/throughput_smoke.py [output.json]
"""

import json
import os
import platform
import sys
import tempfile
import time

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, build_core, prime_caches, run_one
from repro.snapshot import ensure_snapshot

#: measured before the cycle-loop optimization campaign (same box class);
#: kept as the fixed reference so speedups are comparable across builds
BASELINE_INST_PER_S = 26994

N_INSTRUCTIONS = 3000
ROUNDS = 7

#: the standard campaign point; a campaign draw is a (scheme run,
#: fault-free baseline) pair feeding extract_metrics
CAMPAIGN_POINT = dict(
    benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
    n_instructions=6000, warmup=3000,
)
#: the box's throughput drifts minute to minute, so cold and warm draws
#: are interleaved round-robin and rates taken over the accumulated time;
#: the warm batch (rounds x per-round = 48 draws) matches a realistic
#: per-point draw count so the one-time warmup amortizes as it would in
#: a real campaign rather than over a token handful of draws
PURE_COLD_DRAWS = 4
CAMPAIGN_ROUNDS = 3
COLD_PER_ROUND = 2
WARM_PER_ROUND = 16

#: lane counts for the batch-engine sweep; the headline figure and the
#: ISSUE acceptance gate are taken at the largest (N=16)
BATCH_LANE_SWEEP = (4, 8, 16)
BATCH_ROUNDS = 3


def run_once():
    core = build_core(RunSpec("bzip2", SchemeKind.ABS, 1.04, seed=2))
    prime_caches(core.program, core.hierarchy)
    return core.run(N_INSTRUCTIONS).committed


def measure(rounds=ROUNDS):
    run_once()  # warm the program/profile caches
    best = 0.0
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        committed = run_once()
        dt = time.perf_counter() - t0
        rate = committed / dt
        samples.append(round(rate))
        best = max(best, rate)
    return best, samples


def _scheme_spec(seed, mseed=None, snapshot_dir=None):
    spec = RunSpec(seed=seed, measurement_seed=mseed, **CAMPAIGN_POINT)
    if snapshot_dir is not None:
        spec.snapshot_dir = snapshot_dir
    return spec


def _baseline_spec(seed):
    point = dict(CAMPAIGN_POINT, scheme=SchemeKind.FAULT_FREE)
    return RunSpec(seed=seed, **point)


def _cold_draws(n, first_seed):
    """Per-draw composition of the pre-amortization campaign.

    One draw per fresh seed: a cold scheme run plus a cold fault-free
    baseline, each paying the full warmup (``CampaignSpec.pair_specs``
    before fault-draw mode — every index a distinct seed, so nothing
    was shared between draws).
    """
    for seed in range(first_seed, first_seed + n):
        run_one(_scheme_spec(seed))
        run_one(_baseline_spec(seed))


def measure_campaign():
    """Campaign draws/s on the standard point, three ways.

    * ``pure_cold`` — the pre-optimization campaign: per-seed cold
      pairs on the reference cycle loop (``REPRO_PURE_LOOP=1``).
    * ``cold`` — the same per-seed cold pairs on the current build
      (fast kernel, still no warmup sharing).
    * ``warm`` — fault-draw mode: the point's single snapshot warmup
      and the single collapsed baseline are timed into the warm total
      (amortized over the batch exactly as the campaign executor
      amortizes them), then every draw forks from the snapshot.

    Returns the amortized warm rate and the *marginal* warm rate (the
    per-draw cost with the one-time warmup/baseline excluded — the
    steady-state rate a long-running point approaches; the amortized
    rate converges to it as the batch grows).

    Cold and warm draws are interleaved round-robin so the host's
    minute-scale throughput drift lands on both sides of the ratio.
    """
    run_one(_scheme_spec(1))  # warm the program/profile caches

    os.environ["REPRO_PURE_LOOP"] = "1"
    try:
        t0 = time.perf_counter()
        _cold_draws(PURE_COLD_DRAWS, first_seed=100)
        pure_cold_rate = PURE_COLD_DRAWS / (time.perf_counter() - t0)
    finally:
        del os.environ["REPRO_PURE_LOOP"]

    cold_s = warm_s = once_s = 0.0
    cold_n = warm_n = 0
    with tempfile.TemporaryDirectory() as snap_dir:
        t0 = time.perf_counter()
        ensure_snapshot(_scheme_spec(2), snap_dir)
        run_one(_baseline_spec(2))  # one baseline per point in fault mode
        once_s = time.perf_counter() - t0
        mseed = 0
        for rnd in range(CAMPAIGN_ROUNDS):
            t0 = time.perf_counter()
            _cold_draws(COLD_PER_ROUND, first_seed=200 + 10 * rnd)
            cold_s += time.perf_counter() - t0
            cold_n += COLD_PER_ROUND
            t0 = time.perf_counter()
            for _ in range(WARM_PER_ROUND):
                mseed += 1
                run_one(_scheme_spec(2, mseed, snap_dir))
            warm_s += time.perf_counter() - t0
            warm_n += WARM_PER_ROUND
    return (
        pure_cold_rate,
        cold_n / cold_s,
        warm_n / (warm_s + once_s),
        warm_n / warm_s,
    )


def measure_batch():
    """Lockstep batch-engine draws/s over the lane-count sweep.

    Each sample times one :func:`repro.snapshot.batch.run_batch` call of
    N scheme-run lanes forked from the point's shared snapshot — the
    direct vector counterpart of the marginal scalar draw (the snapshot
    build itself is one-time and excluded on both sides, so
    ``batch_lanes_speedup`` compares like with like). Returns
    ``(rates_by_n, vector_lanes_at_max)`` where the second element counts
    lanes the largest batch actually ran vectorized — 0 signals a silent
    whole-batch fallback to the scalar path.
    """
    from repro.snapshot.batch import BatchReport, batch_eligible, run_batch

    if not batch_eligible(_scheme_spec(2, 1)):
        return {}, 0
    rates = {}
    vector_lanes = 0
    with tempfile.TemporaryDirectory() as snap_dir:
        ensure_snapshot(_scheme_spec(2), snap_dir)
        mseed = 1000
        for lanes in BATCH_LANE_SWEEP:
            best = 0.0
            for _ in range(BATCH_ROUNDS):
                specs = [
                    _scheme_spec(2, mseed + i, snap_dir)
                    for i in range(lanes)
                ]
                mseed += lanes
                report = BatchReport()
                t0 = time.perf_counter()
                run_batch(specs, snap_dir, report)
                dt = time.perf_counter() - t0
                best = max(best, lanes / dt)
                if lanes == max(BATCH_LANE_SWEEP):
                    vector_lanes = max(vector_lanes, report.vector_lanes)
            rates[str(lanes)] = round(best, 2)
    return rates, vector_lanes


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "BENCH_throughput.json"
    best, samples = measure()
    pure_cold_rate, cold_rate, warm_rate, marginal_rate = measure_campaign()
    batch_rates, batch_vector_lanes = measure_batch()
    batch_n = str(max(BATCH_LANE_SWEEP))
    batch_rate = batch_rates.get(batch_n, 0.0)
    record = {
        "benchmark": "pipeline_throughput",
        "workload": "bzip2/ABS/vdd=1.04, 3000 committed instructions",
        "inst_per_s": round(best),
        "samples_inst_per_s": samples,
        "baseline_inst_per_s": BASELINE_INST_PER_S,
        "speedup_vs_baseline": round(best / BASELINE_INST_PER_S, 2),
        "campaign_workload": (
            "gcc/ABS/vdd=0.97, 6000 measured after 3000 warmup, "
            "draw = scheme run + fault-free baseline"
        ),
        "campaign_draws_per_s": round(warm_rate, 2),
        "campaign_marginal_draws_per_s": round(marginal_rate, 2),
        "campaign_cold_draws_per_s": round(cold_rate, 2),
        "campaign_pure_cold_draws_per_s": round(pure_cold_rate, 2),
        "snapshot_speedup": round(warm_rate / cold_rate, 2),
        "snapshot_marginal_speedup": round(marginal_rate / cold_rate, 2),
        "campaign_speedup_vs_pure_cold": round(warm_rate / pure_cold_rate, 2),
        "batch_workload": (
            f"same point, N={batch_n} lockstep lanes per dispatch, "
            "scheme-run draws forked from one shared snapshot"
        ),
        "batch_lanes": int(batch_n),
        "batch_draws_per_s": round(batch_rate, 2),
        "batch_draws_per_s_by_lanes": batch_rates,
        "batch_lanes_speedup": (
            round(batch_rate / marginal_rate, 2) if batch_rate else 0.0
        ),
        "batch_vector_lanes": batch_vector_lanes,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
