"""Shared fixtures for the reproduction benchmarks.

Scale is controlled by environment variables so the suite can be run at
paper scale when time permits:

* ``REPRO_BENCH_INSTRUCTIONS`` — measured instructions per run
  (default 6000; the paper uses 1M).
* ``REPRO_BENCH_WARMUP`` — warmup instructions (default 3000).

The two scheduling sweeps (one per faulty voltage) are session-scoped:
Figure 4/5 share the 1.04V runs, Figures 8/9 the 0.97V runs, and Table 1
draws on both.
"""

import os

import pytest

from repro.faults.timing import VDD_HIGH_FAULT, VDD_LOW_FAULT
from repro.harness.experiments import SchedulingSweep
from repro.harness.paper_data import HIGH_FR_BENCHMARKS
from repro.workloads.profiles import profile_names

N_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "6000"))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "3000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
#: worker processes for the sweep grids (0 = all cores; see run_many)
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # the timing benchmarks need the pytest-benchmark plugin for their
    # ``benchmark`` fixture; without it, skip them instead of erroring
    @pytest.fixture
    def benchmark():
        pytest.skip("pytest-benchmark is not installed")


@pytest.fixture(scope="session")
def sweep_low():
    """All (benchmark, scheme) runs at VDD = 1.04V (Figures 4/5)."""
    return SchedulingSweep(
        VDD_LOW_FAULT, N_INSTRUCTIONS, WARMUP, SEED, profile_names(),
        jobs=JOBS,
    )


@pytest.fixture(scope="session")
def sweep_high():
    """All (benchmark, scheme) runs at VDD = 0.97V (Figures 8/9)."""
    return SchedulingSweep(
        VDD_HIGH_FAULT, N_INSTRUCTIONS, WARMUP, SEED,
        list(HIGH_FR_BENCHMARKS), jobs=JOBS,
    )


def run_args():
    """Common kwargs for experiment functions."""
    return dict(n_instructions=N_INSTRUCTIONS, warmup=WARMUP, seed=SEED)
