"""Performance microbenchmarks of the core data structures.

These measure simulator throughput rather than reproducing paper results:
cycle-level simulation speed, gate-level simulation speed, and predictor
operation cost. Useful for spotting performance regressions in the hot
loops.
"""

import random

from repro.core.schemes import SchemeKind
from repro.core.tep import TimingErrorPredictor
from repro.harness.runner import RunSpec, build_core, prime_caches
from repro.isa.opcodes import PipeStage
from repro.circuits.builders import build_alu
from repro.mem.cache import Cache, CacheConfig


def test_pipeline_throughput(benchmark):
    """Committed instructions per second of the cycle-level model."""
    def run():
        core = build_core(RunSpec("bzip2", SchemeKind.ABS, 1.04, seed=2))
        prime_caches(core.program, core.hierarchy)
        return core.run(3000).committed

    committed = benchmark(run)
    assert committed >= 3000


def test_gate_level_simulation_throughput(benchmark):
    """ALU netlist evaluations per second."""
    nl, _ = build_alu()
    rng = random.Random(0)
    vectors = [
        [rng.randint(0, 1) for _ in nl.inputs] for _ in range(20)
    ]

    def run():
        out = None
        for vec in vectors:
            out = nl.simulate(vec)
        return out

    assert benchmark(run) is not None


def test_tep_operation_cost(benchmark):
    """Predict+train pairs per second."""
    tep = TimingErrorPredictor()
    pcs = [0x1000 + 4 * i for i in range(256)]
    key = tep.key_for(pcs[0], 0)
    tep.train(key, PipeStage.ISSUE, True)

    def run():
        hits = 0
        for pc in pcs:
            if tep.predict(pc, 0) is not None:
                hits += 1
        return hits

    assert benchmark(run) >= 1


def test_cache_access_throughput(benchmark):
    """L1-shaped cache accesses per second."""
    cache = Cache(CacheConfig(32 * 1024, 4))
    rng = random.Random(1)
    addrs = [rng.randrange(1 << 18) for _ in range(2000)]

    def run():
        hits = 0
        for addr in addrs:
            hits += cache.access(addr)
        return hits

    benchmark(run)
