"""Fleet campaign throughput: draws/s at 1, 2, and 4 local workers.

Runs the same fixed-N campaign (gcc/ABS at 0.97V, 6000 measured
instructions after a 3000-instruction warmup, 12 draws in 4-draw
batches) through ``fleet_run`` with the worker count swept over
{1, 2, 4}, and records the end-to-end draw rate of each — including
coordinator startup, worker process spawn, leasing, and the final
journal merge, since that is what a user of ``fleet run`` pays. The
point's warmup snapshot is built once up front and shared by every
sweep so the worker counts are compared on identical footing.

The numbers are merged into the existing BENCH_throughput.json record
under ``campaign_fleet_draws_per_s`` without disturbing the other keys.
Worker counts above the host's CPU count cannot scale — the workers
serialize on the CPU and the extra processes only add scheduling and
leasing overhead — so the record also carries the measured
``cpu_count`` and lists those counts under ``oversubscribed``: a
decreasing series at oversubscribed counts is an artifact of the box,
not a regression (on a 1-core CI runner *every* multi-worker config is
oversubscribed). Readers should only interpret the sub-series of
worker counts ≤ cpu_count as a scaling curve.

Usage::

    PYTHONPATH=src python benchmarks/fleet_throughput.py [output.json]
"""

import json
import os
import sys
import tempfile
import time

from repro.campaign.plan import CampaignSpec
from repro.core.schemes import SchemeKind
from repro.fleet import fleet_run
from repro.snapshot import ensure_snapshot

WORKER_COUNTS = (1, 2, 4)
N_DRAWS = 12

#: the standard campaign point, same as throughput_smoke.py
CAMPAIGN_POINT = dict(
    benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
    n_instructions=6000, warmup=3000,
)


def _spec():
    return CampaignSpec(
        name="fleet-bench", benchmarks=[CAMPAIGN_POINT["benchmark"]],
        schemes=[CAMPAIGN_POINT["scheme"].name],
        vdds=[CAMPAIGN_POINT["vdd"]],
        n_instructions=CAMPAIGN_POINT["n_instructions"],
        warmup=CAMPAIGN_POINT["warmup"],
        min_seeds=N_DRAWS, max_seeds=N_DRAWS, batch_size=4,
    )


def measure_fleet(snapshot_dir):
    rates = {}
    for workers in WORKER_COUNTS:
        with tempfile.TemporaryDirectory() as run_dir:
            t0 = time.perf_counter()
            report = fleet_run(
                run_dir, spec=_spec(), workers=workers, cache=False,
                snapshot_dir=snapshot_dir, linger=0.2,
            )
            dt = time.perf_counter() - t0
        assert report["complete"], report
        assert report["runs_total"] == N_DRAWS, report
        rates[str(workers)] = round(N_DRAWS / dt, 2)
        over = " [oversubscribed]" if workers > (os.cpu_count() or 1) else ""
        print(f"fleet {workers} worker(s): {rates[str(workers)]} draws/s "
              f"({N_DRAWS} draws in {dt:.1f}s){over}")
    return rates


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "BENCH_throughput.json"
    with tempfile.TemporaryDirectory() as snap_dir:
        # one shared warmup snapshot so every worker count forks draws
        # instead of re-paying the point warmup
        spec = _spec()
        run_spec, _ = spec.pair_specs(spec.points()[0], 0)
        ensure_snapshot(run_spec, snap_dir)
        rates = measure_fleet(snap_dir)
    record = {}
    if os.path.exists(out):
        with open(out) as fh:
            record = json.load(fh)
    cpu_count = os.cpu_count() or 1
    oversubscribed = [w for w in WORKER_COUNTS if w > cpu_count]
    record["campaign_fleet_workload"] = (
        f"gcc/ABS/vdd=0.97, {N_DRAWS} draws in 4-draw leases, "
        "end-to-end fleet run incl. worker spawn and journal merge"
    )
    record["campaign_fleet_draws_per_s"] = rates
    record["campaign_fleet_cpu_count"] = cpu_count
    record["campaign_fleet_oversubscribed_workers"] = oversubscribed
    if oversubscribed:
        record["campaign_fleet_note"] = (
            f"worker counts {oversubscribed} exceed the {cpu_count} "
            "available CPU(s); their rates measure scheduling overhead, "
            "not scaling, and decreasing values there are expected"
        )
    else:
        record.pop("campaign_fleet_note", None)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
