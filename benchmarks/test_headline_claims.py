"""The paper's headline claims (abstract, Sections 5.2 and S2).

* average performance-overhead reduction vs EP: ~87% at 1.04V, ~88% at
  0.97V;
* average ED-overhead reduction: ~82% / ~83%;
* overall band 64-97%.

At our scaled-down run lengths the measured reductions land lower but must
stay deep in the paper's qualitative band (>50% on average).
"""

from repro.harness import experiments

from conftest import run_args


def test_headline_claims(benchmark, sweep_low, sweep_high, capsys):
    result = benchmark.pedantic(
        lambda: experiments.headline(
            sweeps={1.04: sweep_low, 0.97: sweep_high}, **run_args()
        ),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    for metric, entry in result.data.items():
        measured = entry["measured_reduction"]
        assert measured > 0.5, f"{metric}: only {measured:.0%} reduction"
        # and no scheme is worse than the EP baseline on average
        for scheme, reduction in entry["per_scheme"].items():
            assert reduction > 0.2, (metric, scheme, reduction)
