"""Regenerate Table 1: fault rates and Razor/EP overheads.

Paper reference (Table 1): fault rates of 5.6-10.5% at 0.97V and
1.4-2.3% at 1.04V; Razor overheads of 25-59% / 7-25% (perf) and EP
overheads of 2-15% / 0.5-3.8%, always Razor >> EP.
"""

from repro.harness import experiments
from repro.harness.paper_data import PAPER_TABLE1

from conftest import run_args


def test_table1(benchmark, sweep_low, sweep_high, capsys):
    result = benchmark.pedantic(
        lambda: experiments.table1(
            sweeps={0.97: sweep_high, 1.04: sweep_low},
            **run_args(),
        ),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    for bench, entry in result.data.items():
        paper = PAPER_TABLE1[bench]
        # fault rates grow when the supply drops, as in the paper
        assert entry[0.97]["fr"] > entry[1.04]["fr"]
        # fault rates land within a factor ~2 of the paper's Table 1
        assert entry[0.97]["fr"] == paper.fr_high * (1.0 + 0.0) or (
            0.4 * paper.fr_high < entry[0.97]["fr"] < 2.5 * paper.fr_high
        )
        assert 0.3 * paper.fr_low < entry[1.04]["fr"] < 3.0 * paper.fr_low
        # Razor always costs more than EP at both voltages
        for vdd in (0.97, 1.04):
            assert entry[vdd]["razor"][0] > entry[vdd]["ep"][0]
        # Razor overheads are tens of percent at high fault rate
        assert entry[0.97]["razor"][0] > 5.0
