"""Regenerate Table 3: synthesized component characteristics.

Paper reference (gate count / logic depth, NAND-level): IssueQSelect
189/33, ALU 4728/46, AGen 491/43, ForwardCheck 428/15. Our generators
produce comparable structures; the ordering relations must hold: the ALU
is the largest and among the deepest, the forward-check is the shallowest.
"""

from repro.harness import experiments


def test_table3(benchmark, capsys):
    result = benchmark.pedantic(
        experiments.table3, iterations=1, rounds=3
    )
    with capsys.disabled():
        print()
        print(result.render())
    data = result.data
    # the ALU is the biggest component, as in the paper
    assert data["ALU"].n_gates == max(r.n_gates for r in data.values())
    # the forward-check logic is the shallowest (paper: depth 15)
    assert data["ForwardCheck"].depth == min(r.depth for r in data.values())
    # magnitudes comparable to the paper's 189-4728 gates / depth 15-46
    for report in data.values():
        assert 100 <= report.n_gates <= 20000
        assert 10 <= report.depth <= 120


def test_table3_native(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: experiments.table3(mapped=False), iterations=1, rounds=3
    )
    with capsys.disabled():
        print()
        print(result.render())
    for report in result.data.values():
        assert report.n_gates > 0
