"""Regenerate Figure 4: performance overhead vs EP at 1.04V.

Paper reference: all bars well below 1.0 (the EP baseline); on average the
proposed schemes remove ~87% of EP's overhead; per-benchmark reductions
span 64-97%.
"""

import math

from repro.harness import experiments

from conftest import run_args


def test_fig4(benchmark, sweep_low, capsys):
    result = benchmark.pedantic(
        lambda: experiments.fig4(sweep=sweep_low, **run_args()),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    averages = result.data["averages"]
    assert set(averages) == {"ABS", "FFS", "CDS"}
    for scheme, avg in averages.items():
        assert not math.isnan(avg)
        # every proposed scheme removes most of the EP overhead
        assert avg < 0.75, f"{scheme} average relative overhead {avg}"
    # the best scheme reaches deep into the paper's band
    assert min(averages.values()) < 0.55
    # per-benchmark: bars stay below the EP baseline almost everywhere
    series = result.data["series"]
    below = sum(
        1
        for by_bench in series.values()
        for bench, v in by_bench.items()
        if bench != "AVERAGE" and v < 1.0
    )
    total = sum(
        1
        for by_bench in series.values()
        for bench in by_bench
        if bench != "AVERAGE"
    )
    assert below / total > 0.9
