"""Regenerate Figure 9: energy-delay overhead vs EP at 0.97V.

Paper reference: ~83% average ED-overhead reduction at the high fault
rate.
"""

import math

from repro.harness import experiments

from conftest import run_args


def test_fig9(benchmark, sweep_high, capsys):
    result = benchmark.pedantic(
        lambda: experiments.fig9(sweep=sweep_high, **run_args()),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    averages = result.data["averages"]
    for scheme, avg in averages.items():
        assert not math.isnan(avg)
        assert avg < 0.8, f"{scheme} average relative ED overhead {avg}"
    assert min(averages.values()) < 0.6
