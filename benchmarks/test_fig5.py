"""Regenerate Figure 5: energy-delay overhead vs EP at 1.04V.

Paper reference: the proposed schemes remove ~82% of EP's ED overhead on
average (bars 0.1-0.45).
"""

import math

from repro.harness import experiments

from conftest import run_args


def test_fig5(benchmark, sweep_low, capsys):
    result = benchmark.pedantic(
        lambda: experiments.fig5(sweep=sweep_low, **run_args()),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    averages = result.data["averages"]
    for scheme, avg in averages.items():
        assert not math.isnan(avg)
        assert avg < 0.85, f"{scheme} average relative ED overhead {avg}"
    assert min(averages.values()) < 0.65
