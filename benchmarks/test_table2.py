"""Regenerate Table 2: VTE area/power overhead vs the baseline scheduler.

Paper reference: ABS/FFS cost 0.77%/0.57%/0.87% (area/dyn/leak) of the
scheduler, CDS 6.35%/1.56%/6.80%; at core level all overheads are <=0.24%.
"""

from repro.harness import experiments


def test_table2(benchmark, capsys):
    result = benchmark.pedantic(
        experiments.table2, iterations=1, rounds=3
    )
    with capsys.disabled():
        print()
        print(result.render())
    abs_sched = result.data["ABS"]["sched"]
    ffs_sched = result.data["FFS"]["sched"]
    cds_sched = result.data["CDS"]["sched"]
    # ABS and FFS share the same logic (one Table 2 row in the paper)
    assert abs_sched.area == ffs_sched.area
    # CDS pays the CDL on top: markedly more than ABS, under ~12% total
    assert cds_sched.area > 2 * abs_sched.area
    assert cds_sched.area < 0.12
    assert abs_sched.area < 0.04
    # core level: everything under 0.35% (paper: <= 0.24%)
    for scheme in ("ABS", "FFS", "CDS"):
        core = result.data[scheme]["core"]
        assert core.area < 0.0035
        assert core.dynamic < 0.0035
        assert core.leakage < 0.0035
