"""Regenerate Figure 7: sensitized-path commonality.

Paper reference: average commonality of 87.4% (issue-queue select), 89%
(AGEN), 92.4% (forward check) and 90% (ALU); vortex shows the highest
commonality (96% in the issue queue) because it operates on a small range
of input values.
"""

from repro.harness import experiments


def test_fig7(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: experiments.fig7(seed=7), iterations=1, rounds=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    averages = result.data["averages"]
    series = result.data["series"]
    # substantially high commonality everywhere (paper: 87-92% averages)
    for component, avg in averages.items():
        assert avg > 0.75, f"{component} average commonality {avg}"
    assert max(averages.values()) > 0.88
    # vortex tops every component
    for component in averages:
        vortex = series["vortex"][component]
        assert vortex == max(s[component] for s in series.values())
        assert vortex > 0.85
