"""Regenerate Figure 8: performance overhead vs EP at 0.97V.

Paper reference: at the high fault rate the schemes remove ~88% of EP's
overhead on average; the figure drops povray (11 benchmarks).
"""

import math

from repro.harness import experiments

from conftest import run_args


def test_fig8(benchmark, sweep_high, capsys):
    result = benchmark.pedantic(
        lambda: experiments.fig8(sweep=sweep_high, **run_args()),
        iterations=1,
        rounds=1,
    )
    with capsys.disabled():
        print()
        print(result.render())
    # the paper's Figure 8 omits povray
    assert "povray" not in result.data["series"]["ABS"]
    averages = result.data["averages"]
    for scheme, avg in averages.items():
        assert not math.isnan(avg)
        assert avg < 0.7, f"{scheme} average relative overhead {avg}"
    assert min(averages.values()) < 0.5
